#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/series.hpp"
#include "obs/trace.hpp"
#include "predict/predictor.hpp"
#include "predict/registry.hpp"
#include "sched/scheduler.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace bgl::svc {

namespace {

/// Same cap as the driver: the scheduler can start at most num_nodes jobs
/// per pass plus examine backfill_depth fillers.
constexpr std::size_t kQueueViewCap = 512;

}  // namespace

SchedulerService::SchedulerService(const ServiceConfig& config,
                                   const FailureTrace* oracle,
                                   const PartitionCatalog* shared_catalog)
    : config_(config),
      owned_catalog_(shared_catalog
                         ? nullptr
                         : new PartitionCatalog(config.dims, config.topology,
                                                config.catalog)),
      catalog_(shared_catalog ? shared_catalog : owned_catalog_.get()),
      torus_(*catalog_),
      down_(config.dims.volume()),
      tr_(config.obs.trace),
      hg_(config.obs.histograms),
      ct_(config.obs.counters) {
  BGL_CHECK(catalog_->dims() == config.dims, "shared catalog dims mismatch");
  BGL_CHECK(catalog_->topology() == config.topology,
            "shared catalog topology mismatch");
  if (config_.use_partition_index) {
    index_ = std::make_unique<FreePartitionIndex>(*catalog_);
  }
  if (tr_ != nullptr && config_.metrics_interval > 0.0) {
    decision_ring_ = std::make_unique<obs::LatencyRing>();
  }
  build_scheduler(oracle);
}

SchedulerService::~SchedulerService() = default;

void SchedulerService::build_scheduler(const FailureTrace* oracle) {
  const int n = config_.dims.volume();
  // One registry for every frontend: make_predictor raises the typed
  // OracleRequiredError — naming the model — when an oracle-backed model is
  // configured without a trace. kAdaptive needs none: it is fed by the
  // stream's fail/repair events.
  PredictorSpec spec;
  spec.model = config_.predictor_model;
  spec.paper_role = paper_role_for(config_.scheduler);
  spec.alpha = config_.alpha;
  spec.tiebreak_false_positive_rate = config_.tiebreak_false_positive_rate;
  spec.history_lookback = config_.history_lookback;
  spec.seed = config_.seed;
  spec.adaptive = config_.adaptive;
  predictor_ = make_predictor(spec, n, oracle);

  switch (config_.scheduler) {
    case SchedulerKind::kKrevat:
      scheduler_ = make_krevat_scheduler(*catalog_, *predictor_, config_.sched);
      break;
    case SchedulerKind::kBalancing:
      scheduler_ = make_balancing_scheduler(*catalog_, *predictor_, config_.sched);
      break;
    case SchedulerKind::kTieBreak:
      scheduler_ = make_tiebreak_scheduler(*catalog_, *predictor_, config_.sched);
      break;
  }
  scheduler_->set_observer(config_.obs);
}

NodeSet SchedulerService::scheduling_occupancy() const {
  if (down_.empty()) return torus_.occupied();
  NodeSet occ = torus_.occupied();
  occ |= down_;
  return occ;
}

int SchedulerService::usable_free_nodes() const {
  if (down_.empty()) return torus_.free_nodes();
  NodeSet busy = torus_.occupied();
  busy |= down_;
  return catalog_->num_nodes() - busy.count();
}

void SchedulerService::ensure_begin(double t) {
  // Cadence anchoring is independent of tracing: the metrics window (and
  // the forecast scorer riding on it) also runs counters-only, so a live
  // sched_server scrape shows pred.* without a trace sink attached.
  if (!cadences_anchored_) {
    cadences_anchored_ = true;
    if (tr_ != nullptr && config_.snapshot_interval > 0.0) {
      next_snapshot_ = t + config_.snapshot_interval;
    }
    if (config_.metrics_interval > 0.0 && (tr_ != nullptr || ct_ != nullptr)) {
      last_metrics_t_ = t;
      next_metrics_ = t + config_.metrics_interval;
      pred_armed_ = true;
      pred_flagged_ = predictor_->flagged_nodes(t, t + config_.metrics_interval, 0);
      pred_failed_ = NodeSet(catalog_->num_nodes());
    }
  }
  if (tr_ == nullptr || begin_emitted_) return;
  begin_emitted_ = true;
  auto begin = tr_->event("sim_begin", t);
  begin.field("machine", to_string(config_.dims))
      .field("nodes", catalog_->num_nodes())
      .field("topology", to_string(config_.topology))
      .field("scheduler", to_string(config_.scheduler))
      .field("policy", scheduler_->name())
      .field("predictor", to_string(config_.predictor_model))
      .field("alpha", config_.alpha)
      .field("backfill", to_string(config_.sched.backfill))
      .field("migration", config_.sched.migration)
      // A live stream has no job/failure census up front; 0 marks "unknown"
      // (the auditor counts submits itself and never reads these back).
      .field("jobs", static_cast<std::int64_t>(0))
      .field("failure_events", static_cast<std::int64_t>(0));
  if (catalog_->options().mode != CatalogOptions::Mode::kBoxes) {
    begin.field("catalog", to_string(catalog_->options().mode))
        .field("min_block", catalog_->options().min_block);
  }
  if (config_.sched.algorithm != SchedAlgorithm::kKrevat) {
    begin.field("algorithm", to_string(config_.sched.algorithm));
  }
  // Adaptive-predictor provenance, mirroring the driver (and checked by the
  // strict auditor's predictor_mismatch invariant).
  if (config_.predictor_model == PredictorModel::kAdaptive) {
    begin.field("flag_window", config_.adaptive.node_flag_window)
        .field("burst_window", config_.adaptive.burst_window);
  }
}

void SchedulerService::emit_snapshots_until(double horizon) {
  while (true) {
    const bool snap_due = next_snapshot_ > 0.0 && next_snapshot_ <= horizon;
    const bool metrics_due = next_metrics_ > 0.0 && next_metrics_ <= horizon;
    if (!snap_due && !metrics_due) break;
    if (snap_due && (!metrics_due || next_snapshot_ <= next_metrics_)) {
      const double t = next_snapshot_;
      next_snapshot_ += config_.snapshot_interval;
      emit_machine_state(t);
    } else {
      const double t = next_metrics_;
      next_metrics_ += config_.metrics_interval;
      emit_metrics(t);
    }
  }
}

void SchedulerService::emit_machine_state(double t) {
  int queued_nodes = 0;
  for (const std::uint64_t id : queue_) {
    queued_nodes += jobs_.find(id)->second.size;
  }
  const NodeSet occ = scheduling_occupancy();
  const int mfp = index_ != nullptr ? index_->mfp() : catalog_->mfp(occ);
  const int free = usable_free_nodes();
  const double frag =
      free > 0 ? 1.0 - static_cast<double>(mfp) / static_cast<double>(free)
               : 0.0;
  const int flagged =
      predictor_->flagged_nodes(t, t + config_.snapshot_interval, 0).count();

  tr_->event("machine_state", t)
      .field("queue_depth", static_cast<std::int64_t>(queue_.size()))
      .field("queued_nodes", queued_nodes)
      .field("running_jobs", static_cast<std::int64_t>(running_.size()))
      .field("free_nodes", free)
      .field("down_nodes", down_.count())
      .field("mfp", mfp)
      .field("frag", frag)
      .field("flagged_nodes", flagged);
}

void SchedulerService::emit_metrics(double t) {
  // Score the closing window's forecast first (mirrors sim/driver).
  std::int64_t pred_tp = 0, pred_fp = 0, pred_fn = 0;
  if (pred_armed_) {
    pred_tp = pred_flagged_.intersect_count(pred_failed_);
    pred_fp = pred_flagged_.count() - pred_tp;
    pred_fn = pred_failed_.count() - pred_tp;
    if (ct_ != nullptr) {
      ct_->add(obs::Counter::kPredWindowTruePositives,
               static_cast<std::uint64_t>(pred_tp));
      ct_->add(obs::Counter::kPredWindowFalsePositives,
               static_cast<std::uint64_t>(pred_fp));
      ct_->add(obs::Counter::kPredWindowFalseNegatives,
               static_cast<std::uint64_t>(pred_fn));
      ct_->add(obs::Counter::kPredWindowsScored);
    }
  }

  if (tr_ != nullptr) {
    int queued_nodes = 0;
    for (const std::uint64_t id : queue_) {
      queued_nodes += jobs_.find(id)->second.size;
    }
    const int busy = torus_.occupied().count();
    const int nodes = catalog_->num_nodes();
    const double interval = t - last_metrics_t_;
    double p50 = 0.0, p99 = 0.0, max_us = 0.0;
    if (decision_ring_ != nullptr && decision_ring_->size() > 0) {
      p50 = decision_ring_->quantile(0.5);
      p99 = decision_ring_->quantile(0.99);
      max_us = decision_ring_->max();
    }

    tr_->event("metrics", t)
        .field("queue_depth", static_cast<std::int64_t>(queue_.size()))
        .field("queued_nodes", queued_nodes)
        .field("running_jobs", static_cast<std::int64_t>(running_.size()))
        .field("busy_nodes", busy)
        .field("down_nodes", down_.count())
        .field("utilization",
               nodes > 0 ? static_cast<double>(busy) / static_cast<double>(nodes)
                         : 0.0)
        .field("interval", interval)
        .field("submits", m_submits_)
        .field("starts", m_starts_)
        .field("finishes", m_finishes_)
        .field("kills", m_kills_)
        .field("migrations", m_migrations_)
        .field("finished_per_hour",
               interval > 0.0
                   ? static_cast<double>(m_finishes_) * 3600.0 / interval
                   : 0.0)
        .field("decisions", m_decisions_)
        .field("decision_us_p50", p50)
        .field("decision_us_p99", p99)
        .field("decision_us_max", max_us)
        .field("pred_tp", pred_tp)
        .field("pred_fp", pred_fp)
        .field("pred_fn", pred_fn);
  }

  last_metrics_t_ = t;
  m_submits_ = m_starts_ = m_finishes_ = m_kills_ = m_migrations_ = 0;
  m_decisions_ = 0;
  if (decision_ring_ != nullptr) decision_ring_->clear();
  if (pred_armed_) {
    predictor_->flagged_nodes_into(pred_flagged_, t,
                                   t + config_.metrics_interval, 0);
    pred_failed_.clear();
  }
}

/// §6.1 capacity integral, driven by the event stream: starts at the first
/// submit (the workload's min arrival — the stream is time-ordered) and
/// advances *before* each event's mutations, exactly like the driver's
/// advance-then-mutate discipline.
void SchedulerService::advance_integrator(const Event& event) {
  if (!integrator_started_) {
    if (event.kind != EventKind::kSubmit) return;
    integrator_started_ = true;
    integrator_t0_ = event.time;
    min_submit_ = event.time;
    integrator_.start(event.time, usable_free_nodes(), queued_demand_);
    return;
  }
  if (event.time >= integrator_t0_) integrator_.advance(event.time);
}

void SchedulerService::enqueue(JobRec& job) {
  job.phase = Phase::kWaiting;
  job.entry = -1;
  auto priority = [&](std::uint64_t a, std::uint64_t b) {
    const JobRec& ja = jobs_.find(a)->second;
    const JobRec& jb = jobs_.find(b)->second;
    switch (config_.queue_order) {
      case QueueOrder::kShortestJobFirst:
        if (ja.estimate != jb.estimate) return ja.estimate < jb.estimate;
        break;
      case QueueOrder::kSmallestJobFirst:
        if (ja.size != jb.size) return ja.size < jb.size;
        break;
      case QueueOrder::kFcfs:
        break;
    }
    if (ja.arrival != jb.arrival) return ja.arrival < jb.arrival;
    return ja.id < jb.id;
  };
  const auto pos = std::lower_bound(queue_.begin(), queue_.end(), job.id, priority);
  queue_.insert(pos, job.id);
  queued_demand_ += job.size;
  integrator_.add_queued(job.size);
}

void SchedulerService::release_allocation(JobRec& job) {
  index_release(catalog_->entry(job.entry).mask);
  torus_.release(job.id);
  const auto rpos = std::find(running_.begin(), running_.end(), job.id);
  BGL_CHECK(rpos != running_.end(), "job missing from running set");
  *rpos = running_.back();
  running_.pop_back();
}

void SchedulerService::run_pass(double now, std::vector<Decision>& out) {
  std::vector<WaitingJob> waiting;
  waiting.reserve(std::min(queue_.size(), kQueueViewCap));
  for (std::size_t i = 0; i < queue_.size() && i < kQueueViewCap; ++i) {
    const JobRec& j = jobs_.find(queue_[i])->second;
    waiting.push_back(WaitingJob{j.id, j.size, j.alloc_size, j.estimate});
  }
  std::vector<RunningJob> running;
  running.reserve(running_.size());
  for (const std::uint64_t id : running_) {
    const JobRec& j = jobs_.find(id)->second;
    running.push_back(RunningJob{j.id, j.entry, j.last_start + j.estimate});
  }

  const NodeSet occ = scheduling_occupancy();
  std::chrono::steady_clock::time_point m_begin;
  if (decision_ring_ != nullptr) m_begin = std::chrono::steady_clock::now();
  const SchedulingDecision decision =
      scheduler_->schedule(now, waiting, running, occ, index_.get());
  ++m_decisions_;
  if (decision_ring_ != nullptr) {
    const std::chrono::duration<double, std::micro> us =
        std::chrono::steady_clock::now() - m_begin;
    decision_ring_->add(us.count());
  }

  if (tr_ != nullptr) {
    for (const PredictorQueryRecord& q : decision.predictor_queries) {
      tr_->event("predictor_query", now)
          .field("job", q.id)
          .field("window_start", q.window_start)
          .field("window_end", q.window_end)
          .field("nodes_flagged", q.nodes_flagged);
    }
  }

  // Migrations first, in two phases (movers may rotate partitions).
  for (const Migration& m : decision.migrations) {
    auto it = jobs_.find(m.id);
    BGL_CHECK(it != jobs_.end(), "migration refers to unknown job");
    BGL_CHECK(it->second.phase == Phase::kRunning, "migrating a non-running job");
    index_release(catalog_->entry(torus_.entry_of(m.id)).mask);
    torus_.release(m.id);
  }
  for (const Migration& m : decision.migrations) {
    torus_.allocate(m.id, m.to_entry);
    index_occupy(catalog_->entry(m.to_entry).mask);
    JobRec& j = jobs_.find(m.id)->second;
    j.entry = m.to_entry;
    ++stats_.migrations;
    ++m_migrations_;
    if (tr_ != nullptr) {
      tr_->event("migration", now)
          .field("job", j.id)
          .field("from_entry", m.from_entry)
          .field("to_entry", m.to_entry);
    }
    Decision d;
    d.kind = DecisionKind::kMigrate;
    d.time = now;
    d.job = j.id;
    d.entry = m.to_entry;
    d.from_entry = m.from_entry;
    out.push_back(d);
  }

  BGL_CHECK(tr_ == nullptr || decision.placements.size() == decision.starts.size(),
            "placement audit records out of sync with starts");

  for (std::size_t start_i = 0; start_i < decision.starts.size(); ++start_i) {
    const Start& start = decision.starts[start_i];
    auto it = jobs_.find(start.id);
    BGL_CHECK(it != jobs_.end(), "start refers to unknown job");
    JobRec& j = it->second;
    BGL_CHECK(j.phase == Phase::kWaiting, "starting a non-waiting job");

    const auto qpos = std::find(queue_.begin(), queue_.end(), j.id);
    BGL_CHECK(qpos != queue_.end(), "started job missing from queue");
    queue_.erase(qpos);
    queued_demand_ -= j.size;
    integrator_.add_queued(-static_cast<long long>(j.size));

    torus_.allocate(j.id, start.entry_index);
    index_occupy(catalog_->entry(start.entry_index).mask);
    j.entry = start.entry_index;
    j.phase = Phase::kRunning;
    j.last_start = now;
    if (j.first_start < 0.0) j.first_start = now;
    running_.push_back(j.id);
    ++stats_.starts;
    ++m_starts_;

    if (tr_ != nullptr) {
      const PlacementRecord& p = decision.placements[start_i];
      {
        auto ev = tr_->event("sched_decision", now);
        ev.field("job", j.id)
            .field("policy", scheduler_->name())
            .field("entry", p.entry_index)
            .field("candidates", p.candidates)
            .field("l_mfp", p.l_mfp)
            .field("l_pf", p.l_pf)
            .field("e_loss", p.e_loss)
            .field("mfp_after", p.mfp_after)
            .field("flags_in_chosen", p.flags_in_chosen)
            .field("backfill", p.backfill);
        if (p.res_entry >= 0) {
          ev.field("res_time", p.res_time).field("res_entry", p.res_entry);
        }
      }
      tr_->event("job_start", now)
          .field("job", j.id)
          .field("entry", start.entry_index)
          .field("alloc_size", j.alloc_size)
          .field("wait_so_far", now - j.arrival)
          .field("restarts", j.restarts);
    }

    Decision d;
    d.kind = DecisionKind::kStart;
    d.time = now;
    d.job = j.id;
    d.entry = start.entry_index;
    out.push_back(d);
  }

  stats_.starts_on_flagged += static_cast<std::size_t>(decision.starts_on_flagged);
  stats_.flagged_with_alternative +=
      static_cast<std::size_t>(decision.flagged_with_alternative);

  if (!decision.starts.empty() || !decision.migrations.empty()) {
    integrator_.set_free(usable_free_nodes());
  }
}

void SchedulerService::kill_job(JobRec& job, double now, int node,
                                std::vector<Decision>& out) {
  const double elapsed = now - job.last_start;
  // The service models no checkpointing: everything since the (re)start is
  // lost. The sim adapter does its own checkpoint-aware accounting.
  const double lost = std::max(0.0, elapsed) * static_cast<double>(job.size);
  stats_.work_lost_node_seconds += lost;
  ++job.restarts;
  ++stats_.kills;
  ++m_kills_;
  if (now <= job.last_start + job.estimate + 1e-9) ++stats_.avoidable_kills;
  if (tr_ != nullptr) {
    tr_->event("job_kill", now)
        .field("job", job.id)
        .field("entry", job.entry)
        .field("elapsed", elapsed)
        .field("work_lost", lost)
        .field("work_saved", 0.0)
        .field("restarts", job.restarts);
  }

  Decision d;
  d.kind = DecisionKind::kKill;
  d.time = now;
  d.job = job.id;
  d.entry = job.entry;
  d.node = node;
  out.push_back(d);

  release_allocation(job);
  enqueue(job);
}

void SchedulerService::on_submit(const Event& e, std::vector<Decision>& out,
                                 std::size_t line) {
  if (jobs_.count(e.job) != 0) {
    throw ProtocolError(RejectCode::kDuplicateJob, line,
                        "job " + std::to_string(e.job) + " already submitted");
  }
  const int n = catalog_->num_nodes();
  if (e.size < 1 || e.size > n) {
    throw ProtocolError(RejectCode::kBadValue, line,
                        "size " + std::to_string(e.size) +
                            " outside [1, " + std::to_string(n) + "]");
  }
  if (e.estimate < 0.0) {
    throw ProtocolError(RejectCode::kBadValue, line, "estimate must be >= 0");
  }
  const int alloc = catalog_->allocatable_size(e.size);
  if (alloc <= 0) {
    throw ProtocolError(RejectCode::kNoPartition, line,
                        "no allocatable partition size for " +
                            std::to_string(e.size) + " nodes");
  }

  advance_integrator(e);
  predictor_->advance(e.time);
  ensure_begin(e.time);
  emit_snapshots_until(e.time);
  ++m_submits_;
  JobRec rec;
  rec.id = e.job;
  rec.size = e.size;
  rec.alloc_size = alloc;
  rec.arrival = e.time;
  rec.estimate = e.estimate;
  rec.runtime = e.runtime;
  JobRec& job = jobs_.emplace(e.job, rec).first->second;
  enqueue(job);
  ++stats_.submitted;
  min_submit_ = std::min(min_submit_, e.time);
  // sim_end utilization must equal the auditor's recomputation from the
  // runtimes traced here, so unknown runtimes count as 0 in both places.
  useful_work_ +=
      static_cast<double>(job.size) * std::max(job.runtime, 0.0);
  if (tr_ != nullptr) {
    tr_->event("job_submit", e.time)
        .field("job", job.id)
        .field("size", job.size)
        .field("alloc_size", job.alloc_size)
        .field("estimate", job.estimate)
        .field("runtime", std::max(job.runtime, 0.0));
  }
  run_pass(e.time, out);
}

void SchedulerService::on_complete(const Event& e, std::vector<Decision>& out,
                                   std::size_t line) {
  auto it = jobs_.find(e.job);
  if (it == jobs_.end()) {
    throw ProtocolError(RejectCode::kUnknownJob, line,
                        "job " + std::to_string(e.job) + " was never submitted");
  }
  JobRec& job = it->second;
  if (job.phase != Phase::kRunning) {
    throw ProtocolError(RejectCode::kNotRunning, line,
                        "job " + std::to_string(e.job) + " is not running");
  }

  advance_integrator(e);
  predictor_->advance(e.time);
  emit_snapshots_until(e.time);
  job.phase = Phase::kDone;
  ++stats_.finished;
  ++m_finishes_;
  max_finish_ = std::max(max_finish_, e.time);

  JobOutcome outcome;
  outcome.id = job.id;
  outcome.size = job.size;
  outcome.arrival = job.arrival;
  outcome.first_start = job.first_start;
  outcome.last_start = job.last_start;
  outcome.finish = e.time;
  // Unknown runtime: the elapsed time of the successful run is the actual
  // execution time by definition of a complete event.
  outcome.runtime = job.runtime >= 0.0 ? job.runtime : e.time - job.last_start;
  outcome.estimate = job.estimate;
  outcome.restarts = job.restarts;
  const double slowdown = bounded_slowdown(outcome, config_.metrics);
  wait_sum_ += outcome.wait();
  response_sum_ += outcome.response();
  slowdown_sum_ += slowdown;
  if (hg_ != nullptr) {
    hg_->add(obs::Hist::kWait, outcome.wait());
    hg_->add(obs::Hist::kResponse, outcome.response());
    hg_->add(obs::Hist::kSlowdown, slowdown);
  }
  if (tr_ != nullptr) {
    tr_->event("job_finish", e.time)
        .field("job", job.id)
        .field("entry", job.entry)
        .field("wait", outcome.wait())
        .field("response", outcome.response())
        .field("bounded_slowdown", slowdown)
        .field("restarts", job.restarts);
  }

  release_allocation(job);
  integrator_.set_free(usable_free_nodes());
  run_pass(e.time, out);
}

void SchedulerService::on_fail(const Event& e, std::vector<Decision>& out) {
  advance_integrator(e);
  predictor_->advance(e.time);
  ensure_begin(e.time);
  emit_snapshots_until(e.time);
  // Feed the failure to the predictor before the kills it causes, so the
  // requeued victims are re-placed with the new evidence (mirrors the
  // driver's kFailure order). The protocol carries no up-front down-time,
  // so down_for is 0 — see the FaultPredictor contract.
  predictor_->observe_failure(e.node, e.time, 0.0);
  if (pred_armed_) pred_failed_.set(e.node);
  ++stats_.failures;
  const std::vector<std::uint64_t> victims =
      torus_.allocations_containing(e.node);
  if (tr_ != nullptr) {
    // A live stream's down-time ends with an explicit repair event, not a
    // duration known up front; down_for 0 keeps the auditor's reconstruction
    // conservative (it never un-flags overlap checks early).
    tr_->event("node_failure", e.time)
        .field("node", e.node)
        .field("victims", static_cast<std::int64_t>(victims.size()))
        .field("down_for", 0.0);
  }
  if (e.down) {
    down_.set(e.node);
    // No-op if a victim still holds the node; the victim's release keeps it
    // blocked because index_release subtracts the down overlay.
    if (index_ != nullptr) index_->occupy_node(e.node);
  }
  if (!victims.empty()) ++stats_.failures_hitting_jobs;
  for (const std::uint64_t id : victims) {
    kill_job(jobs_.find(id)->second, e.time, e.node, out);
  }
  if (!victims.empty() || e.down ||
      config_.failure_semantics == FailureSemantics::kDownFor) {
    integrator_.set_free(usable_free_nodes());
    run_pass(e.time, out);
  }
}

void SchedulerService::on_repair(const Event& e, std::vector<Decision>& out,
                                 std::size_t line) {
  if (!down_.test(e.node)) {
    throw ProtocolError(RejectCode::kNodeState, line,
                        "node " + std::to_string(e.node) + " is not down");
  }
  advance_integrator(e);
  predictor_->advance(e.time);
  emit_snapshots_until(e.time);
  predictor_->observe_repair(e.node, e.time);
  down_.reset(e.node);
  // The node cannot be allocated while down, so releasing it in the index
  // exactly undoes the failure-time block.
  if (index_ != nullptr) index_->release_node(e.node);
  integrator_.set_free(usable_free_nodes());
  run_pass(e.time, out);
}

void SchedulerService::handle(const Event& event, std::vector<Decision>& out,
                              std::size_t line) {
  // One svc.event span per protocol event; scheduler passes it triggers
  // (sched.pass and its subtree) nest under it.
  obs::ScopedPhase svc_span(config_.obs.profiler, obs::Phase::kSvcEvent);
  if (any_event_ && event.time < now_) {
    throw ProtocolError(RejectCode::kTimeOrder, line,
                        "time ran backwards: " + std::to_string(event.time) +
                            " after " + std::to_string(now_));
  }
  if (event.kind == EventKind::kFail || event.kind == EventKind::kRepair) {
    if (event.node < 0 || event.node >= catalog_->num_nodes()) {
      throw ProtocolError(RejectCode::kBadNode, line,
                          "node " + std::to_string(event.node) +
                              " outside machine of " +
                              std::to_string(catalog_->num_nodes()) + " nodes");
    }
  }

  switch (event.kind) {
    case EventKind::kSubmit:
      on_submit(event, out, line);
      break;
    case EventKind::kComplete:
      on_complete(event, out, line);
      break;
    case EventKind::kFail:
      on_fail(event, out);
      break;
    case EventKind::kRepair:
      on_repair(event, out, line);
      break;
    case EventKind::kTick:
      advance_integrator(event);
      predictor_->advance(event.time);
      emit_snapshots_until(event.time);
      run_pass(event.time, out);
      break;
  }
  any_event_ = true;
  now_ = std::max(now_, event.time);
}

bool SchedulerService::finish_stream() {
  if (tr_ == nullptr) return false;
  if (end_emitted_) return true;
  if (stats_.submitted == 0 || !queue_.empty() || !running_.empty()) {
    return false;  // trace stays truncated: jobs are still in flight
  }
  const double span = max_finish_ - min_submit_;
  const double n = static_cast<double>(stats_.finished);
  const double tn = span * static_cast<double>(catalog_->num_nodes());
  double utilization = 0.0, unused = 0.0, lost = 0.0;
  if (tn > 0.0) {
    utilization = useful_work_ / tn;
    unused = integrator_.unused_integral() / tn;
    lost = 1.0 - utilization - unused;
  }
  tr_->event("sim_end", max_finish_)
      .field("jobs_completed", static_cast<std::int64_t>(stats_.finished))
      .field("span", span)
      .field("avg_wait", n > 0.0 ? wait_sum_ / n : 0.0)
      .field("avg_response", n > 0.0 ? response_sum_ / n : 0.0)
      .field("avg_bounded_slowdown", n > 0.0 ? slowdown_sum_ / n : 0.0)
      .field("utilization", utilization)
      .field("unused", unused)
      .field("lost", lost)
      .field("job_kills", static_cast<std::int64_t>(stats_.kills))
      .field("migrations", static_cast<std::int64_t>(stats_.migrations))
      .field("checkpoints", static_cast<std::int64_t>(0))
      .field("work_lost_node_seconds", stats_.work_lost_node_seconds);
  tr_->flush();
  end_emitted_ = true;
  return true;
}

}  // namespace bgl::svc
