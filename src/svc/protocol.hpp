// JSONL event/decision protocol of the online scheduling service.
//
// The service consumes a typed stream of events — one JSON object per line,
// the same flat scalar subset obs::TraceReader scans — and answers with
// decision lines. The protocol is the seam between the scheduler core
// (SchedulerService, which owns queue/occupancy/index state but no clock)
// and whatever drives it: the discrete-event simulator (svc/sim_adapter),
// tools/sched_server over stdin or a Unix socket, or tests.
//
// Events (docs/SERVICE.md):
//   {"type":"submit","t":T,"job":J,"size":S,"estimate":E[,"runtime":R]}
//   {"type":"complete","t":T,"job":J}
//   {"type":"fail","t":T,"node":N[,"down":true]}
//   {"type":"repair","t":T,"node":N}
//   {"type":"tick","t":T}
//
// Decisions:
//   {"type":"start","t":T,"job":J,"entry":E}
//   {"type":"kill","t":T,"job":J,"entry":E,"node":N}
//   {"type":"migrate","t":T,"job":J,"from_entry":A,"to_entry":B}
//
// Malformed or illegal events never crash the service and never silently
// default: they raise a ProtocolError carrying a stable machine-readable
// code and the 1-based input line number, which the session loop turns into
// an {"type":"error","line":L,"code":C,"message":M} reply.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace bgl::obs {
class TraceRecord;
}

namespace bgl::svc {

enum class EventKind { kSubmit, kComplete, kFail, kRepair, kTick };

const char* to_string(EventKind kind);

/// One protocol event. Only the fields of the event's kind are meaningful.
struct Event {
  EventKind kind = EventKind::kTick;
  double time = 0.0;
  std::uint64_t job = 0;    ///< submit/complete.
  int size = 0;             ///< submit: requested nodes s_j.
  double estimate = 0.0;    ///< submit: user walltime estimate, seconds.
  /// submit, optional: actual runtime when the producer knows it (the
  /// simulator and loadgen do). Used only for trace metrics; negative means
  /// unknown and is traced as 0.
  double runtime = -1.0;
  int node = -1;            ///< fail/repair.
  bool down = false;        ///< fail: node stays down until a repair event.
};

enum class DecisionKind { kStart, kKill, kMigrate };

const char* to_string(DecisionKind kind);

struct Decision {
  DecisionKind kind = DecisionKind::kStart;
  double time = 0.0;
  std::uint64_t job = 0;
  int entry = -1;       ///< start: chosen entry; kill: entry released.
  int from_entry = -1;  ///< migrate: previous entry (entry = destination).
  int node = -1;        ///< kill: the failed node that triggered it.
};

/// Stable rejection codes; to_string() values are protocol API.
enum class RejectCode {
  kParse,         ///< Line is not a valid flat JSON object.
  kUnknownType,   ///< "type" is not a protocol event.
  kBadField,      ///< Required field missing or of the wrong type.
  kBadValue,      ///< Field value out of domain (size < 1, estimate < 0...).
  kTimeOrder,     ///< Event time precedes the stream's current time.
  kDuplicateJob,  ///< submit with a job id already seen this session.
  kUnknownJob,    ///< complete for a job id never submitted.
  kNotRunning,    ///< complete for a job that is not running.
  kBadNode,       ///< fail/repair node id outside the machine.
  kNodeState,     ///< repair for a node that is not down.
  kNoPartition,   ///< submit size has no allocatable partition.
};

const char* to_string(RejectCode code);

/// Typed rejection of one event; the service guarantees its state is
/// unchanged when this is thrown.
class ProtocolError : public Error {
 public:
  ProtocolError(RejectCode code, std::size_t line, const std::string& what)
      : Error(what), code_(code), line_(line) {}

  RejectCode code() const { return code_; }
  /// 1-based input line (0 when the event did not come from a stream).
  std::size_t line() const { return line_; }

 private:
  RejectCode code_;
  std::size_t line_;
};

/// Decode one scanned line into an Event. Throws ProtocolError
/// (kUnknownType/kBadField/kBadValue) carrying the record's line number.
Event event_from(const obs::TraceRecord& record);

/// Append the canonical JSONL encoding (newline included) to `out`.
/// Doubles use shortest round-trip formatting (obs::append_json_double).
void append_event_line(std::string& out, const Event& event);
void append_decision_line(std::string& out, const Decision& decision);

/// {"type":"error","t":T,"line":L,"code":C,"message":M}\n  (message JSON-escaped).
void append_error_line(std::string& out, double t, const ProtocolError& error);

}  // namespace bgl::svc
