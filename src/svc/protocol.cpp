#include "svc/protocol.hpp"

#include <cmath>

#include "obs/reader.hpp"
#include "obs/trace.hpp"

namespace bgl::svc {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSubmit: return "submit";
    case EventKind::kComplete: return "complete";
    case EventKind::kFail: return "fail";
    case EventKind::kRepair: return "repair";
    case EventKind::kTick: return "tick";
  }
  return "?";
}

const char* to_string(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::kStart: return "start";
    case DecisionKind::kKill: return "kill";
    case DecisionKind::kMigrate: return "migrate";
  }
  return "?";
}

const char* to_string(RejectCode code) {
  switch (code) {
    case RejectCode::kParse: return "parse";
    case RejectCode::kUnknownType: return "unknown-type";
    case RejectCode::kBadField: return "bad-field";
    case RejectCode::kBadValue: return "bad-value";
    case RejectCode::kTimeOrder: return "time-order";
    case RejectCode::kDuplicateJob: return "duplicate-job";
    case RejectCode::kUnknownJob: return "unknown-job";
    case RejectCode::kNotRunning: return "not-running";
    case RejectCode::kBadNode: return "bad-node";
    case RejectCode::kNodeState: return "node-state";
    case RejectCode::kNoPartition: return "no-partition";
  }
  return "?";
}

namespace {

/// Required finite numeric field, rejected (not defaulted) when absent or
/// non-numeric — the whole point of the protocol error model.
double need_num(const obs::TraceRecord& r, std::string_view key) {
  const auto v = r.num(key);
  if (!v || !std::isfinite(*v)) {
    throw ProtocolError(RejectCode::kBadField, r.line_number(),
                        std::string(to_string(RejectCode::kBadField)) + ": '" +
                            std::string(key) + "' missing or not a number");
  }
  return *v;
}

std::uint64_t need_job(const obs::TraceRecord& r) {
  const double v = need_num(r, "job");
  if (v < 0.0 || v != std::floor(v) || v > 9.007199254740992e15) {
    throw ProtocolError(RejectCode::kBadValue, r.line_number(),
                        "'job' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

int need_int(const obs::TraceRecord& r, std::string_view key) {
  const double v = need_num(r, key);
  if (v != std::floor(v) || v < -2147483648.0 || v > 2147483647.0) {
    throw ProtocolError(RejectCode::kBadValue, r.line_number(),
                        "'" + std::string(key) + "' must be an integer");
  }
  return static_cast<int>(v);
}

}  // namespace

Event event_from(const obs::TraceRecord& record) {
  Event e;
  e.time = record.t();
  const std::string_view type = record.type_name();
  if (type == "submit") {
    e.kind = EventKind::kSubmit;
    e.job = need_job(record);
    e.size = need_int(record, "size");
    e.estimate = need_num(record, "estimate");
    if (record.has("runtime")) e.runtime = need_num(record, "runtime");
  } else if (type == "complete") {
    e.kind = EventKind::kComplete;
    e.job = need_job(record);
  } else if (type == "fail") {
    e.kind = EventKind::kFail;
    e.node = need_int(record, "node");
    if (record.has("down")) {
      const auto d = record.boolean("down");
      if (!d) {
        throw ProtocolError(RejectCode::kBadField, record.line_number(),
                            "'down' must be a boolean");
      }
      e.down = *d;
    }
  } else if (type == "repair") {
    e.kind = EventKind::kRepair;
    e.node = need_int(record, "node");
  } else if (type == "tick") {
    e.kind = EventKind::kTick;
  } else {
    throw ProtocolError(RejectCode::kUnknownType, record.line_number(),
                        "unknown event type '" + std::string(type) + "'");
  }
  return e;
}

namespace {

void open_line(std::string& out, const char* type, double t) {
  out += "{\"type\":\"";
  out += type;
  out += "\",\"t\":";
  obs::append_json_double(out, t);
}

void num_field(std::string& out, const char* key, double value) {
  out += ",\"";
  out += key;
  out += "\":";
  obs::append_json_double(out, value);
}

void int_field(std::string& out, const char* key, long long value) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
}

}  // namespace

void append_event_line(std::string& out, const Event& event) {
  open_line(out, to_string(event.kind), event.time);
  switch (event.kind) {
    case EventKind::kSubmit:
      int_field(out, "job", static_cast<long long>(event.job));
      int_field(out, "size", event.size);
      num_field(out, "estimate", event.estimate);
      if (event.runtime >= 0.0) num_field(out, "runtime", event.runtime);
      break;
    case EventKind::kComplete:
      int_field(out, "job", static_cast<long long>(event.job));
      break;
    case EventKind::kFail:
      int_field(out, "node", event.node);
      if (event.down) out += ",\"down\":true";
      break;
    case EventKind::kRepair:
      int_field(out, "node", event.node);
      break;
    case EventKind::kTick:
      break;
  }
  out += "}\n";
}

void append_decision_line(std::string& out, const Decision& decision) {
  open_line(out, to_string(decision.kind), decision.time);
  int_field(out, "job", static_cast<long long>(decision.job));
  switch (decision.kind) {
    case DecisionKind::kStart:
      int_field(out, "entry", decision.entry);
      break;
    case DecisionKind::kKill:
      int_field(out, "entry", decision.entry);
      int_field(out, "node", decision.node);
      break;
    case DecisionKind::kMigrate:
      int_field(out, "from_entry", decision.from_entry);
      int_field(out, "to_entry", decision.entry);
      break;
  }
  out += "}\n";
}

void append_error_line(std::string& out, double t, const ProtocolError& error) {
  open_line(out, "error", t);
  int_field(out, "line", static_cast<long long>(error.line()));
  out += ",\"code\":\"";
  out += to_string(error.code());
  out += "\",\"message\":\"";
  for (const char c : std::string_view(error.what())) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';  // control characters never carry meaning here
        } else {
          out += c;
        }
    }
  }
  out += "\"}\n";
}

}  // namespace bgl::svc
