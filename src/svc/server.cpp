#include "svc/server.hpp"

#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <istream>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/prometheus.hpp"
#include "obs/reader.hpp"
#include "obs/trace.hpp"
#include "svc/exporter.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"
#include "util/error.hpp"

namespace bgl::svc {

namespace {

/// The one {"type":"stats",...} reply line, shared by the in-band stats
/// request and the end-of-stream stats line so the two can never drift.
/// Decision-latency keys follow the registry spelling (`sched.decision_us`
/// + suffix); the flat ph_* fields come from PhaseProfiler's stats-line
/// contract (profiler.hpp).
void append_stats_line(std::string& reply, const SchedulerService& service,
                       const SessionStats& stats,
                       const SessionOptions& options) {
  const ServiceStats& s = service.stats();
  reply += "{\"type\":\"stats\",\"t\":";
  obs::append_json_double(reply, service.now());
  reply += ",\"lines\":" + std::to_string(stats.lines);
  reply += ",\"accepted\":" + std::to_string(stats.accepted);
  reply += ",\"rejected\":" + std::to_string(stats.rejected);
  reply += ",\"decisions\":" + std::to_string(stats.decisions);
  reply += ",\"submitted\":" + std::to_string(s.submitted);
  reply += ",\"finished\":" + std::to_string(s.finished);
  reply += ",\"starts\":" + std::to_string(s.starts);
  reply += ",\"kills\":" + std::to_string(s.kills);
  reply += ",\"migrations\":" + std::to_string(s.migrations);
  reply += ",\"failures\":" + std::to_string(s.failures);
  reply += ",\"waiting\":" + std::to_string(service.waiting_jobs());
  reply += ",\"running\":" + std::to_string(service.running_jobs());
  if (options.histograms != nullptr) {
    const obs::LogHistogram& h =
        options.histograms->histogram(obs::Hist::kDecisionUs);
    reply += ",\"sched.decision_us_count\":" + std::to_string(h.count());
    reply += ",\"sched.decision_us_mean\":";
    obs::append_json_double(reply, h.mean());
    reply += ",\"sched.decision_us_p50\":";
    obs::append_json_double(reply, h.quantile(0.50));
    reply += ",\"sched.decision_us_p99\":";
    obs::append_json_double(reply, h.quantile(0.99));
    reply += ",\"sched.decision_us_max\":";
    obs::append_json_double(reply, h.max());
  }
  if (options.profiler != nullptr) options.profiler->append_stats_fields(reply);
  reply += "}\n";
}

/// Render + publish the live exposition. The gauges are the service's
/// instantaneous queue state — everything else a scraper needs is already in
/// the registries.
void publish_exposition(const SchedulerService& service,
                        const SessionOptions& options) {
  if (options.exporter == nullptr) return;
  obs::GaugeList gauges;
  gauges.emplace_back("svc.queue_depth",
                      static_cast<double>(service.waiting_jobs()));
  gauges.emplace_back("svc.running_jobs",
                      static_cast<double>(service.running_jobs()));
  gauges.emplace_back("svc.stream_time_seconds", service.now());
  std::string text;
  obs::prometheus_render(text, options.counters, options.histograms,
                         options.profiler, gauges);
  options.exporter->publish(std::move(text));
}

}  // namespace

SessionStats run_session(std::istream& in, std::ostream& out,
                         SchedulerService& service,
                         const SessionOptions& options) {
  SessionStats stats;
  obs::TraceReader reader(in);
  obs::TraceRecord record;
  std::vector<Decision> decisions;
  std::string reply;

  const auto emit = [&]() {
    out.write(reply.data(), static_cast<std::streamsize>(reply.size()));
    if (options.flush_each) out.flush();
    reply.clear();
  };

  publish_exposition(service, options);

  while (true) {
    bool have_line = false;
    try {
      have_line = reader.next(record);
    } catch (const bgl::ParseError& e) {
      // The reader consumed the offending line (scan happens after getline),
      // so the session continues with the next one.
      ++stats.lines;
      ++stats.rejected;
      append_error_line(reply, service.now(),
                        ProtocolError(RejectCode::kParse, reader.lines_read(),
                                      e.what()));
      emit();
      continue;
    }
    if (!have_line) break;
    ++stats.lines;

    // In-band stats query: answered from the current state, no event applied
    // (and therefore no time advance and no trace emission).
    if (record.type_name() == "stats") {
      ++stats.stats_requests;
      append_stats_line(reply, service, stats, options);
      emit();
      continue;
    }

    decisions.clear();
    try {
      const Event event = event_from(record);
      service.handle(event, decisions, record.line_number());
    } catch (const ProtocolError& e) {
      ++stats.rejected;
      append_error_line(reply, service.now(), e);
      emit();
      continue;
    }

    ++stats.accepted;
    stats.decisions += decisions.size();
    for (const Decision& d : decisions) append_decision_line(reply, d);
    if (options.echo_ok) {
      reply += "{\"type\":\"ok\",\"t\":";
      obs::append_json_double(reply, service.now());
      reply += ",\"line\":" + std::to_string(record.line_number());
      reply += ",\"decisions\":" + std::to_string(decisions.size()) + "}\n";
    }
    emit();
    if (options.exporter != nullptr && options.publish_every > 0 &&
        stats.accepted % options.publish_every == 0) {
      publish_exposition(service, options);
    }
  }

  service.finish_stream();
  publish_exposition(service, options);
  if (options.stats_line) {
    append_stats_line(reply, service, stats, options);
    out.write(reply.data(), static_cast<std::streamsize>(reply.size()));
    reply.clear();
  }
  out.flush();
  return stats;
}

namespace {

/// Minimal bidirectional streambuf over a file descriptor, enough to feed
/// std::istream/std::ostream for the Unix-socket session (portable across
/// libstdc++/libc++, unlike __gnu_cxx::stdio_filebuf).
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(rbuf_, rbuf_, rbuf_);
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
  }

 protected:
  int_type underflow() override {
    const ssize_t n = ::read(fd_, rbuf_, sizeof(rbuf_));
    if (n <= 0) return traits_type::eof();
    setg(rbuf_, rbuf_, rbuf_ + n);
    return traits_type::to_int_type(rbuf_[0]);
  }

  int_type overflow(int_type ch) override {
    if (sync() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override {
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      if (n <= 0) return -1;
      p += n;
    }
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
    return 0;
  }

 private:
  int fd_;
  char rbuf_[1 << 16];
  char wbuf_[1 << 16];
};

}  // namespace

SessionStats serve_unix_socket(const char* path, SchedulerService& service,
                               const SessionOptions& options, int connections) {
  // A client that disconnects before the reply drains must not kill the
  // server; writes to the dead socket fail through the streambuf instead.
  std::signal(SIGPIPE, SIG_IGN);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (std::strlen(path) >= sizeof(addr.sun_path)) {
    throw Error(std::string("socket path too long: ") + path);
  }
  std::strncpy(addr.sun_path, path, sizeof(addr.sun_path) - 1);

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) throw Error("cannot create unix socket");
  ::unlink(path);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listener, 1) != 0) {
    ::close(listener);
    throw Error(std::string("cannot bind/listen on ") + path);
  }

  SessionStats total;
  for (int c = 0; c < connections; ++c) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      ::close(listener);
      ::unlink(path);
      throw Error("accept failed");
    }
    FdStreambuf in_buf(conn);
    FdStreambuf out_buf(conn);
    std::istream in(&in_buf);
    std::ostream out(&out_buf);
    const SessionStats s = run_session(in, out, service, options);
    total.lines += s.lines;
    total.accepted += s.accepted;
    total.rejected += s.rejected;
    total.decisions += s.decisions;
    total.stats_requests += s.stats_requests;
    ::close(conn);
  }
  ::close(listener);
  ::unlink(path);
  return total;
}

}  // namespace bgl::svc
