#include "svc/server.hpp"

#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <istream>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/reader.hpp"
#include "obs/trace.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"
#include "util/error.hpp"

namespace bgl::svc {

SessionStats run_session(std::istream& in, std::ostream& out,
                         SchedulerService& service,
                         const SessionOptions& options) {
  SessionStats stats;
  obs::TraceReader reader(in);
  obs::TraceRecord record;
  std::vector<Decision> decisions;
  std::string reply;

  const auto emit = [&]() {
    out.write(reply.data(), static_cast<std::streamsize>(reply.size()));
    if (options.flush_each) out.flush();
    reply.clear();
  };

  while (true) {
    bool have_line = false;
    try {
      have_line = reader.next(record);
    } catch (const bgl::ParseError& e) {
      // The reader consumed the offending line (scan happens after getline),
      // so the session continues with the next one.
      ++stats.lines;
      ++stats.rejected;
      append_error_line(reply, service.now(),
                        ProtocolError(RejectCode::kParse, reader.lines_read(),
                                      e.what()));
      emit();
      continue;
    }
    if (!have_line) break;
    ++stats.lines;

    decisions.clear();
    try {
      const Event event = event_from(record);
      service.handle(event, decisions, record.line_number());
    } catch (const ProtocolError& e) {
      ++stats.rejected;
      append_error_line(reply, service.now(), e);
      emit();
      continue;
    }

    ++stats.accepted;
    stats.decisions += decisions.size();
    for (const Decision& d : decisions) append_decision_line(reply, d);
    if (options.echo_ok) {
      reply += "{\"type\":\"ok\",\"t\":";
      obs::append_json_double(reply, service.now());
      reply += ",\"line\":" + std::to_string(record.line_number());
      reply += ",\"decisions\":" + std::to_string(decisions.size()) + "}\n";
    }
    emit();
  }

  service.finish_stream();
  if (options.stats_line) {
    const ServiceStats& s = service.stats();
    reply += "{\"type\":\"stats\",\"t\":";
    obs::append_json_double(reply, service.now());
    reply += ",\"lines\":" + std::to_string(stats.lines);
    reply += ",\"accepted\":" + std::to_string(stats.accepted);
    reply += ",\"rejected\":" + std::to_string(stats.rejected);
    reply += ",\"decisions\":" + std::to_string(stats.decisions);
    reply += ",\"submitted\":" + std::to_string(s.submitted);
    reply += ",\"finished\":" + std::to_string(s.finished);
    reply += ",\"starts\":" + std::to_string(s.starts);
    reply += ",\"kills\":" + std::to_string(s.kills);
    reply += ",\"migrations\":" + std::to_string(s.migrations);
    reply += ",\"failures\":" + std::to_string(s.failures);
    reply += ",\"waiting\":" + std::to_string(service.waiting_jobs());
    reply += ",\"running\":" + std::to_string(service.running_jobs());
    if (options.histograms != nullptr) {
      const obs::LogHistogram& h =
          options.histograms->histogram(obs::Hist::kDecisionUs);
      reply += ",\"decision_us_count\":" + std::to_string(h.count());
      reply += ",\"decision_us_mean\":";
      obs::append_json_double(reply, h.mean());
      reply += ",\"decision_us_p50\":";
      obs::append_json_double(reply, h.quantile(0.50));
      reply += ",\"decision_us_p99\":";
      obs::append_json_double(reply, h.quantile(0.99));
    }
    reply += "}\n";
    out.write(reply.data(), static_cast<std::streamsize>(reply.size()));
    reply.clear();
  }
  out.flush();
  return stats;
}

namespace {

/// Minimal bidirectional streambuf over a file descriptor, enough to feed
/// std::istream/std::ostream for the Unix-socket session (portable across
/// libstdc++/libc++, unlike __gnu_cxx::stdio_filebuf).
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(rbuf_, rbuf_, rbuf_);
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
  }

 protected:
  int_type underflow() override {
    const ssize_t n = ::read(fd_, rbuf_, sizeof(rbuf_));
    if (n <= 0) return traits_type::eof();
    setg(rbuf_, rbuf_, rbuf_ + n);
    return traits_type::to_int_type(rbuf_[0]);
  }

  int_type overflow(int_type ch) override {
    if (sync() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override {
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      if (n <= 0) return -1;
      p += n;
    }
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
    return 0;
  }

 private:
  int fd_;
  char rbuf_[1 << 16];
  char wbuf_[1 << 16];
};

}  // namespace

SessionStats serve_unix_socket(const char* path, SchedulerService& service,
                               const SessionOptions& options, int connections) {
  // A client that disconnects before the reply drains must not kill the
  // server; writes to the dead socket fail through the streambuf instead.
  std::signal(SIGPIPE, SIG_IGN);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (std::strlen(path) >= sizeof(addr.sun_path)) {
    throw Error(std::string("socket path too long: ") + path);
  }
  std::strncpy(addr.sun_path, path, sizeof(addr.sun_path) - 1);

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) throw Error("cannot create unix socket");
  ::unlink(path);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listener, 1) != 0) {
    ::close(listener);
    throw Error(std::string("cannot bind/listen on ") + path);
  }

  SessionStats total;
  for (int c = 0; c < connections; ++c) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      ::close(listener);
      ::unlink(path);
      throw Error("accept failed");
    }
    FdStreambuf in_buf(conn);
    FdStreambuf out_buf(conn);
    std::istream in(&in_buf);
    std::ostream out(&out_buf);
    const SessionStats s = run_session(in, out, service, options);
    total.lines += s.lines;
    total.accepted += s.accepted;
    total.rejected += s.rejected;
    total.decisions += s.decisions;
    ::close(conn);
  }
  ::close(listener);
  ::unlink(path);
  return total;
}

}  // namespace bgl::svc
