// Drive a SchedulerService from the discrete-event simulator.
//
// run_simulation_via_service() is a drop-in replacement for
// sim/driver.hpp's run_simulation(): same inputs, same SimResult — verified
// byte-identical (bitwise, via the SimResult checksum) across schedulers ×
// algorithms by tests/svc_sim_adapter_test.cpp and CI's service-smoke job.
//
// The split of responsibilities the service seam defines:
//
//   adapter (clock side)            service (decision side)
//   ------------------------------  -----------------------------------
//   event queue, arrival/failure    waiting queue, torus occupancy,
//   preload, finish-time compute    partition index, down overlay,
//   (walltime_for_work), stale-     scheduler passes, decision + trace
//   finish generation tags,         emission
//   checkpoint/kill work account-
//   ing, capacity integral,
//   SimResult assembly, replay log
//
// The adapter submits jobs under their internal workload indices — the same
// scheduler-facing ids the driver uses — so id-salted predictors (the
// tie-breaking coins) see identical inputs and every decision matches.
//
// Caveats vs the driver (differential tests run with tracing off):
// config.obs is handed to the service, so traces follow the service schema
// (job ids are indices, no checkpoint events, sim_begin jobs=0);
// config.snapshot_interval is ignored (no machine_state events).
#pragma once

#include "failure/trace.hpp"
#include "sim/driver.hpp"
#include "sim/metrics.hpp"
#include "workload/job.hpp"

namespace bgl::svc {

SimResult run_simulation_via_service(const Workload& workload,
                                     const FailureTrace& trace,
                                     const SimConfig& config,
                                     const PartitionCatalog* shared_catalog =
                                         nullptr);

}  // namespace bgl::svc
