// MetricsExporter: live Prometheus exposition over a Unix domain socket.
//
// The observability registries are single-threaded by design (counters.hpp),
// so a scraper can never read them directly while a session is applying
// events. The exporter inverts the flow: the session thread *publishes* a
// fully rendered exposition string (obs::prometheus_render) at points where
// the registries are quiescent — every SessionOptions::publish_every accepted
// events and at end of stream — and a background thread serves the latest
// published snapshot to each connecting scraper. A scrape therefore observes
// a consistent, slightly stale view and never touches shared mutable state;
// the only synchronisation is one mutex around the snapshot string.
//
// Protocol: connect, read until EOF. The exporter writes the exposition text
// (terminated by "# EOF\n", see prometheus.hpp) and closes. No HTTP framing —
// `socat - UNIX-CONNECT:/path` or the CI scrape script is the client. A
// scraper that connects before the first publish receives just "# EOF\n".
#pragma once

#include <mutex>
#include <string>
#include <thread>

namespace bgl::svc {

class MetricsExporter {
 public:
  /// Binds and listens on a fresh Unix socket at `path` (an existing file is
  /// removed) and starts the serving thread. Throws Error on socket failure.
  explicit MetricsExporter(const std::string& path);
  /// Stops the serving thread and unlinks the socket path.
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Replace the served snapshot. Called from the session thread; cheap
  /// (one mutex + one string move).
  void publish(std::string exposition);

 private:
  void serve();

  std::string path_;
  int listener_ = -1;
  std::mutex mutex_;
  std::string text_ = "# EOF\n";  ///< Before the first publish.
  std::thread thread_;
};

}  // namespace bgl::svc
