#include "svc/sim_adapter.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "ckpt/checkpoint.hpp"
#include "des/event_queue.hpp"
#include "obs/counters.hpp"
#include "svc/service.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace bgl::svc {

namespace {

enum class JobPhase { kNotArrived, kWaiting, kRunning, kDone };

/// Clock-side job state; everything decision-side lives in the service.
struct JobClock {
  Job job;
  JobPhase phase = JobPhase::kNotArrived;
  double first_start = -1.0;
  double last_start = -1.0;
  double remaining_work = 0.0;
  std::uint64_t gen = 0;  ///< Finish-event validity tag.
  int restarts = 0;
  int entry = -1;
};

ServiceConfig service_config_from(const SimConfig& config) {
  ServiceConfig sc;
  sc.dims = config.dims;
  sc.topology = config.topology;
  sc.catalog = config.catalog;
  sc.scheduler = config.scheduler;
  sc.alpha = config.alpha;
  sc.tiebreak_false_positive_rate = config.tiebreak_false_positive_rate;
  sc.predictor_model = config.predictor_model;
  sc.history_lookback = config.history_lookback;
  sc.adaptive = config.adaptive;
  sc.sched = config.sched;
  sc.queue_order = config.queue_order;
  sc.metrics = config.metrics;
  sc.failure_semantics = config.failure_semantics;
  sc.seed = config.seed;
  sc.use_partition_index = config.use_partition_index;
  sc.obs = config.obs;
  return sc;
}

class Adapter {
 public:
  Adapter(const Workload& workload, const FailureTrace& trace,
          const SimConfig& config, const PartitionCatalog* shared_catalog)
      : config_(config),
        trace_(&trace),
        service_(service_config_from(config), &trace, shared_catalog),
        events_(config.event_queue),
        down_(config.dims.volume()),
        down_until_(static_cast<std::size_t>(config.dims.volume()), 0.0),
        ct_(config.obs.counters) {
    BGL_CHECK(trace.empty() || trace.num_nodes() == config.dims.volume(),
              "failure trace node count mismatch");
    const int n = config.dims.volume();
    jobs_.reserve(workload.jobs.size());
    for (const Job& j : workload.jobs) {
      JobClock state;
      state.job = j;
      if (state.job.size > n) {
        BGL_WARN("job " << j.id << " size " << j.size << " exceeds machine ("
                        << n << "); clamping");
        state.job.size = n;
      }
      state.remaining_work = state.job.runtime;
      jobs_.push_back(state);
    }
  }

  SimResult run();

 private:
  void apply_decisions(const std::vector<Decision>& decisions, double now);
  void finish_job(std::size_t index, double now);

  const SimConfig config_;
  const FailureTrace* trace_;
  SchedulerService service_;
  std::vector<JobClock> jobs_;
  EventQueue events_;
  CapacityIntegrator integrator_;
  SimResult result_;
  std::size_t jobs_done_ = 0;
  double min_arrival_ = 0.0;
  double max_finish_ = 0.0;
  NodeSet down_;
  std::vector<double> down_until_;
  obs::CounterRegistry* ct_;
  std::vector<Decision> decisions_;  ///< Reused across events.
};

void Adapter::apply_decisions(const std::vector<Decision>& decisions, double now) {
  for (const Decision& d : decisions) {
    const std::size_t idx = static_cast<std::size_t>(d.job);
    BGL_CHECK(idx < jobs_.size(), "decision refers to unknown job");
    JobClock& s = jobs_[idx];
    switch (d.kind) {
      case DecisionKind::kStart: {
        BGL_CHECK(s.phase == JobPhase::kWaiting, "starting a non-waiting job");
        s.phase = JobPhase::kRunning;
        s.last_start = now;
        if (s.first_start < 0.0) s.first_start = now;
        s.entry = d.entry;
        const double wall = walltime_for_work(s.remaining_work, config_.ckpt);
        ++s.gen;
        events_.push(bgl::Event{now + wall, EventType::kFinish, d.job, s.gen, 0});
        if (config_.record_replay) {
          result_.replay.push_back(ReplayEvent{now, ReplayEventType::kStart,
                                               s.job.id, -1, d.entry});
        }
        break;
      }
      case DecisionKind::kMigrate: {
        BGL_CHECK(s.phase == JobPhase::kRunning, "migrating a non-running job");
        s.entry = d.entry;
        ++result_.migrations;
        if (config_.record_replay) {
          result_.replay.push_back(ReplayEvent{now, ReplayEventType::kMigration,
                                               s.job.id, -1, d.entry});
        }
        break;
      }
      case DecisionKind::kKill: {
        BGL_CHECK(s.phase == JobPhase::kRunning, "killing a non-running job");
        const double elapsed = now - s.last_start;
        const double saved = saved_work_at(elapsed, s.remaining_work, config_.ckpt);
        if (config_.ckpt.enabled) {
          const std::size_t taken =
              static_cast<std::size_t>(checkpoint_count(saved, config_.ckpt)) +
              (saved > 0.0 ? 1u : 0u);
          result_.checkpoints_taken += taken;
          if (ct_ != nullptr) ct_->add(obs::Counter::kDriverCheckpoints, taken);
        }
        const double wasted =
            std::max(0.0, std::min(elapsed, s.remaining_work) - saved);
        result_.work_lost_node_seconds += wasted * static_cast<double>(s.job.size);
        s.remaining_work -= saved;
        if (saved > 0.0) s.remaining_work += config_.ckpt.restart_overhead;
        ++s.gen;  // invalidate the in-flight finish event
        ++s.restarts;
        ++result_.job_kills;
        if (now <= s.last_start + s.job.estimate + 1e-9) ++result_.avoidable_kills;
        if (config_.record_replay) {
          result_.replay.push_back(ReplayEvent{now, ReplayEventType::kKill,
                                               s.job.id, -1, d.entry});
        }
        if (ct_ != nullptr) ct_->add(obs::Counter::kDriverKills);
        s.phase = JobPhase::kWaiting;
        s.entry = -1;
        break;
      }
    }
  }
}

void Adapter::finish_job(std::size_t index, double now) {
  JobClock& s = jobs_[index];
  if (config_.ckpt.enabled) {
    const std::size_t taken =
        static_cast<std::size_t>(checkpoint_count(s.remaining_work, config_.ckpt));
    result_.checkpoints_taken += taken;
    if (ct_ != nullptr) ct_->add(obs::Counter::kDriverCheckpoints, taken);
  }
  s.phase = JobPhase::kDone;
  max_finish_ = std::max(max_finish_, now);
  ++jobs_done_;
  if (config_.record_replay) {
    result_.replay.push_back(
        ReplayEvent{now, ReplayEventType::kFinish, s.job.id, -1, s.entry});
  }

  JobOutcome outcome;
  outcome.id = s.job.id;
  outcome.size = s.job.size;
  outcome.arrival = s.job.arrival;
  outcome.first_start = s.first_start;
  outcome.last_start = s.last_start;
  outcome.finish = now;
  outcome.runtime = s.job.runtime;
  outcome.estimate = s.job.estimate;
  outcome.restarts = s.restarts;

  result_.wait_stats.add(outcome.wait());
  result_.response_stats.add(outcome.response());
  result_.slowdown_stats.add(bounded_slowdown(outcome, config_.metrics));
  if (config_.collect_outcomes) result_.outcomes.push_back(outcome);
  // Per-job wait/response/slowdown histograms are recorded by the service
  // (same obs registries), not here — no double counting.
}

SimResult Adapter::run() {
  if (jobs_.empty()) return result_;

  min_arrival_ = jobs_.front().job.arrival;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    min_arrival_ = std::min(min_arrival_, jobs_[i].job.arrival);
    events_.push(bgl::Event{jobs_[i].job.arrival, EventType::kArrival,
                       static_cast<std::uint64_t>(i), 0, 0});
  }
  for (const FailureEvent& f : trace_->events()) {
    events_.push(bgl::Event{f.time, EventType::kFailure,
                       static_cast<std::uint64_t>(f.node), 0, 0});
  }
  integrator_.start(min_arrival_, service_.catalog().num_nodes(), 0);

  const bool apply_down = config_.failure_semantics == FailureSemantics::kDownFor &&
                          config_.node_downtime > 0.0;

  while (!events_.empty() && jobs_done_ < jobs_.size()) {
    const bgl::Event e = events_.pop();
    if (ct_ != nullptr) ct_->add(obs::Counter::kDriverEvents);
    if (e.time >= min_arrival_) integrator_.advance(e.time);
    decisions_.clear();

    switch (e.type) {
      case EventType::kArrival: {
        const std::size_t idx = static_cast<std::size_t>(e.id);
        JobClock& s = jobs_[idx];
        s.phase = JobPhase::kWaiting;
        if (config_.record_replay) {
          result_.replay.push_back(
              ReplayEvent{e.time, ReplayEventType::kArrival, s.job.id, -1, -1});
        }
        svc::Event submit;
        submit.kind = EventKind::kSubmit;
        submit.time = e.time;
        submit.job = e.id;  // internal index: the driver's scheduler-facing id
        submit.size = s.job.size;
        submit.estimate = s.job.estimate;
        submit.runtime = s.job.runtime;
        service_.handle(submit, decisions_);
        apply_decisions(decisions_, e.time);
        break;
      }
      case EventType::kFinish: {
        const std::size_t idx = static_cast<std::size_t>(e.id);
        BGL_CHECK(idx < jobs_.size(), "finish event for unknown job");
        JobClock& s = jobs_[idx];
        if (s.gen != e.tag || s.phase != JobPhase::kRunning) break;  // stale
        finish_job(idx, e.time);
        svc::Event complete;
        complete.kind = EventKind::kComplete;
        complete.time = e.time;
        complete.job = e.id;
        service_.handle(complete, decisions_);
        apply_decisions(decisions_, e.time);
        break;
      }
      case EventType::kFailure: {
        const int node = static_cast<int>(e.id);
        ++result_.failures_total;
        if (ct_ != nullptr) ct_->add(obs::Counter::kDriverFailures);
        if (config_.record_replay) {
          result_.replay.push_back(
              ReplayEvent{e.time, ReplayEventType::kNodeFailure, 0, node, -1});
        }
        if (apply_down) {
          down_.set(node);
          down_until_[static_cast<std::size_t>(node)] =
              std::max(down_until_[static_cast<std::size_t>(node)],
                       e.time + config_.node_downtime);
          // Pushed after the service call below; ordering is unaffected
          // because kCustom ranks after every same-time kFinish by type.
          events_.push(bgl::Event{e.time + config_.node_downtime, EventType::kCustom,
                             e.id, 0, 0});
        }
        svc::Event fail;
        fail.kind = EventKind::kFail;
        fail.time = e.time;
        fail.node = node;
        fail.down = apply_down;
        service_.handle(fail, decisions_);
        bool any_kill = false;
        for (const Decision& d : decisions_) {
          any_kill = any_kill || d.kind == DecisionKind::kKill;
        }
        if (any_kill) ++result_.failures_hitting_jobs;
        apply_decisions(decisions_, e.time);
        break;
      }
      case EventType::kCustom: {
        // Node down-time expiry; stale when a later failure extended it.
        const int node = static_cast<int>(e.id);
        if (down_.test(node) &&
            e.time + 1e-9 >= down_until_[static_cast<std::size_t>(node)]) {
          down_.reset(node);
          svc::Event repair;
          repair.kind = EventKind::kRepair;
          repair.time = e.time;
          repair.node = node;
          service_.handle(repair, decisions_);
          apply_decisions(decisions_, e.time);
        }
        break;
      }
      case EventType::kCheckpoint:
        break;  // checkpoints are modelled analytically; no discrete events
    }

    // Mirror the driver's lazily-updated f(t)/q(t): the service's current
    // values are exactly what the driver's add/set sites maintain.
    integrator_.set_queued(service_.queued_demand());
    integrator_.set_free(service_.usable_free_nodes());
  }

  BGL_CHECK(jobs_done_ == jobs_.size(),
            "simulation ended with unfinished jobs (deadlock?)");

  result_.jobs_completed = jobs_done_;
  result_.starts_on_flagged = service_.stats().starts_on_flagged;
  result_.flagged_with_alternative = service_.stats().flagged_with_alternative;
  result_.span = max_finish_ - min_arrival_;
  result_.avg_wait = result_.wait_stats.mean();
  result_.avg_response = result_.response_stats.mean();
  result_.avg_bounded_slowdown = result_.slowdown_stats.mean();

  const double tn =
      result_.span * static_cast<double>(service_.catalog().num_nodes());
  if (tn > 0.0) {
    double useful = 0.0;
    for (const JobClock& s : jobs_) {
      useful += static_cast<double>(s.job.size) * s.job.runtime;
    }
    result_.utilization = useful / tn;
    result_.unused = integrator_.unused_integral() / tn;
    result_.lost = 1.0 - result_.utilization - result_.unused;
  }

  service_.finish_stream();
  return result_;
}

}  // namespace

SimResult run_simulation_via_service(const Workload& workload,
                                     const FailureTrace& trace,
                                     const SimConfig& config,
                                     const PartitionCatalog* shared_catalog) {
  validate(config.dims);
  const auto t_begin = std::chrono::steady_clock::now();
  Adapter adapter(workload, trace, config, shared_catalog);
  SimResult result = adapter.run();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_begin)
          .count();
  return result;
}

}  // namespace bgl::svc
