// Session loop of the JSONL scheduling server.
//
// run_session() reads protocol events line by line from an istream (stdin,
// a Unix-socket stream, a test string), applies them to a SchedulerService,
// and writes reply lines: the decisions each event produced, one
// {"type":"ok","t":T,"line":L,"decisions":K} acknowledgement per accepted
// event (framing — a client knows the event is fully answered when it sees
// ok or error), and {"type":"error",...} for every line the service refuses.
// A malformed or illegal line never terminates the session and never
// silently defaults: the error reply carries the 1-based line number and a
// stable RejectCode string, and the service state is untouched.
//
// A client may send {"type":"stats","t":0} at any point (the "t" field is
// demanded by the line framing and ignored): the server answers the
// same {"type":"stats",...} line it writes at end of stream — session
// counts, queue/running gauges, the decision-latency summary under the
// canonical `sched.decision_us_*` keys (before PR 9 these were spelled
// `decision_us_*`; docs/OBSERVABILITY.md "Key naming" has the compat note),
// and, when a profiler is attached, the flat `ph_*` phase fields — without
// ending the session or advancing time.
//
// At end of input the loop calls finish_stream() (emitting the sim_end
// trace event when the session's trace is complete) and, when
// options.stats_line is set, writes the final stats line.
//
// With options.exporter set, the freshly rendered Prometheus exposition
// (obs::prometheus_render over the session's registries plus queue gauges)
// is published to the exporter at session start, every
// options.publish_every accepted events, and at end of stream — see
// svc/exporter.hpp for the threading contract.
#pragma once

#include <cstddef>
#include <iosfwd>

namespace bgl::obs {
class CounterRegistry;
class HistogramRegistry;
class PhaseProfiler;
}  // namespace bgl::obs

namespace bgl::svc {

class MetricsExporter;
class SchedulerService;

struct SessionOptions {
  bool echo_ok = true;     ///< Per-event ok acknowledgement lines.
  bool stats_line = true;  ///< Final stats line at end of input.
  /// Flush the output stream after every reply (required for interactive
  /// pipe/socket clients; tests over string streams can leave it off).
  bool flush_each = true;
  /// Decision-latency source for the stats line (nullable).
  const obs::HistogramRegistry* histograms = nullptr;
  /// Extra exposition sources (nullable). The profiler additionally feeds
  /// the stats line's flat ph_* phase fields.
  const obs::CounterRegistry* counters = nullptr;
  const obs::PhaseProfiler* profiler = nullptr;
  /// Live Prometheus exposition target (nullable, borrowed).
  MetricsExporter* exporter = nullptr;
  /// Republish cadence, in accepted events, when `exporter` is set.
  std::size_t publish_every = 64;
};

struct SessionStats {
  std::size_t lines = 0;      ///< Non-blank input lines consumed.
  std::size_t accepted = 0;   ///< Events applied.
  std::size_t rejected = 0;   ///< Lines answered with an error reply.
  std::size_t decisions = 0;  ///< start + kill + migrate replies.
  std::size_t stats_requests = 0;  ///< In-band {"type":"stats"} queries.
};

SessionStats run_session(std::istream& in, std::ostream& out,
                         SchedulerService& service,
                         const SessionOptions& options = {});

/// Serve `connections` sequential connections on a Unix domain socket at
/// `path` (created fresh; an existing file is removed), running run_session
/// on each with the same service — state persists across connections.
/// Returns the merged stats. Throws Error on socket failures.
SessionStats serve_unix_socket(const char* path, SchedulerService& service,
                               const SessionOptions& options = {},
                               int connections = 1);

}  // namespace bgl::svc
