// SchedulerService: the scheduler core split from the simulation clock.
//
// The service owns everything a scheduling decision depends on — the
// Scheduler engine, the PartitionCatalog + FreePartitionIndex, the waiting
// queue, torus occupancy, and the down-node overlay — but owns no clock and
// no pending-event set. Time only advances when an Event arrives; each
// event is validated, applied, and answered with zero or more Decisions
// (start/kill/migrate). That inversion is what lets one core be driven by:
//
//   * the discrete-event simulator (svc/sim_adapter.hpp), differentially
//     tested byte-identical to sim/driver for every scheduler × algorithm;
//   * a live JSONL stream over stdin or a Unix socket (svc/server.hpp,
//     tools/sched_server);
//   * tests and load generators (tools/loadgen).
//
// Semantics mirror the driver exactly (same queue comparator, same
// scheduler-invocation sites, same index maintenance under the down
// overlay), so decisions are bit-identical when both are fed the same
// event sequence. Events the service refuses (unknown job, duplicate id,
// time running backwards, ...) raise ProtocolError and leave the state
// untouched — the online analogue of the driver's BGL_CHECK contracts,
// recoverable because a remote client's bad line must not kill the server.
//
// Tracing: with ServiceConfig::obs.trace attached the service emits the
// standard JSONL schema (sim_begin lazily at the first event, job_submit /
// sched_decision / job_start / migration / node_failure / job_kill /
// job_finish, and sim_end from finish_stream()), auditable by
// tools/trace_audit --strict. Differences from driver traces are documented
// in docs/SERVICE.md (no checkpoint modelling, sim_begin jobs=0).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "failure/trace.hpp"
#include "obs/observer.hpp"
#include "sched/types.hpp"
#include "sim/driver.hpp"
#include "sim/metrics.hpp"
#include "svc/protocol.hpp"
#include "torus/catalog.hpp"
#include "torus/index.hpp"
#include "torus/occupancy.hpp"

namespace bgl {
class Scheduler;
class FaultPredictor;
}  // namespace bgl

namespace bgl::obs {
class LatencyRing;
}  // namespace bgl::obs

namespace bgl::svc {

/// Service configuration: the scheduling-relevant subset of SimConfig (the
/// clock-side knobs — event queue kind, checkpoint model, snapshots, replay
/// — stay with the driver/adapter). Defaults favour online use: krevat with
/// no predictor needs no failure oracle.
struct ServiceConfig {
  Dims dims = Dims::bluegene_l();
  Topology topology = Topology::kTorus;
  CatalogOptions catalog;
  SchedulerKind scheduler = SchedulerKind::kKrevat;
  double alpha = 0.0;
  double tiebreak_false_positive_rate = 0.0;
  /// kNone by default: the oracle predictors need a failure trace, which an
  /// online deployment does not have (pass one for simulation parity).
  /// kAdaptive needs none — it learns from the fail/repair events.
  PredictorModel predictor_model = PredictorModel::kNone;
  double history_lookback = 7.0 * 86400.0;
  /// Hazard-model knobs of the kAdaptive predictor.
  AdaptiveConfig adaptive;
  SchedulerConfig sched;
  QueueOrder queue_order = QueueOrder::kFcfs;
  MetricsConfig metrics;
  /// Drives the pass-invocation rule on victimless fail events, mirroring
  /// the driver. Event-level "down":true always applies the down overlay.
  FailureSemantics failure_semantics = FailureSemantics::kTransient;
  std::uint64_t seed = 1;
  bool use_partition_index = true;
  obs::Observer obs;

  /// Emit machine_state / `metrics` trace events every this many stream
  /// seconds (anchored at the first traced event, like the driver's
  /// SimConfig knobs). Boundaries are drained at the head of each accepted
  /// event — after validation, before the event's own trace lines — so
  /// rejected events emit nothing and t stays non-decreasing. 0 (default)
  /// disables each; requires obs.trace, otherwise ignored.
  double snapshot_interval = 0.0;
  double metrics_interval = 0.0;
};

/// Aggregates the service accumulates across a session (for the sim_end
/// trace event and the server's stats line).
struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t finished = 0;
  std::size_t starts = 0;
  std::size_t kills = 0;
  std::size_t avoidable_kills = 0;
  std::size_t migrations = 0;
  std::size_t failures = 0;
  std::size_t failures_hitting_jobs = 0;
  std::size_t starts_on_flagged = 0;
  std::size_t flagged_with_alternative = 0;
  double work_lost_node_seconds = 0.0;
};

class SchedulerService {
 public:
  /// `oracle` (nullable, borrowed) feeds the paper's simulated predictors;
  /// required iff the configured predictor model consults one (throws the
  /// typed OracleRequiredError — naming the model — otherwise; kAdaptive
  /// and kNone need no oracle). `shared_catalog` (nullable, borrowed) skips
  /// catalog construction, exactly like run_simulation's parameter.
  explicit SchedulerService(const ServiceConfig& config,
                            const FailureTrace* oracle = nullptr,
                            const PartitionCatalog* shared_catalog = nullptr);
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Apply one event; decisions are appended to `out` in application order
  /// (kills of the fail event first, then migrations, then starts). Throws
  /// ProtocolError — with the service state unchanged — on an event it
  /// refuses. `line` tags the error with the input line for the session
  /// loop; pass 0 from library callers.
  void handle(const Event& event, std::vector<Decision>& out,
              std::size_t line = 0);

  /// End of stream: emit the sim_end trace event iff tracing is on, at
  /// least one job was submitted, and no job is still waiting or running.
  /// Returns true when sim_end was written (or already had been).
  bool finish_stream();

  // --- views (used by the sim adapter and the server's stats line) ---
  double now() const { return now_; }
  /// Nodes neither occupied nor down (the capacity integrator's f(t)).
  int usable_free_nodes() const;
  /// Σ requested sizes of waiting jobs (the integrator's q(t)).
  long long queued_demand() const { return queued_demand_; }
  std::size_t waiting_jobs() const { return queue_.size(); }
  std::size_t running_jobs() const { return running_.size(); }
  const ServiceStats& stats() const { return stats_; }
  const PartitionCatalog& catalog() const { return *catalog_; }

 private:
  enum class Phase { kWaiting, kRunning, kDone };

  struct JobRec {
    std::uint64_t id = 0;
    int size = 1;
    int alloc_size = 1;
    double arrival = 0.0;
    double estimate = 0.0;
    double runtime = -1.0;  ///< As submitted; < 0 when unknown.
    double first_start = -1.0;
    double last_start = -1.0;
    int restarts = 0;
    int entry = -1;
    Phase phase = Phase::kWaiting;
  };

  void build_scheduler(const FailureTrace* oracle);
  void ensure_begin(double t);
  void advance_integrator(const Event& event);
  void enqueue(JobRec& job);
  void run_pass(double now, std::vector<Decision>& out);
  void kill_job(JobRec& job, double now, int node, std::vector<Decision>& out);
  void release_allocation(JobRec& job);
  NodeSet scheduling_occupancy() const;

  void on_submit(const Event& e, std::vector<Decision>& out, std::size_t line);
  void on_complete(const Event& e, std::vector<Decision>& out, std::size_t line);
  void on_fail(const Event& e, std::vector<Decision>& out);
  void on_repair(const Event& e, std::vector<Decision>& out, std::size_t line);

  /// Emit machine_state / metrics events for every cadence boundary ≤
  /// `horizon`, in time order (machine_state first on ties). Called by the
  /// accepted-event handlers before their own trace lines.
  void emit_snapshots_until(double horizon);
  void emit_machine_state(double t);
  void emit_metrics(double t);

  void index_occupy(const NodeSet& mask) {
    if (index_ != nullptr) index_->occupy(mask);
  }
  /// Down nodes stay blocked in the index when a victim's partition is
  /// released (same overlay rule as the driver).
  void index_release(const NodeSet& mask) {
    if (index_ == nullptr) return;
    if (down_.empty()) {
      index_->release(mask);
    } else {
      NodeSet m = mask;
      m.subtract(down_);
      index_->release(m);
    }
  }

  const ServiceConfig config_;
  std::unique_ptr<PartitionCatalog> owned_catalog_;
  const PartitionCatalog* catalog_;
  TorusOccupancy torus_;
  std::unique_ptr<FaultPredictor> predictor_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<FreePartitionIndex> index_;

  std::unordered_map<std::uint64_t, JobRec> jobs_;
  std::vector<std::uint64_t> queue_;    ///< Waiting ids, priority order.
  std::vector<std::uint64_t> running_;  ///< Running ids, unordered.

  NodeSet down_;
  double now_ = 0.0;
  bool any_event_ = false;
  long long queued_demand_ = 0;

  // Session aggregates for sim_end (same recomputation rules trace_audit
  // applies: utilization from the runtimes traced in job_submit).
  CapacityIntegrator integrator_;
  bool integrator_started_ = false;
  double integrator_t0_ = 0.0;
  double min_submit_ = 0.0;
  double max_finish_ = 0.0;
  double useful_work_ = 0.0;
  double wait_sum_ = 0.0;
  double response_sum_ = 0.0;
  double slowdown_sum_ = 0.0;
  ServiceStats stats_;

  obs::TraceSink* tr_;
  obs::HistogramRegistry* hg_;
  obs::CounterRegistry* ct_;
  bool begin_emitted_ = false;
  bool end_emitted_ = false;
  bool cadences_anchored_ = false;

  // Periodic-emission state (mirrors sim/driver): cadence cursors anchored
  // at the first traced event, the metrics window's event counts —
  // incremented exactly where the matching trace lines are written — and
  // the wall-clock latency ring over the window's scheduler passes.
  double next_snapshot_ = 0.0;  ///< 0 = off / not yet anchored.
  double next_metrics_ = 0.0;
  double last_metrics_t_ = 0.0;
  std::int64_t m_submits_ = 0;
  std::int64_t m_starts_ = 0;
  std::int64_t m_finishes_ = 0;
  std::int64_t m_kills_ = 0;
  std::int64_t m_migrations_ = 0;
  std::int64_t m_decisions_ = 0;
  std::unique_ptr<obs::LatencyRing> decision_ring_;  ///< Null = metrics off.

  // Rolling forecast scorer, mirroring sim/driver: the flagged set captured
  // at each metrics boundary is scored against the nodes that failed inside
  // the window (pred_tp/pred_fp/pred_fn metrics fields + cumulative pred.*
  // counters for prometheus_render). Armed when metrics_interval > 0 and a
  // trace sink or counter registry is attached.
  bool pred_armed_ = false;
  NodeSet pred_flagged_;
  NodeSet pred_failed_;
};

}  // namespace bgl::svc
