#include "svc/exporter.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace bgl::svc {

MetricsExporter::MetricsExporter(const std::string& path) : path_(path) {
  // A scraper that disconnects mid-write must not kill the server process.
  std::signal(SIGPIPE, SIG_IGN);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    throw Error("metrics socket path too long: " + path_);
  }
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);

  listener_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener_ < 0) throw Error("cannot create metrics socket");
  ::unlink(path_.c_str());
  if (::bind(listener_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener_, 4) != 0) {
    ::close(listener_);
    throw Error("cannot bind/listen metrics socket on " + path_);
  }
  thread_ = std::thread([this] { serve(); });
}

MetricsExporter::~MetricsExporter() {
  // shutdown() wakes the accept() in serve(); the failed accept exits the
  // loop. close() alone is not guaranteed to interrupt a blocked accept.
  ::shutdown(listener_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listener_);
  ::unlink(path_.c_str());
}

void MetricsExporter::publish(std::string exposition) {
  const std::lock_guard<std::mutex> lock(mutex_);
  text_ = std::move(exposition);
}

void MetricsExporter::serve() {
  while (true) {
    const int conn = ::accept(listener_, nullptr, nullptr);
    if (conn < 0) return;  // listener shut down by the destructor
    std::string snapshot;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      snapshot = text_;
    }
    const char* p = snapshot.data();
    std::size_t left = snapshot.size();
    while (left > 0) {
      const ssize_t n = ::write(conn, p, left);
      if (n <= 0) break;  // scraper went away; drop the rest
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    ::close(conn);
  }
}

}  // namespace bgl::svc
