#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bgl {

std::string trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      break;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> fields;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) fields.emplace_back(text.substr(start, i - start));
  }
  return fields;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::optional<long long> parse_int(std::string_view token) {
  long long value = 0;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view token) {
  // std::from_chars<double> is available on GCC 12; use it for strictness.
  double value = 0.0;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string format_duration(double seconds) {
  if (!std::isfinite(seconds)) return "inf";
  const bool negative = seconds < 0;
  long long total = static_cast<long long>(std::llround(std::fabs(seconds)));
  const long long days = total / 86400;
  total %= 86400;
  const long long hours = total / 3600;
  total %= 3600;
  const long long minutes = total / 60;
  const long long secs = total % 60;
  char buffer[64];
  if (days > 0) {
    std::snprintf(buffer, sizeof buffer, "%s%lldd %02lld:%02lld:%02lld",
                  negative ? "-" : "", days, hours, minutes, secs);
  } else {
    std::snprintf(buffer, sizeof buffer, "%s%02lld:%02lld:%02lld",
                  negative ? "-" : "", hours, minutes, secs);
  }
  return buffer;
}

std::string artifact_stamp() {
  const char* env = std::getenv("BGL_GIT_DESCRIBE");
  if (env == nullptr || *env == '\0') return "unknown";
  std::string stamp;
  for (const char* p = env; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    const bool safe = std::isalnum(c) != 0 || c == '.' || c == '_' ||
                      c == '/' || c == '+' || c == '-';
    stamp += safe ? *p : '_';
  }
  return stamp;
}

}  // namespace bgl
