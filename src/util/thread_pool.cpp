#include "util/thread_pool.hpp"

#include <atomic>
#include <utility>

namespace bgl::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(threads < count ? threads : count);
  // One task per worker pulling indices from a shared cursor: cheap, and
  // naturally load-balanced when task durations vary (long simulations next
  // to short ones).
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  for (std::size_t w = 0; w < pool.size(); ++w) {
    pool.submit([cursor, count, &fn] {
      for (std::size_t i = cursor->fetch_add(1); i < count;
           i = cursor->fetch_add(1)) {
        fn(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace bgl::util
