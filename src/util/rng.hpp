// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component of the simulator (workload generators, failure
// trace generators, predictor sampling) draws from an explicitly seeded
// bgl::Rng so that a run is a pure function of its configuration. We use
// xoshiro256** seeded via SplitMix64, the de-facto standard for fast,
// high-quality non-cryptographic streams, instead of std::mt19937 whose
// seeding is both slow and easy to get wrong.
#pragma once

#include <array>
#include <cstdint>

namespace bgl {

/// SplitMix64 step; also useful as a cheap stateless hash for derived seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless mix of two 64-bit values into one (for per-(job,node) sampling).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  /// Seed via SplitMix64 so that nearby seeds give uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform on the full 64-bit range.
  std::uint64_t next_u64();

  /// Uniform real in [0, 1).
  double uniform();

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive (unbiased via rejection).
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential with the given rate (mean = 1/rate).
  double exponential(double rate);

  /// Weibull with shape k and scale lambda.
  double weibull(double shape, double scale);

  /// Lognormal: exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma);

  /// Standard normal via Box-Muller (cached second value).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Pareto with minimum xm and tail index alpha.
  double pareto(double xm, double alpha);

  /// Geometric-like zipf sample over {0, ..., n-1} with exponent s.
  std::size_t zipf(std::size_t n, double s);

  /// Derive an independent child stream (e.g., one per simulation phase).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace bgl
