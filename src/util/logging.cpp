#include "util/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "util/strings.hpp"

namespace bgl {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& text) {
  const std::string t = to_lower(trim(text));
  if (t == "debug") return LogLevel::kDebug;
  if (t == "info") return LogLevel::kInfo;
  if (t == "warn" || t == "warning") return LogLevel::kWarn;
  if (t == "error") return LogLevel::kError;
  if (t == "off" || t == "none") return LogLevel::kOff;
  return LogLevel::kWarn;
}

void init_logging_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* env = std::getenv("BGL_LOG")) {
      set_log_level(parse_log_level(env));
    }
  });
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr << "[bgl:" << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace bgl
