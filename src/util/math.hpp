// Integer helpers: divisors and divisor triples, used by the shape
// enumeration in the torus module and by the Appendix-9 partition finder.
#pragma once

#include <cstdint>
#include <vector>

namespace bgl {

/// All positive divisors of n, ascending. O(sqrt n).
std::vector<int> divisors(int n);

/// Number of divisors of n (the paper's f(s)).
int divisor_count(int n);

/// A rectangular box shape (extent per dimension).
struct Triple {
  int x = 0;
  int y = 0;
  int z = 0;
  friend bool operator==(const Triple&, const Triple&) = default;
};

/// All ordered triples (x, y, z) with x*y*z == s, x <= max_x, y <= max_y,
/// z <= max_z. This is the paper's SHAPES set restricted to the machine
/// dimensions. Deterministic order: lexicographic in (x, y, z).
std::vector<Triple> divisor_triples(int s, int max_x, int max_y, int max_z);

/// Ceiling division for positive integers.
constexpr long long ceil_div(long long a, long long b) {
  return (a + b - 1) / b;
}

/// Round up to the next power of two (minimum 1).
int next_pow2(int n);

/// True if n is a power of two.
constexpr bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace bgl
