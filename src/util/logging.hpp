// Minimal leveled logger.
//
// The simulator is often run thousands of times inside a sweep, so logging
// defaults to kWarn. Set BGL_LOG=debug|info|warn|error in the environment
// or call set_log_level() to change verbosity.
#pragma once

#include <sstream>
#include <string>

namespace bgl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& text);

/// Initialise the level from the BGL_LOG environment variable (idempotent).
void init_logging_from_env();

namespace detail {
void emit(LogLevel level, const std::string& message);
}

}  // namespace bgl

#define BGL_LOG(level, stream_expr)                         \
  do {                                                      \
    if (static_cast<int>(level) >=                          \
        static_cast<int>(::bgl::log_level())) {             \
      std::ostringstream bgl_log_os_;                       \
      bgl_log_os_ << stream_expr;                           \
      ::bgl::detail::emit(level, bgl_log_os_.str());        \
    }                                                       \
  } while (false)

#define BGL_DEBUG(stream_expr) BGL_LOG(::bgl::LogLevel::kDebug, stream_expr)
#define BGL_INFO(stream_expr) BGL_LOG(::bgl::LogLevel::kInfo, stream_expr)
#define BGL_WARN(stream_expr) BGL_LOG(::bgl::LogLevel::kWarn, stream_expr)
#define BGL_ERROR(stream_expr) BGL_LOG(::bgl::LogLevel::kError, stream_expr)
