// Small string helpers used by the SWF/trace parsers and table writers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bgl {

/// Strip ASCII whitespace from both ends.
std::string trim(std::string_view text);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view text);

/// Split on a single delimiter character; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Split on runs of whitespace; drops empty fields (SWF-style tokenising).
std::vector<std::string> split_ws(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Strict numeric parsing: the full token must be consumed.
std::optional<long long> parse_int(std::string_view token);
std::optional<double> parse_double(std::string_view token);

/// printf-like double formatting with fixed precision.
std::string format_double(double value, int precision);

/// Human-readable duration like "2d 03:04:05" for report output.
std::string format_duration(double seconds);

/// Build stamp for checked-in bench artifacts (docs/BENCH_*.json): the
/// BGL_GIT_DESCRIBE environment variable — set by CI / the bench invocation
/// to `git describe --always --dirty` — sanitized to [A-Za-z0-9._/+-] so it
/// can be embedded in JSON unescaped, or "unknown" when unset.
std::string artifact_stamp();

}  // namespace bgl
