#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bgl {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  BGL_CHECK(!header_.empty(), "table requires at least one column");
}

Table& Table::add_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  BGL_CHECK(!rows_.empty(), "call add_row() before adding cells");
  BGL_CHECK(rows_.back().size() < header_.size(), "row has too many cells");
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double value, int precision) {
  return add(format_double(value, precision));
}

Table& Table::add(long long value) { return add(std::to_string(value)); }

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << (c == 0 ? "" : "  ");
      os << cell << std::string(width[c] - cell.size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open CSV output file: " + path);
  out << to_csv();
}

}  // namespace bgl
