// Fixed-size worker pool for CPU-bound fan-out (the sweep engine's cells).
//
// Design constraints:
//
//   * deterministic consumers — the pool schedules work in any order, so
//     callers that need reproducible output must write results into
//     per-task slots and reduce them in task order afterwards (that is
//     exactly what exp::SweepRunner does). parallel_for with one thread
//     runs inline on the caller, in index order, with no pool machinery,
//     which makes the serial path trivially identical to a plain loop.
//   * exception-safe fan-out — the first exception thrown by any task is
//     captured and rethrown on the calling thread once all tasks have
//     drained; remaining tasks still run (they may hold slots others
//     merge).
//   * no global state — every pool is a value owned by its caller; the
//     simulator itself stays single-threaded per run.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bgl::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1). A one-thread pool still
  /// owns a worker; use parallel_for(count, 1, fn) for the inline path.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue one task. Tasks must not submit to the same pool recursively
  /// while wait_idle() is in flight (the sweep engine never does).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. Rethrows the first
  /// task exception (by submission-processing order is NOT guaranteed —
  /// whichever failure was recorded first).
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

/// Run fn(0) .. fn(count - 1), distributing indices across `threads`
/// workers; blocks until all complete and rethrows the first task
/// exception. threads <= 1 (or count <= 1) runs inline on the calling
/// thread in ascending index order without constructing a pool.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace bgl::util
