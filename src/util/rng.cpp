#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace bgl {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2));
  std::uint64_t mixed = splitmix64(state);
  state ^= b;
  return mixed ^ splitmix64(state);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  BGL_CHECK(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  BGL_CHECK(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full range (hi - lo + 1 overflowed)
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - span) % span;
  while (true) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return lo + r % span;
  }
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) {
  BGL_CHECK(rate > 0.0, "exponential rate must be positive");
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Rng::weibull(double shape, double scale) {
  BGL_CHECK(shape > 0.0 && scale > 0.0, "weibull parameters must be positive");
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

double Rng::pareto(double xm, double alpha) {
  BGL_CHECK(xm > 0.0 && alpha > 0.0, "pareto parameters must be positive");
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  BGL_CHECK(n > 0, "zipf requires a non-empty support");
  // Direct inverse-CDF over the (small) support; fine for n <= a few hundred.
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) total += 1.0 / std::pow(static_cast<double>(k), s);
  double target = uniform() * total;
  for (std::size_t k = 1; k <= n; ++k) {
    target -= 1.0 / std::pow(static_cast<double>(k), s);
    if (target <= 0.0) return k - 1;
  }
  return n - 1;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace bgl
