#include "util/error.hpp"

#include <sstream>

namespace bgl::detail {

void contract_failure(const char* expr, const char* file, int line,
                      const std::string& message) {
  std::ostringstream os;
  os << "contract violation: " << expr << " at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw ContractViolation(os.str());
}

}  // namespace bgl::detail
