#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bgl {

void RunningStats::add(double value) {
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::clear() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void WeightedStats::add(double value, double weight) {
  BGL_CHECK(weight >= 0.0, "weights must be non-negative");
  weighted_sum_ += value * weight;
  total_weight_ += weight;
  ++count_;
}

double WeightedStats::weighted_mean() const {
  return total_weight_ > 0.0 ? weighted_sum_ / total_weight_ : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  BGL_CHECK(hi > lo, "histogram range must be non-empty");
  BGL_CHECK(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double value) {
  const double frac = (value - lo_) / (hi_ - lo_);
  auto bin = static_cast<long long>(std::floor(frac * static_cast<double>(counts_.size())));
  bin = std::clamp<long long>(bin, 0, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  BGL_CHECK(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const { return bin_low(bin + 1); }

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar = counts_[b] * width / peak;
    os << '[' << format_double(bin_low(b), 1) << ", " << format_double(bin_high(b), 1)
       << ") " << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

double PercentileTracker::percentile(double p) const {
  BGL_CHECK(p >= 0.0 && p <= 100.0, "percentile must be within [0, 100]");
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lower = static_cast<std::size_t>(std::floor(rank));
  const auto upper = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lower);
  return values_[lower] * (1.0 - frac) + values_[upper] * frac;
}

}  // namespace bgl
