// Text-table and CSV output used by every bench binary so that all figures
// print in a consistent, diffable format.
#pragma once

#include <string>
#include <vector>

namespace bgl {

/// A simple column-aligned text table with an optional title. Cells are
/// strings; numeric helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Begin a new row; subsequent add_* calls append cells to it.
  Table& add_row();
  Table& add(std::string cell);
  Table& add(double value, int precision = 3);
  Table& add(long long value);
  Table& add(int value) { return add(static_cast<long long>(value)); }
  Table& add(std::size_t value) { return add(static_cast<long long>(value)); }

  std::size_t rows() const { return rows_.size(); }

  /// Render as an aligned ASCII table.
  std::string render() const;

  /// Render as CSV (RFC-4180-ish quoting for commas/quotes).
  std::string to_csv() const;

  /// Write the CSV rendering to a file; creates parent-less paths as given.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bgl
