// Streaming statistics accumulators used by the metrics collector and the
// workload/failure analysers.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace bgl {

/// Welford-style streaming mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double value);
  void merge(const RunningStats& other);
  void clear();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Statistics of values weighted by non-negative weights (e.g. per-node-hour).
class WeightedStats {
 public:
  void add(double value, double weight);
  double weighted_mean() const;
  double total_weight() const { return total_weight_; }
  std::size_t count() const { return count_; }

 private:
  double weighted_sum_ = 0.0;
  double total_weight_ = 0.0;
  std::size_t count_ = 0;
};

/// Fixed-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  std::size_t bin_count(std::size_t bin) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;

  /// Multi-line ASCII rendering for report output.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact percentile over a retained sample vector. The simulator produces at
/// most a few hundred thousand jobs per run, so exact retention is fine.
class PercentileTracker {
 public:
  void add(double value) {
    values_.push_back(value);
    sorted_ = false;
  }
  std::size_t count() const { return values_.size(); }

  /// p in [0, 100]; linear interpolation between closest ranks.
  double percentile(double p) const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace bgl
