// Error handling primitives for the bgl library.
//
// Following the C++ Core Guidelines (E.2, E.3) we use exceptions for
// genuinely exceptional conditions (malformed input files, impossible
// configurations) and assertions/contract checks for programmer errors.
// BGL_CHECK is active in all build types because simulator correctness
// depends on these invariants holding in Release benchmarks too.
#pragma once

#include <stdexcept>
#include <string>

namespace bgl {

/// Base class for all errors thrown by the bgl library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input file (SWF log, failure trace, config) is malformed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown when a configuration is internally inconsistent.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Thrown by BGL_CHECK on contract violation.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* expr, const char* file, int line,
                                   const std::string& message);
}  // namespace detail

}  // namespace bgl

/// Contract check that stays on in Release builds. Use for invariants whose
/// violation would silently corrupt simulation results.
#define BGL_CHECK(expr, msg)                                             \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::bgl::detail::contract_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                    \
  } while (false)
