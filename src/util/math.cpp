#include "util/math.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bgl {

std::vector<int> divisors(int n) {
  BGL_CHECK(n > 0, "divisors() requires a positive argument");
  std::vector<int> low;
  std::vector<int> high;
  for (int d = 1; static_cast<long long>(d) * d <= n; ++d) {
    if (n % d == 0) {
      low.push_back(d);
      if (d != n / d) high.push_back(n / d);
    }
  }
  low.insert(low.end(), high.rbegin(), high.rend());
  return low;
}

int divisor_count(int n) { return static_cast<int>(divisors(n).size()); }

std::vector<Triple> divisor_triples(int s, int max_x, int max_y, int max_z) {
  BGL_CHECK(s > 0, "shape volume must be positive");
  std::vector<Triple> shapes;
  for (const int x : divisors(s)) {
    if (x > max_x) continue;
    const int rest = s / x;
    for (const int y : divisors(rest)) {
      if (y > max_y) continue;
      const int z = rest / y;
      if (z > max_z) continue;
      shapes.push_back(Triple{x, y, z});
    }
  }
  return shapes;
}

int next_pow2(int n) {
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace bgl
