// Checkpointing model (the paper's §8 future-work extension).
//
// The baseline study assumes no checkpointing: a failure loses all of a
// job's work. This module adds the periodic-checkpoint model the authors
// outline so its interaction with prediction can be quantified (see
// bench_ablation_checkpoint):
//
//   * While running, a job checkpoints every `interval` seconds of computed
//     work; each checkpoint stalls it for `overhead` seconds.
//   * A killed job restarts from its most recent completed checkpoint,
//     paying `restart_overhead`, instead of from scratch.
//
// All functions are pure, mapping (work done, config) to wall-clock times;
// the simulation driver owns the state.
#pragma once

namespace bgl {

struct CheckpointConfig {
  bool enabled = false;
  double interval = 3600.0;         ///< Work seconds between checkpoints.
  double overhead = 60.0;           ///< Stall per checkpoint (seconds).
  double restart_overhead = 30.0;   ///< Extra cost when resuming from one.

  friend bool operator==(const CheckpointConfig&, const CheckpointConfig&) = default;
};

/// Number of checkpoints taken while computing `work` seconds. A checkpoint
/// exactly at completion is skipped (nothing left to protect).
int checkpoint_count(double work, const CheckpointConfig& config);

/// Wall-clock duration of `work` seconds of computation including
/// checkpoint stalls (== work when disabled).
double walltime_for_work(double work, const CheckpointConfig& config);

/// Work salvaged when a job is killed after `elapsed_wall` wall-clock
/// seconds of a run computing `work` seconds: the progress at the last
/// completed checkpoint (0 when disabled or before the first checkpoint).
double saved_work_at(double elapsed_wall, double work, const CheckpointConfig& config);

}  // namespace bgl
