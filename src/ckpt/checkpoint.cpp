#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace bgl {

int checkpoint_count(double work, const CheckpointConfig& config) {
  if (!config.enabled || config.interval <= 0.0 || work <= 0.0) return 0;
  // Checkpoints fire after each full interval of work; one landing exactly
  // at the end is pointless and skipped.
  const double intervals = work / config.interval;
  const double whole = std::floor(intervals);
  const bool exact_end = std::abs(intervals - whole) < 1e-12;
  return static_cast<int>(whole) - (exact_end ? 1 : 0);
}

double walltime_for_work(double work, const CheckpointConfig& config) {
  BGL_CHECK(work >= 0.0, "work must be non-negative");
  if (!config.enabled) return work;
  return work + static_cast<double>(checkpoint_count(work, config)) * config.overhead;
}

double saved_work_at(double elapsed_wall, double work, const CheckpointConfig& config) {
  if (!config.enabled || config.interval <= 0.0) return 0.0;
  const int total_ckpts = checkpoint_count(work, config);
  // The k-th checkpoint (1-based) completes at wall time
  //   k * interval + k * overhead.
  int completed = 0;
  for (int k = 1; k <= total_ckpts; ++k) {
    const double done_at = static_cast<double>(k) * (config.interval + config.overhead);
    if (done_at <= elapsed_wall + 1e-9) completed = k;
    else break;
  }
  return std::min(static_cast<double>(completed) * config.interval, work);
}

}  // namespace bgl
