// Experiment harness: one call from (workload spec, failure spec, scheduler
// spec) to a SimResult, plus sweep helpers used by the per-figure benches.
//
// The paper's experimental grid (§6-7):
//   * job logs: NASA / SDSC / LLNL (here: synthetic models or real SWF);
//   * load scale c ∈ [0.5, 1.5] (figures use 1.0 and 1.2);
//   * failures: 4000 events for NASA/SDSC spans, 1000 for LLNL, plus a
//     0..4000-by-500 rate sweep on SDSC;
//   * prediction knob a ∈ {0.0, 0.1, ..., 1.0} (confidence or accuracy);
//   * schedulers: Krevat baseline, balancing, tie-breaking.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "failure/generator.hpp"
#include "sim/driver.hpp"
#include "workload/synthetic.hpp"

namespace bgl {

/// Workload source: a synthetic model, optionally overridden by a real SWF
/// file (drop-in replacement for the archive logs the paper uses).
struct WorkloadSpec {
  SyntheticModel model = SyntheticModel::sdsc();
  std::uint64_t seed = 42;
  double load_scale = 1.0;                 ///< The paper's c.
  std::optional<std::string> swf_path;     ///< Use a real log instead.
};

struct FailureSpec {
  std::size_t events = 4000;     ///< Paper: 4000 (NASA/SDSC), 1000 (LLNL).
  std::uint64_t seed = 7;
  FailureModel model;            ///< num_nodes/span set by the harness.
  std::optional<std::string> csv_path;  ///< Use a recorded trace instead.
};

struct ExperimentSpec {
  WorkloadSpec workload;
  FailureSpec failures;
  SimConfig sim;
};

/// Materialised inputs (kept so sweeps can reuse them across sim configs).
struct ExperimentInputs {
  Workload workload;      ///< Sizes rescaled onto sim.dims, load scaled.
  FailureTrace trace;
};

/// Build the workload (generate or load, rescale sizes onto the machine,
/// apply the load scale) and the failure trace (generated over the
/// workload's span, or loaded). Deterministic.
ExperimentInputs prepare_inputs(const ExperimentSpec& spec);

/// prepare_inputs + run_simulation.
SimResult run_experiment(const ExperimentSpec& spec,
                         const PartitionCatalog* shared_catalog = nullptr);

/// The paper's per-log failure-event budget.
std::size_t paper_failure_count(const SyntheticModel& model);

/// Scale a paper-nominal failure count (which refers to the real log's full
/// duration, model.reference_span_days) onto a synthetic log of
/// `span_seconds`, preserving the failure density. E.g. 4000 SDSC events
/// over 730 days become ~320 events on a 58-day synthetic log.
std::size_t span_scaled_events(std::size_t nominal, double span_seconds,
                               const SyntheticModel& model);

/// Multiply a synthetic model's job count by BGL_JOB_SCALE (environment
/// variable, default 1.0) so bench runs can be shrunk or grown without
/// recompiling. Returns the scale applied. Throws ConfigError when the
/// variable is set to anything but a positive finite number (NaN, inf,
/// zero, negative, or non-numeric text) — a mis-typed scale must fail the
/// run, not silently produce full-size results.
double apply_job_scale_env(SyntheticModel& model);

/// Apply the BGL_USE_PARTITION_INDEX environment A/B switch (`0` selects
/// the scan-based reference path) to `config`. Shared by run_experiment()
/// and the sweep engine so every experiment surface honours the knob.
void apply_partition_index_env(SimConfig& config);

}  // namespace bgl
