// Event-driven simulation of job scheduling with faults (§6.1).
//
// The driver owns all mutable state — job lifecycle, FCFS queue, torus
// occupancy, event queue, metric integrators — and defers every placement
// decision to a Scheduler. Semantics fixed by the paper:
//
//   * jobs start the instant they are scheduled;
//   * failures are transient: a failing node kills any job running on it
//     (work since the last checkpoint — all work, in the baseline — is
//     lost; the job re-enters the queue with its original arrival priority)
//     and is immediately available again;
//   * the scheduler runs on every arrival and every termination, including
//     failure-induced kills.
//
// Extensions beyond the paper, all off by default: checkpointing
// (CheckpointConfig) and node down-time after a failure (kDownFor).
#pragma once

#include <cstdint>
#include <memory>

#include "ckpt/checkpoint.hpp"
#include "des/event_queue.hpp"
#include "failure/trace.hpp"
#include "obs/observer.hpp"
#include "predict/registry.hpp"
#include "sched/types.hpp"
#include "sim/metrics.hpp"
#include "torus/catalog.hpp"
#include "workload/job.hpp"

namespace bgl {

enum class SchedulerKind { kKrevat, kBalancing, kTieBreak };

const char* to_string(SchedulerKind kind);

// PredictorModel (and its to_string/parse) lives in predict/registry.hpp —
// one registry shared by driver, service, CLIs and the sweep engine.

/// The PaperRole the kPaper model resolves to under a scheduler kind:
/// balancing -> BalancingPredictor, tie-break -> TieBreakPredictor,
/// krevat -> no predictor.
PaperRole paper_role_for(SchedulerKind kind);

/// Waiting-queue priority order. The paper is strictly FCFS; the others are
/// classic alternatives provided for scheduler studies (see
/// bench_ablation_queue_order).
enum class QueueOrder {
  kFcfs,              ///< (arrival, id) — the paper's discipline.
  kShortestJobFirst,  ///< (estimate, arrival, id).
  kSmallestJobFirst,  ///< (nodes requested, arrival, id).
};

const char* to_string(QueueOrder order);

/// What happens to a node after it fails.
enum class FailureSemantics {
  kTransient,  ///< Paper baseline: instantly healthy again.
  kDownFor,    ///< Extension: unschedulable for `node_downtime` seconds.
};

struct SimConfig {
  Dims dims = Dims::bluegene_l();
  /// kTorus (the paper's model) or kMesh (no wrap-around; Krevat et al.
  /// studied both — see bench_ablation_topology).
  Topology topology = Topology::kTorus;
  /// Catalog construction for the driver-owned catalog (ignored when a
  /// shared catalog is passed in): kBoxes at paper scale, kBlocks for
  /// full-machine runs where box enumeration is infeasible.
  CatalogOptions catalog;
  /// Pending-event store of the simulation loop. The calendar queue is the
  /// default (O(1) amortised); the binary heap is the reference
  /// implementation, kept selectable for perf baselines and differential
  /// tests. Event order — and therefore every trace and metric — is
  /// identical for both.
  EventQueueKind event_queue = EventQueueKind::kCalendar;
  SchedulerKind scheduler = SchedulerKind::kBalancing;

  /// Prediction quality knob: confidence a for the balancing scheduler,
  /// accuracy a for the tie-breaking scheduler. Ignored by Krevat.
  double alpha = 0.0;
  /// Optional false positives for the tie-breaking predictor (paper: 0).
  double tiebreak_false_positive_rate = 0.0;
  /// Predictor source (paper-simulated by default).
  PredictorModel predictor_model = PredictorModel::kPaper;
  /// History window of the kHistory predictor.
  double history_lookback = 7.0 * 86400.0;
  /// Hazard-model knobs of the kAdaptive predictor (its confidence follows
  /// `alpha` when alpha > 0; see make_predictor).
  AdaptiveConfig adaptive;

  SchedulerConfig sched;
  QueueOrder queue_order = QueueOrder::kFcfs;
  MetricsConfig metrics;
  CheckpointConfig ckpt;

  FailureSemantics failure_semantics = FailureSemantics::kTransient;
  double node_downtime = 0.0;  ///< Seconds a node stays down (kDownFor).

  std::uint64_t seed = 1;      ///< Salts the tie-breaking predictor's coins.

  /// Maintain an incremental FreePartitionIndex over the scheduling
  /// occupancy (updated in O(delta) on every allocate/release/failure) and
  /// let the scheduler answer MFP and candidate queries through it instead
  /// of scanning the catalog. Decisions are bit-for-bit identical either
  /// way (differential-tested); disable only to run the scan-based
  /// reference path, e.g. for A/B timing or debugging the index itself.
  bool use_partition_index = true;
  bool collect_outcomes = false;
  /// Record a structured event log (SimResult::replay) for offline
  /// validation, visualisation, or regression diffing (src/sim/replay.hpp).
  bool record_replay = false;

  /// Observability hooks (JSONL trace sink, counter registry and/or
  /// histogram registry, all borrowed and nullable — see src/obs/ and
  /// docs/OBSERVABILITY.md). The default disables all tracing/counting at
  /// zero cost.
  obs::Observer obs;

  /// Emit a machine_state trace event every this many simulated seconds
  /// (queue depth, running jobs, free nodes, MFP, fragmentation, flagged
  /// nodes). 0 (the default) disables snapshots entirely; requires
  /// obs.trace, otherwise ignored.
  double snapshot_interval = 0.0;

  /// Emit a `metrics` trace event every this many simulated seconds:
  /// queue/occupancy gauges plus windowed rates (submits/starts/finishes/
  /// kills/migrations, throughput, decision-latency quantiles over the
  /// window's scheduler passes). 0 (the default) disables metrics — traces
  /// are then byte-identical to pre-metrics builds; requires obs.trace,
  /// otherwise ignored. docs/OBSERVABILITY.md documents the event.
  double metrics_interval = 0.0;
};

/// Run one simulation. Job sizes must already fit config.dims (use
/// rescale_sizes()); the failure trace must target the same node count.
/// Pass a prebuilt catalog to amortise its construction across sweeps.
SimResult run_simulation(const Workload& workload, const FailureTrace& trace,
                         const SimConfig& config,
                         const PartitionCatalog* shared_catalog = nullptr);

}  // namespace bgl
