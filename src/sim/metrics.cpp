#include "sim/metrics.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bgl {

double bounded_slowdown(const JobOutcome& job, const MetricsConfig& config) {
  const double gamma = config.gamma;
  BGL_CHECK(gamma > 0.0, "Γ must be positive");
  const double base =
      config.use_estimate_denominator ? job.estimate : job.runtime;
  const double denominator =
      config.use_paper_min_denominator ? std::min(base, gamma) : std::max(base, gamma);
  BGL_CHECK(denominator > 0.0, "slowdown denominator must be positive");
  return std::max(job.response(), gamma) / denominator;
}

void CapacityIntegrator::start(double t0, int free_nodes, long long queued_demand) {
  BGL_CHECK(!started_, "integrator already started");
  started_ = true;
  last_time_ = t0;
  free_ = free_nodes;
  queued_ = queued_demand;
}

void CapacityIntegrator::advance(double t) {
  if (!started_) return;  // events before the first arrival do not count
  BGL_CHECK(t >= last_time_ - 1e-9, "time went backwards in integrator");
  const double dt = std::max(0.0, t - last_time_);
  const double surplus =
      std::max(0.0, static_cast<double>(free_) - static_cast<double>(queued_));
  integral_ += surplus * dt;
  last_time_ = t;
}

}  // namespace bgl
