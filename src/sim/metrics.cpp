#include "sim/metrics.hpp"

#include <algorithm>
#include <bit>
#include <ostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bgl {

double bounded_slowdown(const JobOutcome& job, const MetricsConfig& config) {
  const double gamma = config.gamma;
  BGL_CHECK(gamma > 0.0, "Γ must be positive");
  const double base =
      config.use_estimate_denominator ? job.estimate : job.runtime;
  const double denominator =
      config.use_paper_min_denominator ? std::min(base, gamma) : std::max(base, gamma);
  BGL_CHECK(denominator > 0.0, "slowdown denominator must be positive");
  return std::max(job.response(), gamma) / denominator;
}

namespace {
void json_number(std::ostream& out, const char* key, double value, bool* first) {
  if (!*first) out << ',';
  *first = false;
  out << '"' << key << "\":" << format_double(value, 6);
}
void json_count(std::ostream& out, const char* key, std::size_t value, bool* first) {
  if (!*first) out << ',';
  *first = false;
  out << '"' << key << "\":" << value;
}
void json_stats(std::ostream& out, const char* key, const RunningStats& s,
                bool* first) {
  if (!*first) out << ',';
  *first = false;
  out << '"' << key << "\":{\"mean\":" << format_double(s.mean(), 6)
      << ",\"stddev\":" << format_double(s.stddev(), 6)
      << ",\"min\":" << format_double(s.min(), 6)
      << ",\"max\":" << format_double(s.max(), 6) << '}';
}
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return h * 1315423911ull + v + 1;
}
std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }
}  // namespace

std::uint64_t sim_result_checksum(const SimResult& r) {
  std::uint64_t h = 0;
  h = mix(h, r.jobs_completed);
  h = mix(h, r.job_kills);
  h = mix(h, r.avoidable_kills);
  h = mix(h, r.starts_on_flagged);
  h = mix(h, r.flagged_with_alternative);
  h = mix(h, r.failures_hitting_jobs);
  h = mix(h, r.failures_total);
  h = mix(h, r.migrations);
  h = mix(h, r.checkpoints_taken);
  h = mix(h, bits(r.span));
  h = mix(h, bits(r.avg_wait));
  h = mix(h, bits(r.avg_response));
  h = mix(h, bits(r.avg_bounded_slowdown));
  h = mix(h, bits(r.utilization));
  h = mix(h, bits(r.unused));
  h = mix(h, bits(r.lost));
  h = mix(h, bits(r.work_lost_node_seconds));
  return h;
}

void write_result_json(std::ostream& out, const SimResult& result) {
  bool first = true;
  out << '{';
  json_count(out, "jobs_completed", result.jobs_completed, &first);
  json_number(out, "span", result.span, &first);
  json_number(out, "utilization", result.utilization, &first);
  json_number(out, "unused", result.unused, &first);
  json_number(out, "lost", result.lost, &first);
  json_number(out, "work_lost_node_seconds", result.work_lost_node_seconds, &first);
  json_count(out, "failures_total", result.failures_total, &first);
  json_count(out, "failures_hitting_jobs", result.failures_hitting_jobs, &first);
  json_count(out, "job_kills", result.job_kills, &first);
  json_count(out, "avoidable_kills", result.avoidable_kills, &first);
  json_count(out, "starts_on_flagged", result.starts_on_flagged, &first);
  json_count(out, "flagged_with_alternative", result.flagged_with_alternative,
             &first);
  json_count(out, "migrations", result.migrations, &first);
  json_count(out, "checkpoints_taken", result.checkpoints_taken, &first);
  json_stats(out, "wait", result.wait_stats, &first);
  json_stats(out, "response", result.response_stats, &first);
  json_stats(out, "bounded_slowdown", result.slowdown_stats, &first);
  out << '}';
}

void CapacityIntegrator::start(double t0, int free_nodes, long long queued_demand) {
  BGL_CHECK(!started_, "integrator already started");
  started_ = true;
  last_time_ = t0;
  free_ = free_nodes;
  queued_ = queued_demand;
}

void CapacityIntegrator::advance(double t) {
  if (!started_) return;  // events before the first arrival do not count
  BGL_CHECK(t >= last_time_ - 1e-9, "time went backwards in integrator");
  const double dt = std::max(0.0, t - last_time_);
  const double surplus =
      std::max(0.0, static_cast<double>(free_) - static_cast<double>(queued_));
  integral_ += surplus * dt;
  last_time_ = t;
}

}  // namespace bgl
