// Scheduling metrics (§3.4 and §6.1 of the paper).
//
// Timing metrics per job j:
//   wait t_w = t_s - t_a         (last start minus arrival)
//   response t_r = t_f - t_a
//   bounded slowdown t_b = max(t_r, Γ) / max(t_d, Γ), Γ = 10 s,
//     where t_d defaults to the job's actual execution time (the standard
//     definition and what the paper's numbers require); the literal formula
//     in the paper prints min(·, Γ) in the denominator — an erratum we
//     expose behind use_paper_min_denominator for sensitivity checks, and
//     use_estimate_denominator switches t_d to the user estimate.
//
// Capacity metrics over the span T = max t_f - min t_a on N nodes:
//   ω_util   = Σ s_j * t_j / (T N)       (useful work, counted once)
//   ω_unused = ∫ max(0, f(t) - q(t)) dt / (T N)
//   ω_lost   = 1 - ω_util - ω_unused
// with f(t) free nodes and q(t) node demand of the waiting queue; the
// integral is exact because both are piecewise constant between events.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/replay.hpp"
#include "util/stats.hpp"

namespace bgl {

struct MetricsConfig {
  double gamma = 10.0;
  bool use_paper_min_denominator = false;
  bool use_estimate_denominator = false;
};

/// Final per-job record.
struct JobOutcome {
  std::uint64_t id = 0;
  int size = 0;
  double arrival = 0.0;
  double first_start = 0.0;
  double last_start = 0.0;
  double finish = 0.0;
  double runtime = 0.0;   ///< Actual execution time of the successful run.
  double estimate = 0.0;
  int restarts = 0;       ///< Times the job was killed by a failure.

  double wait() const { return last_start - arrival; }
  double response() const { return finish - arrival; }
};

/// Bounded slowdown under the chosen convention.
double bounded_slowdown(const JobOutcome& job, const MetricsConfig& config);

/// Exact integrator of max(0, f(t) - q(t)) over the piecewise-constant
/// timeline. Call advance(t) *before* mutating f or q at time t.
class CapacityIntegrator {
 public:
  void start(double t0, int free_nodes, long long queued_demand);
  void advance(double t);
  void set_free(int free_nodes) { free_ = free_nodes; }
  void add_free(int delta) { free_ += delta; }
  void set_queued(long long demand) { queued_ = demand; }
  void add_queued(long long delta) { queued_ += delta; }
  int free_nodes() const { return free_; }
  long long queued_demand() const { return queued_; }
  double unused_integral() const { return integral_; }

 private:
  bool started_ = false;
  double last_time_ = 0.0;
  int free_ = 0;
  long long queued_ = 0;
  double integral_ = 0.0;
};

/// Aggregate result of one simulation run.
struct SimResult {
  std::size_t jobs_completed = 0;
  std::size_t job_kills = 0;        ///< Job restarts caused by failures.
  /// Kills whose failure fell inside the job's placement-time prediction
  /// window (last start, last start + estimate]: a perfect predictor would
  /// have flagged the node when the scheduler placed the job.
  std::size_t avoidable_kills = 0;
  /// Placements whose partition contained a predictor-flagged node, and the
  /// subset that had a flag-free candidate available at decision time.
  std::size_t starts_on_flagged = 0;
  std::size_t flagged_with_alternative = 0;
  std::size_t failures_hitting_jobs = 0;
  std::size_t failures_total = 0;
  std::size_t migrations = 0;
  std::size_t checkpoints_taken = 0;

  double span = 0.0;                ///< T = max t_f - min t_a.
  double avg_wait = 0.0;
  double avg_response = 0.0;
  double avg_bounded_slowdown = 0.0;
  double utilization = 0.0;         ///< ω_util
  double unused = 0.0;              ///< ω_unused
  double lost = 0.0;                ///< ω_lost
  double work_lost_node_seconds = 0.0;  ///< Raw work destroyed by kills.
  /// Host wall-clock seconds spent inside run_simulation (perf reporting
  /// only; never part of the simulated metrics above).
  double wall_seconds = 0.0;

  RunningStats wait_stats;
  RunningStats response_stats;
  RunningStats slowdown_stats;

  std::vector<JobOutcome> outcomes;  ///< Filled when requested.
  std::vector<ReplayEvent> replay;   ///< Filled when record_replay is set.
};

/// Order-sensitive digest of every scalar a scheduling decision can move
/// (counts plus the bit patterns of the aggregate doubles; wall_seconds and
/// the per-job vectors are excluded). Two runs that took literally identical
/// decisions — not merely statistically similar ones — produce equal digests,
/// which is what the engine-vs-service and reference-vs-optimized
/// differential tests compare.
std::uint64_t sim_result_checksum(const SimResult& result);

/// One JSON object with the scalar metrics of `result` plus spread
/// (stddev/min/max) for the per-job timing distributions. Composed with the
/// counter dump into the CLI's --stats-out file (docs/OBSERVABILITY.md).
void write_result_json(std::ostream& out, const SimResult& result);

}  // namespace bgl
