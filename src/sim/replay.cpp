#include "sim/replay.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bgl {

const char* to_string(ReplayEventType type) {
  switch (type) {
    case ReplayEventType::kArrival: return "arrival";
    case ReplayEventType::kStart: return "start";
    case ReplayEventType::kFinish: return "finish";
    case ReplayEventType::kKill: return "kill";
    case ReplayEventType::kMigration: return "migration";
    case ReplayEventType::kNodeFailure: return "node-failure";
  }
  return "?";
}

namespace {
std::string describe(const ReplayEvent& e) {
  std::ostringstream os;
  os << "t=" << format_double(e.time, 3) << ' ' << to_string(e.type) << " job="
     << e.job_id << " entry=" << e.entry_index << " node=" << e.node;
  return os.str();
}
}  // namespace

ReplayValidation validate_replay(const std::vector<ReplayEvent>& events,
                                 const PartitionCatalog& catalog) {
  ReplayValidation result;
  auto fail = [&](const ReplayEvent& e, const std::string& why) {
    result.ok = false;
    result.error = why + " at " + describe(e);
    return result;
  };

  NodeSet occupied(catalog.num_nodes());
  std::unordered_map<std::uint64_t, int> placed;  // job -> entry
  double last_time = -1.0;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const ReplayEvent& e = events[i];
    if (e.time + 1e-9 < last_time) return fail(e, "time went backwards");
    last_time = std::max(last_time, e.time);
    switch (e.type) {
      case ReplayEventType::kArrival:
      case ReplayEventType::kNodeFailure:
        break;
      case ReplayEventType::kStart: {
        if (placed.count(e.job_id)) return fail(e, "job started while running");
        if (e.entry_index < 0 || e.entry_index >= catalog.num_entries()) {
          return fail(e, "invalid entry index");
        }
        const NodeSet& mask = catalog.entry(e.entry_index).mask;
        if (mask.intersects(occupied)) return fail(e, "start overlaps occupancy");
        occupied |= mask;
        placed.emplace(e.job_id, e.entry_index);
        break;
      }
      case ReplayEventType::kFinish:
      case ReplayEventType::kKill: {
        const auto it = placed.find(e.job_id);
        if (it == placed.end()) return fail(e, "release of non-running job");
        if (it->second != e.entry_index) return fail(e, "release entry mismatch");
        occupied.subtract(catalog.entry(it->second).mask);
        placed.erase(it);
        break;
      }
      case ReplayEventType::kMigration: {
        // Migrations of one scheduling pass may rotate jobs through one
        // another's partitions; the driver applies them release-first. Treat
        // the maximal run of consecutive same-timestamp migrations as one
        // atomic group: release every source, then claim every target.
        std::size_t group_end = i;
        while (group_end + 1 < events.size() &&
               events[group_end + 1].type == ReplayEventType::kMigration &&
               events[group_end + 1].time == e.time) {
          ++group_end;
        }
        for (std::size_t g = i; g <= group_end; ++g) {
          const ReplayEvent& m = events[g];
          const auto it = placed.find(m.job_id);
          if (it == placed.end()) return fail(m, "migration of non-running job");
          if (catalog.entry(it->second).size != catalog.entry(m.entry_index).size) {
            return fail(m, "migration changed partition size");
          }
          occupied.subtract(catalog.entry(it->second).mask);
        }
        for (std::size_t g = i; g <= group_end; ++g) {
          const ReplayEvent& m = events[g];
          const NodeSet& mask = catalog.entry(m.entry_index).mask;
          if (mask.intersects(occupied)) {
            return fail(m, "migration target overlaps occupancy");
          }
          occupied |= mask;
          placed[m.job_id] = m.entry_index;
        }
        i = group_end;
        break;
      }
    }
  }
  return result;
}

void write_replay_csv(const std::string& path, const std::vector<ReplayEvent>& events,
                      const PartitionCatalog& catalog) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open replay output: " + path);
  out << "time,type,job,node,entry,base,shape\n";
  for (const ReplayEvent& e : events) {
    out << format_double(e.time, 3) << ',' << to_string(e.type) << ',' << e.job_id
        << ',' << e.node << ',' << e.entry_index;
    if (e.entry_index >= 0 && e.entry_index < catalog.num_entries()) {
      const Box& box = catalog.entry(e.entry_index).box;
      out << ",\"" << box.base.x << ' ' << box.base.y << ' ' << box.base.z << "\",\""
          << box.shape.x << ' ' << box.shape.y << ' ' << box.shape.z << '"';
    } else {
      out << ",,";
    }
    out << '\n';
  }
}

}  // namespace bgl
