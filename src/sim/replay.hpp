// Structured replay log of a simulation run.
//
// When SimConfig::record_replay is set, the driver appends one ReplayEvent
// per state transition (arrival, start, finish, kill, migration, node
// failure). The log supports three uses:
//   * offline validation — validate_replay() re-checks the §3.3 invariants
//     (no overlapping placements, starts only of waiting jobs, releases
//     matching allocations) independently of the driver's own bookkeeping;
//   * debugging and visualisation — write_replay_csv() emits a flat file
//     that plots as a Gantt chart of the torus;
//   * regression diffing — two runs of the same configuration must produce
//     byte-identical logs (determinism).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "torus/catalog.hpp"

namespace bgl {

enum class ReplayEventType : std::uint8_t {
  kArrival,
  kStart,
  kFinish,
  kKill,
  kMigration,
  kNodeFailure,
};

const char* to_string(ReplayEventType type);

struct ReplayEvent {
  double time = 0.0;
  ReplayEventType type = ReplayEventType::kArrival;
  std::uint64_t job_id = 0;  ///< Workload job number (0 for node events).
  int node = -1;             ///< Failing node for kNodeFailure.
  int entry_index = -1;      ///< Partition for kStart/kFinish/kKill; target
                             ///  partition for kMigration.
  friend bool operator==(const ReplayEvent&, const ReplayEvent&) = default;
};

/// Outcome of validate_replay().
struct ReplayValidation {
  bool ok = true;
  std::string error;  ///< First violation, empty when ok.
};

/// Re-run the allocation bookkeeping over the log and verify that every
/// start lands on free nodes, every finish/kill releases a live allocation,
/// migrations preserve partition size, and event times are non-decreasing.
ReplayValidation validate_replay(const std::vector<ReplayEvent>& events,
                                 const PartitionCatalog& catalog);

/// CSV: time,type,job,node,entry,base,shape (header included).
void write_replay_csv(const std::string& path, const std::vector<ReplayEvent>& events,
                      const PartitionCatalog& catalog);

}  // namespace bgl
