#include "sim/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "workload/swf.hpp"

namespace bgl {

std::size_t paper_failure_count(const SyntheticModel& model) {
  // §6.2: "4000 failures for each of NASA and SDSC job log based simulation
  // studies, and 1000 failures for LLNL job log based studies."
  return model.name == "llnl-t3d" ? 1000u : 4000u;
}

std::size_t span_scaled_events(std::size_t nominal, double span_seconds,
                               const SyntheticModel& model) {
  BGL_CHECK(model.reference_span_days > 0.0, "reference span must be positive");
  const double fraction = span_seconds / (model.reference_span_days * 86400.0);
  return static_cast<std::size_t>(
      std::llround(static_cast<double>(nominal) * fraction));
}

double apply_job_scale_env(SyntheticModel& model) {
  double scale = 1.0;
  if (const char* env = std::getenv("BGL_JOB_SCALE")) {
    const auto parsed = parse_double(env);
    if (!parsed || !std::isfinite(*parsed) || *parsed <= 0.0) {
      throw ConfigError("BGL_JOB_SCALE must be a positive finite number, got '" +
                        std::string(env) + "'");
    }
    scale = *parsed;
  }
  model.num_jobs = std::max(1, static_cast<int>(model.num_jobs * scale));
  return scale;
}

void apply_partition_index_env(SimConfig& config) {
  if (const char* env = std::getenv("BGL_USE_PARTITION_INDEX")) {
    config.use_partition_index = std::string_view(env) != "0";
  }
}

ExperimentInputs prepare_inputs(const ExperimentSpec& spec) {
  ExperimentInputs inputs;

  // 1. Workload: synthetic or real SWF.
  if (spec.workload.swf_path) {
    inputs.workload = read_swf_file(*spec.workload.swf_path);
  } else {
    inputs.workload = generate_workload(spec.workload.model, spec.workload.seed);
  }
  inputs.workload = rescale_sizes(inputs.workload, spec.sim.dims.volume());
  if (spec.workload.load_scale != 1.0) {
    inputs.workload = scale_load(inputs.workload, spec.workload.load_scale);
  }

  // 2. Failures: cover the workload's whole (estimated) makespan. The exact
  //    makespan depends on the scheduler; arrival span plus a generous tail
  //    matches how the paper retimes its trace onto each log's span.
  if (spec.failures.csv_path) {
    inputs.trace = read_failure_csv(*spec.failures.csv_path, spec.sim.dims.volume());
  } else {
    double max_runtime = 0.0;
    for (const Job& j : inputs.workload.jobs) max_runtime = std::max(max_runtime, j.runtime);
    FailureModel model = spec.failures.model;
    model.num_nodes = spec.sim.dims.volume();
    model.span_seconds =
        std::max(1.0, inputs.workload.arrival_span() * 1.05 + 2.0 * max_runtime);
    model.target_events = spec.failures.events;
    inputs.trace = generate_failures(model, spec.failures.seed);
  }
  return inputs;
}

SimResult run_experiment(const ExperimentSpec& spec,
                         const PartitionCatalog* shared_catalog) {
  const ExperimentInputs inputs = prepare_inputs(spec);
  SimConfig sim = spec.sim;
  // A/B switch for validating that the incremental free-partition index is
  // a pure acceleration: BGL_USE_PARTITION_INDEX=0 re-runs any experiment
  // (hence any figure) on the scan-based reference path; outputs must be
  // byte-identical.
  apply_partition_index_env(sim);
  return run_simulation(inputs.workload, inputs.trace, sim, shared_catalog);
}

}  // namespace bgl
