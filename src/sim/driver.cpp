#include "sim/driver.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <unordered_map>

#include "des/event_queue.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/series.hpp"
#include "obs/trace.hpp"
#include "predict/predictor.hpp"
#include "sim/replay.hpp"
#include "sched/scheduler.hpp"
#include "torus/index.hpp"
#include "torus/occupancy.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace bgl {

const char* to_string(QueueOrder order) {
  switch (order) {
    case QueueOrder::kFcfs: return "fcfs";
    case QueueOrder::kShortestJobFirst: return "sjf";
    case QueueOrder::kSmallestJobFirst: return "smallest";
  }
  return "?";
}

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kKrevat: return "krevat";
    case SchedulerKind::kBalancing: return "balancing";
    case SchedulerKind::kTieBreak: return "tie-break";
  }
  return "?";
}

PaperRole paper_role_for(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kKrevat: return PaperRole::kNull;
    case SchedulerKind::kBalancing: return PaperRole::kBalancing;
    case SchedulerKind::kTieBreak: return PaperRole::kTieBreak;
  }
  return PaperRole::kNull;
}

namespace {

enum class JobPhase { kNotArrived, kWaiting, kRunning, kDone };

struct JobState {
  Job job;
  int alloc_size = 1;
  JobPhase phase = JobPhase::kNotArrived;
  double first_start = -1.0;
  double last_start = -1.0;
  double finish_time = -1.0;
  double remaining_work = 0.0;  ///< Work left; shrinks via checkpoints.
  std::uint64_t gen = 0;        ///< Finish-event validity tag.
  int restarts = 0;
  int entry_index = -1;
};

/// Queue jobs the scheduler actually needs to see: it can start at most
/// num_nodes jobs per pass plus examine backfill_depth fillers.
constexpr std::size_t kQueueViewCap = 512;

class Driver {
 public:
  Driver(const Workload& workload, const FailureTrace& trace, const SimConfig& config,
         const PartitionCatalog* shared_catalog)
      : config_(config),
        owned_catalog_(shared_catalog ? nullptr
                                      : new PartitionCatalog(config.dims, config.topology,
                                                             config.catalog)),
        catalog_(shared_catalog ? shared_catalog : owned_catalog_.get()),
        torus_(*catalog_),
        trace_(&trace),
        events_(config.event_queue),
        down_(config.dims.volume()),
        down_until_(static_cast<std::size_t>(config.dims.volume()), 0.0),
        tr_(config.obs.trace),
        ct_(config.obs.counters),
        hg_(config.obs.histograms),
        pf_(config.obs.profiler) {
    if (tr_ != nullptr && config_.metrics_interval > 0.0) {
      decision_ring_ = std::make_unique<obs::LatencyRing>();
    }
    if (config_.use_partition_index) {
      index_ = std::make_unique<FreePartitionIndex>(*catalog_);
    }
    BGL_CHECK(catalog_->dims() == config.dims, "shared catalog dims mismatch");
    BGL_CHECK(catalog_->topology() == config.topology,
              "shared catalog topology mismatch");
    BGL_CHECK(trace.empty() || trace.num_nodes() == config.dims.volume(),
              "failure trace node count mismatch");
    build_jobs(workload);
    build_scheduler();
  }

  SimResult run();

 private:
  void build_jobs(const Workload& workload);
  void build_scheduler();
  void enqueue_job(std::size_t index);
  void invoke_scheduler(double now);
  void kill_job(std::size_t index, double now);
  void finish_job(std::size_t index, double now);
  void emit_snapshots_until(double horizon);
  void emit_machine_state(double t);
  void emit_metrics(double t);
  NodeSet scheduling_occupancy() const;
  int usable_free_nodes() const;

  // Incremental-index maintenance: every occupancy delta (allocation,
  // release, node down/up) is mirrored into index_ so it always matches
  // scheduling_occupancy(). Null when use_partition_index is off.
  void index_occupy(const NodeSet& mask) {
    if (index_ != nullptr) index_->occupy(mask);
  }
  /// Release an allocation's mask, keeping nodes that are still down
  /// blocked (a kill triggered by a node failure releases the partition
  /// while the failed node stays in the down overlay).
  void index_release(const NodeSet& mask) {
    if (index_ == nullptr) return;
    if (down_.empty()) {
      index_->release(mask);
    } else {
      NodeSet m = mask;
      m.subtract(down_);
      index_->release(m);
    }
  }

  const SimConfig config_;
  std::unique_ptr<PartitionCatalog> owned_catalog_;
  const PartitionCatalog* catalog_;
  TorusOccupancy torus_;
  const FailureTrace* trace_;

  std::unique_ptr<FaultPredictor> predictor_;
  std::unique_ptr<Scheduler> scheduler_;

  std::vector<JobState> jobs_;
  std::vector<std::size_t> queue_;    ///< Waiting jobs, (arrival, id) order.
  std::vector<std::size_t> running_;  ///< Running jobs, unordered.

  EventQueue events_;
  CapacityIntegrator integrator_;
  SimResult result_;
  std::size_t jobs_done_ = 0;
  double min_arrival_ = 0.0;
  double max_finish_ = 0.0;

  NodeSet down_;                     ///< Nodes currently down (kDownFor).
  std::vector<double> down_until_;

  /// Incremental free-partition view of scheduling_occupancy(), updated in
  /// O(delta) at every allocate/release/failure site below and handed to
  /// the scheduler each pass. Null when config_.use_partition_index is off
  /// (the scheduler then falls back to catalog scans).
  std::unique_ptr<FreePartitionIndex> index_;

  obs::TraceSink* tr_;               ///< Borrowed; null when tracing is off.
  obs::CounterRegistry* ct_;         ///< Borrowed; null when counting is off.
  obs::HistogramRegistry* hg_;       ///< Borrowed; null when histograms off.
  obs::PhaseProfiler* pf_;           ///< Borrowed; null when profiling is off.
  double next_snapshot_ = 0.0;       ///< Next machine_state time; 0 = off.

  // `metrics` emission state: the next boundary (0 = off), the previous
  // emission time (first interval = metrics_interval), the window's event
  // counts — incremented exactly where the corresponding trace lines are
  // written, so stream-order reconstruction (trace_audit) matches — and the
  // wall-clock latency of every scheduler pass in the window.
  double next_metrics_ = 0.0;
  double last_metrics_t_ = 0.0;
  std::int64_t m_submits_ = 0;
  std::int64_t m_starts_ = 0;
  std::int64_t m_finishes_ = 0;
  std::int64_t m_kills_ = 0;
  std::int64_t m_migrations_ = 0;
  std::int64_t m_decisions_ = 0;
  std::unique_ptr<obs::LatencyRing> decision_ring_;  ///< Null = metrics off.

  // Rolling forecast scorer (same cadence as `metrics`): at each boundary
  // the previous window's forecast — the flagged set captured at the
  // window's start — is scored against the nodes that actually failed
  // inside it, at node-window granularity. Feeds the pred_tp/pred_fp/
  // pred_fn metrics fields and the cumulative pred.* counters (from which
  // write_json / prometheus_render derive realized precision/recall).
  // Armed when metrics_interval > 0 and either a trace sink or a counter
  // registry is attached.
  bool pred_armed_ = false;
  NodeSet pred_flagged_;  ///< Forecast captured at the window's start.
  NodeSet pred_failed_;   ///< Nodes that failed inside the window.
};

void Driver::build_jobs(const Workload& workload) {
  const int n = config_.dims.volume();
  jobs_.reserve(workload.jobs.size());
  for (const Job& j : workload.jobs) {
    JobState state;
    state.job = j;
    if (state.job.size > n) {
      BGL_WARN("job " << j.id << " size " << j.size << " exceeds machine (" << n
                      << "); clamping");
      state.job.size = n;
    }
    const int alloc = catalog_->allocatable_size(state.job.size);
    BGL_CHECK(alloc > 0, "no allocatable partition size for job");
    state.alloc_size = alloc;
    state.remaining_work = state.job.runtime;
    jobs_.push_back(state);
  }
}

void Driver::build_scheduler() {
  const int n = config_.dims.volume();

  // Predictor: the paper's simulated predictors by default; alternatives
  // (real history-based, oracle, learned, none) come from the registry.
  PredictorSpec spec;
  spec.model = config_.predictor_model;
  spec.paper_role = paper_role_for(config_.scheduler);
  spec.alpha = config_.alpha;
  spec.tiebreak_false_positive_rate = config_.tiebreak_false_positive_rate;
  spec.history_lookback = config_.history_lookback;
  spec.seed = config_.seed;
  spec.adaptive = config_.adaptive;
  // The driver always owns a ground-truth trace (possibly empty), so the
  // oracle models never raise OracleRequiredError here.
  predictor_ = make_predictor(spec, n, trace_);

  switch (config_.scheduler) {
    case SchedulerKind::kKrevat:
      scheduler_ = make_krevat_scheduler(*catalog_, *predictor_, config_.sched);
      break;
    case SchedulerKind::kBalancing:
      scheduler_ = make_balancing_scheduler(*catalog_, *predictor_, config_.sched);
      break;
    case SchedulerKind::kTieBreak:
      scheduler_ = make_tiebreak_scheduler(*catalog_, *predictor_, config_.sched);
      break;
  }
  scheduler_->set_observer(config_.obs);
}

NodeSet Driver::scheduling_occupancy() const {
  if (config_.failure_semantics == FailureSemantics::kTransient || down_.empty()) {
    return torus_.occupied();
  }
  NodeSet occ = torus_.occupied();
  occ |= down_;
  return occ;
}

int Driver::usable_free_nodes() const {
  if (config_.failure_semantics == FailureSemantics::kTransient) {
    return torus_.free_nodes();
  }
  NodeSet busy = torus_.occupied();
  busy |= down_;
  return catalog_->num_nodes() - busy.count();
}

void Driver::enqueue_job(std::size_t index) {
  JobState& state = jobs_[index];
  state.phase = JobPhase::kWaiting;
  state.entry_index = -1;
  auto priority = [&](std::size_t a, std::size_t b) {
    const Job& ja = jobs_[a].job;
    const Job& jb = jobs_[b].job;
    switch (config_.queue_order) {
      case QueueOrder::kShortestJobFirst:
        if (ja.estimate != jb.estimate) return ja.estimate < jb.estimate;
        break;
      case QueueOrder::kSmallestJobFirst:
        if (ja.size != jb.size) return ja.size < jb.size;
        break;
      case QueueOrder::kFcfs:
        break;
    }
    if (ja.arrival != jb.arrival) return ja.arrival < jb.arrival;
    return ja.id < jb.id;
  };
  const auto pos = std::lower_bound(queue_.begin(), queue_.end(), index, priority);
  queue_.insert(pos, index);
  // §6.1: q(t) counts the nodes *requested* by waiting jobs (s_j, not the
  // rounded-up allocation size).
  integrator_.add_queued(state.job.size);
}

void Driver::invoke_scheduler(double now) {
  // Build the scheduler's views.
  // Scheduler-facing ids are internal job indices: workload job numbers are
  // only guaranteed unique per log, not across merged logs.
  std::vector<WaitingJob> waiting;
  waiting.reserve(std::min(queue_.size(), kQueueViewCap));
  for (std::size_t i = 0; i < queue_.size() && i < kQueueViewCap; ++i) {
    const JobState& s = jobs_[queue_[i]];
    waiting.push_back(WaitingJob{static_cast<std::uint64_t>(queue_[i]), s.job.size,
                                 s.alloc_size, s.job.estimate});
  }
  std::vector<RunningJob> running;
  running.reserve(running_.size());
  for (const std::size_t idx : running_) {
    const JobState& s = jobs_[idx];
    running.push_back(RunningJob{static_cast<std::uint64_t>(idx), s.entry_index,
                                 s.last_start + s.job.estimate});
  }

  const NodeSet occ = scheduling_occupancy();
  // Wall-clock pass latency feeds the metrics window (p50/p99/max per
  // interval); the clock is read only when metrics emission is on.
  std::chrono::steady_clock::time_point m_begin;
  if (decision_ring_ != nullptr) m_begin = std::chrono::steady_clock::now();
  const SchedulingDecision decision =
      scheduler_->schedule(now, waiting, running, occ, index_.get());
  ++m_decisions_;
  if (decision_ring_ != nullptr) {
    const std::chrono::duration<double, std::micro> us =
        std::chrono::steady_clock::now() - m_begin;
    decision_ring_->add(us.count());
  }

  if (tr_ != nullptr) {
    for (const PredictorQueryRecord& q : decision.predictor_queries) {
      tr_->event("predictor_query", now)
          .field("job", jobs_[static_cast<std::size_t>(q.id)].job.id)
          .field("window_start", q.window_start)
          .field("window_end", q.window_end)
          .field("nodes_flagged", q.nodes_flagged);
    }
  }

  // Apply migrations in two phases: jobs may rotate into one another's old
  // partitions, so every mover must release before any re-allocates.
  for (const Migration& m : decision.migrations) {
    const std::size_t idx = static_cast<std::size_t>(m.id);
    BGL_CHECK(idx < jobs_.size(), "migration refers to unknown job");
    BGL_CHECK(jobs_[idx].phase == JobPhase::kRunning, "migrating a non-running job");
    index_release(catalog_->entry(torus_.entry_of(m.id)).mask);
    torus_.release(m.id);
  }
  for (const Migration& m : decision.migrations) {
    torus_.allocate(m.id, m.to_entry);
    index_occupy(catalog_->entry(m.to_entry).mask);
    JobState& s = jobs_[static_cast<std::size_t>(m.id)];
    s.entry_index = m.to_entry;
    ++result_.migrations;
    ++m_migrations_;
    if (config_.record_replay) {
      result_.replay.push_back(ReplayEvent{now, ReplayEventType::kMigration,
                                           s.job.id, -1, m.to_entry});
    }
    if (tr_ != nullptr) {
      tr_->event("migration", now)
          .field("job", s.job.id)
          .field("from_entry", m.from_entry)
          .field("to_entry", m.to_entry);
    }
  }

  // When tracing, starts and placement records were appended pairwise by
  // the engine, so placements[i] explains starts[i]. A compaction in the
  // same pass rewrites both the pending start and its audit record, so the
  // traced entry_index is always the partition actually committed below.
  BGL_CHECK(tr_ == nullptr || decision.placements.size() == decision.starts.size(),
            "placement audit records out of sync with starts");

  for (std::size_t start_i = 0; start_i < decision.starts.size(); ++start_i) {
    const Start& start = decision.starts[start_i];
    const std::size_t idx = static_cast<std::size_t>(start.id);
    BGL_CHECK(idx < jobs_.size(), "start refers to unknown job");
    JobState& s = jobs_[idx];
    BGL_CHECK(s.phase == JobPhase::kWaiting, "starting a non-waiting job");

    const auto qpos = std::find(queue_.begin(), queue_.end(), idx);
    BGL_CHECK(qpos != queue_.end(), "started job missing from queue");
    queue_.erase(qpos);
    integrator_.add_queued(-static_cast<long long>(s.job.size));

    torus_.allocate(start.id, start.entry_index);
    index_occupy(catalog_->entry(start.entry_index).mask);
    s.entry_index = start.entry_index;
    s.phase = JobPhase::kRunning;
    s.last_start = now;
    if (s.first_start < 0.0) s.first_start = now;
    running_.push_back(idx);
    ++m_starts_;

    const double wall = walltime_for_work(s.remaining_work, config_.ckpt);
    ++s.gen;
    events_.push(Event{now + wall, EventType::kFinish, start.id, s.gen, 0});
    if (config_.record_replay) {
      result_.replay.push_back(ReplayEvent{now, ReplayEventType::kStart, s.job.id,
                                           -1, start.entry_index});
    }
    if (tr_ != nullptr) {
      const PlacementRecord& p = decision.placements[start_i];
      {
        auto ev = tr_->event("sched_decision", now);
        ev.field("job", s.job.id)
            .field("policy", scheduler_->name())
            .field("entry", p.entry_index)
            .field("candidates", p.candidates)
            .field("l_mfp", p.l_mfp)
            .field("l_pf", p.l_pf)
            .field("e_loss", p.e_loss)
            .field("mfp_after", p.mfp_after)
            .field("flags_in_chosen", p.flags_in_chosen)
            .field("backfill", p.backfill);
        // Reservation provenance exists only on backfill placements made by
        // the reservation-carrying algorithms (easy/conservative/holdback);
        // the krevat baseline never sets it, keeping its traces
        // byte-identical with pre-seam output.
        if (p.res_entry >= 0) {
          ev.field("res_time", p.res_time).field("res_entry", p.res_entry);
        }
      }
      tr_->event("job_start", now)
          .field("job", s.job.id)
          .field("entry", start.entry_index)
          .field("alloc_size", s.alloc_size)
          .field("wait_so_far", now - s.job.arrival)
          .field("restarts", s.restarts);
    }
  }

  result_.starts_on_flagged += static_cast<std::size_t>(decision.starts_on_flagged);
  result_.flagged_with_alternative +=
      static_cast<std::size_t>(decision.flagged_with_alternative);

  if (!decision.starts.empty() || !decision.migrations.empty()) {
    integrator_.set_free(usable_free_nodes());
  }
}

void Driver::kill_job(std::size_t index, double now) {
  JobState& s = jobs_[index];
  BGL_CHECK(s.phase == JobPhase::kRunning, "killing a non-running job");
  const double elapsed = now - s.last_start;
  const double saved = saved_work_at(elapsed, s.remaining_work, config_.ckpt);
  if (config_.ckpt.enabled) {
    const std::size_t taken =
        static_cast<std::size_t>(checkpoint_count(saved, config_.ckpt)) +
        (saved > 0.0 ? 1u : 0u);
    result_.checkpoints_taken += taken;
    if (ct_ != nullptr) ct_->add(obs::Counter::kDriverCheckpoints, taken);
    if (tr_ != nullptr && taken > 0) {
      // Work fields are node-seconds throughout the trace (schema:
      // docs/OBSERVABILITY.md), so scale the per-node work by the job size.
      tr_->event("checkpoint", now)
          .field("job", s.job.id)
          .field("count", static_cast<std::int64_t>(taken))
          .field("work_saved", saved * static_cast<double>(s.job.size));
    }
  }
  const double wasted = std::max(0.0, std::min(elapsed, s.remaining_work) - saved);
  result_.work_lost_node_seconds += wasted * static_cast<double>(s.job.size);

  s.remaining_work -= saved;
  if (saved > 0.0) s.remaining_work += config_.ckpt.restart_overhead;
  ++s.gen;  // invalidate the in-flight finish event
  ++s.restarts;
  ++result_.job_kills;
  ++m_kills_;
  if (now <= s.last_start + s.job.estimate + 1e-9) ++result_.avoidable_kills;
  if (config_.record_replay) {
    result_.replay.push_back(ReplayEvent{now, ReplayEventType::kKill, s.job.id, -1,
                                         s.entry_index});
  }
  if (ct_ != nullptr) ct_->add(obs::Counter::kDriverKills);
  if (tr_ != nullptr) {
    tr_->event("job_kill", now)
        .field("job", s.job.id)
        .field("entry", s.entry_index)
        .field("elapsed", elapsed)
        .field("work_lost", wasted * static_cast<double>(s.job.size))
        .field("work_saved", saved * static_cast<double>(s.job.size))
        .field("restarts", s.restarts);
  }

  index_release(catalog_->entry(s.entry_index).mask);
  torus_.release(static_cast<std::uint64_t>(index));
  const auto rpos = std::find(running_.begin(), running_.end(), index);
  BGL_CHECK(rpos != running_.end(), "killed job missing from running set");
  *rpos = running_.back();
  running_.pop_back();

  enqueue_job(index);
}

void Driver::finish_job(std::size_t index, double now) {
  JobState& s = jobs_[index];
  BGL_CHECK(s.phase == JobPhase::kRunning, "finishing a non-running job");
  if (config_.ckpt.enabled) {
    const std::size_t taken =
        static_cast<std::size_t>(checkpoint_count(s.remaining_work, config_.ckpt));
    result_.checkpoints_taken += taken;
    if (ct_ != nullptr) ct_->add(obs::Counter::kDriverCheckpoints, taken);
    if (tr_ != nullptr && taken > 0) {
      tr_->event("checkpoint", now)
          .field("job", s.job.id)
          .field("count", static_cast<std::int64_t>(taken))
          .field("work_saved",
                 s.remaining_work * static_cast<double>(s.job.size));
    }
  }
  s.phase = JobPhase::kDone;
  s.finish_time = now;
  max_finish_ = std::max(max_finish_, now);
  if (config_.record_replay) {
    result_.replay.push_back(ReplayEvent{now, ReplayEventType::kFinish, s.job.id, -1,
                                         s.entry_index});
  }

  index_release(catalog_->entry(s.entry_index).mask);
  torus_.release(static_cast<std::uint64_t>(index));
  const auto rpos = std::find(running_.begin(), running_.end(), index);
  BGL_CHECK(rpos != running_.end(), "finished job missing from running set");
  *rpos = running_.back();
  running_.pop_back();
  ++jobs_done_;
  ++m_finishes_;

  JobOutcome outcome;
  outcome.id = s.job.id;
  outcome.size = s.job.size;
  outcome.arrival = s.job.arrival;
  outcome.first_start = s.first_start;
  outcome.last_start = s.last_start;
  outcome.finish = now;
  outcome.runtime = s.job.runtime;
  outcome.estimate = s.job.estimate;
  outcome.restarts = s.restarts;

  result_.wait_stats.add(outcome.wait());
  result_.response_stats.add(outcome.response());
  const double slowdown = bounded_slowdown(outcome, config_.metrics);
  result_.slowdown_stats.add(slowdown);
  if (config_.collect_outcomes) result_.outcomes.push_back(outcome);

  if (hg_ != nullptr) {
    hg_->add(obs::Hist::kWait, outcome.wait());
    hg_->add(obs::Hist::kResponse, outcome.response());
    hg_->add(obs::Hist::kSlowdown, slowdown);
  }

  if (tr_ != nullptr) {
    tr_->event("job_finish", now)
        .field("job", s.job.id)
        .field("entry", s.entry_index)
        .field("wait", outcome.wait())
        .field("response", outcome.response())
        .field("bounded_slowdown", slowdown)
        .field("restarts", s.restarts);
  }
}

/// Emit machine_state and metrics events for every interval boundary that
/// has passed before `horizon` (the next event's time). Called at the top of
/// the event loop, so each snapshot reflects the state the machine held
/// across its timestamp. The two cadences are independent; boundaries are
/// drained in time order, machine_state first on ties. Gated on the next_*
/// cursors, so a run without either pays two comparisons per event.
void Driver::emit_snapshots_until(double horizon) {
  while (true) {
    const bool snap_due = next_snapshot_ > 0.0 && next_snapshot_ <= horizon;
    const bool metrics_due = next_metrics_ > 0.0 && next_metrics_ <= horizon;
    if (!snap_due && !metrics_due) break;
    if (snap_due && (!metrics_due || next_snapshot_ <= next_metrics_)) {
      const double t = next_snapshot_;
      next_snapshot_ += config_.snapshot_interval;
      emit_machine_state(t);
    } else {
      const double t = next_metrics_;
      next_metrics_ += config_.metrics_interval;
      emit_metrics(t);
    }
  }
}

void Driver::emit_machine_state(double t) {
  int queued_nodes = 0;
  for (const std::size_t idx : queue_) queued_nodes += jobs_[idx].job.size;
  const NodeSet occ = scheduling_occupancy();
  const int mfp = index_ != nullptr ? index_->mfp() : catalog_->mfp(occ);
  const int free = usable_free_nodes();
  const double frag =
      free > 0 ? 1.0 - static_cast<double>(mfp) / static_cast<double>(free)
               : 0.0;
  // Predictors are const and deterministic per (window, key); an extra
  // query cannot perturb later scheduling decisions.
  const int flagged =
      predictor_->flagged_nodes(t, t + config_.snapshot_interval, 0).count();

  tr_->event("machine_state", t)
      .field("queue_depth", static_cast<std::int64_t>(queue_.size()))
      .field("queued_nodes", queued_nodes)
      .field("running_jobs", static_cast<std::int64_t>(running_.size()))
      .field("free_nodes", free)
      .field("down_nodes", down_.count())
      .field("mfp", mfp)
      .field("frag", frag)
      .field("flagged_nodes", flagged);
}

void Driver::emit_metrics(double t) {
  // Score the closing window's forecast against realized failures before
  // anything is emitted, then re-capture for the next window below.
  std::int64_t pred_tp = 0, pred_fp = 0, pred_fn = 0;
  if (pred_armed_) {
    pred_tp = pred_flagged_.intersect_count(pred_failed_);
    pred_fp = pred_flagged_.count() - pred_tp;
    pred_fn = pred_failed_.count() - pred_tp;
    if (ct_ != nullptr) {
      ct_->add(obs::Counter::kPredWindowTruePositives,
               static_cast<std::uint64_t>(pred_tp));
      ct_->add(obs::Counter::kPredWindowFalsePositives,
               static_cast<std::uint64_t>(pred_fp));
      ct_->add(obs::Counter::kPredWindowFalseNegatives,
               static_cast<std::uint64_t>(pred_fn));
      ct_->add(obs::Counter::kPredWindowsScored);
    }
  }

  if (tr_ != nullptr) {
    int queued_nodes = 0;
    for (const std::size_t idx : queue_) queued_nodes += jobs_[idx].job.size;
    // busy = nodes held by running jobs: exactly the union of live allocation
    // masks (down nodes sit in a separate overlay), which is what the auditor
    // recomputes from the stream.
    const int busy = torus_.occupied().count();
    const int nodes = catalog_->num_nodes();
    const double interval = t - last_metrics_t_;
    const std::int64_t window_decisions = m_decisions_;
    double p50 = 0.0, p99 = 0.0, max_us = 0.0;
    if (decision_ring_ != nullptr && decision_ring_->size() > 0) {
      p50 = decision_ring_->quantile(0.5);
      p99 = decision_ring_->quantile(0.99);
      max_us = decision_ring_->max();
    }

    tr_->event("metrics", t)
        .field("queue_depth", static_cast<std::int64_t>(queue_.size()))
        .field("queued_nodes", queued_nodes)
        .field("running_jobs", static_cast<std::int64_t>(running_.size()))
        .field("busy_nodes", busy)
        .field("down_nodes", down_.count())
        .field("utilization",
               nodes > 0 ? static_cast<double>(busy) / static_cast<double>(nodes)
                         : 0.0)
        .field("interval", interval)
        .field("submits", m_submits_)
        .field("starts", m_starts_)
        .field("finishes", m_finishes_)
        .field("kills", m_kills_)
        .field("migrations", m_migrations_)
        .field("finished_per_hour",
               interval > 0.0
                   ? static_cast<double>(m_finishes_) * 3600.0 / interval
                   : 0.0)
        .field("decisions", window_decisions)
        .field("decision_us_p50", p50)
        .field("decision_us_p99", p99)
        .field("decision_us_max", max_us)
        .field("pred_tp", pred_tp)
        .field("pred_fp", pred_fp)
        .field("pred_fn", pred_fn);
  }

  last_metrics_t_ = t;
  m_submits_ = m_starts_ = m_finishes_ = m_kills_ = m_migrations_ = 0;
  m_decisions_ = 0;
  if (decision_ring_ != nullptr) decision_ring_->clear();
  if (pred_armed_) {
    predictor_->flagged_nodes_into(pred_flagged_, t,
                                   t + config_.metrics_interval, 0);
    pred_failed_.clear();
  }
}

SimResult Driver::run() {
  if (jobs_.empty()) return result_;

  min_arrival_ = jobs_.front().job.arrival;
  double first_event = jobs_.front().job.arrival;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    min_arrival_ = std::min(min_arrival_, jobs_[i].job.arrival);
    events_.push(Event{jobs_[i].job.arrival, EventType::kArrival,
                       static_cast<std::uint64_t>(i), 0, 0});
  }
  for (const FailureEvent& f : trace_->events()) {
    first_event = std::min(first_event, f.time);
    events_.push(Event{f.time, EventType::kFailure,
                       static_cast<std::uint64_t>(f.node), 0, 0});
  }
  integrator_.start(min_arrival_, catalog_->num_nodes(), 0);

  if (tr_ != nullptr) {
    auto begin = tr_->event("sim_begin", std::min(first_event, min_arrival_));
    begin.field("machine", to_string(config_.dims))
        .field("nodes", catalog_->num_nodes())
        .field("topology", to_string(config_.topology))
        .field("scheduler", to_string(config_.scheduler))
        .field("policy", scheduler_->name())
        .field("predictor", to_string(config_.predictor_model))
        .field("alpha", config_.alpha)
        .field("backfill", to_string(config_.sched.backfill))
        .field("migration", config_.sched.migration)
        .field("jobs", static_cast<std::int64_t>(jobs_.size()))
        .field("failure_events", static_cast<std::int64_t>(trace_->size()));
    // Scale-up knobs are emitted only when they deviate from the defaults so
    // every pre-existing trace stays byte-identical.
    if (catalog_->options().mode != CatalogOptions::Mode::kBoxes) {
      begin.field("catalog", to_string(catalog_->options().mode))
          .field("min_block", catalog_->options().min_block);
    }
    if (config_.event_queue != EventQueueKind::kCalendar) {
      begin.field("event_queue", to_string(config_.event_queue));
    }
    if (config_.sched.algorithm != SchedAlgorithm::kKrevat) {
      begin.field("algorithm", to_string(config_.sched.algorithm));
    }
    // Adaptive-predictor provenance: emitted for kAdaptive only (a new
    // model, so no pre-existing trace changes) and required by the strict
    // auditor's predictor_mismatch invariant.
    if (config_.predictor_model == PredictorModel::kAdaptive) {
      begin.field("flag_window", config_.adaptive.node_flag_window)
          .field("burst_window", config_.adaptive.burst_window);
    }
    if (config_.snapshot_interval > 0.0) {
      next_snapshot_ =
          std::min(first_event, min_arrival_) + config_.snapshot_interval;
    }
  }
  // The metrics cadence (and the forecast scorer riding on it) also runs
  // trace-less when a counter registry is attached, so --stats-out alone
  // still reports realized pred.* precision/recall.
  if (config_.metrics_interval > 0.0 && (tr_ != nullptr || ct_ != nullptr)) {
    last_metrics_t_ = std::min(first_event, min_arrival_);
    next_metrics_ = last_metrics_t_ + config_.metrics_interval;
    pred_armed_ = true;
    pred_flagged_ = predictor_->flagged_nodes(
        last_metrics_t_, last_metrics_t_ + config_.metrics_interval, 0);
    pred_failed_ = NodeSet(catalog_->num_nodes());
  }

  while (!events_.empty() && jobs_done_ < jobs_.size()) {
    const Event e = events_.pop();
    // Event-fed predictor lifecycle: retire expired flags before any
    // snapshot or decision at this timestamp. Called for every popped event
    // (including stale finishes/expiries the service-side adapter filters
    // out), which is why the advance() contract demands idempotency.
    predictor_->advance(e.time);
    emit_snapshots_until(e.time);
    // One des.event span per dispatched event; scheduler passes triggered by
    // the event (sched.pass and its subtree) nest under it.
    obs::ScopedPhase des_span(pf_, obs::Phase::kDesEvent);
    if (ct_ != nullptr) ct_->add(obs::Counter::kDriverEvents);
    // Failure events may precede the first arrival; the capacity integral's
    // lower bound is min(t_a) (§6.1), so only advance from there on. State
    // changes they cause (e.g. a node going down) still update f(t) below.
    if (e.time >= min_arrival_) integrator_.advance(e.time);

    switch (e.type) {
      case EventType::kArrival: {
        const JobState& s = jobs_[static_cast<std::size_t>(e.id)];
        enqueue_job(static_cast<std::size_t>(e.id));
        ++m_submits_;
        if (config_.record_replay) {
          result_.replay.push_back(
              ReplayEvent{e.time, ReplayEventType::kArrival, s.job.id, -1, -1});
        }
        if (tr_ != nullptr) {
          tr_->event("job_submit", e.time)
              .field("job", s.job.id)
              .field("size", s.job.size)
              .field("alloc_size", s.alloc_size)
              .field("estimate", s.job.estimate)
              .field("runtime", s.job.runtime);
        }
        invoke_scheduler(e.time);
        break;
      }
      case EventType::kFinish: {
        const std::size_t idx = static_cast<std::size_t>(e.id);
        BGL_CHECK(idx < jobs_.size(), "finish event for unknown job");
        JobState& s = jobs_[idx];
        if (s.gen != e.tag || s.phase != JobPhase::kRunning) break;  // stale
        finish_job(idx, e.time);
        integrator_.set_free(usable_free_nodes());
        invoke_scheduler(e.time);
        break;
      }
      case EventType::kFailure: {
        const int node = static_cast<int>(e.id);
        ++result_.failures_total;
        // Feed the failure to the predictor before the kills it causes, so
        // the requeued victims are re-placed with the new evidence (same
        // order as the service's on_fail).
        predictor_->observe_failure(
            node, e.time,
            config_.failure_semantics == FailureSemantics::kDownFor
                ? config_.node_downtime
                : 0.0);
        if (pred_armed_) pred_failed_.set(node);
        if (ct_ != nullptr) ct_->add(obs::Counter::kDriverFailures);
        if (config_.record_replay) {
          result_.replay.push_back(
              ReplayEvent{e.time, ReplayEventType::kNodeFailure, 0, node, -1});
        }
        const std::vector<std::uint64_t> victims = torus_.allocations_containing(node);
        if (tr_ != nullptr) {
          tr_->event("node_failure", e.time)
              .field("node", node)
              .field("victims", static_cast<std::int64_t>(victims.size()))
              .field("down_for",
                     config_.failure_semantics == FailureSemantics::kDownFor
                         ? config_.node_downtime
                         : 0.0);
        }
        if (config_.failure_semantics == FailureSemantics::kDownFor &&
            config_.node_downtime > 0.0) {
          down_.set(node);
          // Block the node in the index. If a victim job still holds it,
          // this is a no-op and the victim's release below keeps it
          // blocked (index_release subtracts the down overlay).
          if (index_ != nullptr) index_->occupy_node(node);
          down_until_[static_cast<std::size_t>(node)] =
              std::max(down_until_[static_cast<std::size_t>(node)],
                       e.time + config_.node_downtime);
          events_.push(Event{e.time + config_.node_downtime, EventType::kCustom,
                             e.id, 0, 0});
        }
        if (!victims.empty()) ++result_.failures_hitting_jobs;
        for (const std::uint64_t id : victims) {
          kill_job(static_cast<std::size_t>(id), e.time);
        }
        if (!victims.empty() ||
            config_.failure_semantics == FailureSemantics::kDownFor) {
          integrator_.set_free(usable_free_nodes());
          invoke_scheduler(e.time);
        }
        break;
      }
      case EventType::kCustom: {
        // Node down-time expiry.
        const int node = static_cast<int>(e.id);
        if (down_.test(node) &&
            e.time + 1e-9 >= down_until_[static_cast<std::size_t>(node)]) {
          down_.reset(node);
          predictor_->observe_repair(node, e.time);
          // The node cannot be allocated while down, so releasing it in
          // the index exactly undoes the failure-time block.
          if (index_ != nullptr) index_->release_node(node);
          integrator_.set_free(usable_free_nodes());
          invoke_scheduler(e.time);
        }
        break;
      }
      case EventType::kCheckpoint:
        break;  // checkpoints are modelled analytically; no discrete events
    }
  }

  BGL_CHECK(jobs_done_ == jobs_.size(),
            "simulation ended with unfinished jobs (deadlock?)");

  result_.jobs_completed = jobs_done_;
  result_.span = max_finish_ - min_arrival_;
  result_.avg_wait = result_.wait_stats.mean();
  result_.avg_response = result_.response_stats.mean();
  result_.avg_bounded_slowdown = result_.slowdown_stats.mean();

  const double tn = result_.span * static_cast<double>(catalog_->num_nodes());
  if (tn > 0.0) {
    double useful = 0.0;
    for (const JobState& s : jobs_) {
      useful += static_cast<double>(s.job.size) * s.job.runtime;
    }
    result_.utilization = useful / tn;
    result_.unused = integrator_.unused_integral() / tn;
    result_.lost = 1.0 - result_.utilization - result_.unused;
  }

  if (tr_ != nullptr) {
    tr_->event("sim_end", max_finish_)
        .field("jobs_completed", static_cast<std::int64_t>(result_.jobs_completed))
        .field("span", result_.span)
        .field("avg_wait", result_.avg_wait)
        .field("avg_response", result_.avg_response)
        .field("avg_bounded_slowdown", result_.avg_bounded_slowdown)
        .field("utilization", result_.utilization)
        .field("unused", result_.unused)
        .field("lost", result_.lost)
        .field("job_kills", static_cast<std::int64_t>(result_.job_kills))
        .field("migrations", static_cast<std::int64_t>(result_.migrations))
        .field("checkpoints", static_cast<std::int64_t>(result_.checkpoints_taken))
        .field("work_lost_node_seconds", result_.work_lost_node_seconds);
    tr_->flush();
  }
  return result_;
}

}  // namespace

SimResult run_simulation(const Workload& workload, const FailureTrace& trace,
                         const SimConfig& config,
                         const PartitionCatalog* shared_catalog) {
  validate(config.dims);
  const auto t_begin = std::chrono::steady_clock::now();
  Driver driver(workload, trace, config, shared_catalog);
  SimResult result = driver.run();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_begin)
          .count();
  return result;
}

}  // namespace bgl
