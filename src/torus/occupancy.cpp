#include "torus/occupancy.hpp"

namespace bgl {

TorusOccupancy::TorusOccupancy(const PartitionCatalog& catalog)
    : catalog_(&catalog), occupied_(catalog.num_nodes()) {}

bool TorusOccupancy::is_free(int entry_index) const {
  BGL_CHECK(entry_index >= 0 && entry_index < catalog_->num_entries(),
            "entry index out of range");
  return !catalog_->entry(entry_index).mask.intersects(occupied_);
}

void TorusOccupancy::allocate(std::uint64_t alloc_id, int entry_index) {
  BGL_CHECK(is_free(entry_index), "allocating an occupied partition");
  BGL_CHECK(allocations_.find(alloc_id) == allocations_.end(),
            "allocation id already in use");
  allocations_.emplace(alloc_id, entry_index);
  occupied_ |= catalog_->entry(entry_index).mask;
}

void TorusOccupancy::release(std::uint64_t alloc_id) {
  const auto it = allocations_.find(alloc_id);
  BGL_CHECK(it != allocations_.end(), "releasing unknown allocation id");
  occupied_.subtract(catalog_->entry(it->second).mask);
  allocations_.erase(it);
}

int TorusOccupancy::entry_of(std::uint64_t alloc_id) const {
  const auto it = allocations_.find(alloc_id);
  return it == allocations_.end() ? -1 : it->second;
}

std::vector<std::uint64_t> TorusOccupancy::allocations_containing(int node) const {
  std::vector<std::uint64_t> ids;
  for (const auto& [id, entry_index] : allocations_) {
    if (catalog_->entry(entry_index).mask.test(node)) ids.push_back(id);
  }
  return ids;
}

std::vector<std::uint64_t> TorusOccupancy::allocation_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(allocations_.size());
  for (const auto& [id, entry_index] : allocations_) {
    (void)entry_index;
    ids.push_back(id);
  }
  return ids;
}

void TorusOccupancy::clear() {
  allocations_.clear();
  occupied_.clear();
}

}  // namespace bgl
