#include "torus/coords.hpp"

#include <sstream>

namespace bgl {

const char* to_string(Topology topology) {
  switch (topology) {
    case Topology::kTorus: return "torus";
    case Topology::kMesh: return "mesh";
  }
  return "?";
}

std::string to_string(const Coord& c) {
  std::ostringstream os;
  os << '(' << c.x << ", " << c.y << ", " << c.z << ')';
  return os.str();
}

std::string to_string(const Dims& d) {
  std::ostringstream os;
  os << d.x << 'x' << d.y << 'x' << d.z;
  return os.str();
}

void validate(const Dims& dims) {
  if (dims.x <= 0 || dims.y <= 0 || dims.z <= 0) {
    throw ConfigError("torus dimensions must be positive, got " + to_string(dims));
  }
}

}  // namespace bgl
