#include "torus/nodeset.hpp"

#include <bit>

#include "util/rng.hpp"

namespace bgl {

NodeSet::NodeSet(int bits) : bits_(bits), words_((bits + 63) / 64, 0) {
  BGL_CHECK(bits >= 0, "NodeSet size must be non-negative");
}

int NodeSet::count() const {
  int total = 0;
  for (const std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

void NodeSet::set(int id) {
  BGL_CHECK(id >= 0 && id < bits_, "NodeSet::set out of range");
  words_[id >> 6] |= (1ULL << (id & 63));
}

void NodeSet::reset(int id) {
  BGL_CHECK(id >= 0 && id < bits_, "NodeSet::reset out of range");
  words_[id >> 6] &= ~(1ULL << (id & 63));
}

bool NodeSet::test(int id) const {
  BGL_CHECK(id >= 0 && id < bits_, "NodeSet::test out of range");
  return (words_[id >> 6] >> (id & 63)) & 1ULL;
}

void NodeSet::clear() {
  for (std::uint64_t& w : words_) w = 0;
}

void NodeSet::fill() {
  for (int id = 0; id < bits_; ++id) set(id);
}

bool NodeSet::intersects(const NodeSet& other) const {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

int NodeSet::intersect_count(const NodeSet& other) const {
  check_compatible(other);
  int total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += std::popcount(words_[i] & other.words_[i]);
  }
  return total;
}

bool NodeSet::intersects_or(const NodeSet& a, const NodeSet& b) const {
  check_compatible(a);
  check_compatible(b);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & (a.words_[i] | b.words_[i])) return true;
  }
  return false;
}

bool NodeSet::is_subset_of(const NodeSet& other) const {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

NodeSet& NodeSet::operator|=(const NodeSet& other) {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

NodeSet& NodeSet::operator&=(const NodeSet& other) {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

NodeSet& NodeSet::subtract(const NodeSet& other) {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

std::uint64_t NodeSet::hash() const {
  std::uint64_t h = 0x2545f4914f6cdd1dULL ^ static_cast<std::uint64_t>(bits_);
  for (const std::uint64_t w : words_) h = hash_combine(h, w);
  return h;
}

std::vector<int> NodeSet::to_ids() const {
  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(count()));
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w) {
      const int bit = std::countr_zero(w);
      ids.push_back(static_cast<int>(wi * 64) + bit);
      w &= w - 1;
    }
  }
  return ids;
}

void NodeSet::check_compatible(const NodeSet& other) const {
  BGL_CHECK(bits_ == other.bits_, "NodeSet size mismatch");
}

}  // namespace bgl
