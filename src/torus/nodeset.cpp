#include "torus/nodeset.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/rng.hpp"

namespace bgl {

namespace {

// 4-word unrolled kernels. The unrolled bodies OR partial results together so
// the compiler can keep four independent chains in flight; the scalar tail
// handles the last n % 4 words.

inline bool words_any(const std::uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (a[i] | a[i + 1] | a[i + 2] | a[i + 3]) return true;
  }
  for (; i < n; ++i) {
    if (a[i]) return true;
  }
  return false;
}

inline int words_popcount(const std::uint64_t* a, std::size_t n) {
  int c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += std::popcount(a[i]);
    c1 += std::popcount(a[i + 1]);
    c2 += std::popcount(a[i + 2]);
    c3 += std::popcount(a[i + 3]);
  }
  for (; i < n; ++i) c0 += std::popcount(a[i]);
  return c0 + c1 + c2 + c3;
}

inline bool words_intersect(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if ((a[i] & b[i]) | (a[i + 1] & b[i + 1]) | (a[i + 2] & b[i + 2]) |
        (a[i + 3] & b[i + 3])) {
      return true;
    }
  }
  for (; i < n; ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

}  // namespace

NodeSet::NodeSet(int bits)
    : bits_(bits), nwords_(static_cast<std::size_t>((bits + 63) / 64)) {
  BGL_CHECK(bits >= 0, "NodeSet size must be non-negative");
  if (nwords_ > kInlineWords) {
    heap_ = std::make_unique<std::uint64_t[]>(nwords_);
    std::memset(heap_.get(), 0, nwords_ * sizeof(std::uint64_t));
  }
}

NodeSet::NodeSet(const NodeSet& other) : bits_(other.bits_), nwords_(other.nwords_) {
  if (nwords_ > kInlineWords) {
    heap_ = std::make_unique<std::uint64_t[]>(nwords_);
    std::memcpy(heap_.get(), other.heap_.get(), nwords_ * sizeof(std::uint64_t));
  } else {
    inline_[0] = other.inline_[0];
    inline_[1] = other.inline_[1];
  }
}

NodeSet::NodeSet(NodeSet&& other) noexcept
    : bits_(other.bits_), nwords_(other.nwords_), heap_(std::move(other.heap_)) {
  inline_[0] = other.inline_[0];
  inline_[1] = other.inline_[1];
  other.bits_ = 0;
  other.nwords_ = 0;
  other.inline_[0] = other.inline_[1] = 0;
}

NodeSet& NodeSet::operator=(const NodeSet& other) {
  if (this == &other) return *this;
  if (other.nwords_ > kInlineWords) {
    // Reuse an existing allocation of the right width — the scheduler's
    // per-pass `occ = occupied` copies hit this path every invocation.
    if (nwords_ != other.nwords_ || !heap_) {
      heap_ = std::make_unique<std::uint64_t[]>(other.nwords_);
    }
    std::memcpy(heap_.get(), other.heap_.get(),
                other.nwords_ * sizeof(std::uint64_t));
  } else {
    heap_.reset();
    inline_[0] = other.inline_[0];
    inline_[1] = other.inline_[1];
  }
  bits_ = other.bits_;
  nwords_ = other.nwords_;
  return *this;
}

NodeSet& NodeSet::operator=(NodeSet&& other) noexcept {
  if (this == &other) return *this;
  bits_ = other.bits_;
  nwords_ = other.nwords_;
  heap_ = std::move(other.heap_);
  inline_[0] = other.inline_[0];
  inline_[1] = other.inline_[1];
  other.bits_ = 0;
  other.nwords_ = 0;
  other.inline_[0] = other.inline_[1] = 0;
  return *this;
}

bool NodeSet::empty() const { return !words_any(data(), nwords_); }

int NodeSet::count() const { return words_popcount(data(), nwords_); }

void NodeSet::set(int id) {
  BGL_CHECK(id >= 0 && id < bits_, "NodeSet::set out of range");
  data()[id >> 6] |= (1ULL << (id & 63));
}

void NodeSet::reset(int id) {
  BGL_CHECK(id >= 0 && id < bits_, "NodeSet::reset out of range");
  data()[id >> 6] &= ~(1ULL << (id & 63));
}

bool NodeSet::test(int id) const {
  BGL_CHECK(id >= 0 && id < bits_, "NodeSet::test out of range");
  return (data()[id >> 6] >> (id & 63)) & 1ULL;
}

void NodeSet::clear() {
  std::memset(data(), 0, nwords_ * sizeof(std::uint64_t));
}

void NodeSet::fill() {
  if (bits_ == 0) return;
  std::uint64_t* w = data();
  std::memset(w, 0xff, nwords_ * sizeof(std::uint64_t));
  const int tail = bits_ & 63;
  if (tail != 0) w[nwords_ - 1] = (1ULL << tail) - 1;
}

bool NodeSet::intersects(const NodeSet& other) const {
  check_compatible(other);
  return words_intersect(data(), other.data(), nwords_);
}

int NodeSet::intersect_count(const NodeSet& other) const {
  check_compatible(other);
  const std::uint64_t* a = data();
  const std::uint64_t* b = other.data();
  int c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= nwords_; i += 4) {
    c0 += std::popcount(a[i] & b[i]);
    c1 += std::popcount(a[i + 1] & b[i + 1]);
    c2 += std::popcount(a[i + 2] & b[i + 2]);
    c3 += std::popcount(a[i + 3] & b[i + 3]);
  }
  for (; i < nwords_; ++i) c0 += std::popcount(a[i] & b[i]);
  return c0 + c1 + c2 + c3;
}

bool NodeSet::intersects_or(const NodeSet& a, const NodeSet& b) const {
  check_compatible(a);
  check_compatible(b);
  const std::uint64_t* w = data();
  const std::uint64_t* wa = a.data();
  const std::uint64_t* wb = b.data();
  std::size_t i = 0;
  for (; i + 4 <= nwords_; i += 4) {
    if ((w[i] & (wa[i] | wb[i])) | (w[i + 1] & (wa[i + 1] | wb[i + 1])) |
        (w[i + 2] & (wa[i + 2] | wb[i + 2])) |
        (w[i + 3] & (wa[i + 3] | wb[i + 3]))) {
      return true;
    }
  }
  for (; i < nwords_; ++i) {
    if (w[i] & (wa[i] | wb[i])) return true;
  }
  return false;
}

bool NodeSet::is_subset_of(const NodeSet& other) const {
  check_compatible(other);
  const std::uint64_t* a = data();
  const std::uint64_t* b = other.data();
  std::size_t i = 0;
  for (; i + 4 <= nwords_; i += 4) {
    if ((a[i] & ~b[i]) | (a[i + 1] & ~b[i + 1]) | (a[i + 2] & ~b[i + 2]) |
        (a[i + 3] & ~b[i + 3])) {
      return false;
    }
  }
  for (; i < nwords_; ++i) {
    if (a[i] & ~b[i]) return false;
  }
  return true;
}

bool NodeSet::any_in_word_range(std::size_t word_begin, std::size_t word_end) const {
  word_end = std::min(word_end, nwords_);
  if (word_begin >= word_end) return false;
  return words_any(data() + word_begin, word_end - word_begin);
}

NodeSet& NodeSet::operator|=(const NodeSet& other) {
  check_compatible(other);
  std::uint64_t* a = data();
  const std::uint64_t* b = other.data();
  for (std::size_t i = 0; i < nwords_; ++i) a[i] |= b[i];
  return *this;
}

NodeSet& NodeSet::operator&=(const NodeSet& other) {
  check_compatible(other);
  std::uint64_t* a = data();
  const std::uint64_t* b = other.data();
  for (std::size_t i = 0; i < nwords_; ++i) a[i] &= b[i];
  return *this;
}

NodeSet& NodeSet::subtract(const NodeSet& other) {
  check_compatible(other);
  std::uint64_t* a = data();
  const std::uint64_t* b = other.data();
  for (std::size_t i = 0; i < nwords_; ++i) a[i] &= ~b[i];
  return *this;
}

bool operator==(const NodeSet& a, const NodeSet& b) {
  if (a.bits_ != b.bits_) return false;
  return std::memcmp(a.data(), b.data(), a.nwords_ * sizeof(std::uint64_t)) == 0;
}

std::uint64_t NodeSet::hash() const {
  std::uint64_t h = 0x2545f4914f6cdd1dULL ^ static_cast<std::uint64_t>(bits_);
  const std::uint64_t* w = data();
  for (std::size_t i = 0; i < nwords_; ++i) h = hash_combine(h, w[i]);
  return h;
}

std::vector<int> NodeSet::to_ids() const {
  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(count()));
  const std::uint64_t* words = data();
  for (std::size_t wi = 0; wi < nwords_; ++wi) {
    std::uint64_t w = words[wi];
    while (w) {
      const int bit = std::countr_zero(w);
      ids.push_back(static_cast<int>(wi * 64) + bit);
      w &= w - 1;
    }
  }
  return ids;
}

void NodeSet::check_compatible(const NodeSet& other) const {
  BGL_CHECK(bits_ == other.bits_, "NodeSet size mismatch");
}

}  // namespace bgl
