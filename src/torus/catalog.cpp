#include "torus/catalog.hpp"

#include <algorithm>
#include <bit>
#include <tuple>

namespace bgl {

const char* to_string(CatalogOptions::Mode mode) {
  switch (mode) {
    case CatalogOptions::Mode::kBoxes: return "boxes";
    case CatalogOptions::Mode::kBlocks: return "blocks";
  }
  return "?";
}

PartitionCatalog::PartitionCatalog(Dims dims, Topology topology, CatalogOptions options)
    : dims_(dims), topology_(topology), options_(options) {
  validate(dims_);
  if (options_.mode == CatalogOptions::Mode::kBoxes) {
    build_boxes();
  } else {
    build_blocks();
  }
  finalize_entries();
}

void PartitionCatalog::build_boxes() {
  // Enumerate every canonical (shape, base) pair. On the torus a full-extent
  // dimension has one canonical base (all wrap-equivalent); on a mesh a box
  // of extent e admits exactly D - e + 1 non-wrapping bases.
  const bool mesh = topology_ == Topology::kMesh;
  for (int sx = 1; sx <= dims_.x; ++sx) {
    for (int sy = 1; sy <= dims_.y; ++sy) {
      for (int sz = 1; sz <= dims_.z; ++sz) {
        const int bx_max = mesh ? dims_.x - sx + 1 : ((sx == dims_.x) ? 1 : dims_.x);
        const int by_max = mesh ? dims_.y - sy + 1 : ((sy == dims_.y) ? 1 : dims_.y);
        const int bz_max = mesh ? dims_.z - sz + 1 : ((sz == dims_.z) ? 1 : dims_.z);
        for (int bx = 0; bx < bx_max; ++bx) {
          for (int by = 0; by < by_max; ++by) {
            for (int bz = 0; bz < bz_max; ++bz) {
              Entry e;
              e.box = Box{Coord{bx, by, bz}, Triple{sx, sy, sz}};
              e.mask = box_mask(dims_, e.box);
              e.size = e.box.volume();
              entries_.push_back(std::move(e));
            }
          }
        }
      }
    }
  }
}

void PartitionCatalog::build_blocks() {
  // Aligned power-of-two blocks of contiguous node ids. With power-of-two
  // extents and the row-major layout id = x + X*(y + Y*z), the aligned range
  // [base, base + s) is exactly one axis-aligned box:
  //   s <= X            -> s x 1 x 1 at (base % X, ...)
  //   X < s <= X*Y      -> X x s/X x 1 (full rows)
  //   s > X*Y           -> X x Y x s/(X*Y) (full planes)
  // so the blocks catalog is a strict subset of the boxes catalog and every
  // downstream consumer (masks, traces, audit) sees ordinary boxes.
  BGL_CHECK(std::has_single_bit(static_cast<unsigned>(dims_.x)) &&
                std::has_single_bit(static_cast<unsigned>(dims_.y)) &&
                std::has_single_bit(static_cast<unsigned>(dims_.z)),
            "blocks catalog requires power-of-two dims");
  const int volume = dims_.volume();
  int min_block = options_.min_block;
  if (min_block < 1) min_block = 1;
  if (min_block > volume) min_block = volume;
  min_block = static_cast<int>(std::bit_ceil(static_cast<unsigned>(min_block)));
  options_.min_block = min_block;

  for (int s = volume; s >= min_block; s /= 2) {
    for (int base = 0; base + s <= volume; base += s) {
      Entry e;
      const Coord c = coord_of(dims_, base);
      if (s <= dims_.x) {
        e.box = Box{c, Triple{s, 1, 1}};
      } else if (s <= dims_.x * dims_.y) {
        e.box = Box{Coord{0, c.y, c.z}, Triple{dims_.x, s / dims_.x, 1}};
      } else {
        e.box = Box{Coord{0, 0, c.z}, Triple{dims_.x, dims_.y, s / (dims_.x * dims_.y)}};
      }
      e.mask = box_mask(dims_, e.box);
      e.size = s;
      entries_.push_back(std::move(e));
    }
  }
}

void PartitionCatalog::finalize_entries() {
  const int volume = dims_.volume();

  auto key = [](const Entry& e) {
    return std::make_tuple(-e.size, e.box.shape.x, e.box.shape.y, e.box.shape.z,
                           e.box.base.x, e.box.base.y, e.box.base.z);
  };
  std::sort(entries_.begin(), entries_.end(),
            [&](const Entry& a, const Entry& b) { return key(a) < key(b); });

  // Tightest word span (and solidity) per entry — the scan kernels only ever
  // touch words inside this span.
  for (Entry& e : entries_) {
    const NodeSet::WordSpan words = e.mask.words();
    std::size_t begin = words.size();
    std::size_t end = 0;
    bool solid = true;
    for (std::size_t w = 0; w < words.size(); ++w) {
      if (words[w] == 0) continue;
      if (begin == words.size()) begin = w;
      end = w + 1;
    }
    if (begin == words.size()) {
      begin = end = 0;
      solid = false;
    } else {
      for (std::size_t w = begin; w < end; ++w) {
        if (words[w] != ~0ULL) {
          solid = false;
          break;
        }
      }
    }
    e.word_begin = begin;
    e.word_end = end;
    e.solid = solid;
  }

  range_by_size_.assign(static_cast<std::size_t>(volume) + 1, {0, 0});
  for (int i = 0; i < num_entries();) {
    int j = i;
    while (j < num_entries() && entries_[static_cast<std::size_t>(j)].size ==
                                    entries_[static_cast<std::size_t>(i)].size) {
      ++j;
    }
    range_by_size_[static_cast<std::size_t>(entries_[static_cast<std::size_t>(i)].size)] = {i, j};
    i = j;
  }

  allocatable_size_.assign(static_cast<std::size_t>(volume) + 1, -1);
  int best = -1;
  for (int s = volume; s >= 1; --s) {
    const auto [first, last] = range_by_size_[static_cast<std::size_t>(s)];
    if (first != last) best = s;
    allocatable_size_[static_cast<std::size_t>(s)] = best;
  }
  // Slot 0 exists only so the table is indexed directly by s; the public
  // contract clamps s <= 0 to 1 before the lookup, so it must agree with
  // slot 1. In boxes mode the 1x1x1 partition always exists (both are 1); in
  // blocks mode degenerate requests round up to the smallest block.
  allocatable_size_[0] = allocatable_size_[1];
}

std::pair<int, int> PartitionCatalog::size_range(int s) const {
  if (s < 0 || s > num_nodes()) return {0, 0};
  return range_by_size_[static_cast<std::size_t>(s)];
}

int PartitionCatalog::allocatable_size(int s) const {
  if (s > num_nodes()) return -1;
  if (s <= 0) s = 1;  // degenerate requests round up to the smallest partition
  return allocatable_size_[static_cast<std::size_t>(s)];
}

bool PartitionCatalog::entry_free(const Entry& e, const NodeSet& occ) const {
  if (options_.full_width_scans) {
    return !occ.intersects(e.mask);
  }
  if (e.solid) return !occ.any_in_word_range(e.word_begin, e.word_end);
  const NodeSet::WordSpan mask_words = e.mask.words();
  const NodeSet::WordSpan occ_words = occ.words();
  for (std::size_t w = e.word_begin; w < e.word_end; ++w) {
    if (mask_words[w] & occ_words[w]) return false;
  }
  return true;
}

bool PartitionCatalog::entry_free_with(const Entry& e, const NodeSet& occ,
                                       const NodeSet& extra) const {
  if (options_.full_width_scans) {
    return !e.mask.intersects_or(occ, extra);
  }
  const NodeSet::WordSpan occ_words = occ.words();
  const NodeSet::WordSpan extra_words = extra.words();
  if (e.solid) {
    for (std::size_t w = e.word_begin; w < e.word_end; ++w) {
      if (occ_words[w] | extra_words[w]) return false;
    }
    return true;
  }
  const NodeSet::WordSpan mask_words = e.mask.words();
  for (std::size_t w = e.word_begin; w < e.word_end; ++w) {
    if (mask_words[w] & (occ_words[w] | extra_words[w])) return false;
  }
  return true;
}

int PartitionCatalog::first_free_index(const NodeSet& occ, int start_index) const {
  for (int i = std::max(start_index, 0); i < num_entries(); ++i) {
    if (entry_free(entries_[static_cast<std::size_t>(i)], occ)) return i;
  }
  return -1;
}

int PartitionCatalog::first_free_index_with(const NodeSet& occ, const NodeSet& extra,
                                            int start_index) const {
  for (int i = std::max(start_index, 0); i < num_entries(); ++i) {
    if (entry_free_with(entries_[static_cast<std::size_t>(i)], occ, extra)) return i;
  }
  return -1;
}

int PartitionCatalog::mfp(const NodeSet& occ) const {
  const int index = first_free_index(occ);
  return index < 0 ? 0 : entries_[static_cast<std::size_t>(index)].size;
}

int PartitionCatalog::mfp_with(const NodeSet& occ, const NodeSet& extra,
                               int mfp_hint) const {
  const int index = first_free_index_with(occ, extra, mfp_hint);
  return index < 0 ? 0 : entries_[static_cast<std::size_t>(index)].size;
}

bool PartitionCatalog::has_free_of_size(const NodeSet& occ, int s) const {
  const auto [first, last] = size_range(s);
  for (int i = first; i < last; ++i) {
    if (entry_free(entries_[static_cast<std::size_t>(i)], occ)) return true;
  }
  return false;
}

}  // namespace bgl
