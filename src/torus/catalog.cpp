#include "torus/catalog.hpp"

#include <algorithm>
#include <tuple>

namespace bgl {

PartitionCatalog::PartitionCatalog(Dims dims, Topology topology)
    : dims_(dims), topology_(topology) {
  validate(dims_);
  const int volume = dims_.volume();

  // Enumerate every canonical (shape, base) pair. On the torus a full-extent
  // dimension has one canonical base (all wrap-equivalent); on a mesh a box
  // of extent e admits exactly D - e + 1 non-wrapping bases.
  const bool mesh = topology_ == Topology::kMesh;
  for (int sx = 1; sx <= dims_.x; ++sx) {
    for (int sy = 1; sy <= dims_.y; ++sy) {
      for (int sz = 1; sz <= dims_.z; ++sz) {
        const int bx_max = mesh ? dims_.x - sx + 1 : ((sx == dims_.x) ? 1 : dims_.x);
        const int by_max = mesh ? dims_.y - sy + 1 : ((sy == dims_.y) ? 1 : dims_.y);
        const int bz_max = mesh ? dims_.z - sz + 1 : ((sz == dims_.z) ? 1 : dims_.z);
        for (int bx = 0; bx < bx_max; ++bx) {
          for (int by = 0; by < by_max; ++by) {
            for (int bz = 0; bz < bz_max; ++bz) {
              Entry e;
              e.box = Box{Coord{bx, by, bz}, Triple{sx, sy, sz}};
              e.mask = box_mask(dims_, e.box);
              e.size = e.box.volume();
              entries_.push_back(std::move(e));
            }
          }
        }
      }
    }
  }

  auto key = [](const Entry& e) {
    return std::make_tuple(-e.size, e.box.shape.x, e.box.shape.y, e.box.shape.z,
                           e.box.base.x, e.box.base.y, e.box.base.z);
  };
  std::sort(entries_.begin(), entries_.end(),
            [&](const Entry& a, const Entry& b) { return key(a) < key(b); });

  range_by_size_.assign(static_cast<std::size_t>(volume) + 1, {0, 0});
  for (int i = 0; i < num_entries();) {
    int j = i;
    while (j < num_entries() && entries_[static_cast<std::size_t>(j)].size ==
                                    entries_[static_cast<std::size_t>(i)].size) {
      ++j;
    }
    range_by_size_[static_cast<std::size_t>(entries_[static_cast<std::size_t>(i)].size)] = {i, j};
    i = j;
  }

  allocatable_size_.assign(static_cast<std::size_t>(volume) + 1, -1);
  int best = -1;
  for (int s = volume; s >= 1; --s) {
    const auto [first, last] = range_by_size_[static_cast<std::size_t>(s)];
    if (first != last) best = s;
    allocatable_size_[static_cast<std::size_t>(s)] = best;
  }
  // Slot 0 exists only so the table is indexed directly by s; the public
  // contract clamps s <= 0 to 1 before the lookup, so it must agree with
  // slot 1 (the 1x1x1 partition always exists, hence both are 1).
  allocatable_size_[0] = allocatable_size_[1];
}

std::pair<int, int> PartitionCatalog::size_range(int s) const {
  if (s < 0 || s > num_nodes()) return {0, 0};
  return range_by_size_[static_cast<std::size_t>(s)];
}

int PartitionCatalog::allocatable_size(int s) const {
  if (s > num_nodes()) return -1;
  if (s <= 0) s = 1;  // degenerate requests round up to the smallest partition
  return allocatable_size_[static_cast<std::size_t>(s)];
}

int PartitionCatalog::first_free_index(const NodeSet& occ, int start_index) const {
  const auto& occ_words = occ.words();
  for (int i = std::max(start_index, 0); i < num_entries(); ++i) {
    const auto& mask_words = entries_[static_cast<std::size_t>(i)].mask.words();
    bool free = true;
    for (std::size_t w = 0; w < mask_words.size(); ++w) {
      if (mask_words[w] & occ_words[w]) {
        free = false;
        break;
      }
    }
    if (free) return i;
  }
  return -1;
}

int PartitionCatalog::first_free_index_with(const NodeSet& occ, const NodeSet& extra,
                                            int start_index) const {
  const auto& occ_words = occ.words();
  const auto& extra_words = extra.words();
  for (int i = std::max(start_index, 0); i < num_entries(); ++i) {
    const auto& mask_words = entries_[static_cast<std::size_t>(i)].mask.words();
    bool free = true;
    for (std::size_t w = 0; w < mask_words.size(); ++w) {
      if (mask_words[w] & (occ_words[w] | extra_words[w])) {
        free = false;
        break;
      }
    }
    if (free) return i;
  }
  return -1;
}

int PartitionCatalog::mfp(const NodeSet& occ) const {
  const int index = first_free_index(occ);
  return index < 0 ? 0 : entries_[static_cast<std::size_t>(index)].size;
}

int PartitionCatalog::mfp_with(const NodeSet& occ, const NodeSet& extra,
                               int mfp_hint) const {
  const int index = first_free_index_with(occ, extra, mfp_hint);
  return index < 0 ? 0 : entries_[static_cast<std::size_t>(index)].size;
}

void PartitionCatalog::free_entries_of_size(const NodeSet& occ, int s,
                                            std::vector<int>& out) const {
  const auto [first, last] = size_range(s);
  const auto& occ_words = occ.words();
  for (int i = first; i < last; ++i) {
    const auto& mask_words = entries_[static_cast<std::size_t>(i)].mask.words();
    bool free = true;
    for (std::size_t w = 0; w < mask_words.size(); ++w) {
      if (mask_words[w] & occ_words[w]) {
        free = false;
        break;
      }
    }
    if (free) out.push_back(i);
  }
}

bool PartitionCatalog::has_free_of_size(const NodeSet& occ, int s) const {
  const auto [first, last] = size_range(s);
  const auto& occ_words = occ.words();
  for (int i = first; i < last; ++i) {
    const auto& mask_words = entries_[static_cast<std::size_t>(i)].mask.words();
    bool free = true;
    for (std::size_t w = 0; w < mask_words.size(); ++w) {
      if (mask_words[w] & occ_words[w]) {
        free = false;
        break;
      }
    }
    if (free) return true;
  }
  return false;
}

}  // namespace bgl
