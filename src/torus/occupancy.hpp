// Allocation tracking on top of the partition catalog.
//
// TorusOccupancy owns the occupied-node bitset and the set of live
// allocations (one per running job). Allocations are identified by caller-
// chosen 64-bit ids (the simulator uses job ids).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "torus/catalog.hpp"

namespace bgl {

class TorusOccupancy {
 public:
  explicit TorusOccupancy(const PartitionCatalog& catalog);

  const PartitionCatalog& catalog() const { return *catalog_; }
  const NodeSet& occupied() const { return occupied_; }
  int free_nodes() const { return catalog_->num_nodes() - occupied_.count(); }
  int busy_nodes() const { return occupied_.count(); }
  std::size_t num_allocations() const { return allocations_.size(); }

  /// True if catalog entry `entry_index` does not overlap any allocation.
  bool is_free(int entry_index) const;

  /// Allocate catalog entry `entry_index` to `alloc_id`. The entry must be
  /// free and the id unused.
  void allocate(std::uint64_t alloc_id, int entry_index);

  /// Release the allocation; throws if the id is unknown.
  void release(std::uint64_t alloc_id);

  /// Catalog entry index held by `alloc_id`, or -1.
  int entry_of(std::uint64_t alloc_id) const;

  /// Ids of allocations whose partition contains `node`.
  std::vector<std::uint64_t> allocations_containing(int node) const;

  /// All live allocation ids (unordered).
  std::vector<std::uint64_t> allocation_ids() const;

  /// Drop all allocations (used by the migration re-packer on its scratch).
  void clear();

 private:
  const PartitionCatalog* catalog_;
  NodeSet occupied_;
  std::unordered_map<std::uint64_t, int> allocations_;
};

}  // namespace bgl
