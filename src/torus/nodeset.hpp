// Dense bitset over torus nodes.
//
// The scheduler's hot loops are "is this partition free" tests, which reduce
// to word-wise AND over at most a handful of 64-bit words (128 supernodes =
// 2 words). NodeSet keeps the words in a small vector and exposes allocation-
// free combined tests (intersects_or) so the partition catalog can test
// (occupancy | candidate) against an entry mask without building temporaries.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace bgl {

class NodeSet {
 public:
  NodeSet() = default;

  /// An empty set over `bits` node ids.
  explicit NodeSet(int bits);

  int bits() const { return bits_; }
  bool empty() const { return count() == 0; }
  int count() const;

  void set(int id);
  void reset(int id);
  bool test(int id) const;
  void clear();
  void fill();  ///< Set all `bits` bits.

  /// True if this and other share any set bit.
  bool intersects(const NodeSet& other) const;

  /// Number of bits set in (this & other).
  int intersect_count(const NodeSet& other) const;

  /// True if this intersects (a | b); avoids materialising the union.
  bool intersects_or(const NodeSet& a, const NodeSet& b) const;

  /// True if every set bit of this is also set in other.
  bool is_subset_of(const NodeSet& other) const;

  NodeSet& operator|=(const NodeSet& other);
  NodeSet& operator&=(const NodeSet& other);
  NodeSet& subtract(const NodeSet& other);  ///< this &= ~other

  friend bool operator==(const NodeSet&, const NodeSet&) = default;

  /// Stable 64-bit hash for dedup containers.
  std::uint64_t hash() const;

  /// Set-bit node ids in ascending order.
  std::vector<int> to_ids() const;

  /// Direct word access for the catalog's fused-scan loops.
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  void check_compatible(const NodeSet& other) const;

  int bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace bgl
