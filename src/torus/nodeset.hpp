// Dense bitset over torus nodes.
//
// The scheduler's hot loops are "is this partition free" tests, which reduce
// to word-wise AND over 64-bit words. At the paper's scheduler-visible scale
// (128 supernodes = 2 words) the words live inline in the object — no heap
// allocation at all — while the full 64x32x32 BlueGene/L machine (65 536
// nodes = 1 024 words) spills to a flat heap array. All kernels run over
// 4-word unrolled strides and NodeSet exposes allocation-free combined tests
// (intersects_or) plus word-range probes (any_in_word_range) so the partition
// catalog can test (occupancy | candidate) against an entry mask without
// building temporaries and without touching words outside the entry's span.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/error.hpp"

namespace bgl {

class NodeSet {
 public:
  /// Lightweight read-only view of the backing words (the catalog's fused
  /// scan loops index this directly). Valid until the NodeSet is resized,
  /// assigned, or destroyed.
  struct WordSpan {
    const std::uint64_t* data = nullptr;
    std::size_t count = 0;
    std::size_t size() const { return count; }
    std::uint64_t operator[](std::size_t i) const { return data[i]; }
    const std::uint64_t* begin() const { return data; }
    const std::uint64_t* end() const { return data + count; }
  };

  NodeSet() = default;

  /// An empty set over `bits` node ids.
  explicit NodeSet(int bits);

  NodeSet(const NodeSet& other);
  NodeSet(NodeSet&& other) noexcept;
  NodeSet& operator=(const NodeSet& other);
  NodeSet& operator=(NodeSet&& other) noexcept;
  ~NodeSet() = default;

  int bits() const { return bits_; }
  bool empty() const;  ///< Early-exits on the first nonzero word.
  int count() const;

  void set(int id);
  void reset(int id);
  bool test(int id) const;
  void clear();
  void fill();  ///< Set all `bits` bits.

  /// True if this and other share any set bit.
  bool intersects(const NodeSet& other) const;

  /// Number of bits set in (this & other).
  int intersect_count(const NodeSet& other) const;

  /// True if this intersects (a | b); avoids materialising the union.
  bool intersects_or(const NodeSet& a, const NodeSet& b) const;

  /// True if every set bit of this is also set in other.
  bool is_subset_of(const NodeSet& other) const;

  /// True if any bit is set in words [word_begin, word_end). The catalog's
  /// scan loops use this to probe only the span an entry can occupy.
  bool any_in_word_range(std::size_t word_begin, std::size_t word_end) const;

  NodeSet& operator|=(const NodeSet& other);
  NodeSet& operator&=(const NodeSet& other);
  NodeSet& subtract(const NodeSet& other);  ///< this &= ~other

  friend bool operator==(const NodeSet& a, const NodeSet& b);

  /// Stable 64-bit hash for dedup containers.
  std::uint64_t hash() const;

  /// Set-bit node ids in ascending order.
  std::vector<int> to_ids() const;

  /// Direct word access for the catalog's fused-scan loops.
  WordSpan words() const { return {data(), nwords_}; }

  /// Mutable word access for incremental maintainers (the partition index's
  /// bulk delta loops). Bits at or above bits() must stay zero.
  std::uint64_t* mutable_words() { return data(); }

 private:
  // 128 supernodes (the paper's scheduler-visible machine) fit the inline
  // buffer exactly; anything larger takes one flat allocation.
  static constexpr std::size_t kInlineWords = 2;

  const std::uint64_t* data() const {
    return nwords_ <= kInlineWords ? inline_ : heap_.get();
  }
  std::uint64_t* data() {
    return nwords_ <= kInlineWords ? inline_ : heap_.get();
  }
  void check_compatible(const NodeSet& other) const;

  int bits_ = 0;
  std::size_t nwords_ = 0;
  std::uint64_t inline_[kInlineWords] = {0, 0};
  std::unique_ptr<std::uint64_t[]> heap_;
};

}  // namespace bgl
