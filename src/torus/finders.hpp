// Generic free-partition finder algorithms (Appendix 9 of the paper).
//
// Three algorithms for "find every free, contiguous, rectangular partition
// of size s on a (possibly partially occupied) torus":
//
//   1. find_free_naive    — enumerate all boxes of every size, check each
//                           node, filter by size. O(M^9) on an empty
//                           M x M x M torus (the paper's strawman).
//   2. find_free_pop      — Krevat et al.'s Projection-of-Partitions idea:
//                           project z-slabs to 2-D occupancy incrementally
//                           and enumerate free rectangles per slab. O(M^5).
//   3. find_free_divisor  — the paper's Appendix-9 algorithm: enumerate only
//                           divisor-triple shapes of s and skip occupied
//                           stretches while scanning bases.
//
// All three return the identical canonical box set (property-tested); the
// PartitionCatalog is the production path and is validated against them.
#pragma once

#include <vector>

#include "torus/coords.hpp"
#include "torus/nodeset.hpp"
#include "torus/partition.hpp"

namespace bgl {

/// Deterministic ordering for finder results (so sets can be compared).
void sort_boxes(std::vector<Box>& boxes);

/// All canonical free boxes of every size. The naive algorithm's first phase.
std::vector<Box> find_free_all_naive(const Dims& dims, const NodeSet& occ);

/// Naive: all free boxes, then filter by volume == s.
std::vector<Box> find_free_naive(const Dims& dims, const NodeSet& occ, int s);

/// Projection-of-Partitions (POP): O(M^5)-family algorithm.
/// Contract: s < 1 throws ContractViolation (a partition has at least one
/// node); s > dims.volume() returns the empty set without scanning.
std::vector<Box> find_free_pop(const Dims& dims, const NodeSet& occ, int s);

/// Appendix-9 divisor-shape finder with occupied-stretch skipping.
std::vector<Box> find_free_divisor(const Dims& dims, const NodeSet& occ, int s);

}  // namespace bgl
