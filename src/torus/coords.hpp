// Geometry of a 3-D torus of (super)nodes.
//
// BlueGene/L is modelled, as in the paper, as a 4 x 4 x 8 torus of
// "supernodes" (each being an 8x8x8 block of compute nodes). All classes in
// this module are dimension-generic so the Appendix-9 complexity study can
// run on M x M x M tori as well.
#pragma once

#include <cstdint>
#include <string>

#include "util/error.hpp"
#include "util/math.hpp"

namespace bgl {

/// Linear node identifier in [0, Dims::volume()).
using NodeId = std::int32_t;

/// Interconnect topology for partition placement. BlueGene/L electrically
/// isolates partitions; Krevat et al. studied both variants:
///   kTorus — partitions may wrap around any dimension (the paper's model);
///   kMesh  — partitions must be axis-aligned boxes without wrap-around.
enum class Topology { kTorus, kMesh };

const char* to_string(Topology topology);

/// Coordinates of a node in the torus.
struct Coord {
  int x = 0;
  int y = 0;
  int z = 0;
  friend bool operator==(const Coord&, const Coord&) = default;
};

/// Torus dimensions. The paper's machine is {4, 4, 8} supernodes.
struct Dims {
  int x = 0;
  int y = 0;
  int z = 0;

  constexpr int volume() const { return x * y * z; }

  /// BlueGene/L as seen by the job scheduler: 4 x 4 x 8 supernodes.
  static constexpr Dims bluegene_l() { return Dims{4, 4, 8}; }

  /// Cubic torus for the partition-finder complexity study.
  static constexpr Dims cube(int m) { return Dims{m, m, m}; }

  friend bool operator==(const Dims&, const Dims&) = default;
};

/// Row-major linearisation: id = x + dims.x * (y + dims.y * z).
constexpr NodeId node_id(const Dims& dims, const Coord& c) {
  return static_cast<NodeId>(c.x + dims.x * (c.y + dims.y * c.z));
}

/// Inverse of node_id().
constexpr Coord coord_of(const Dims& dims, NodeId id) {
  const int x = static_cast<int>(id) % dims.x;
  const int rest = static_cast<int>(id) / dims.x;
  return Coord{x, rest % dims.y, rest / dims.y};
}

/// Wrap a (possibly out-of-range, non-negative) coordinate onto the torus.
constexpr Coord wrap(const Dims& dims, int x, int y, int z) {
  return Coord{x % dims.x, y % dims.y, z % dims.z};
}

/// Human-readable "(x, y, z)".
std::string to_string(const Coord& c);
std::string to_string(const Dims& d);

/// Validate dims (positive extents) or throw ConfigError.
void validate(const Dims& dims);

}  // namespace bgl
