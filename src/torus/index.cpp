#include "torus/index.hpp"

#include <algorithm>
#include <bit>

#include "util/error.hpp"

namespace bgl {

namespace {
constexpr std::uint64_t kOne = 1;
}  // namespace

FreePartitionIndex::FreePartitionIndex(const PartitionCatalog& catalog)
    : catalog_(&catalog), occ_(catalog.num_nodes()) {
  const int nodes = catalog.num_nodes();
  const int entries = catalog.num_entries();
  // Word-granular deltas only pay off when few entries cover each word —
  // true for block catalogs (solid, disjoint within a size class; 9 per
  // word at full scale) and badly false for box catalogs, where thousands
  // of overlapping boxes cover every word of the paper-scale machine.
  word_deltas_ = catalog.options().mode == CatalogOptions::Mode::kBlocks &&
                 !catalog.options().full_width_scans;

  auto layout = std::make_shared<Layout>();
  layout->node_offsets.assign(static_cast<std::size_t>(nodes) + 1, 0);
  layout->entry_size.resize(static_cast<std::size_t>(entries));

  // Counting-sort CSR build: one pass to size each node's bucket, one to fill.
  for (int e = 0; e < entries; ++e) {
    layout->entry_size[static_cast<std::size_t>(e)] = catalog.entry(e).size;
    for (const int node : catalog.entry(e).mask.to_ids()) {
      ++layout->node_offsets[static_cast<std::size_t>(node) + 1];
    }
  }
  for (int n = 0; n < nodes; ++n) {
    layout->node_offsets[static_cast<std::size_t>(n) + 1] +=
        layout->node_offsets[static_cast<std::size_t>(n)];
  }
  layout->node_entries.resize(
      static_cast<std::size_t>(layout->node_offsets.back()));
  std::vector<std::int32_t> cursor(layout->node_offsets.begin(),
                                   layout->node_offsets.end() - 1);
  for (int e = 0; e < entries; ++e) {
    for (const int node : catalog.entry(e).mask.to_ids()) {
      layout->node_entries[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(node)]++)] = e;
    }
  }

  // The word-level inverted index (same counting-sort shape): every
  // (entry, nonzero mask word) pair, keyed by word. Only built when the
  // bulk delta path will use it.
  if (word_deltas_) {
    const std::size_t nwords = occ_.words().size();
    layout->word_offsets.assign(nwords + 1, 0);
    for (int e = 0; e < entries; ++e) {
      const auto& entry = catalog.entry(e);
      const NodeSet::WordSpan mask = entry.mask.words();
      for (std::size_t w = entry.word_begin; w < entry.word_end; ++w) {
        if (mask[w] != 0) ++layout->word_offsets[w + 1];
      }
    }
    for (std::size_t w = 0; w < nwords; ++w) {
      layout->word_offsets[w + 1] += layout->word_offsets[w];
    }
    layout->word_entries.resize(
        static_cast<std::size_t>(layout->word_offsets.back()));
    layout->word_masks.resize(layout->word_entries.size());
    std::vector<std::int32_t> word_cursor(layout->word_offsets.begin(),
                                          layout->word_offsets.end() - 1);
    for (int e = 0; e < entries; ++e) {
      const auto& entry = catalog.entry(e);
      const NodeSet::WordSpan mask = entry.mask.words();
      for (std::size_t w = entry.word_begin; w < entry.word_end; ++w) {
        if (mask[w] == 0) continue;
        const auto slot = static_cast<std::size_t>(word_cursor[w]++);
        layout->word_entries[slot] = e;
        layout->word_masks[slot] = mask[w];
      }
    }
  }
  layout_ = std::move(layout);

  blocked_.assign(static_cast<std::size_t>(entries), 0);
  free_bits_.assign((static_cast<std::size_t>(entries) + 63) / 64, 0);
  free_by_size_.assign(static_cast<std::size_t>(nodes) + 1, 0);
  reset();
}

void FreePartitionIndex::reset() {
  const int entries = catalog_->num_entries();
  occ_.clear();
  std::fill(blocked_.begin(), blocked_.end(), 0);
  std::fill(free_bits_.begin(), free_bits_.end(), 0);
  for (int e = 0; e < entries; ++e) {
    free_bits_[static_cast<std::size_t>(e) / 64] |=
        kOne << (static_cast<std::size_t>(e) % 64);
  }
  std::fill(free_by_size_.begin(), free_by_size_.end(), 0);
  for (int e = 0; e < entries; ++e) {
    ++free_by_size_[static_cast<std::size_t>(
        layout_->entry_size[static_cast<std::size_t>(e)])];
  }
  mfp_cursor_ = entries == 0 ? 0 : layout_->entry_size[0];
}

void FreePartitionIndex::reset(const NodeSet& occ) {
  reset();
  occupy(occ);
}

void FreePartitionIndex::block(int entry) {
  free_bits_[static_cast<std::size_t>(entry) / 64] &=
      ~(kOne << (static_cast<std::size_t>(entry) % 64));
  --free_by_size_[static_cast<std::size_t>(
      layout_->entry_size[static_cast<std::size_t>(entry)])];
  // mfp_cursor_ stays an upper bound; mfp() lowers it lazily.
}

void FreePartitionIndex::unblock(int entry) {
  free_bits_[static_cast<std::size_t>(entry) / 64] |=
      kOne << (static_cast<std::size_t>(entry) % 64);
  const int size = layout_->entry_size[static_cast<std::size_t>(entry)];
  ++free_by_size_[static_cast<std::size_t>(size)];
  if (size > mfp_cursor_) mfp_cursor_ = size;
}

void FreePartitionIndex::occupy_node(int node) {
  BGL_CHECK(node >= 0 && node < occ_.bits(), "index node id out of range");
  if (occ_.test(node)) return;
  occ_.set(node);
  const auto first = layout_->node_offsets[static_cast<std::size_t>(node)];
  const auto last = layout_->node_offsets[static_cast<std::size_t>(node) + 1];
  for (auto i = first; i < last; ++i) {
    const int e = layout_->node_entries[static_cast<std::size_t>(i)];
    if (blocked_[static_cast<std::size_t>(e)]++ == 0) block(e);
  }
}

void FreePartitionIndex::release_node(int node) {
  BGL_CHECK(node >= 0 && node < occ_.bits(), "index node id out of range");
  if (!occ_.test(node)) return;
  occ_.reset(node);
  const auto first = layout_->node_offsets[static_cast<std::size_t>(node)];
  const auto last = layout_->node_offsets[static_cast<std::size_t>(node) + 1];
  for (auto i = first; i < last; ++i) {
    const int e = layout_->node_entries[static_cast<std::size_t>(i)];
    if (--blocked_[static_cast<std::size_t>(e)] == 0) unblock(e);
  }
}

void FreePartitionIndex::occupy(const NodeSet& mask) {
  BGL_CHECK(mask.bits() == occ_.bits(), "index mask width mismatch");
  const NodeSet::WordSpan words = mask.words();
  std::uint64_t* occ_words = occ_.mutable_words();
  if (!word_deltas_) {
    // One counter walk per newly occupied node: the reference path, and
    // the faster one on box catalogs (fewer entries per node than per word).
    for (std::size_t w = 0; w < words.size(); ++w) {
      std::uint64_t delta = words[w] & ~occ_words[w];
      while (delta != 0) {
        const int bit = std::countr_zero(delta);
        delta &= delta - 1;
        occupy_node(static_cast<int>(w) * 64 + bit);
      }
    }
    return;
  }
  // Bulk path: per delta word, charge each covering entry the popcount of
  // its overlap in one step — identical counters, 64 nodes at a time.
  for (std::size_t w = 0; w < words.size(); ++w) {
    const std::uint64_t delta = words[w] & ~occ_words[w];
    if (delta == 0) continue;
    occ_words[w] |= delta;
    const auto first = layout_->word_offsets[w];
    const auto last = layout_->word_offsets[w + 1];
    for (auto i = first; i < last; ++i) {
      const int add =
          std::popcount(delta & layout_->word_masks[static_cast<std::size_t>(i)]);
      if (add == 0) continue;
      const int e = layout_->word_entries[static_cast<std::size_t>(i)];
      if (blocked_[static_cast<std::size_t>(e)] == 0) block(e);
      blocked_[static_cast<std::size_t>(e)] += add;
    }
  }
}

void FreePartitionIndex::release(const NodeSet& mask) {
  BGL_CHECK(mask.bits() == occ_.bits(), "index mask width mismatch");
  const NodeSet::WordSpan words = mask.words();
  std::uint64_t* occ_words = occ_.mutable_words();
  if (!word_deltas_) {
    for (std::size_t w = 0; w < words.size(); ++w) {
      std::uint64_t delta = words[w] & occ_words[w];
      while (delta != 0) {
        const int bit = std::countr_zero(delta);
        delta &= delta - 1;
        release_node(static_cast<int>(w) * 64 + bit);
      }
    }
    return;
  }
  for (std::size_t w = 0; w < words.size(); ++w) {
    const std::uint64_t delta = words[w] & occ_words[w];
    if (delta == 0) continue;
    occ_words[w] &= ~delta;
    const auto first = layout_->word_offsets[w];
    const auto last = layout_->word_offsets[w + 1];
    for (auto i = first; i < last; ++i) {
      const int sub =
          std::popcount(delta & layout_->word_masks[static_cast<std::size_t>(i)]);
      if (sub == 0) continue;
      const int e = layout_->word_entries[static_cast<std::size_t>(i)];
      blocked_[static_cast<std::size_t>(e)] -= sub;
      if (blocked_[static_cast<std::size_t>(e)] == 0) unblock(e);
    }
  }
}

int FreePartitionIndex::mfp() const {
  while (mfp_cursor_ > 0 &&
         free_by_size_[static_cast<std::size_t>(mfp_cursor_)] == 0) {
    --mfp_cursor_;
  }
  return mfp_cursor_;
}

int FreePartitionIndex::first_free_index(int start_index) const {
  const int entries = catalog_->num_entries();
  int i = std::max(start_index, 0);
  if (i >= entries) return -1;
  std::size_t w = static_cast<std::size_t>(i) / 64;
  std::uint64_t word = free_bits_[w] >> (static_cast<std::size_t>(i) % 64)
                                            << (static_cast<std::size_t>(i) % 64);
  while (true) {
    if (word != 0) {
      const int found = static_cast<int>(w) * 64 + std::countr_zero(word);
      return found < entries ? found : -1;
    }
    if (++w >= free_bits_.size()) return -1;
    word = free_bits_[w];
  }
}

int FreePartitionIndex::first_free_index_with(const NodeSet& extra,
                                              int start_index) const {
  const int entries = catalog_->num_entries();
  const bool full_width = catalog_->options().full_width_scans;
  const NodeSet::WordSpan extra_words = extra.words();
  int i = first_free_index(start_index);
  while (i >= 0 && i < entries) {
    const auto& entry = catalog_->entry(i);
    bool free = true;
    if (full_width) {
      free = !extra.intersects(entry.mask);
    } else if (entry.solid) {
      free = !extra.any_in_word_range(entry.word_begin, entry.word_end);
    } else {
      const NodeSet::WordSpan mask_words = entry.mask.words();
      for (std::size_t w = entry.word_begin; w < entry.word_end; ++w) {
        if (mask_words[w] & extra_words[w]) {
          free = false;
          break;
        }
      }
    }
    if (free) return i;
    i = first_free_index(i + 1);
  }
  return -1;
}

int FreePartitionIndex::mfp_with(const NodeSet& extra, int mfp_hint) const {
  const int index = first_free_index_with(extra, mfp_hint);
  return index < 0 ? 0 : catalog_->entry(index).size;
}

int FreePartitionIndex::free_count_of_size(int s) const {
  if (s < 0 || s > catalog_->num_nodes()) return 0;
  return free_by_size_[static_cast<std::size_t>(s)];
}

bool FreePartitionIndex::entry_free(int index) const {
  BGL_CHECK(index >= 0 && index < catalog_->num_entries(),
            "index entry out of range");
  return (free_bits_[static_cast<std::size_t>(index) / 64] >>
          (static_cast<std::size_t>(index) % 64)) &
         kOne;
}

int FreePartitionIndex::blocked_count(int index) const {
  BGL_CHECK(index >= 0 && index < catalog_->num_entries(),
            "index entry out of range");
  return blocked_[static_cast<std::size_t>(index)];
}

void FreePartitionIndex::check_invariants() const {
  const int entries = catalog_->num_entries();
  std::vector<std::int32_t> expect_free_by_size(free_by_size_.size(), 0);
  for (int e = 0; e < entries; ++e) {
    const auto& entry = catalog_->entry(e);
    const int overlap = entry.mask.intersect_count(occ_);
    BGL_CHECK(blocked_[static_cast<std::size_t>(e)] == overlap,
              "index blocked count drifted from occupancy");
    BGL_CHECK(entry_free(e) == (overlap == 0),
              "index free bit drifted from occupancy");
    if (overlap == 0) ++expect_free_by_size[static_cast<std::size_t>(entry.size)];
  }
  BGL_CHECK(expect_free_by_size == free_by_size_,
            "index per-size free counts drifted");
  BGL_CHECK(mfp() == catalog_->mfp(occ_), "index MFP drifted from catalog scan");
}

}  // namespace bgl
