// PartitionCatalog: the precomputed set of every legal partition.
//
// On the scheduler-visible BlueGene/L machine (4 x 4 x 8 supernodes) the set
// of all contiguous rectangular partitions with torus wrap-around is small
// (9 633 canonical boxes), so we precompute each one's node bitmask once.
// Every hot scheduler query then becomes a masked scan:
//
//   free?            (occ & mask) == 0            ~2 word-ops
//   MFP(occ)         first free entry in the size-descending order
//   MFP(occ | cand)  same scan with a fused OR, resumable from the index of
//                    MFP(occ) because adding nodes can only shrink the MFP.
//
// Canonicality: along any dimension whose extent equals the torus extent the
// base is fixed at 0 (all bases are wrap-equivalent), which makes the
// (shape, base) description of a node set unique — no dedup pass needed.
//
// Scaling to the full 64 x 32 x 32 machine (65 536 nodes) needs two things
// the paper-scale catalog does not:
//
//   * kBlocks mode — full box enumeration is O(volume^2) entries (~4e9 at
//     full scale), so the catalog instead enumerates aligned power-of-two
//     blocks of contiguous node ids (buddy-allocator style, 511 entries at
//     min_block = 256). Row-major id layout makes every such block a legal
//     canonical box, so the rest of the stack is unchanged.
//   * word-range scans — every entry records the [word_begin, word_end)
//     span its mask occupies (plus whether the span is solid all-ones), so a
//     free test touches O(entry words), not O(machine words). At full scale
//     that is the difference between 4 and 1 024 words per probe.
#pragma once

#include <utility>
#include <vector>

#include "torus/coords.hpp"
#include "torus/nodeset.hpp"
#include "torus/partition.hpp"

namespace bgl {

struct CatalogOptions {
  enum class Mode {
    kBoxes,   ///< Every canonical rectangular box (the paper's catalog).
    kBlocks,  ///< Aligned power-of-two contiguous-id blocks (full scale).
  };

  Mode mode = Mode::kBoxes;

  /// kBlocks only: smallest block size (rounded up to a power of two and
  /// clamped to the machine). Jobs smaller than this round up to one block.
  int min_block = 256;

  /// Reference kernels: scan every occupancy word per entry instead of the
  /// entry's word span — the pre-optimization scan shape, kept selectable
  /// for perf baselines and differential tests.
  bool full_width_scans = false;
};

const char* to_string(CatalogOptions::Mode mode);

class PartitionCatalog {
 public:
  struct Entry {
    Box box;
    NodeSet mask;
    int size = 0;
    /// Tightest span of 64-bit words containing every set mask bit.
    std::size_t word_begin = 0;
    std::size_t word_end = 0;
    /// True when every word in [word_begin, word_end) is all-ones: the free
    /// test degenerates to "any occupied bit in the span?" and never touches
    /// the mask at all.
    bool solid = false;
  };

  explicit PartitionCatalog(Dims dims, Topology topology = Topology::kTorus,
                            CatalogOptions options = {});

  const Dims& dims() const { return dims_; }
  Topology topology() const { return topology_; }
  const CatalogOptions& options() const { return options_; }
  int num_nodes() const { return dims_.volume(); }
  int num_entries() const { return static_cast<int>(entries_.size()); }
  const Entry& entry(int index) const { return entries_[static_cast<std::size_t>(index)]; }

  /// Entries are sorted by (size desc, shape lex, base lex); entries of one
  /// size are contiguous. Returns [first, last) indices for exact size s,
  /// or an empty range if no shape of that volume fits the torus.
  /// Contract: any out-of-domain s (negative, zero, or > num_nodes())
  /// yields the empty range {0, 0} — never an out-of-bounds access.
  std::pair<int, int> size_range(int s) const;

  /// Smallest s' >= s for which partitions exist (jobs whose size has no
  /// fitting shape are rounded up, as in Krevat's scheduler). Returns -1 if
  /// s exceeds the machine size.
  /// Contract: s <= 0 is clamped to 1 — a job occupies at least one node,
  /// so a degenerate (zero) or negative request maps to the smallest
  /// allocatable partition, never to a table slot of its own.
  int allocatable_size(int s) const;

  /// Index of the first entry at or after start_index whose mask is disjoint
  /// from occ; -1 if none. Because entries are size-descending this gives
  /// the maximal free partition when start_index == 0.
  int first_free_index(const NodeSet& occ, int start_index = 0) const;

  /// Same, but tests against (occ | extra) without materialising the union.
  int first_free_index_with(const NodeSet& occ, const NodeSet& extra,
                            int start_index = 0) const;

  /// Size of the maximal free partition (0 when nothing is free).
  int mfp(const NodeSet& occ) const;

  /// MFP of (occ | extra), resumable: pass the index returned by
  /// first_free_index(occ) as mfp_hint to skip entries already known busy.
  int mfp_with(const NodeSet& occ, const NodeSet& extra, int mfp_hint = 0) const;

  /// Indices of all free entries of exactly size s (appended to out).
  /// Generic over the output container (std::vector<int> or the scheduler's
  /// arena-backed ArenaVector<int>) — anything with push_back(int).
  template <typename OutVec>
  void free_entries_of_size(const NodeSet& occ, int s, OutVec& out) const {
    const auto [first, last] = size_range(s);
    for (int i = first; i < last; ++i) {
      if (entry_free(entries_[static_cast<std::size_t>(i)], occ)) out.push_back(i);
    }
  }

  /// True if at least one free partition of exactly size s exists.
  bool has_free_of_size(const NodeSet& occ, int s) const;

 private:
  void build_boxes();
  void build_blocks();
  void finalize_entries();

  bool entry_free(const Entry& e, const NodeSet& occ) const;
  bool entry_free_with(const Entry& e, const NodeSet& occ, const NodeSet& extra) const;

  Dims dims_;
  Topology topology_ = Topology::kTorus;
  CatalogOptions options_;
  std::vector<Entry> entries_;
  std::vector<std::pair<int, int>> range_by_size_;   ///< indexed by size, [first,last)
  std::vector<int> allocatable_size_;                ///< indexed by requested size
};

}  // namespace bgl
