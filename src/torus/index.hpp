// FreePartitionIndex: incremental occupancy-aware view of a PartitionCatalog.
//
// The catalog answers every free-partition query by scanning entry masks
// (O(catalog) word-ops per query). That scan dominates the scheduler's
// simulated-time throughput: one full scan per MFP query plus one more
// fused scan *per candidate* inside the policy loop. This index replaces
// the scans with incremental bookkeeping:
//
//   node -> covering entries   inverted index (CSR), built once per catalog
//   blocked_[e]                occupied nodes inside entry e's mask
//   free_bits_                 bit e set iff blocked_[e] == 0
//   free_by_size_[s]           free entries of exact size s
//   mfp cursor                 lazily-decreasing largest size with free > 0
//
// An occupy/release delta of k nodes costs O(k * entries-per-node)
// counter updates (1421 entries cover each node of the 4x4x8 supernode
// machine); afterwards
//
//   mfp()                  O(1) amortised (cursor)
//   has_free_of_size(s)    O(1)
//   free_entries_of_size   O(answer + size-range/64) bit iteration
//   first_free_index       O(first-free/64) bit iteration
//   mfp_with(extra)        O(free entries tried) — only entries already
//                          free under the base occupancy are tested
//                          against `extra`, instead of rescanning the
//                          whole catalog with a fused OR.
//
// Equivalence contract: every query returns bit-for-bit the same answer
// (same entry indices, same order) as the catalog's scan over occupied().
// The scan-based catalog remains the reference implementation; the
// differential fuzz harness (tests/torus_index_fuzz_test.cpp) drives
// random delta sequences against it.
//
// Copying: the CSR layout is immutable and shared between copies
// (shared_ptr), so copy-assigning an index — the scheduler clones the
// driver's index into a per-pass scratch — moves only the ~40 KB of
// mutable counters and reuses the destination's buffers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "torus/catalog.hpp"
#include "torus/nodeset.hpp"

namespace bgl {

class FreePartitionIndex {
 public:
  /// Build over `catalog` with empty occupancy. O(sum of entry sizes).
  explicit FreePartitionIndex(const PartitionCatalog& catalog);

  FreePartitionIndex(const FreePartitionIndex&) = default;
  FreePartitionIndex& operator=(const FreePartitionIndex&) = default;
  FreePartitionIndex(FreePartitionIndex&&) = default;
  FreePartitionIndex& operator=(FreePartitionIndex&&) = default;

  const PartitionCatalog& catalog() const { return *catalog_; }
  const NodeSet& occupied() const { return occ_; }

  /// Forget all occupancy (every entry free). O(entries).
  void reset();

  /// Rebuild to match `occ` exactly. O(entries + |occ| * entries-per-node).
  void reset(const NodeSet& occ);

  /// Mark every node in `mask` occupied. Nodes already occupied are
  /// ignored (set semantics), so overlapping layers — a partition mask
  /// unioned with a down-node overlay — compose correctly.
  void occupy(const NodeSet& mask);

  /// Mark every node in `mask` free again. Nodes not currently occupied
  /// are ignored. To release an allocation while some of its nodes must
  /// stay blocked (e.g. they are down), pass mask & ~blocked instead.
  void release(const NodeSet& mask);

  /// Single-node deltas for the driver's failure/recovery paths.
  void occupy_node(int node);
  void release_node(int node);

  // Queries: same semantics (and identical answers) as the catalog scans
  // against occupied().

  /// Size of the maximal free partition (0 when nothing is free).
  int mfp() const;

  /// Index of the first free entry at or after start_index; -1 if none.
  int first_free_index(int start_index = 0) const;

  /// First entry free under occupied() whose mask is also disjoint from
  /// `extra`; -1 if none. Only entries free under the base occupancy are
  /// tested — this is the policies' mfp_after overlay.
  int first_free_index_with(const NodeSet& extra, int start_index = 0) const;

  /// MFP of (occupied() | extra); resumable via mfp_hint like the catalog.
  int mfp_with(const NodeSet& extra, int mfp_hint = 0) const;

  bool has_free_of_size(int s) const { return free_count_of_size(s) > 0; }
  int free_count_of_size(int s) const;

  /// Indices of all free entries of exactly size s, ascending (appended).
  /// Generic over the output container (std::vector<int> or an arena-backed
  /// ArenaVector<int>) — anything with push_back(int).
  template <typename OutVec>
  void free_entries_of_size(int s, OutVec& out) const {
    const auto [first, last] = catalog_->size_range(s);
    for (int i = first; i < last;) {
      const int found = first_free_index(i);
      if (found < 0 || found >= last) return;
      out.push_back(found);
      i = found + 1;
    }
  }

  /// True if entry `index` has no occupied node.
  bool entry_free(int index) const;

  /// Occupied nodes inside entry `index`'s mask (test introspection).
  int blocked_count(int index) const;

  /// Recompute everything from occupied() with catalog scans and compare
  /// against the incremental state; throws ContractViolation on drift.
  /// Test/debug aid — O(catalog), never called on the hot path.
  void check_invariants() const;

 private:
  /// Immutable per-catalog layout, shared across copies. Two inverted
  /// indexes over the same coverage relation: per-node (single-node deltas,
  /// box catalogs, and the full_width_scans reference path) and per-word
  /// (bulk deltas on block catalogs — one popcount per covering entry per
  /// delta word instead of one counter update per node, the difference
  /// between O(|mask|) and O(|mask|/64) work on the 65 536-node machine).
  /// The per-word arrays are only built for block catalogs: blocks are
  /// solid and disjoint within a size class (9 entries per word at full
  /// scale), whereas thousands of overlapping boxes cover every word of
  /// the paper-scale machine, making word granularity a pessimization.
  struct Layout {
    std::vector<std::int32_t> node_offsets;  ///< CSR offsets, nodes + 1.
    std::vector<std::int32_t> node_entries;  ///< Covering entry indices.
    std::vector<std::int32_t> entry_size;    ///< Entry size, flat copy.
    std::vector<std::int32_t> word_offsets;  ///< CSR offsets, words + 1.
    std::vector<std::int32_t> word_entries;  ///< Entries with bits in word.
    std::vector<std::uint64_t> word_masks;   ///< That entry's mask word.
  };

  void block(int entry);
  void unblock(int entry);

  const PartitionCatalog* catalog_;
  std::shared_ptr<const Layout> layout_;
  NodeSet occ_;
  std::vector<std::int32_t> blocked_;      ///< Per-entry blocked-node count.
  std::vector<std::uint64_t> free_bits_;   ///< Bit e = entry e free.
  std::vector<std::int32_t> free_by_size_; ///< Free entries per exact size.
  /// Lazily-decreasing upper bound on the MFP size: raised eagerly on
  /// unblock, lowered on demand in mfp(). Amortised O(1) per update.
  mutable int mfp_cursor_ = 0;
  /// Bulk occupy/release go word-at-a-time (block catalogs only).
  bool word_deltas_ = false;
};

}  // namespace bgl
