#include "torus/finders.hpp"

#include <algorithm>
#include <tuple>

namespace bgl {

namespace {

auto box_key(const Box& b) {
  return std::make_tuple(b.shape.x, b.shape.y, b.shape.z, b.base.x, b.base.y, b.base.z);
}

/// Base-coordinate iteration bound: full-extent dimensions have one
/// canonical base (0); others have dims.d bases.
int base_bound(int extent, int dim) { return extent == dim ? 1 : dim; }

/// Check freedom of a box by scanning every covered node.
bool box_is_free(const Dims& dims, const NodeSet& occ, const Box& box) {
  for (int dz = 0; dz < box.shape.z; ++dz) {
    for (int dy = 0; dy < box.shape.y; ++dy) {
      for (int dx = 0; dx < box.shape.x; ++dx) {
        const Coord c = wrap(dims, box.base.x + dx, box.base.y + dy, box.base.z + dz);
        if (occ.test(node_id(dims, c))) return false;
      }
    }
  }
  return true;
}

}  // namespace

void sort_boxes(std::vector<Box>& boxes) {
  std::sort(boxes.begin(), boxes.end(),
            [](const Box& a, const Box& b) { return box_key(a) < box_key(b); });
}

std::vector<Box> find_free_all_naive(const Dims& dims, const NodeSet& occ) {
  validate(dims);
  std::vector<Box> out;
  for (int sx = 1; sx <= dims.x; ++sx) {
    for (int sy = 1; sy <= dims.y; ++sy) {
      for (int sz = 1; sz <= dims.z; ++sz) {
        for (int bx = 0; bx < base_bound(sx, dims.x); ++bx) {
          for (int by = 0; by < base_bound(sy, dims.y); ++by) {
            for (int bz = 0; bz < base_bound(sz, dims.z); ++bz) {
              const Box box{Coord{bx, by, bz}, Triple{sx, sy, sz}};
              if (box_is_free(dims, occ, box)) out.push_back(box);
            }
          }
        }
      }
    }
  }
  sort_boxes(out);
  return out;
}

std::vector<Box> find_free_naive(const Dims& dims, const NodeSet& occ, int s) {
  std::vector<Box> all = find_free_all_naive(dims, occ);
  std::vector<Box> out;
  for (const Box& b : all) {
    if (b.volume() == s) out.push_back(b);
  }
  return out;
}

std::vector<Box> find_free_pop(const Dims& dims, const NodeSet& occ, int s) {
  validate(dims);
  BGL_CHECK(s >= 1, "partition size must be positive");
  std::vector<Box> out;
  if (s > dims.volume()) return out;  // no box can exceed the machine

  // proj[y][x] counts occupied nodes in the current z-slab column (x, y).
  std::vector<int> proj(static_cast<std::size_t>(dims.x * dims.y), 0);
  auto proj_at = [&](int x, int y) -> int& {
    return proj[static_cast<std::size_t>(y * dims.x + x)];
  };

  for (int z0 = 0; z0 < dims.z; ++z0) {
    std::fill(proj.begin(), proj.end(), 0);
    for (int sz = 1; sz <= dims.z; ++sz) {
      // Canonical z base: when sz spans the whole dimension only z0 == 0 counts.
      const int z = (z0 + sz - 1) % dims.z;
      for (int y = 0; y < dims.y; ++y) {
        for (int x = 0; x < dims.x; ++x) {
          if (occ.test(node_id(dims, Coord{x, y, z}))) ++proj_at(x, y);
        }
      }
      if (sz == dims.z && z0 != 0) continue;
      if (s % sz != 0) continue;
      const int area = s / sz;
      if (area > dims.x * dims.y) continue;
      // Enumerate 2-D free rectangles of the required area on the projection.
      for (int sx = 1; sx <= dims.x; ++sx) {
        if (area % sx != 0) continue;
        const int sy = area / sx;
        if (sy > dims.y) continue;
        for (int bx = 0; bx < base_bound(sx, dims.x); ++bx) {
          for (int by = 0; by < base_bound(sy, dims.y); ++by) {
            bool free = true;
            for (int dy = 0; dy < sy && free; ++dy) {
              for (int dx = 0; dx < sx; ++dx) {
                if (proj_at((bx + dx) % dims.x, (by + dy) % dims.y) > 0) {
                  free = false;
                  break;
                }
              }
            }
            if (free) out.push_back(Box{Coord{bx, by, z0}, Triple{sx, sy, sz}});
          }
        }
      }
    }
  }
  sort_boxes(out);
  return out;
}

std::vector<Box> find_free_divisor(const Dims& dims, const NodeSet& occ, int s) {
  validate(dims);
  BGL_CHECK(s >= 1, "partition size must be positive");
  std::vector<Box> out;
  const std::vector<Triple> shapes = divisor_triples(s, dims.x, dims.y, dims.z);
  for (const Triple& shape : shapes) {
    for (int bx = 0; bx < base_bound(shape.x, dims.x); ++bx) {
      for (int by = 0; by < base_bound(shape.y, dims.y); ++by) {
        // Scan z bases in increasing order; when the innermost check finds an
        // occupied node at z-offset k we can skip every base that would still
        // cover it (the paper's "no need to search further" optimisation).
        int bz = 0;
        const int bz_bound = base_bound(shape.z, dims.z);
        while (bz < bz_bound) {
          int blocked_offset = -1;
          for (int dz = shape.z - 1; dz >= 0; --dz) {
            bool plane_free = true;
            for (int dy = 0; dy < shape.y && plane_free; ++dy) {
              for (int dx = 0; dx < shape.x; ++dx) {
                const Coord c = wrap(dims, bx + dx, by + dy, bz + dz);
                if (occ.test(node_id(dims, c))) {
                  plane_free = false;
                  break;
                }
              }
            }
            if (!plane_free) {
              blocked_offset = dz;
              break;
            }
          }
          if (blocked_offset < 0) {
            out.push_back(Box{Coord{bx, by, bz}, Triple{shape.x, shape.y, shape.z}});
            ++bz;
          } else {
            // The occupied plane is at absolute z (bz + blocked_offset); no
            // base in (bz, bz + blocked_offset] can avoid it, so jump past.
            bz += blocked_offset + 1;
          }
        }
      }
    }
  }
  sort_boxes(out);
  return out;
}

}  // namespace bgl
