#include "torus/partition.hpp"

#include <algorithm>
#include <sstream>

namespace bgl {

std::vector<NodeId> box_nodes(const Dims& dims, const Box& box) {
  BGL_CHECK(box_fits(dims, box), "box does not fit torus dimensions");
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(box.volume()));
  for (int dz = 0; dz < box.shape.z; ++dz) {
    for (int dy = 0; dy < box.shape.y; ++dy) {
      for (int dx = 0; dx < box.shape.x; ++dx) {
        const Coord c = wrap(dims, box.base.x + dx, box.base.y + dy, box.base.z + dz);
        nodes.push_back(node_id(dims, c));
      }
    }
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

NodeSet box_mask(const Dims& dims, const Box& box) {
  NodeSet mask(dims.volume());
  for (const NodeId id : box_nodes(dims, box)) mask.set(static_cast<int>(id));
  return mask;
}

bool box_fits(const Dims& dims, const Box& box) {
  return box.shape.x >= 1 && box.shape.y >= 1 && box.shape.z >= 1 &&
         box.shape.x <= dims.x && box.shape.y <= dims.y && box.shape.z <= dims.z &&
         box.base.x >= 0 && box.base.y >= 0 && box.base.z >= 0 &&
         box.base.x < dims.x && box.base.y < dims.y && box.base.z < dims.z;
}

Box canonicalize(const Dims& dims, const Box& box) {
  Box out = box;
  if (out.shape.x == dims.x) out.base.x = 0;
  if (out.shape.y == dims.y) out.base.y = 0;
  if (out.shape.z == dims.z) out.base.z = 0;
  return out;
}

bool box_contains(const Dims& dims, const Box& box, const Coord& node) {
  auto in_range = [](int base, int extent, int dim, int v) {
    // Offset of v from base along a wrapped dimension.
    const int offset = (v - base + dim) % dim;
    return offset < extent;
  };
  return in_range(box.base.x, box.shape.x, dims.x, node.x) &&
         in_range(box.base.y, box.shape.y, dims.y, node.y) &&
         in_range(box.base.z, box.shape.z, dims.z, node.z);
}

std::string to_string(const Box& box) {
  std::ostringstream os;
  os << "base" << to_string(box.base) << " shape " << box.shape.x << 'x'
     << box.shape.y << 'x' << box.shape.z;
  return os.str();
}

}  // namespace bgl
