// Rectangular torus partitions ("boxes" with wrap-around).
//
// A partition is described by a base coordinate and a shape (extent in each
// dimension); extents may span the whole dimension, in which case the base
// along that dimension is redundant — canonicalise() fixes it to zero so a
// node set has one canonical Box description.
#pragma once

#include <string>
#include <vector>

#include "torus/coords.hpp"
#include "torus/nodeset.hpp"
#include "util/math.hpp"

namespace bgl {

/// A contiguous rectangular partition on the torus.
struct Box {
  Coord base;     ///< Lowest-coordinate corner (before wrap).
  Triple shape;   ///< Extent per dimension; 1 <= shape.d <= dims.d.

  int volume() const { return shape.x * shape.y * shape.z; }
  friend bool operator==(const Box&, const Box&) = default;
};

/// Node ids covered by the box (with wrap-around), ascending order.
std::vector<NodeId> box_nodes(const Dims& dims, const Box& box);

/// Bitset of the nodes covered by the box.
NodeSet box_mask(const Dims& dims, const Box& box);

/// True if the box shape fits inside the torus dimensions.
bool box_fits(const Dims& dims, const Box& box);

/// Canonical form: along any dimension whose extent equals the torus extent
/// the base coordinate is forced to zero (wrap makes all bases equivalent).
Box canonicalize(const Dims& dims, const Box& box);

/// True if `node` lies inside the (wrapped) box.
bool box_contains(const Dims& dims, const Box& box, const Coord& node);

std::string to_string(const Box& box);

}  // namespace bgl
