// Structured JSONL trace sink.
//
// One line per simulation event, appended in event order:
//
//   {"type":"job_start","t":86423.5,"wall_us":1042,"job":17,"entry":311,...}
//
// Every event carries the event type, the simulation timestamp `t` (seconds,
// the driver's clock) and `wall_us` (microseconds of monotonic wall time
// since the sink was created) so a reader can separate simulated-time
// ordering from where the simulator itself spends real time. The full event
// schema — every type, field, and unit — is documented in
// docs/OBSERVABILITY.md; that document and this writer must stay in sync.
//
// The sink is append-only and buffered: an Event builder accumulates one
// line into a reusable buffer (no per-event heap allocation once the buffer
// has grown to the longest line) and flushes it to the stream when the
// builder is destroyed, i.e. at the end of the full expression
//
//   sink.event("job_kill", now).field("job", id).field("node", n);
//
// Field values are escaped per RFC 8259; doubles are printed with the
// shortest round-trip representation (std::to_chars), so every value a
// reader parses back is bit-identical to the one the simulator held — the
// earlier '%.10g' formatting lost low-order bits at large sim times, letting
// trace_audit's re-derived metrics drift from the in-memory values. The sink
// tracks the largest sim time seen (max_sim_time) so tests and the driver
// can assert monotonicity cheaply.
#pragma once

#include <cstdint>
#include <chrono>
#include <memory>
#include <string>
#include <string_view>

#include <iosfwd>

namespace bgl::obs {

class CounterRegistry;

/// Append the shortest decimal representation of `value` that parses back
/// to the same double (std::to_chars), JSON-compatible: infinities and NaN
/// (not representable in JSON) are written as "null". Shared by the trace
/// sink and the svc protocol writers so every emitted number round-trips.
void append_json_double(std::string& out, double value);

class TraceSink {
 public:
  /// Write to an externally owned stream (tests use std::ostringstream).
  explicit TraceSink(std::ostream& out);
  /// Open `path` for writing (truncates). Throws BglError on failure and
  /// owns the file stream for the sink's lifetime.
  static std::unique_ptr<TraceSink> open(const std::string& path);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// One JSONL line under construction. Writes on destruction.
  class Event {
   public:
    Event& field(std::string_view key, std::string_view value);
    Event& field(std::string_view key, const char* value) {
      return field(key, std::string_view(value));
    }
    Event& field(std::string_view key, double value);
    Event& field(std::string_view key, std::uint64_t value);
    Event& field(std::string_view key, std::int64_t value);
    Event& field(std::string_view key, int value) {
      return field(key, static_cast<std::int64_t>(value));
    }
    Event& field(std::string_view key, bool value);

    ~Event();
    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

   private:
    friend class TraceSink;
    explicit Event(TraceSink* sink) : sink_(sink) {}
    TraceSink* sink_;
  };

  /// Start an event line with the mandatory "type", "t" and "wall_us"
  /// fields. The returned builder must be destroyed (end of the statement)
  /// before the next event() call.
  Event event(std::string_view type, double sim_time);

  /// Count trace.events into `counters` as lines are written (optional).
  void set_counters(CounterRegistry* counters) { counters_ = counters; }

  std::size_t events_written() const { return events_written_; }
  double max_sim_time() const { return max_sim_time_; }
  void flush();

 private:
  void append_key(std::string_view key);
  void append_escaped(std::string_view text);
  void append_double(double value);
  void finish_line();

  std::unique_ptr<std::ostream> owned_;  ///< Set by open(); null otherwise.
  std::ostream* out_;
  CounterRegistry* counters_ = nullptr;
  std::string line_;  ///< Reused across events.
  std::size_t events_written_ = 0;
  double max_sim_time_ = 0.0;
  bool any_event_ = false;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace bgl::obs
