// Log-bucketed distribution metrics for the observability layer.
//
// The counter registry reduces everything to sums, so --stats-out could only
// report means. LogHistogram keeps a fixed array of geometrically spaced
// buckets (growth factor 2^(1/4) per bucket, i.e. four buckets per octave,
// <= ~9% half-bucket relative error) over [kLow, kLow * r^kBuckets), plus an
// underflow slot for zero/negative/sub-kLow values. Adding a sample is one
// log2 + one array increment — no allocation, no sorting, safe to leave
// enabled on the simulation hot path. Quantiles are answered at dump time by
// walking the cumulative counts and reporting the geometric midpoint of the
// target bucket (clamped to the observed min/max), so p50/p90/p99 agree with
// exact sample percentiles to within one bucket's relative error.
//
// HistogramRegistry mirrors CounterRegistry: a fixed array indexed by a
// compile-time enum, nullable at every instrumentation site, merged across
// parallel runs, dumped as JSON. Names (histogram_name) are stable API.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>

namespace bgl::obs {

class LogHistogram {
 public:
  /// Lowest finite bucket boundary; values below land in the underflow slot.
  static constexpr double kLow = 1e-3;
  /// Bucket growth factor r = 2^(1/4): four buckets per octave.
  static constexpr double kGrowth = 1.189207115002721;
  /// 200 buckets cover [1e-3, ~1e12] — microseconds to multi-year spans.
  static constexpr std::size_t kBuckets = 200;

  void add(double value);
  void merge(const LogHistogram& other);
  void reset();

  std::uint64_t count() const { return count_; }
  std::uint64_t underflow() const { return underflow_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Lower/upper boundary of bucket b (b in [0, kBuckets)).
  static double bucket_low(std::size_t b);
  static double bucket_high(std::size_t b) { return bucket_low(b + 1); }

  std::uint64_t bucket_count(std::size_t b) const { return buckets_[b]; }

  /// q in [0, 1]; nearest-rank over the bucket cumulative counts, reported
  /// as the geometric midpoint of the holding bucket clamped to [min, max].
  /// Returns 0 when the histogram is empty.
  double quantile(double q) const;

  /// {"count":...,"underflow":...,"min":...,"max":...,"mean":...,
  ///  "p50":...,"p90":...,"p99":...,"buckets":[[lo,hi,n],...]} — quantiles
  /// and the (sparse, non-empty-only) bucket list are omitted when empty.
  void write_json(std::ostream& out) const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;      ///< Total samples, underflow included.
  std::uint64_t underflow_ = 0;  ///< Samples below kLow (incl. zero/negative).
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Every distribution the simulator records. Like Counter, the dotted names
/// are stable API for docs, dashboards and tests.
enum class Hist : std::size_t {
  kWait = 0,        ///< Per-job queue wait, seconds (driver, at finish).
  kResponse,        ///< Per-job response time, seconds.
  kSlowdown,        ///< Per-job bounded slowdown.
  kDecisionUs,      ///< Per-schedule() wall latency, microseconds.
  kCandidates,      ///< Free candidates offered to the policy per decision.
  kCount_,          ///< Sentinel; keep last.
};

inline constexpr std::size_t kNumHists = static_cast<std::size_t>(Hist::kCount_);

/// Stable dotted name of a histogram (e.g. "sched.decision_us").
std::string_view histogram_name(Hist h);

class HistogramRegistry {
 public:
  void add(Hist h, double value) {
    hists_[static_cast<std::size_t>(h)].add(value);
  }
  const LogHistogram& histogram(Hist h) const {
    return hists_[static_cast<std::size_t>(h)];
  }

  void reset();
  void merge(const HistogramRegistry& other);

  /// {"job.wait_s":{...},...} — one LogHistogram dump per slot.
  void write_json(std::ostream& out) const;

 private:
  std::array<LogHistogram, kNumHists> hists_{};
};

}  // namespace bgl::obs
