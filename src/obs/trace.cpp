#include "obs/trace.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "obs/counters.hpp"
#include "util/error.hpp"

namespace bgl::obs {

void append_json_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  // std::to_chars with no precision argument emits the shortest string that
  // parses back to exactly `value` (Ryū); 32 bytes cover every double.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, static_cast<std::size_t>(res.ptr - buf));
}

TraceSink::TraceSink(std::ostream& out)
    : out_(&out), epoch_(std::chrono::steady_clock::now()) {
  line_.reserve(256);
}

std::unique_ptr<TraceSink> TraceSink::open(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*file) throw Error("cannot open trace output file: " + path);
  auto sink = std::make_unique<TraceSink>(*file);
  sink->owned_ = std::move(file);
  return sink;
}

TraceSink::~TraceSink() {
  if (out_ != nullptr) out_->flush();
}

void TraceSink::flush() { out_->flush(); }

void TraceSink::append_key(std::string_view key) {
  line_ += ',';
  line_ += '"';
  line_ += key;  // keys are compile-time literals; no escaping needed
  line_ += "\":";
}

void TraceSink::append_escaped(std::string_view text) {
  line_ += '"';
  for (const char c : text) {
    switch (c) {
      case '"': line_ += "\\\""; break;
      case '\\': line_ += "\\\\"; break;
      case '\n': line_ += "\\n"; break;
      case '\r': line_ += "\\r"; break;
      case '\t': line_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          line_ += buf;
        } else {
          line_ += c;
        }
    }
  }
  line_ += '"';
}

void TraceSink::finish_line() {
  line_ += '\n';
  out_->write(line_.data(), static_cast<std::streamsize>(line_.size()));
  ++events_written_;
  if (counters_ != nullptr) counters_->add(Counter::kTraceEvents);
}

void TraceSink::append_double(double value) { append_json_double(line_, value); }

TraceSink::Event TraceSink::event(std::string_view type, double sim_time) {
  BGL_CHECK(line_.empty(), "previous trace event still under construction");
  if (!any_event_ || sim_time > max_sim_time_) max_sim_time_ = sim_time;
  any_event_ = true;

  const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - epoch_)
                        .count();
  line_ += "{\"type\":";
  append_escaped(type);
  append_key("t");
  append_double(sim_time);
  append_key("wall_us");
  line_ += std::to_string(wall);
  return Event(this);
}

TraceSink::Event& TraceSink::Event::field(std::string_view key,
                                          std::string_view value) {
  sink_->append_key(key);
  sink_->append_escaped(value);
  return *this;
}

TraceSink::Event& TraceSink::Event::field(std::string_view key, double value) {
  sink_->append_key(key);
  sink_->append_double(value);
  return *this;
}

TraceSink::Event& TraceSink::Event::field(std::string_view key,
                                          std::uint64_t value) {
  sink_->append_key(key);
  sink_->line_ += std::to_string(value);
  return *this;
}

TraceSink::Event& TraceSink::Event::field(std::string_view key,
                                          std::int64_t value) {
  sink_->append_key(key);
  sink_->line_ += std::to_string(value);
  return *this;
}

TraceSink::Event& TraceSink::Event::field(std::string_view key, bool value) {
  sink_->append_key(key);
  sink_->line_ += value ? "true" : "false";
  return *this;
}

TraceSink::Event::~Event() {
  sink_->line_ += '}';
  sink_->finish_line();
  sink_->line_.clear();
}

}  // namespace bgl::obs
