#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/strings.hpp"

namespace bgl::obs {

namespace {

// floor(4 * log2(v / kLow)): bucket index under the 2^(1/4) growth rule.
std::size_t bucket_of(double value) {
  const double idx = std::floor(4.0 * std::log2(value / LogHistogram::kLow));
  if (idx < 0.0) return 0;  // callers filter underflow before this
  const auto b = static_cast<std::size_t>(idx);
  return std::min(b, LogHistogram::kBuckets - 1);
}

}  // namespace

double LogHistogram::bucket_low(std::size_t b) {
  return kLow * std::exp2(static_cast<double>(b) * 0.25);
}

void LogHistogram::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (!(value >= kLow)) {  // NaN-safe: NaN counts as underflow, not a bucket
    ++underflow_;
    return;
  }
  ++buckets_[bucket_of(value)];
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  underflow_ += other.underflow_;
  sum_ += other.sum_;
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
}

void LogHistogram::reset() { *this = LogHistogram{}; }

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest rank, 1-based: the smallest value with cumulative count >= rank.
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count_))));
  if (rank <= underflow_) return min_;  // below the finite buckets
  std::uint64_t cum = underflow_;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += buckets_[b];
    if (cum >= rank) {
      const double mid = std::sqrt(bucket_low(b) * bucket_high(b));
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

void LogHistogram::write_json(std::ostream& out) const {
  out << "{\"count\":" << count_ << ",\"underflow\":" << underflow_;
  if (count_ > 0) {
    out << ",\"min\":" << format_double(min_, 6)
        << ",\"max\":" << format_double(max_, 6)
        << ",\"mean\":" << format_double(mean(), 6)
        << ",\"p50\":" << format_double(quantile(0.50), 6)
        << ",\"p90\":" << format_double(quantile(0.90), 6)
        << ",\"p99\":" << format_double(quantile(0.99), 6) << ",\"buckets\":[";
    bool first = true;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      if (!first) out << ',';
      first = false;
      out << '[' << format_double(bucket_low(b), 6) << ','
          << format_double(bucket_high(b), 6) << ',' << buckets_[b] << ']';
    }
    out << ']';
  }
  out << '}';
}

std::string_view histogram_name(Hist h) {
  switch (h) {
    case Hist::kWait: return "job.wait_s";
    case Hist::kResponse: return "job.response_s";
    case Hist::kSlowdown: return "job.bounded_slowdown";
    case Hist::kDecisionUs: return "sched.decision_us";
    case Hist::kCandidates: return "sched.candidates_per_decision";
    case Hist::kCount_: break;
  }
  return "?";
}

void HistogramRegistry::reset() {
  for (auto& h : hists_) h.reset();
}

void HistogramRegistry::merge(const HistogramRegistry& other) {
  for (std::size_t i = 0; i < kNumHists; ++i) hists_[i].merge(other.hists_[i]);
}

void HistogramRegistry::write_json(std::ostream& out) const {
  out << '{';
  for (std::size_t i = 0; i < kNumHists; ++i) {
    if (i > 0) out << ',';
    out << '"' << histogram_name(static_cast<Hist>(i)) << "\":";
    hists_[i].write_json(out);
  }
  out << '}';
}

}  // namespace bgl::obs
