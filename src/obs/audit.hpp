// Trace auditor: replays a JSONL trace and enforces the simulator's own
// invariants against it, so any scheduler/driver/index change that corrupts
// the event stream (or the stream's documented semantics) fails loudly.
//
// The auditor is a pure consumer — it never runs the simulator. It rebuilds
// the machine (PartitionCatalog from sim_begin's dims/topology) and a
// per-job lifecycle state machine from the events alone, and checks:
//
//   lifecycle          submit → (decision,start) → {kill → restart…} → finish
//   decision_pairing   every job_start is immediately preceded by its
//                      sched_decision (same job, same entry, same t)
//   overlap            no two concurrent jobs on intersecting partitions
//   time_order         nondecreasing t
//   wait/response/slowdown arithmetic re-derivable from event times
//   restart counts     job_start/job_kill/job_finish restarts match the
//                      number of kills observed so far
//   work accounting    job_kill work_lost/work_saved node-second bounds and
//                      agreement with the paired checkpoint event
//   victims            node_failure.victims == following job_kill events,
//                      each on a partition containing the failed node
//   snapshots          machine_state queue/running/free/mfp/frag consistent
//                      with the reconstructed machine state
//   metrics            periodic metrics snapshots: gauges match the
//                      reconstruction, window deltas match the events seen
//                      since the previous metrics event, derived rates
//                      (utilization, finished_per_hour, interval) recompute;
//                      only the wall-clock decision_us_* quantiles and the
//                      pred_tp/pred_fp/pred_fn forecast scores (predictor-
//                      internal state) are exempt from reconstruction —
//                      both get ordering/range sanity checks instead
//   predictor          sim_begin predictor provenance (flag_window /
//                      burst_window present iff predictor == "adaptive");
//                      an inert predictor pairing — "none", or "paper"
//                      under the krevat scheduler — must never flag a node
//                      (predictor_query.nodes_flagged == 0,
//                      sched_decision.flags_in_chosen == 0, pred_tp ==
//                      pred_fp == 0)
//   aggregates         sim_end matches values recomputed from the stream
//   reservations       when sim_begin declares a reservation-carrying
//                      algorithm (easy/conservative/easy-holdback), every
//                      backfill decision must carry res_time/res_entry and
//                      satisfy the admission rule: the filler's estimated
//                      finish (start t + submit estimate) precedes res_time,
//                      or its partition is disjoint from the reserved one
//
// Used by tools/trace_audit (CLI) and tests/obs_audit_test.cpp (seeded
// corruptions); CI pipes fresh traces from all three schedulers through it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace bgl::obs {

enum class ViolationCode {
  kFormat,            ///< Malformed line, missing field, bad sim_begin.
  kTimeOrder,         ///< Simulation time decreased.
  kLifecycle,         ///< Illegal job state transition.
  kDecisionPairing,   ///< sched_decision/job_start pair broken.
  kEntryMismatch,     ///< Paired decision and start disagree on the entry.
  kOverlap,           ///< Concurrent jobs on intersecting partitions.
  kWaitMismatch,      ///< wait/wait_so_far not derivable from event times.
  kResponseMismatch,  ///< response != finish - submit.
  kSlowdownMismatch,  ///< bounded_slowdown != max(resp,Γ)/max(runtime,Γ).
  kRestartMismatch,   ///< restarts field disagrees with observed kills.
  kWorkAccounting,    ///< work_lost/work_saved out of bounds or inconsistent.
  kVictimsMismatch,   ///< node_failure.victims vs job_kill events.
  kFieldMismatch,     ///< Event field disagrees with reconstructed state.
  kReservation,       ///< Backfill reservation invariant broken (see below).
  kSnapshotMismatch,  ///< machine_state disagrees with reconstruction.
  kMetricsMismatch,   ///< metrics snapshot disagrees with reconstruction.
  kPredictorMismatch, ///< Predictor provenance / flag-count invariant broken.
  kAggregateMismatch, ///< sim_end aggregate != recomputed value.
  kTruncated,         ///< Trace ends without sim_end / unfinished jobs.
  kUnknownEvent,      ///< Unknown event type (violation in strict mode).
};

/// Stable code string used in reports and keyed on by tests (e.g. "overlap").
const char* to_string(ViolationCode code);

struct Violation {
  ViolationCode code = ViolationCode::kFormat;
  std::size_t line = 0;      ///< 1-based trace line; 0 = end-of-trace check.
  std::int64_t job = -1;     ///< Workload job id; -1 when not job-scoped.
  std::string message;
};

struct AuditOptions {
  /// Strict mode: unknown event types and a missing/unusable sim_begin
  /// (which disables the partition-overlap and snapshot reconstruction
  /// checks) become violations instead of silent degradations.
  bool strict = false;
  /// Bounded-slowdown Γ the run used (MetricsConfig::gamma default).
  double gamma = 10.0;
  /// Stop collecting after this many violations (the scan still finishes).
  std::size_t max_violations = 1000;
};

struct AuditReport {
  std::vector<Violation> violations;
  std::size_t events = 0;         ///< Parsed trace lines.
  std::size_t jobs = 0;           ///< Distinct jobs submitted.
  std::size_t unknown_events = 0; ///< Lines with an unrecognised type.
  std::size_t dropped_violations = 0;  ///< Found beyond max_violations.

  bool ok() const { return violations.empty() && dropped_violations == 0; }

  /// One JSON object: {"ok":...,"events":...,"violations":[{...},...]}.
  void write_json(std::ostream& out) const;
};

/// Scan a whole trace from `in`. Never throws on trace content — malformed
/// input becomes kFormat violations (scanning stops at unparsable JSON,
/// since field offsets are unreliable past that point).
AuditReport audit_trace(std::istream& in, const AuditOptions& options = {});

}  // namespace bgl::obs
