// Streaming reader for the JSONL trace format written by obs::TraceSink.
//
// The schema (docs/OBSERVABILITY.md) is deliberately flat — one JSON object
// per line, scalar values only — so the reader is a small hand-rolled RFC
// 8259 scanner, not a general JSON library: it accepts exactly the subset
// the sink emits (strings with escapes, numbers, true/false/null) and
// rejects nested objects/arrays with a ParseError carrying the line number.
//
// Reading is allocation-light: TraceReader reuses one TraceRecord's field
// buffers across lines, and field keys/values reference storage owned by
// the record (valid until the next next() call).
//
// Two consumption levels:
//   * TraceRecord — generic (key, scalar) view with checked accessors;
//   * typed event structs (JobStartEvent, ...) mirroring the documented
//     event types, each with a from(record) factory that validates the
//     required fields. trace_audit and describe-trace build on these.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bgl::obs {

/// Every documented trace event type, in the order a well-formed trace
/// first introduces them; kUnknown covers forward-compatible extensions.
enum class EventType {
  kSimBegin,
  kJobSubmit,
  kPredictorQuery,
  kSchedDecision,
  kJobStart,
  kMigration,
  kNodeFailure,
  kJobKill,
  kCheckpoint,
  kJobFinish,
  kMachineState,
  kMetrics,
  kSimEnd,
  kUnknown,
};

EventType event_type_from(std::string_view name);
const char* to_string(EventType type);

/// One parsed trace line: the mandatory (type, t) header plus a flat list
/// of scalar fields. String storage is owned by the record and reused by
/// the reader; copy values out before advancing.
class TraceRecord {
 public:
  EventType type() const { return type_; }
  std::string_view type_name() const { return type_name_; }
  double t() const { return t_; }
  std::size_t line_number() const { return line_number_; }

  bool has(std::string_view key) const;
  std::optional<double> num(std::string_view key) const;
  std::optional<std::string_view> str(std::string_view key) const;
  std::optional<bool> boolean(std::string_view key) const;

  /// Checked accessors: throw ParseError naming the key and line on a
  /// missing field or a type mismatch.
  double require_num(std::string_view key) const;
  std::int64_t require_int(std::string_view key) const;
  std::string_view require_str(std::string_view key) const;
  bool require_bool(std::string_view key) const;

 private:
  friend class TraceReader;

  enum class Kind : std::uint8_t { kNumber, kString, kBool, kNull };
  struct Field {
    std::string key;
    Kind kind = Kind::kNull;
    double number = 0.0;
    bool flag = false;
    std::string text;
  };
  const Field* find(std::string_view key) const;

  EventType type_ = EventType::kUnknown;
  std::string type_name_;
  double t_ = 0.0;
  std::size_t line_number_ = 0;
  std::vector<Field> fields_;
  std::size_t num_fields_ = 0;  ///< Used entries of fields_ (reused storage).
};

class TraceReader {
 public:
  /// Read from an externally owned stream (tests use std::istringstream).
  explicit TraceReader(std::istream& in);

  /// Parse the next line into `record` (reusing its buffers). Returns false
  /// at end of input; skips blank lines; throws ParseError (with the line
  /// number) on malformed JSON or a line without the mandatory type/t pair.
  bool next(TraceRecord& record);

  /// Parse one already-read line (no trailing newline) into `record`,
  /// tagging errors and the record with `line_number`. Shared by next() and
  /// callers that own their line transport (tools/loadgen reads reply lines
  /// from a pipe). Throws ParseError exactly like next().
  static void parse_line(std::string_view line, std::size_t line_number,
                         TraceRecord& record);

  std::size_t lines_read() const { return line_number_; }

 private:
  std::istream* in_;
  std::string line_;
  std::size_t line_number_ = 0;
};

// --- typed event structs (field semantics: docs/OBSERVABILITY.md) ---

struct SimBeginEvent {
  double t = 0.0;
  std::string machine;    ///< Torus dims, e.g. "4x4x8".
  int nodes = 0;
  std::string topology;   ///< "torus" | "mesh".
  std::string scheduler;
  std::string policy;
  std::string predictor;
  double alpha = 0.0;
  std::string backfill;
  bool migration = false;
  std::int64_t jobs = 0;
  std::int64_t failure_events = 0;
  // Scale-up knobs, written only when they deviate from the defaults
  // (docs/OBSERVABILITY.md): empty/zero means the default configuration.
  std::string catalog;     ///< "" (boxes) | "blocks".
  int min_block = 0;       ///< kBlocks only: smallest block size.
  std::string event_queue; ///< "" (calendar) | "heap".
  std::string algorithm;   ///< "" (krevat) | "easy" | "conservative" | ...
  // Adaptive-predictor provenance, written iff predictor == "adaptive"
  // (docs/PREDICTORS.md); 0 means the fields were absent.
  double flag_window = 0.0;   ///< Base per-node flag window (seconds).
  double burst_window = 0.0;  ///< Machine-wide burst-detection window.
  static SimBeginEvent from(const TraceRecord& r);
};

struct JobSubmitEvent {
  double t = 0.0;
  std::int64_t job = 0;
  int size = 0;
  int alloc_size = 0;
  double estimate = 0.0;
  double runtime = 0.0;
  static JobSubmitEvent from(const TraceRecord& r);
};

struct PredictorQueryEvent {
  double t = 0.0;
  std::int64_t job = 0;
  double window_start = 0.0;
  double window_end = 0.0;
  int nodes_flagged = 0;
  static PredictorQueryEvent from(const TraceRecord& r);
};

struct SchedDecisionEvent {
  double t = 0.0;
  std::int64_t job = 0;
  std::string policy;
  int entry = -1;
  int candidates = 0;
  double l_mfp = 0.0;
  double l_pf = 0.0;
  double e_loss = 0.0;
  int mfp_after = 0;
  int flags_in_chosen = 0;
  bool backfill = false;
  // Reservation provenance, written only by the reservation-carrying
  // algorithms (easy/conservative/easy-holdback) on backfill placements:
  // the binding reservation this filler was admitted against. res_entry < 0
  // means the fields were absent (krevat, or a non-backfill start).
  double res_time = -1.0;
  int res_entry = -1;
  static SchedDecisionEvent from(const TraceRecord& r);
};

struct JobStartEvent {
  double t = 0.0;
  std::int64_t job = 0;
  int entry = -1;
  int alloc_size = 0;
  double wait_so_far = 0.0;
  int restarts = 0;
  static JobStartEvent from(const TraceRecord& r);
};

struct MigrationEvent {
  double t = 0.0;
  std::int64_t job = 0;
  int from_entry = -1;
  int to_entry = -1;
  static MigrationEvent from(const TraceRecord& r);
};

struct NodeFailureEvent {
  double t = 0.0;
  int node = -1;
  int victims = 0;
  double down_for = 0.0;
  static NodeFailureEvent from(const TraceRecord& r);
};

struct JobKillEvent {
  double t = 0.0;
  std::int64_t job = 0;
  int entry = -1;
  double elapsed = 0.0;
  double work_lost = 0.0;   ///< Node-seconds destroyed.
  double work_saved = 0.0;  ///< Node-seconds preserved by checkpoints.
  int restarts = 0;
  static JobKillEvent from(const TraceRecord& r);
};

struct CheckpointEvent {
  double t = 0.0;
  std::int64_t job = 0;
  std::int64_t count = 0;
  double work_saved = 0.0;  ///< Node-seconds.
  static CheckpointEvent from(const TraceRecord& r);
};

struct JobFinishEvent {
  double t = 0.0;
  std::int64_t job = 0;
  int entry = -1;
  double wait = 0.0;
  double response = 0.0;
  double bounded_slowdown = 0.0;
  int restarts = 0;
  static JobFinishEvent from(const TraceRecord& r);
};

struct MachineStateEvent {
  double t = 0.0;
  int queue_depth = 0;    ///< Waiting jobs.
  int queued_nodes = 0;   ///< Nodes requested by waiting jobs (Σ s_j).
  int running_jobs = 0;
  int free_nodes = 0;     ///< Schedulable free nodes (down nodes excluded).
  int down_nodes = 0;
  int mfp = 0;            ///< Maximal free partition size.
  double frag = 0.0;      ///< 1 - mfp/free_nodes (0 when free_nodes == 0).
  int flagged_nodes = 0;  ///< Predictor flags for the next snapshot window.
  static MachineStateEvent from(const TraceRecord& r);
};

/// Periodic telemetry snapshot (docs/OBSERVABILITY.md, "metrics"): queue /
/// occupancy gauges at t plus windowed rates since the previous metrics
/// event. All fields except the decision_us_* quantiles (wall-clock, host-
/// dependent) are re-derived and cross-checked by the auditor.
struct MetricsEvent {
  double t = 0.0;
  int queue_depth = 0;     ///< Waiting jobs.
  int queued_nodes = 0;    ///< Nodes requested by waiting jobs (Σ s_j).
  int running_jobs = 0;
  int busy_nodes = 0;      ///< Nodes held by running jobs (down excluded).
  int down_nodes = 0;
  double utilization = 0.0;  ///< busy_nodes / machine nodes.
  double interval = 0.0;     ///< Seconds since the previous metrics event.
  // Event counts within the interval.
  std::int64_t submits = 0;
  std::int64_t starts = 0;
  std::int64_t finishes = 0;
  std::int64_t kills = 0;
  std::int64_t migrations = 0;
  double finished_per_hour = 0.0;  ///< finishes * 3600 / interval.
  /// Scheduler passes within the interval; the decision_us_* quantiles are
  /// nearest-rank over the window's per-pass wall latencies (LatencyRing) —
  /// the only non-reconstructable (wall-clock) fields besides wall_us.
  std::int64_t decisions = 0;
  double decision_us_p50 = 0.0;
  double decision_us_p99 = 0.0;
  double decision_us_max = 0.0;
  /// Realized forecast quality of the window that just closed: the flagged
  /// set captured at the window's start scored against the nodes that
  /// failed inside it (node-window granularity). Absent in pre-predictor
  /// traces; the auditor treats them as ordering/sanity-only (the flagged
  /// capture is predictor-internal state, not reconstructable).
  std::int64_t pred_tp = 0;
  std::int64_t pred_fp = 0;
  std::int64_t pred_fn = 0;
  static MetricsEvent from(const TraceRecord& r);
};

struct SimEndEvent {
  double t = 0.0;
  std::int64_t jobs_completed = 0;
  double span = 0.0;
  double avg_wait = 0.0;
  double avg_response = 0.0;
  double avg_bounded_slowdown = 0.0;
  double utilization = 0.0;
  double unused = 0.0;
  double lost = 0.0;
  std::int64_t job_kills = 0;
  std::int64_t migrations = 0;
  std::int64_t checkpoints = 0;
  double work_lost_node_seconds = 0.0;
  static SimEndEvent from(const TraceRecord& r);
};

}  // namespace bgl::obs
