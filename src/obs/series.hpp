// Ring-buffer time series for windowed snapshot statistics.
//
// The log histograms are cumulative over a whole run; the periodic `metrics`
// trace event instead reports decision-latency quantiles *over the interval
// since the last snapshot*. LatencyRing keeps the last kCapacity samples in
// a fixed buffer (allocated once at construction, never on the hot path) and
// answers exact nearest-rank quantiles over its current contents at emission
// time; the emitter clears it after each snapshot so the window restarts.
// Header-only: the whole class is a thin wrapper over two vectors.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bgl::obs {

class LatencyRing {
 public:
  explicit LatencyRing(std::size_t capacity = 4096)
      : buf_(capacity), scratch_(capacity) {}

  /// Record one sample; beyond capacity the oldest sample is overwritten
  /// (the window stays the most recent kCapacity observations).
  void add(double value) {
    buf_[next_] = value;
    next_ = (next_ + 1) % buf_.size();
    if (size_ < buf_.size()) ++size_;
    ++added_;
  }

  void clear() {
    next_ = 0;
    size_ = 0;
    added_ = 0;
  }

  std::size_t capacity() const { return buf_.size(); }
  /// Samples currently held (<= capacity).
  std::size_t size() const { return size_; }
  /// Samples added since the last clear() (can exceed capacity).
  std::uint64_t added() const { return added_; }

  double max() const {
    double m = 0.0;
    for (std::size_t i = 0; i < size_; ++i) m = std::max(m, buf_[i]);
    return m;
  }

  /// Exact nearest-rank quantile (q in [0, 1]) over the held samples;
  /// 0 when empty. O(n) via nth_element on a preallocated scratch copy.
  double quantile(double q) const {
    if (size_ == 0) return 0.0;
    std::copy(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(size_),
              scratch_.begin());
    std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(size_) + 0.5);
    if (rank > 0) --rank;
    if (rank >= size_) rank = size_ - 1;
    const auto nth = scratch_.begin() + static_cast<std::ptrdiff_t>(rank);
    std::nth_element(scratch_.begin(), nth,
                     scratch_.begin() + static_cast<std::ptrdiff_t>(size_));
    return *nth;
  }

 private:
  std::vector<double> buf_;
  mutable std::vector<double> scratch_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
  std::uint64_t added_ = 0;
};

}  // namespace bgl::obs
