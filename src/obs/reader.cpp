#include "obs/reader.hpp"

#include <cmath>
#include <cstdlib>
#include <istream>

#include "util/error.hpp"

namespace bgl::obs {

EventType event_type_from(std::string_view name) {
  if (name == "sim_begin") return EventType::kSimBegin;
  if (name == "job_submit") return EventType::kJobSubmit;
  if (name == "predictor_query") return EventType::kPredictorQuery;
  if (name == "sched_decision") return EventType::kSchedDecision;
  if (name == "job_start") return EventType::kJobStart;
  if (name == "migration") return EventType::kMigration;
  if (name == "node_failure") return EventType::kNodeFailure;
  if (name == "job_kill") return EventType::kJobKill;
  if (name == "checkpoint") return EventType::kCheckpoint;
  if (name == "job_finish") return EventType::kJobFinish;
  if (name == "machine_state") return EventType::kMachineState;
  if (name == "metrics") return EventType::kMetrics;
  if (name == "sim_end") return EventType::kSimEnd;
  return EventType::kUnknown;
}

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kSimBegin: return "sim_begin";
    case EventType::kJobSubmit: return "job_submit";
    case EventType::kPredictorQuery: return "predictor_query";
    case EventType::kSchedDecision: return "sched_decision";
    case EventType::kJobStart: return "job_start";
    case EventType::kMigration: return "migration";
    case EventType::kNodeFailure: return "node_failure";
    case EventType::kJobKill: return "job_kill";
    case EventType::kCheckpoint: return "checkpoint";
    case EventType::kJobFinish: return "job_finish";
    case EventType::kMachineState: return "machine_state";
    case EventType::kMetrics: return "metrics";
    case EventType::kSimEnd: return "sim_end";
    case EventType::kUnknown: break;
  }
  return "unknown";
}

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ParseError("trace line " + std::to_string(line) + ": " + what);
}

/// Minimal scanner over one flat JSON object. Positions are byte offsets
/// into the line; the trace schema has no nested containers.
class LineScanner {
 public:
  LineScanner(std::string_view text, std::size_t line) : text_(text), line_(line) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool done() const { return pos_ >= text_.size(); }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void expect(char c) {
    if (peek() != c) {
      fail(line_, std::string("expected '") + c + "' at column " +
                      std::to_string(pos_ + 1));
    }
    ++pos_;
  }

  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  /// Parse a JSON string (opening quote already expected) into `out`.
  void parse_string(std::string& out) {
    expect('"');
    out.clear();
    while (true) {
      if (done()) fail(line_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (done()) fail(line_, "dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(line_, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail(line_, "bad \\u escape");
          }
          // The sink only escapes control bytes; decode BMP code points to
          // UTF-8 so round-trips are lossless.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail(line_, std::string("unknown escape '\\") + esc + "'");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail(line_, "malformed number");
    if (consume('.') && digits() == 0) fail(line_, "malformed number fraction");
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (digits() == 0) fail(line_, "malformed number exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    return std::strtod(token.c_str(), nullptr);
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::size_t column() const { return pos_ + 1; }

 private:
  std::string_view text_;
  std::size_t line_;
  std::size_t pos_ = 0;
};

}  // namespace

const TraceRecord::Field* TraceRecord::find(std::string_view key) const {
  for (std::size_t i = 0; i < num_fields_; ++i) {
    if (fields_[i].key == key) return &fields_[i];
  }
  return nullptr;
}

bool TraceRecord::has(std::string_view key) const { return find(key) != nullptr; }

std::optional<double> TraceRecord::num(std::string_view key) const {
  const Field* f = find(key);
  if (f == nullptr || f->kind != Kind::kNumber) return std::nullopt;
  return f->number;
}

std::optional<std::string_view> TraceRecord::str(std::string_view key) const {
  const Field* f = find(key);
  if (f == nullptr || f->kind != Kind::kString) return std::nullopt;
  return std::string_view(f->text);
}

std::optional<bool> TraceRecord::boolean(std::string_view key) const {
  const Field* f = find(key);
  if (f == nullptr || f->kind != Kind::kBool) return std::nullopt;
  return f->flag;
}

namespace {
[[noreturn]] void missing(const TraceRecord& r, std::string_view key,
                          const char* kind) {
  fail(r.line_number(), std::string(to_string(r.type())) + " event missing " +
                            kind + " field \"" + std::string(key) + "\"");
}
}  // namespace

double TraceRecord::require_num(std::string_view key) const {
  const auto v = num(key);
  if (!v) missing(*this, key, "numeric");
  return *v;
}

std::int64_t TraceRecord::require_int(std::string_view key) const {
  const double v = require_num(key);
  return static_cast<std::int64_t>(std::llround(v));
}

std::string_view TraceRecord::require_str(std::string_view key) const {
  const auto v = str(key);
  if (!v) missing(*this, key, "string");
  return *v;
}

bool TraceRecord::require_bool(std::string_view key) const {
  const auto v = boolean(key);
  if (!v) missing(*this, key, "boolean");
  return *v;
}

TraceReader::TraceReader(std::istream& in) : in_(&in) {}

bool TraceReader::next(TraceRecord& record) {
  while (std::getline(*in_, line_)) {
    ++line_number_;
    bool blank = true;
    for (const char c : line_) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    TraceReader::parse_line(line_, line_number_, record);
    return true;
  }
  return false;
}

void TraceReader::parse_line(std::string_view line, std::size_t line_number,
                             TraceRecord& record) {
  const std::size_t line_number_ = line_number;  // for fail() messages below
  {
    record.num_fields_ = 0;
    record.line_number_ = line_number_;
    LineScanner s(line, line_number_);
    s.skip_ws();
    s.expect('{');
    bool first = true;
    while (true) {
      s.skip_ws();
      if (s.consume('}')) break;
      if (!first) {
        s.expect(',');
        s.skip_ws();
      }
      first = false;
      if (record.num_fields_ == record.fields_.size()) {
        record.fields_.emplace_back();
      }
      TraceRecord::Field& f = record.fields_[record.num_fields_];
      s.parse_string(f.key);
      s.skip_ws();
      s.expect(':');
      s.skip_ws();
      const char c = s.peek();
      if (c == '"') {
        f.kind = TraceRecord::Kind::kString;
        s.parse_string(f.text);
      } else if (c == 't') {
        if (!s.consume_word("true")) fail(line_number_, "malformed literal");
        f.kind = TraceRecord::Kind::kBool;
        f.flag = true;
      } else if (c == 'f') {
        if (!s.consume_word("false")) fail(line_number_, "malformed literal");
        f.kind = TraceRecord::Kind::kBool;
        f.flag = false;
      } else if (c == 'n') {
        if (!s.consume_word("null")) fail(line_number_, "malformed literal");
        f.kind = TraceRecord::Kind::kNull;
      } else if (c == '{' || c == '[') {
        fail(line_number_, "nested containers are not part of the trace schema");
      } else {
        f.kind = TraceRecord::Kind::kNumber;
        f.number = s.parse_number();
      }
      ++record.num_fields_;
    }
    s.skip_ws();
    if (!s.done()) fail(line_number_, "trailing bytes after the JSON object");

    const auto type = record.str("type");
    if (!type) fail(line_number_, "missing mandatory \"type\" field");
    record.type_name_.assign(type->data(), type->size());
    record.type_ = event_type_from(record.type_name_);
    const auto t = record.num("t");
    if (!t) fail(line_number_, "missing mandatory \"t\" field");
    record.t_ = *t;
  }
}

// --- typed decoders ---

SimBeginEvent SimBeginEvent::from(const TraceRecord& r) {
  SimBeginEvent e;
  e.t = r.t();
  e.machine = std::string(r.require_str("machine"));
  e.nodes = static_cast<int>(r.require_int("nodes"));
  e.topology = std::string(r.require_str("topology"));
  e.scheduler = std::string(r.require_str("scheduler"));
  e.policy = std::string(r.require_str("policy"));
  e.predictor = std::string(r.require_str("predictor"));
  e.alpha = r.require_num("alpha");
  e.backfill = std::string(r.require_str("backfill"));
  e.migration = r.require_bool("migration");
  e.jobs = r.require_int("jobs");
  e.failure_events = r.require_int("failure_events");
  if (const auto c = r.str("catalog")) e.catalog = std::string(*c);
  if (const auto m = r.num("min_block")) e.min_block = static_cast<int>(*m);
  if (const auto q = r.str("event_queue")) e.event_queue = std::string(*q);
  if (const auto a = r.str("algorithm")) e.algorithm = std::string(*a);
  if (const auto w = r.num("flag_window")) e.flag_window = *w;
  if (const auto b = r.num("burst_window")) e.burst_window = *b;
  return e;
}

JobSubmitEvent JobSubmitEvent::from(const TraceRecord& r) {
  JobSubmitEvent e;
  e.t = r.t();
  e.job = r.require_int("job");
  e.size = static_cast<int>(r.require_int("size"));
  e.alloc_size = static_cast<int>(r.require_int("alloc_size"));
  e.estimate = r.require_num("estimate");
  e.runtime = r.require_num("runtime");
  return e;
}

PredictorQueryEvent PredictorQueryEvent::from(const TraceRecord& r) {
  PredictorQueryEvent e;
  e.t = r.t();
  e.job = r.require_int("job");
  e.window_start = r.require_num("window_start");
  e.window_end = r.require_num("window_end");
  e.nodes_flagged = static_cast<int>(r.require_int("nodes_flagged"));
  return e;
}

SchedDecisionEvent SchedDecisionEvent::from(const TraceRecord& r) {
  SchedDecisionEvent e;
  e.t = r.t();
  e.job = r.require_int("job");
  e.policy = std::string(r.require_str("policy"));
  e.entry = static_cast<int>(r.require_int("entry"));
  e.candidates = static_cast<int>(r.require_int("candidates"));
  e.l_mfp = r.require_num("l_mfp");
  e.l_pf = r.require_num("l_pf");
  e.e_loss = r.require_num("e_loss");
  e.mfp_after = static_cast<int>(r.require_int("mfp_after"));
  e.flags_in_chosen = static_cast<int>(r.require_int("flags_in_chosen"));
  e.backfill = r.require_bool("backfill");
  if (const auto rt = r.num("res_time")) e.res_time = *rt;
  if (const auto re = r.num("res_entry")) e.res_entry = static_cast<int>(*re);
  return e;
}

JobStartEvent JobStartEvent::from(const TraceRecord& r) {
  JobStartEvent e;
  e.t = r.t();
  e.job = r.require_int("job");
  e.entry = static_cast<int>(r.require_int("entry"));
  e.alloc_size = static_cast<int>(r.require_int("alloc_size"));
  e.wait_so_far = r.require_num("wait_so_far");
  e.restarts = static_cast<int>(r.require_int("restarts"));
  return e;
}

MigrationEvent MigrationEvent::from(const TraceRecord& r) {
  MigrationEvent e;
  e.t = r.t();
  e.job = r.require_int("job");
  e.from_entry = static_cast<int>(r.require_int("from_entry"));
  e.to_entry = static_cast<int>(r.require_int("to_entry"));
  return e;
}

NodeFailureEvent NodeFailureEvent::from(const TraceRecord& r) {
  NodeFailureEvent e;
  e.t = r.t();
  e.node = static_cast<int>(r.require_int("node"));
  e.victims = static_cast<int>(r.require_int("victims"));
  e.down_for = r.require_num("down_for");
  return e;
}

JobKillEvent JobKillEvent::from(const TraceRecord& r) {
  JobKillEvent e;
  e.t = r.t();
  e.job = r.require_int("job");
  e.entry = static_cast<int>(r.require_int("entry"));
  e.elapsed = r.require_num("elapsed");
  e.work_lost = r.require_num("work_lost");
  e.work_saved = r.require_num("work_saved");
  e.restarts = static_cast<int>(r.require_int("restarts"));
  return e;
}

CheckpointEvent CheckpointEvent::from(const TraceRecord& r) {
  CheckpointEvent e;
  e.t = r.t();
  e.job = r.require_int("job");
  e.count = r.require_int("count");
  e.work_saved = r.require_num("work_saved");
  return e;
}

JobFinishEvent JobFinishEvent::from(const TraceRecord& r) {
  JobFinishEvent e;
  e.t = r.t();
  e.job = r.require_int("job");
  e.entry = static_cast<int>(r.require_int("entry"));
  e.wait = r.require_num("wait");
  e.response = r.require_num("response");
  e.bounded_slowdown = r.require_num("bounded_slowdown");
  e.restarts = static_cast<int>(r.require_int("restarts"));
  return e;
}

MachineStateEvent MachineStateEvent::from(const TraceRecord& r) {
  MachineStateEvent e;
  e.t = r.t();
  e.queue_depth = static_cast<int>(r.require_int("queue_depth"));
  e.queued_nodes = static_cast<int>(r.require_int("queued_nodes"));
  e.running_jobs = static_cast<int>(r.require_int("running_jobs"));
  e.free_nodes = static_cast<int>(r.require_int("free_nodes"));
  e.down_nodes = static_cast<int>(r.require_int("down_nodes"));
  e.mfp = static_cast<int>(r.require_int("mfp"));
  e.frag = r.require_num("frag");
  e.flagged_nodes = static_cast<int>(r.require_int("flagged_nodes"));
  return e;
}

MetricsEvent MetricsEvent::from(const TraceRecord& r) {
  MetricsEvent e;
  e.t = r.t();
  e.queue_depth = static_cast<int>(r.require_int("queue_depth"));
  e.queued_nodes = static_cast<int>(r.require_int("queued_nodes"));
  e.running_jobs = static_cast<int>(r.require_int("running_jobs"));
  e.busy_nodes = static_cast<int>(r.require_int("busy_nodes"));
  e.down_nodes = static_cast<int>(r.require_int("down_nodes"));
  e.utilization = r.require_num("utilization");
  e.interval = r.require_num("interval");
  e.submits = r.require_int("submits");
  e.starts = r.require_int("starts");
  e.finishes = r.require_int("finishes");
  e.kills = r.require_int("kills");
  e.migrations = r.require_int("migrations");
  e.finished_per_hour = r.require_num("finished_per_hour");
  e.decisions = r.require_int("decisions");
  e.decision_us_p50 = r.require_num("decision_us_p50");
  e.decision_us_p99 = r.require_num("decision_us_p99");
  e.decision_us_max = r.require_num("decision_us_max");
  // Forecast-quality fields: optional so pre-predictor traces stay readable.
  if (const auto tp = r.num("pred_tp")) e.pred_tp = static_cast<std::int64_t>(*tp);
  if (const auto fp = r.num("pred_fp")) e.pred_fp = static_cast<std::int64_t>(*fp);
  if (const auto fn = r.num("pred_fn")) e.pred_fn = static_cast<std::int64_t>(*fn);
  return e;
}

SimEndEvent SimEndEvent::from(const TraceRecord& r) {
  SimEndEvent e;
  e.t = r.t();
  e.jobs_completed = r.require_int("jobs_completed");
  e.span = r.require_num("span");
  e.avg_wait = r.require_num("avg_wait");
  e.avg_response = r.require_num("avg_response");
  e.avg_bounded_slowdown = r.require_num("avg_bounded_slowdown");
  e.utilization = r.require_num("utilization");
  e.unused = r.require_num("unused");
  e.lost = r.require_num("lost");
  e.job_kills = r.require_int("job_kills");
  e.migrations = r.require_int("migrations");
  e.checkpoints = r.require_int("checkpoints");
  e.work_lost_node_seconds = r.require_num("work_lost_node_seconds");
  return e;
}

}  // namespace bgl::obs
