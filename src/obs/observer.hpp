// Observer: the pair of nullable observability hooks threaded through the
// simulator (SimConfig::obs → Scheduler → PlacementContext).
//
// Both members are borrowed pointers owned by the caller (CLI, bench
// harness, test); a default-constructed Observer disables all tracing and
// counting, and every instrumentation site must degrade to the exact
// uninstrumented behaviour in that case (no events, no allocations, no
// clock reads).
#pragma once

namespace bgl::obs {

class TraceSink;
class CounterRegistry;

struct Observer {
  TraceSink* trace = nullptr;
  CounterRegistry* counters = nullptr;

  bool enabled() const { return trace != nullptr || counters != nullptr; }
};

}  // namespace bgl::obs
