// Observer: the nullable observability hooks threaded through the
// simulator (SimConfig::obs → Scheduler → PlacementContext).
//
// All members are borrowed pointers owned by the caller (CLI, bench
// harness, test); a default-constructed Observer disables all tracing,
// counting and distribution recording, and every instrumentation site must
// degrade to the exact uninstrumented behaviour in that case (no events, no
// allocations, no clock reads).
#pragma once

namespace bgl::obs {

class TraceSink;
class CounterRegistry;
class HistogramRegistry;
class PhaseProfiler;

struct Observer {
  TraceSink* trace = nullptr;
  CounterRegistry* counters = nullptr;
  HistogramRegistry* histograms = nullptr;
  PhaseProfiler* profiler = nullptr;

  bool enabled() const {
    return trace != nullptr || counters != nullptr || histograms != nullptr ||
           profiler != nullptr;
  }
};

}  // namespace bgl::obs
