// Counter / timer registry for scheduler and driver hot-path statistics.
//
// Design constraints (docs/OBSERVABILITY.md has the full glossary):
//
//   * allocation-free hot path — the registry is a fixed std::array indexed
//     by a compile-time enum; add() is one integer add, no locks, no heap.
//     A simulation sweep may call add() hundreds of millions of times.
//   * zero-cost when disabled — every instrumentation site holds a nullable
//     CounterRegistry* and guards with one branch; a null registry makes the
//     instrumented code identical to the uninstrumented seed.
//   * timers are counters — ScopedTimer accumulates steady-clock nanoseconds
//     into an ordinary counter slot, so one dump format covers both and the
//     derived averages (e.g. finder microseconds per scheduling decision)
//     are computed only at write_json() time, never on the hot path.
//
// The registry is intentionally not thread-safe: one simulation run owns one
// registry. Sweeps that share a registry across sequential runs (the bench
// harness does) simply keep accumulating; merge() combines parallel ones.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string_view>

namespace bgl::obs {

/// Every counter the simulator exposes. Names (counter_name) are stable API:
/// docs, dashboards, and tests key on them.
enum class Counter : std::size_t {
  // Scheduling-engine hot path.
  kSchedInvocations = 0,   ///< schedule() calls (one per driver event burst).
  kSchedDecisionNanos,     ///< Total wall ns spent inside schedule().
  kSchedStarts,            ///< Jobs started (head-of-queue and backfill).
  kSchedBackfillStarts,    ///< Subset of starts placed by the backfill pass.
  kSchedMigrations,        ///< Migrations emitted by compaction.
  kPartitionsScanned,      ///< Catalog entries examined by free-list scans.
  kMfpEvaluations,         ///< mfp_with() evaluations by placement policies.
  kCandidatesConsidered,   ///< Free candidate partitions offered to policies.
  // Predictor traffic.
  kPredictorQueries,       ///< flagged_nodes() calls.
  kPredictorNodesFlagged,  ///< Total nodes flagged across all queries.
  // Realized forecast quality, scored once per metrics window at node-window
  // granularity (flagged-at-window-start vs failed-inside-window). The
  // derived pred.precision / pred.recall ratios come from these.
  kPredWindowsScored,        ///< Metrics windows scored.
  kPredWindowTruePositives,  ///< Flagged nodes that did fail in the window.
  kPredWindowFalsePositives, ///< Flagged nodes that did not fail.
  kPredWindowFalseNegatives, ///< Failing nodes the forecast missed.
  // Driver lifecycle.
  kDriverEvents,           ///< Discrete events popped from the event queue.
  kDriverFailures,         ///< Node-failure events processed.
  kDriverKills,            ///< Jobs killed (and requeued) by failures.
  kDriverCheckpoints,      ///< Checkpoints accounted (analytic model).
  // Trace plumbing.
  kTraceEvents,            ///< JSONL events written by the trace sink.
  kCount_,                 ///< Sentinel; keep last.
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount_);

/// Stable dotted name of a counter (e.g. "sched.decision_ns").
std::string_view counter_name(Counter c);

class CounterRegistry {
 public:
  void add(Counter c, std::uint64_t n = 1) {
    values_[static_cast<std::size_t>(c)] += n;
  }
  std::uint64_t value(Counter c) const {
    return values_[static_cast<std::size_t>(c)];
  }

  void reset() { values_.fill(0); }
  void merge(const CounterRegistry& other);

  /// {"counters":{...},"derived":{...}} — raw values plus the ratios the
  /// glossary documents (average decision latency, candidates per decision,
  /// flags per query). Derived entries appear only when their denominator
  /// is non-zero.
  void write_json(std::ostream& out) const;

 private:
  std::array<std::uint64_t, kNumCounters> values_{};
};

/// RAII timer: accumulates elapsed steady-clock nanoseconds into `slot` on
/// destruction. A null registry skips the clock reads entirely.
class ScopedTimer {
 public:
  ScopedTimer(CounterRegistry* registry, Counter slot)
      : registry_(registry), slot_(slot) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (registry_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      registry_->add(slot_, static_cast<std::uint64_t>(
                                std::chrono::duration_cast<std::chrono::nanoseconds>(
                                    elapsed)
                                    .count()));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  CounterRegistry* registry_;
  Counter slot_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bgl::obs
