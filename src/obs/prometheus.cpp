#include "obs/prometheus.hpp"

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace bgl::obs {

std::string prometheus_metric_name(std::string_view dotted) {
  std::string name = "bgl_";
  name.reserve(dotted.size() + 4);
  for (const char c : dotted) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    name += ok ? c : '_';
  }
  return name;
}

namespace {

/// Label values escape backslash, double quote and newline (the exposition
/// format's only escapes).
void append_label_value(std::string& out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_sample(std::string& out, std::string_view name, double value) {
  out += name;
  out += ' ';
  append_json_double(out, value);
  out += '\n';
}

void render_counters(std::string& out, const CounterRegistry& counters) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    const std::string name = prometheus_metric_name(counter_name(c)) + "_total";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(counters.value(c)) + "\n";
  }
}

void render_histograms(std::string& out, const HistogramRegistry& histograms) {
  for (std::size_t i = 0; i < kNumHists; ++i) {
    const auto h = static_cast<Hist>(i);
    const LogHistogram& hist = histograms.histogram(h);
    const std::string name = prometheus_metric_name(histogram_name(h));
    out += "# TYPE " + name + " summary\n";
    if (hist.count() > 0) {
      for (const double q : {0.5, 0.9, 0.99}) {
        out += name + "{quantile=\"";
        append_json_double(out, q);
        out += "\"} ";
        append_json_double(out, hist.quantile(q));
        out += '\n';
      }
    }
    append_sample(out, name + "_sum",
                  hist.mean() * static_cast<double>(hist.count()));
    out += name + "_count " + std::to_string(hist.count()) + "\n";
  }
}

void render_phases(std::string& out, const PhaseProfiler& profiler) {
  out += "# TYPE bgl_phase_spans_total counter\n";
  out += "# TYPE bgl_phase_seconds_total counter\n";
  out += "# TYPE bgl_phase_self_seconds_total counter\n";
  for (std::size_t i = 0; i < profiler.num_nodes(); ++i) {
    const PhaseProfiler::NodeView node = profiler.node_view(i);
    const auto labeled = [&](const char* family, double value) {
      out += family;
      out += "{path=\"";
      append_label_value(out, node.path);
      out += "\"} ";
      append_json_double(out, value);
      out += '\n';
    };
    labeled("bgl_phase_spans_total", static_cast<double>(node.count));
    labeled("bgl_phase_seconds_total",
            static_cast<double>(node.total_ns) * 1e-9);
    labeled("bgl_phase_self_seconds_total",
            static_cast<double>(node.self_ns) * 1e-9);
  }
}

}  // namespace

void prometheus_render(std::string& out, const CounterRegistry* counters,
                       const HistogramRegistry* histograms,
                       const PhaseProfiler* profiler, const GaugeList& gauges) {
  if (counters != nullptr) render_counters(out, *counters);
  if (histograms != nullptr) render_histograms(out, *histograms);
  if (profiler != nullptr) render_phases(out, *profiler);
  for (const auto& [name, value] : gauges) {
    const std::string metric = prometheus_metric_name(name);
    out += "# TYPE " + metric + " gauge\n";
    append_sample(out, metric, value);
  }
  out += "# EOF\n";
}

}  // namespace bgl::obs
