#include "obs/counters.hpp"

#include <ostream>

#include "util/strings.hpp"

namespace bgl::obs {

std::string_view counter_name(Counter c) {
  switch (c) {
    case Counter::kSchedInvocations: return "sched.invocations";
    case Counter::kSchedDecisionNanos: return "sched.decision_ns";
    case Counter::kSchedStarts: return "sched.starts";
    case Counter::kSchedBackfillStarts: return "sched.backfill_starts";
    case Counter::kSchedMigrations: return "sched.migrations";
    case Counter::kPartitionsScanned: return "sched.partitions_scanned";
    case Counter::kMfpEvaluations: return "sched.mfp_evaluations";
    case Counter::kCandidatesConsidered: return "sched.candidates_considered";
    case Counter::kPredictorQueries: return "predictor.queries";
    case Counter::kPredictorNodesFlagged: return "predictor.nodes_flagged";
    case Counter::kPredWindowsScored: return "pred.windows_scored";
    case Counter::kPredWindowTruePositives: return "pred.window_tp";
    case Counter::kPredWindowFalsePositives: return "pred.window_fp";
    case Counter::kPredWindowFalseNegatives: return "pred.window_fn";
    case Counter::kDriverEvents: return "driver.events";
    case Counter::kDriverFailures: return "driver.failures";
    case Counter::kDriverKills: return "driver.kills";
    case Counter::kDriverCheckpoints: return "driver.checkpoints";
    case Counter::kTraceEvents: return "trace.events";
    case Counter::kCount_: break;
  }
  return "?";
}

void CounterRegistry::merge(const CounterRegistry& other) {
  for (std::size_t i = 0; i < kNumCounters; ++i) values_[i] += other.values_[i];
}

void CounterRegistry::write_json(std::ostream& out) const {
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (i > 0) out << ',';
    out << '"' << counter_name(static_cast<Counter>(i)) << "\":" << values_[i];
  }
  out << "},\"derived\":{";
  bool first = true;
  auto ratio = [&](std::string_view name, double numer, std::uint64_t denom) {
    if (denom == 0) return;
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":"
        << format_double(numer / static_cast<double>(denom), 4);
  };
  const auto v = [this](Counter c) { return value(c); };
  ratio("avg_decision_us",
        static_cast<double>(v(Counter::kSchedDecisionNanos)) / 1000.0,
        v(Counter::kSchedInvocations));
  ratio("avg_candidates_per_decision",
        static_cast<double>(v(Counter::kCandidatesConsidered)),
        v(Counter::kSchedInvocations));
  ratio("avg_partitions_scanned_per_decision",
        static_cast<double>(v(Counter::kPartitionsScanned)),
        v(Counter::kSchedInvocations));
  ratio("avg_mfp_evaluations_per_start",
        static_cast<double>(v(Counter::kMfpEvaluations)),
        v(Counter::kSchedStarts));
  ratio("avg_nodes_flagged_per_query",
        static_cast<double>(v(Counter::kPredictorNodesFlagged)),
        v(Counter::kPredictorQueries));
  // Realized precision/recall of the windowed forecast scorer.
  ratio("pred.precision",
        static_cast<double>(v(Counter::kPredWindowTruePositives)),
        v(Counter::kPredWindowTruePositives) +
            v(Counter::kPredWindowFalsePositives));
  ratio("pred.recall",
        static_cast<double>(v(Counter::kPredWindowTruePositives)),
        v(Counter::kPredWindowTruePositives) +
            v(Counter::kPredWindowFalseNegatives));
  out << "}}";
}

}  // namespace bgl::obs
