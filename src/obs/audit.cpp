#include "obs/audit.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <limits>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "obs/reader.hpp"
#include "torus/catalog.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace bgl::obs {

const char* to_string(ViolationCode code) {
  switch (code) {
    case ViolationCode::kFormat: return "format";
    case ViolationCode::kTimeOrder: return "time_order";
    case ViolationCode::kLifecycle: return "lifecycle";
    case ViolationCode::kDecisionPairing: return "decision_pairing";
    case ViolationCode::kEntryMismatch: return "entry_mismatch";
    case ViolationCode::kOverlap: return "overlap";
    case ViolationCode::kWaitMismatch: return "wait_mismatch";
    case ViolationCode::kResponseMismatch: return "response_mismatch";
    case ViolationCode::kSlowdownMismatch: return "slowdown_mismatch";
    case ViolationCode::kRestartMismatch: return "restart_mismatch";
    case ViolationCode::kWorkAccounting: return "work_accounting";
    case ViolationCode::kVictimsMismatch: return "victims_mismatch";
    case ViolationCode::kFieldMismatch: return "field_mismatch";
    case ViolationCode::kReservation: return "reservation";
    case ViolationCode::kSnapshotMismatch: return "snapshot_mismatch";
    case ViolationCode::kMetricsMismatch: return "metrics_mismatch";
    case ViolationCode::kPredictorMismatch: return "predictor_mismatch";
    case ViolationCode::kAggregateMismatch: return "aggregate_mismatch";
    case ViolationCode::kTruncated: return "truncated";
    case ViolationCode::kUnknownEvent: return "unknown_event";
  }
  return "?";
}

namespace {

// Traced doubles go through %.10g, so two independently derived copies of
// the same quantity agree to ~5e-10 relative; 1e-8 leaves a 20x margin
// while still catching any corruption a test (or bug) would introduce.
bool near(double a, double b, double scale = 0.0) {
  const double tol =
      1e-6 + 1e-8 * std::max({std::abs(a), std::abs(b), std::abs(scale)});
  return std::abs(a - b) <= tol;
}

std::string fmt(double v) { return format_double(v, 10); }

/// Rebuilding the catalog is O(nodes^2)-ish in memory; cap it so a hostile
/// or exotic trace cannot OOM the auditor. The paper machine is 128 nodes
/// and the complexity-study cubes stop at 16^3 = 4096.
constexpr int kMaxReconstructedNodes = 4096;

class Auditor {
 public:
  explicit Auditor(const AuditOptions& opts) : opts_(opts) {}

  AuditReport run(std::istream& in) {
    TraceReader reader(in);
    TraceRecord rec;
    for (;;) {
      bool more = false;
      try {
        more = reader.next(rec);
      } catch (const ParseError& e) {
        add(ViolationCode::kFormat, reader.lines_read(), -1, e.what());
        break;  // field offsets are unreliable past malformed JSON
      }
      if (!more) break;
      ++report_.events;

      if (report_.events == 1 && rec.type() != EventType::kSimBegin) {
        add(ViolationCode::kFormat, rec.line_number(), -1,
            "trace does not begin with sim_begin");
      }
      if (ended_) {
        add(ViolationCode::kFormat, rec.line_number(), -1,
            std::string("event after sim_end: ") + std::string(rec.type_name()));
      }
      if (have_t_ && rec.t() < last_t_ - 1e-9) {
        add(ViolationCode::kTimeOrder, rec.line_number(), -1,
            "t decreased: " + fmt(rec.t()) + " after " + fmt(last_t_));
      }
      last_t_ = std::max(last_t_, rec.t());
      have_t_ = true;

      // A sched_decision must be immediately followed by its job_start.
      if (pending_decision_ && rec.type() != EventType::kJobStart) {
        add(ViolationCode::kDecisionPairing, pending_line_,
            pending_decision_->job,
            "sched_decision not followed by a job_start");
        pending_decision_.reset();
      }
      // A node_failure's kill block is contiguous: only checkpoint/job_kill
      // events at the failure time may follow before the block closes.
      if (fail_open_ && (rec.t() > fail_t_ + 1e-9 ||
                         (rec.type() != EventType::kJobKill &&
                          rec.type() != EventType::kCheckpoint))) {
        close_failure();
      }
      // Migrations are applied two-phase (movers may rotate through one
      // another's old partitions), so disjointness only holds after the
      // whole batch; check it when the batch ends.
      if (mig_check_pending_ && rec.type() != EventType::kMigration) {
        flush_migration_check();
      }

      try {
        dispatch(rec);
      } catch (const ParseError& e) {
        add(ViolationCode::kFormat, rec.line_number(), -1, e.what());
      }
    }

    if (pending_decision_) {
      add(ViolationCode::kDecisionPairing, pending_line_, pending_decision_->job,
          "sched_decision not followed by a job_start (end of trace)");
    }
    close_failure();
    flush_migration_check();
    if (report_.events > 0 && !ended_) {
      add(ViolationCode::kTruncated, 0, -1, "trace ends without sim_end");
    }
    if (report_.events == 0) {
      add(ViolationCode::kTruncated, 0, -1, "trace is empty");
    }
    return std::move(report_);
  }

 private:
  struct JobAudit {
    enum class Phase { kWaiting, kRunning, kDone };
    Phase phase = Phase::kWaiting;
    double submit_t = 0.0;
    double last_start_t = 0.0;
    int size = 0;
    int alloc_size = 0;
    double estimate = 0.0;
    double runtime = 0.0;
    int entry = -1;
    int kills = 0;
    bool have_ckpt = false;  ///< A checkpoint event not yet consumed by a kill.
    double ckpt_t = 0.0;
    double ckpt_saved = 0.0;
  };

  void add(ViolationCode code, std::size_t line, std::int64_t job,
           std::string message) {
    if (report_.violations.size() >= opts_.max_violations) {
      ++report_.dropped_violations;
      return;
    }
    report_.violations.push_back(Violation{code, line, job, std::move(message)});
  }

  JobAudit* get(std::int64_t job, std::size_t line, const char* event) {
    const auto it = jobs_.find(job);
    if (it == jobs_.end()) {
      add(ViolationCode::kLifecycle, line, job,
          std::string(event) + " for a job that was never submitted");
      return nullptr;
    }
    return &it->second;
  }

  const NodeSet* entry_mask(int entry) const {
    if (catalog_ == nullptr || entry < 0 || entry >= catalog_->num_entries()) {
      return nullptr;
    }
    return &catalog_->entry(entry).mask;
  }

  /// Entry must exist in the catalog and have exactly the job's alloc size.
  void check_entry(int entry, const JobAudit& j, std::int64_t job,
                   std::size_t line, const char* event) {
    if (catalog_ == nullptr) return;
    if (entry < 0 || entry >= catalog_->num_entries()) {
      add(ViolationCode::kFieldMismatch, line, job,
          std::string(event) + " entry " + std::to_string(entry) +
              " outside catalog [0, " +
              std::to_string(catalog_->num_entries()) + ")");
      return;
    }
    const int esize = catalog_->entry(entry).size;
    if (esize != j.alloc_size) {
      add(ViolationCode::kFieldMismatch, line, job,
          std::string(event) + " entry " + std::to_string(entry) + " has size " +
              std::to_string(esize) + ", job alloc_size is " +
              std::to_string(j.alloc_size));
    }
  }

  /// Flag any overlap of `mask` with running jobs (except `self`) or with
  /// nodes that are strictly down at time t.
  void check_overlap(const NodeSet& mask, std::int64_t self, double t,
                     std::size_t line) {
    for (const std::int64_t other : running_) {
      if (other == self) continue;
      const JobAudit& o = jobs_.at(other);
      const NodeSet* om = entry_mask(o.entry);
      if (om != nullptr && mask.intersects(*om)) {
        add(ViolationCode::kOverlap, line, self,
            "partition overlaps running job " + std::to_string(other) +
                " (entry " + std::to_string(o.entry) + ")");
      }
    }
    const double eps = 1e-6 + 1e-9 * std::abs(t);
    for (const int n : mask.to_ids()) {
      if (down_until_[static_cast<std::size_t>(n)] > t + eps) {
        add(ViolationCode::kOverlap, line, self,
            "partition contains down node " + std::to_string(n));
      }
    }
  }

  void close_failure() {
    if (!fail_open_) return;
    fail_open_ = false;
    if (fail_remaining_ > 0) {
      add(ViolationCode::kVictimsMismatch, fail_line_, -1,
          "node_failure announced " + std::to_string(fail_victims_) +
              " victims but only " +
              std::to_string(fail_victims_ - fail_remaining_) +
              " job_kill events followed");
    }
  }

  void dispatch(const TraceRecord& rec) {
    const std::size_t line = rec.line_number();
    switch (rec.type()) {
      case EventType::kSimBegin: on_sim_begin(SimBeginEvent::from(rec), line); break;
      case EventType::kJobSubmit: on_submit(JobSubmitEvent::from(rec), line); break;
      case EventType::kPredictorQuery:
        on_query(PredictorQueryEvent::from(rec), line);
        break;
      case EventType::kSchedDecision:
        on_decision(SchedDecisionEvent::from(rec), line);
        break;
      case EventType::kJobStart: on_start(JobStartEvent::from(rec), line); break;
      case EventType::kMigration: on_migration(MigrationEvent::from(rec), line); break;
      case EventType::kNodeFailure:
        on_failure(NodeFailureEvent::from(rec), line);
        break;
      case EventType::kJobKill: on_kill(JobKillEvent::from(rec), line); break;
      case EventType::kCheckpoint: on_checkpoint(CheckpointEvent::from(rec), line); break;
      case EventType::kJobFinish: on_finish(JobFinishEvent::from(rec), line); break;
      case EventType::kMachineState:
        on_snapshot(MachineStateEvent::from(rec), line);
        break;
      case EventType::kMetrics: on_metrics(MetricsEvent::from(rec), line); break;
      case EventType::kSimEnd: on_sim_end(SimEndEvent::from(rec), line); break;
      case EventType::kUnknown:
        ++report_.unknown_events;
        if (opts_.strict) {
          add(ViolationCode::kUnknownEvent, line, -1,
              "unknown event type '" + std::string(rec.type_name()) + "'");
        }
        break;
    }
  }

  /// True when the declared configuration provably runs the NullPredictor:
  /// predictor "none", or "paper" resolved under the krevat scheduler (its
  /// PaperRole is kNull — see predict/registry.hpp). Such a run must never
  /// flag a node anywhere in the stream.
  bool predictor_inert() const {
    return begin_ && (begin_->predictor == "none" ||
                      (begin_->predictor == "paper" &&
                       begin_->scheduler == "krevat"));
  }

  void on_sim_begin(const SimBeginEvent& e, std::size_t line) {
    if (begin_) {
      add(ViolationCode::kFormat, line, -1, "duplicate sim_begin");
      return;
    }
    begin_ = e;
    // Adaptive provenance: flag_window/burst_window iff the adaptive model.
    if (e.predictor == "adaptive") {
      if (e.flag_window <= 0.0 || e.burst_window <= 0.0) {
        add(ViolationCode::kPredictorMismatch, line, -1,
            "adaptive predictor without flag_window/burst_window provenance");
      }
    } else if (e.flag_window != 0.0 || e.burst_window != 0.0) {
      add(ViolationCode::kPredictorMismatch, line, -1,
          "flag_window/burst_window from non-adaptive predictor '" +
              e.predictor + "'");
    }
    int x = 0, y = 0, z = 0;
    if (std::sscanf(e.machine.c_str(), "%dx%dx%d", &x, &y, &z) != 3 ||
        x <= 0 || y <= 0 || z <= 0) {
      add(ViolationCode::kFormat, line, -1,
          "unparsable machine dims '" + e.machine + "'");
      return;
    }
    const Dims dims{x, y, z};
    if (dims.volume() != e.nodes) {
      add(ViolationCode::kFormat, line, -1,
          "machine " + e.machine + " has " + std::to_string(dims.volume()) +
              " nodes, sim_begin says " + std::to_string(e.nodes));
    }
    Topology topo = Topology::kTorus;
    if (e.topology == "mesh") {
      topo = Topology::kMesh;
    } else if (e.topology != "torus") {
      add(ViolationCode::kFormat, line, -1,
          "unknown topology '" + e.topology + "'");
    }
    CatalogOptions copts;
    if (e.catalog == "blocks") {
      copts.mode = CatalogOptions::Mode::kBlocks;
      if (e.min_block > 0) copts.min_block = e.min_block;
    } else if (!e.catalog.empty() && e.catalog != "boxes") {
      add(ViolationCode::kFormat, line, -1,
          "unknown catalog mode '" + e.catalog + "'");
      return;
    }
    // The node cap guards the O(volume^2)-entry box enumeration only; a
    // block catalog is a few hundred entries at any machine size, so
    // full-scale traces remain fully auditable.
    if (copts.mode == CatalogOptions::Mode::kBoxes &&
        dims.volume() > kMaxReconstructedNodes) {
      if (opts_.strict) {
        add(ViolationCode::kFormat, line, -1,
            "machine too large to reconstruct (" +
                std::to_string(dims.volume()) + " nodes > " +
                std::to_string(kMaxReconstructedNodes) +
                "); overlap/snapshot checks disabled");
      }
      return;
    }
    try {
      catalog_ = std::make_unique<PartitionCatalog>(dims, topo, copts);
    } catch (const Error& err) {
      add(ViolationCode::kFormat, line, -1,
          std::string("cannot rebuild partition catalog: ") + err.what());
      return;
    }
    down_until_.assign(static_cast<std::size_t>(dims.volume()),
                       -std::numeric_limits<double>::infinity());
  }

  void on_submit(const JobSubmitEvent& e, std::size_t line) {
    if (jobs_.count(e.job) != 0) {
      add(ViolationCode::kLifecycle, line, e.job, "job submitted twice");
      return;
    }
    if (e.size <= 0 || e.alloc_size < e.size) {
      add(ViolationCode::kFieldMismatch, line, e.job,
          "bad sizes: size=" + std::to_string(e.size) +
              " alloc_size=" + std::to_string(e.alloc_size));
    }
    if (e.runtime < 0.0 || e.estimate < 0.0) {
      add(ViolationCode::kFieldMismatch, line, e.job,
          "negative runtime/estimate");
    }
    JobAudit j;
    j.submit_t = e.t;
    j.size = e.size;
    j.alloc_size = e.alloc_size;
    j.estimate = e.estimate;
    j.runtime = e.runtime;
    jobs_.emplace(e.job, j);
    ++report_.jobs;
    ++waiting_jobs_;
    ++w_submits_;
    waiting_nodes_ += e.size;
    min_submit_ = std::min(min_submit_, e.t);
    useful_work_ += static_cast<double>(e.size) * e.runtime;
  }

  void on_query(const PredictorQueryEvent& e, std::size_t line) {
    JobAudit* j = get(e.job, line, "predictor_query");
    if (j == nullptr) return;
    if (j->phase != JobAudit::Phase::kWaiting) {
      add(ViolationCode::kLifecycle, line, e.job,
          "predictor_query for a non-waiting job");
    }
    if (e.window_end < e.window_start) {
      add(ViolationCode::kFieldMismatch, line, e.job,
          "query window ends before it starts");
    }
    if (e.nodes_flagged < 0 ||
        (begin_ && e.nodes_flagged > begin_->nodes)) {
      add(ViolationCode::kFieldMismatch, line, e.job,
          "nodes_flagged out of range: " + std::to_string(e.nodes_flagged));
    }
    if (e.nodes_flagged > 0 && predictor_inert()) {
      add(ViolationCode::kPredictorMismatch, line, e.job,
          "predictor '" + begin_->predictor + "' under scheduler '" +
              begin_->scheduler + "' flagged " +
              std::to_string(e.nodes_flagged) + " nodes");
    }
  }

  void on_decision(const SchedDecisionEvent& e, std::size_t line) {
    JobAudit* j = get(e.job, line, "sched_decision");
    if (j != nullptr) {
      if (j->phase != JobAudit::Phase::kWaiting) {
        add(ViolationCode::kLifecycle, line, e.job,
            "sched_decision for a non-waiting job");
      }
      if (e.candidates < 1) {
        add(ViolationCode::kFieldMismatch, line, e.job,
            "decision with no candidates");
      }
      if (e.flags_in_chosen > 0 && predictor_inert()) {
        add(ViolationCode::kPredictorMismatch, line, e.job,
            "flags_in_chosen=" + std::to_string(e.flags_in_chosen) +
                " from an inert predictor pairing");
      }
      check_entry(e.entry, *j, e.job, line, "sched_decision");
    }
    check_reservation(e, j, line);
    pending_decision_ = e;
    pending_line_ = line;
  }

  /// Reservation provenance (docs/SCHEDULERS.md). When sim_begin declares a
  /// reservation-carrying algorithm, every backfill decision must stamp the
  /// binding reservation, and the admission rule must be re-derivable from
  /// the trace alone: the filler's estimated finish (t + submit estimate)
  /// precedes res_time, or its partition avoids the reserved one entirely.
  /// Conversely, the default (krevat) algorithm never emits these fields.
  void check_reservation(const SchedDecisionEvent& e, const JobAudit* j,
                         std::size_t line) {
    const bool res_algo =
        begin_ && !begin_->algorithm.empty() && begin_->algorithm != "krevat";
    const bool has_res = e.res_entry >= 0;
    if (!has_res) {
      if (res_algo && e.backfill) {
        add(ViolationCode::kReservation, line, e.job,
            "backfill decision without res_time/res_entry under algorithm '" +
                begin_->algorithm + "'");
      }
      return;
    }
    if (!e.backfill) {
      add(ViolationCode::kReservation, line, e.job,
          "reservation fields on a non-backfill decision");
      return;
    }
    if (begin_ && !res_algo) {
      add(ViolationCode::kReservation, line, e.job,
          "reservation fields from the default (krevat) algorithm");
      return;
    }
    if (catalog_ == nullptr) return;
    if (e.res_entry >= catalog_->num_entries()) {
      add(ViolationCode::kReservation, line, e.job,
          "res_entry " + std::to_string(e.res_entry) + " outside catalog [0, " +
              std::to_string(catalog_->num_entries()) + ")");
      return;
    }
    if (j == nullptr || e.entry < 0 || e.entry >= catalog_->num_entries()) {
      return;  // entry/lifecycle problems already reported above
    }
    const double est_finish = e.t + j->estimate;
    // The scheduler admits on est_finish <= res_time + 1e-9; both sides
    // round-trip through %.10g here, so compare with the trace tolerance.
    const bool in_time =
        est_finish <= e.res_time || near(est_finish, e.res_time, e.t);
    if (!in_time && catalog_->entry(e.entry).mask.intersects(
                        catalog_->entry(e.res_entry).mask)) {
      add(ViolationCode::kReservation, line, e.job,
          "filler finishing at t=" + fmt(est_finish) +
              " delays the reservation at t=" + fmt(e.res_time) +
              " on an intersecting partition");
    }
  }

  void on_start(const JobStartEvent& e, std::size_t line) {
    if (!pending_decision_) {
      add(ViolationCode::kDecisionPairing, line, e.job,
          "job_start without a preceding sched_decision");
    } else {
      const SchedDecisionEvent& d = *pending_decision_;
      if (d.job != e.job || d.t != e.t) {
        add(ViolationCode::kDecisionPairing, line, e.job,
            "job_start does not match the preceding sched_decision (job " +
                std::to_string(d.job) + " at t=" + fmt(d.t) + ")");
      } else if (d.entry != e.entry) {
        add(ViolationCode::kEntryMismatch, line, e.job,
            "sched_decision chose entry " + std::to_string(d.entry) +
                " but job_start committed entry " + std::to_string(e.entry));
      }
      pending_decision_.reset();
    }

    JobAudit* j = get(e.job, line, "job_start");
    if (j == nullptr) return;
    if (j->phase != JobAudit::Phase::kWaiting) {
      add(ViolationCode::kLifecycle, line, e.job,
          "job_start for a non-waiting job");
      return;  // state unreliable; skip the derived checks
    }
    if (!near(e.wait_so_far, e.t - j->submit_t, e.t)) {
      add(ViolationCode::kWaitMismatch, line, e.job,
          "wait_so_far=" + fmt(e.wait_so_far) + " but t-submit=" +
              fmt(e.t - j->submit_t));
    }
    if (e.restarts != j->kills) {
      add(ViolationCode::kRestartMismatch, line, e.job,
          "job_start restarts=" + std::to_string(e.restarts) + ", observed " +
              std::to_string(j->kills) + " kills");
    }
    if (e.alloc_size != j->alloc_size) {
      add(ViolationCode::kFieldMismatch, line, e.job,
          "alloc_size changed since submit");
    }
    check_entry(e.entry, *j, e.job, line, "job_start");
    const NodeSet* mask = entry_mask(e.entry);
    if (mask != nullptr) check_overlap(*mask, e.job, e.t, line);

    j->phase = JobAudit::Phase::kRunning;
    j->last_start_t = e.t;
    j->entry = e.entry;
    running_.push_back(e.job);
    --waiting_jobs_;
    ++w_starts_;
    waiting_nodes_ -= j->size;
  }

  void on_migration(const MigrationEvent& e, std::size_t line) {
    JobAudit* j = get(e.job, line, "migration");
    if (j == nullptr) return;
    if (j->phase != JobAudit::Phase::kRunning) {
      add(ViolationCode::kLifecycle, line, e.job,
          "migration of a non-running job");
      return;
    }
    if (e.from_entry != j->entry) {
      add(ViolationCode::kFieldMismatch, line, e.job,
          "migration from_entry=" + std::to_string(e.from_entry) +
              " but job is on entry " + std::to_string(j->entry));
    }
    check_entry(e.to_entry, *j, e.job, line, "migration");
    j->entry = e.to_entry;
    mig_check_pending_ = true;
    mig_t_ = e.t;
    mig_line_ = line;
    ++migrations_total_;
    ++w_migrations_;
  }

  /// After a migration batch, every running job must again sit on a
  /// partition disjoint from all others and from down nodes.
  void flush_migration_check() {
    if (!mig_check_pending_) return;
    mig_check_pending_ = false;
    if (catalog_ == nullptr) return;
    NodeSet acc(catalog_->num_nodes());
    for (const std::int64_t id : running_) {
      const NodeSet* m = entry_mask(jobs_.at(id).entry);
      if (m == nullptr) continue;
      if (acc.intersects(*m)) {
        add(ViolationCode::kOverlap, mig_line_, id,
            "running jobs on overlapping partitions after migration batch");
      }
      acc |= *m;
    }
    const double eps = 1e-6 + 1e-9 * std::abs(mig_t_);
    for (std::size_t n = 0; n < down_until_.size(); ++n) {
      if (down_until_[n] > mig_t_ + eps && acc.test(static_cast<int>(n))) {
        add(ViolationCode::kOverlap, mig_line_, -1,
            "running job occupies down node " + std::to_string(n) +
                " after migration batch");
      }
    }
  }

  void on_failure(const NodeFailureEvent& e, std::size_t line) {
    close_failure();
    if (begin_ && (e.node < 0 || e.node >= begin_->nodes)) {
      add(ViolationCode::kFieldMismatch, line, -1,
          "failed node " + std::to_string(e.node) + " out of range");
      return;
    }
    if (e.victims < 0 || e.down_for < 0.0) {
      add(ViolationCode::kFieldMismatch, line, -1,
          "negative victims/down_for");
    }
    if (catalog_ != nullptr) {
      int expected = 0;
      for (const std::int64_t id : running_) {
        const NodeSet* m = entry_mask(jobs_.at(id).entry);
        if (m != nullptr && m->test(e.node)) ++expected;
      }
      if (expected != e.victims) {
        add(ViolationCode::kVictimsMismatch, line, -1,
            "node_failure claims " + std::to_string(e.victims) +
                " victims; " + std::to_string(expected) +
                " running jobs hold node " + std::to_string(e.node));
      }
    }
    if (e.down_for > 0.0 && !down_until_.empty()) {
      auto& until = down_until_[static_cast<std::size_t>(e.node)];
      until = std::max(until, e.t + e.down_for);
    }
    fail_open_ = true;
    fail_node_ = e.node;
    fail_t_ = e.t;
    fail_victims_ = e.victims;
    fail_remaining_ = e.victims;
    fail_line_ = line;
  }

  void on_checkpoint(const CheckpointEvent& e, std::size_t line) {
    JobAudit* j = get(e.job, line, "checkpoint");
    if (j == nullptr) return;
    if (j->phase != JobAudit::Phase::kRunning) {
      add(ViolationCode::kLifecycle, line, e.job,
          "checkpoint for a non-running job");
    }
    if (e.count < 1) {
      add(ViolationCode::kFieldMismatch, line, e.job, "checkpoint count < 1");
    }
    if (e.work_saved < -1e-9) {
      add(ViolationCode::kWorkAccounting, line, e.job,
          "negative work_saved");
    }
    j->have_ckpt = true;
    j->ckpt_t = e.t;
    j->ckpt_saved = e.work_saved;
    checkpoints_total_ += e.count;
  }

  void on_kill(const JobKillEvent& e, std::size_t line) {
    // Victim bookkeeping first: a kill is only legal inside a failure block.
    if (!fail_open_) {
      add(ViolationCode::kVictimsMismatch, line, e.job,
          "job_kill without a preceding node_failure");
    } else {
      --fail_remaining_;
      if (fail_remaining_ < 0) {
        add(ViolationCode::kVictimsMismatch, line, e.job,
            "more job_kill events than node_failure victims");
      }
      const NodeSet* m = entry_mask(e.entry);
      if (m != nullptr && !m->test(fail_node_)) {
        add(ViolationCode::kVictimsMismatch, line, e.job,
            "killed job's partition does not contain failed node " +
                std::to_string(fail_node_));
      }
    }

    JobAudit* j = get(e.job, line, "job_kill");
    if (j == nullptr) return;
    if (j->phase != JobAudit::Phase::kRunning) {
      add(ViolationCode::kLifecycle, line, e.job,
          "job_kill for a non-running job");
      return;
    }
    if (e.entry != j->entry) {
      add(ViolationCode::kFieldMismatch, line, e.job,
          "job_kill entry=" + std::to_string(e.entry) + " but job is on entry " +
              std::to_string(j->entry));
    }
    if (!near(e.elapsed, e.t - j->last_start_t, e.t)) {
      add(ViolationCode::kFieldMismatch, line, e.job,
          "elapsed=" + fmt(e.elapsed) + " but t-last_start=" +
              fmt(e.t - j->last_start_t));
    }
    const double cap =
        e.elapsed * static_cast<double>(j->size);  // node-seconds ceiling
    if (e.work_lost < -1e-9 || e.work_saved < -1e-9 ||
        e.work_lost + e.work_saved > cap + 1e-6 + 1e-8 * cap) {
      add(ViolationCode::kWorkAccounting, line, e.job,
          "work_lost=" + fmt(e.work_lost) + " + work_saved=" +
              fmt(e.work_saved) + " exceeds elapsed*size=" + fmt(cap));
    }
    if (e.work_saved > 1e-9) {
      if (!j->have_ckpt || j->ckpt_t != e.t ||
          !near(j->ckpt_saved, e.work_saved, cap)) {
        add(ViolationCode::kWorkAccounting, line, e.job,
            "work_saved=" + fmt(e.work_saved) +
                " not backed by a matching checkpoint event");
      }
    }
    if (e.restarts != j->kills + 1) {
      add(ViolationCode::kRestartMismatch, line, e.job,
          "job_kill restarts=" + std::to_string(e.restarts) + ", expected " +
              std::to_string(j->kills + 1));
    }

    ++j->kills;
    j->have_ckpt = false;
    j->phase = JobAudit::Phase::kWaiting;
    j->entry = -1;
    running_.erase(std::find(running_.begin(), running_.end(), e.job));
    ++waiting_jobs_;
    waiting_nodes_ += j->size;
    ++kills_total_;
    ++w_kills_;
    work_lost_total_ += e.work_lost;
  }

  void on_finish(const JobFinishEvent& e, std::size_t line) {
    JobAudit* j = get(e.job, line, "job_finish");
    if (j == nullptr) return;
    if (j->phase != JobAudit::Phase::kRunning) {
      add(ViolationCode::kLifecycle, line, e.job,
          "job_finish for a non-running job");
      return;
    }
    if (e.entry != j->entry) {
      add(ViolationCode::kFieldMismatch, line, e.job,
          "job_finish entry=" + std::to_string(e.entry) +
              " but job is on entry " + std::to_string(j->entry));
    }
    if (!near(e.wait, j->last_start_t - j->submit_t, e.t)) {
      add(ViolationCode::kWaitMismatch, line, e.job,
          "wait=" + fmt(e.wait) + " but last_start-submit=" +
              fmt(j->last_start_t - j->submit_t));
    }
    if (!near(e.response, e.t - j->submit_t, e.t)) {
      add(ViolationCode::kResponseMismatch, line, e.job,
          "response=" + fmt(e.response) + " but finish-submit=" +
              fmt(e.t - j->submit_t));
    }
    const double expected_sd = std::max(e.response, opts_.gamma) /
                               std::max(j->runtime, opts_.gamma);
    if (!near(e.bounded_slowdown, expected_sd, expected_sd)) {
      add(ViolationCode::kSlowdownMismatch, line, e.job,
          "bounded_slowdown=" + fmt(e.bounded_slowdown) +
              " but max(response,g)/max(runtime,g)=" + fmt(expected_sd));
    }
    if (e.restarts != j->kills) {
      add(ViolationCode::kRestartMismatch, line, e.job,
          "job_finish restarts=" + std::to_string(e.restarts) +
              ", observed " + std::to_string(j->kills) + " kills");
    }

    j->phase = JobAudit::Phase::kDone;
    running_.erase(std::find(running_.begin(), running_.end(), e.job));
    ++finished_;
    ++w_finishes_;
    wait_sum_ += e.wait;
    response_sum_ += e.response;
    slowdown_sum_ += e.bounded_slowdown;
    max_finish_ = std::max(max_finish_, e.t);
  }

  void on_snapshot(const MachineStateEvent& e, std::size_t line) {
    if (e.queue_depth != waiting_jobs_ || e.queued_nodes != waiting_nodes_) {
      add(ViolationCode::kSnapshotMismatch, line, -1,
          "queue_depth=" + std::to_string(e.queue_depth) + "/queued_nodes=" +
              std::to_string(e.queued_nodes) + " but reconstruction has " +
              std::to_string(waiting_jobs_) + "/" +
              std::to_string(waiting_nodes_));
    }
    if (e.running_jobs != static_cast<int>(running_.size())) {
      add(ViolationCode::kSnapshotMismatch, line, -1,
          "running_jobs=" + std::to_string(e.running_jobs) +
              " but reconstruction has " + std::to_string(running_.size()));
    }
    if (begin_ && (e.flagged_nodes < 0 || e.flagged_nodes > begin_->nodes)) {
      add(ViolationCode::kSnapshotMismatch, line, -1,
          "flagged_nodes out of range");
    }
    const double expected_frag =
        e.free_nodes > 0
            ? 1.0 - static_cast<double>(e.mfp) / static_cast<double>(e.free_nodes)
            : 0.0;
    if (!near(e.frag, expected_frag)) {
      add(ViolationCode::kSnapshotMismatch, line, -1,
          "frag=" + fmt(e.frag) + " but 1-mfp/free=" + fmt(expected_frag));
    }
    if (catalog_ == nullptr) return;

    NodeSet occ(catalog_->num_nodes());
    for (const std::int64_t id : running_) {
      const NodeSet* m = entry_mask(jobs_.at(id).entry);
      if (m != nullptr) occ |= *m;
    }
    // A snapshot can land exactly on a down-node expiry; the driver may
    // emit it on either side of the expiry event, so accept both readings.
    const double eps = 1e-6 + 1e-9 * std::abs(e.t);
    bool matched = false;
    std::string got;
    for (const double boundary : {e.t + eps, e.t - eps}) {
      NodeSet blocked = occ;
      int down = 0;
      for (std::size_t n = 0; n < down_until_.size(); ++n) {
        if (down_until_[n] > boundary) {
          blocked.set(static_cast<int>(n));
          ++down;
        }
      }
      const int free = catalog_->num_nodes() - blocked.count();
      const int mfp = catalog_->mfp(blocked);
      if (e.free_nodes == free && e.down_nodes == down && e.mfp == mfp) {
        matched = true;
        break;
      }
      if (!got.empty()) got += " | ";
      got += "free=" + std::to_string(free) + " down=" + std::to_string(down) +
             " mfp=" + std::to_string(mfp);
    }
    if (!matched) {
      add(ViolationCode::kSnapshotMismatch, line, -1,
          "free_nodes=" + std::to_string(e.free_nodes) + " down_nodes=" +
              std::to_string(e.down_nodes) + " mfp=" + std::to_string(e.mfp) +
              " but reconstruction has " + got);
    }
  }

  /// `metrics` events carry the same reconstructible gauges as machine_state
  /// (queue/running/busy/down) plus windowed rates; everything except the
  /// wall-clock decision_us_* quantiles is re-derived from the event stream.
  void on_metrics(const MetricsEvent& e, std::size_t line) {
    auto mm = [&](bool ok, const std::string& what) {
      if (!ok) add(ViolationCode::kMetricsMismatch, line, -1, what);
    };
    mm(e.queue_depth == waiting_jobs_ && e.queued_nodes == waiting_nodes_,
       "queue_depth=" + std::to_string(e.queue_depth) + "/queued_nodes=" +
           std::to_string(e.queued_nodes) + " but reconstruction has " +
           std::to_string(waiting_jobs_) + "/" + std::to_string(waiting_nodes_));
    mm(e.running_jobs == static_cast<int>(running_.size()),
       "running_jobs=" + std::to_string(e.running_jobs) +
           " but reconstruction has " + std::to_string(running_.size()));

    // Window deltas: the emitters count events with the same emit-before-
    // the-event discipline the stream itself is written in, so stream-order
    // counting matches exactly.
    mm(e.submits == w_submits_ && e.starts == w_starts_ &&
           e.finishes == w_finishes_ && e.kills == w_kills_ &&
           e.migrations == w_migrations_,
       "window deltas submits/starts/finishes/kills/migrations=" +
           std::to_string(e.submits) + "/" + std::to_string(e.starts) + "/" +
           std::to_string(e.finishes) + "/" + std::to_string(e.kills) + "/" +
           std::to_string(e.migrations) + " but stream has " +
           std::to_string(w_submits_) + "/" + std::to_string(w_starts_) + "/" +
           std::to_string(w_finishes_) + "/" + std::to_string(w_kills_) + "/" +
           std::to_string(w_migrations_));

    if (last_metrics_t_) {
      mm(near(e.interval, e.t - *last_metrics_t_, e.t),
         "interval=" + fmt(e.interval) + " but previous metrics event was at " +
             fmt(*last_metrics_t_));
    } else {
      mm(e.interval > 0.0, "first metrics event has interval <= 0");
    }
    if (e.interval > 0.0) {
      mm(near(e.finished_per_hour,
              static_cast<double>(e.finishes) * 3600.0 / e.interval,
              e.finished_per_hour),
         "finished_per_hour=" + fmt(e.finished_per_hour) + ", recomputed " +
             fmt(static_cast<double>(e.finishes) * 3600.0 / e.interval));
    }

    if (begin_) {
      mm(e.busy_nodes >= 0 && e.busy_nodes <= begin_->nodes,
         "busy_nodes out of range");
      const double expected_util =
          static_cast<double>(e.busy_nodes) / static_cast<double>(begin_->nodes);
      mm(near(e.utilization, expected_util),
         "utilization=" + fmt(e.utilization) + " but busy/nodes=" +
             fmt(expected_util));
    }
    if (catalog_ != nullptr) {
      NodeSet occ(catalog_->num_nodes());
      for (const std::int64_t id : running_) {
        const NodeSet* m = entry_mask(jobs_.at(id).entry);
        if (m != nullptr) occ |= *m;
      }
      mm(e.busy_nodes == occ.count(),
         "busy_nodes=" + std::to_string(e.busy_nodes) +
             " but running partitions cover " + std::to_string(occ.count()));
      // Same two-sided boundary reading as machine_state: the snapshot may
      // land exactly on a down-node expiry.
      const double eps = 1e-6 + 1e-9 * std::abs(e.t);
      bool down_ok = false;
      for (const double boundary : {e.t + eps, e.t - eps}) {
        int down = 0;
        for (const double until : down_until_) {
          if (until > boundary) ++down;
        }
        if (e.down_nodes == down) {
          down_ok = true;
          break;
        }
      }
      mm(down_ok, "down_nodes=" + std::to_string(e.down_nodes) +
                      " does not match the down-overlay reconstruction");
    }

    // Decision-latency fields are wall-clock (not reconstructable); enforce
    // internal consistency only.
    mm(e.decisions >= 0, "decisions < 0");
    if (e.decisions == 0) {
      mm(e.starts == 0 && e.migrations == 0,
         "starts/migrations in a window with zero scheduler passes");
      mm(e.decision_us_p50 == 0.0 && e.decision_us_p99 == 0.0 &&
             e.decision_us_max == 0.0,
         "decision_us quantiles nonzero with zero passes");
    } else {
      mm(e.decision_us_p50 >= 0.0 &&
             e.decision_us_p50 <= e.decision_us_p99 + 1e-9 &&
             e.decision_us_p99 <= e.decision_us_max + 1e-9,
         "decision_us quantiles not ordered: p50=" + fmt(e.decision_us_p50) +
             " p99=" + fmt(e.decision_us_p99) + " max=" +
             fmt(e.decision_us_max));
    }

    // Forecast-quality fields score predictor-internal state (the flagged
    // set captured at the window's start), so like the latency quantiles
    // they are not reconstructable — range-check them instead: each count
    // is a node subset of the machine.
    if (e.pred_tp < 0 || e.pred_fp < 0 || e.pred_fn < 0 ||
        (begin_ && (e.pred_tp + e.pred_fp > begin_->nodes ||
                    e.pred_tp + e.pred_fn > begin_->nodes))) {
      add(ViolationCode::kMetricsMismatch, line, -1,
          "pred_tp/pred_fp/pred_fn out of range: " +
              std::to_string(e.pred_tp) + "/" + std::to_string(e.pred_fp) +
              "/" + std::to_string(e.pred_fn));
    }
    if ((e.pred_tp > 0 || e.pred_fp > 0) && predictor_inert()) {
      add(ViolationCode::kPredictorMismatch, line, -1,
          "forecast scored flagged nodes (pred_tp=" +
              std::to_string(e.pred_tp) + ", pred_fp=" +
              std::to_string(e.pred_fp) + ") from an inert predictor pairing");
    }

    last_metrics_t_ = e.t;
    w_submits_ = w_starts_ = w_finishes_ = w_kills_ = w_migrations_ = 0;
  }

  void on_sim_end(const SimEndEvent& e, std::size_t line) {
    ended_ = true;
    for (const auto& [id, j] : jobs_) {
      if (j.phase != JobAudit::Phase::kDone) {
        add(ViolationCode::kLifecycle, line, id, "job unfinished at sim_end");
      }
    }
    auto agg = [&](bool ok, const std::string& what) {
      if (!ok) add(ViolationCode::kAggregateMismatch, line, -1, what);
    };
    agg(e.jobs_completed == finished_,
        "jobs_completed=" + std::to_string(e.jobs_completed) + ", counted " +
            std::to_string(finished_));
    if (finished_ > 0) {
      agg(near(e.t, max_finish_, e.t),
          "sim_end t=" + fmt(e.t) + " but last job_finish at " + fmt(max_finish_));
      const double n = static_cast<double>(finished_);
      agg(near(e.avg_wait, wait_sum_ / n, e.avg_wait),
          "avg_wait=" + fmt(e.avg_wait) + ", recomputed " + fmt(wait_sum_ / n));
      agg(near(e.avg_response, response_sum_ / n, e.avg_response),
          "avg_response=" + fmt(e.avg_response) + ", recomputed " +
              fmt(response_sum_ / n));
      agg(near(e.avg_bounded_slowdown, slowdown_sum_ / n, e.avg_bounded_slowdown),
          "avg_bounded_slowdown=" + fmt(e.avg_bounded_slowdown) +
              ", recomputed " + fmt(slowdown_sum_ / n));
    }
    if (report_.jobs > 0) {
      agg(near(e.span, e.t - min_submit_, e.t),
          "span=" + fmt(e.span) + ", recomputed " + fmt(e.t - min_submit_));
    }
    if (begin_ && e.span > 0.0) {
      const double tn = e.span * static_cast<double>(begin_->nodes);
      agg(near(e.utilization, useful_work_ / tn, 1.0),
          "utilization=" + fmt(e.utilization) + ", recomputed " +
              fmt(useful_work_ / tn));
      agg(near(e.lost, 1.0 - e.utilization - e.unused, 1.0),
          "lost=" + fmt(e.lost) + " but 1-utilization-unused=" +
              fmt(1.0 - e.utilization - e.unused));
    }
    agg(e.job_kills == kills_total_,
        "job_kills=" + std::to_string(e.job_kills) + ", counted " +
            std::to_string(kills_total_));
    agg(e.migrations == migrations_total_,
        "migrations=" + std::to_string(e.migrations) + ", counted " +
            std::to_string(migrations_total_));
    agg(e.checkpoints == checkpoints_total_,
        "checkpoints=" + std::to_string(e.checkpoints) + ", counted " +
            std::to_string(checkpoints_total_));
    agg(near(e.work_lost_node_seconds, work_lost_total_,
             e.work_lost_node_seconds),
        "work_lost_node_seconds=" + fmt(e.work_lost_node_seconds) +
            ", recomputed " + fmt(work_lost_total_));
  }

  AuditOptions opts_;
  AuditReport report_;

  std::optional<SimBeginEvent> begin_;
  std::unique_ptr<PartitionCatalog> catalog_;
  std::vector<double> down_until_;

  std::unordered_map<std::int64_t, JobAudit> jobs_;
  std::vector<std::int64_t> running_;
  int waiting_jobs_ = 0;
  int waiting_nodes_ = 0;

  std::optional<SchedDecisionEvent> pending_decision_;
  std::size_t pending_line_ = 0;

  bool mig_check_pending_ = false;
  double mig_t_ = 0.0;
  std::size_t mig_line_ = 0;

  bool fail_open_ = false;
  int fail_node_ = -1;
  double fail_t_ = 0.0;
  int fail_victims_ = 0;
  int fail_remaining_ = 0;
  std::size_t fail_line_ = 0;

  bool ended_ = false;
  bool have_t_ = false;
  double last_t_ = 0.0;

  // Windowed event counts since the last `metrics` event (reset there).
  std::int64_t w_submits_ = 0;
  std::int64_t w_starts_ = 0;
  std::int64_t w_finishes_ = 0;
  std::int64_t w_kills_ = 0;
  std::int64_t w_migrations_ = 0;
  std::optional<double> last_metrics_t_;

  std::int64_t finished_ = 0;
  std::int64_t kills_total_ = 0;
  std::int64_t migrations_total_ = 0;
  std::int64_t checkpoints_total_ = 0;
  double work_lost_total_ = 0.0;
  double wait_sum_ = 0.0;
  double response_sum_ = 0.0;
  double slowdown_sum_ = 0.0;
  double min_submit_ = std::numeric_limits<double>::infinity();
  double max_finish_ = -std::numeric_limits<double>::infinity();
  double useful_work_ = 0.0;
};

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

AuditReport audit_trace(std::istream& in, const AuditOptions& options) {
  return Auditor(options).run(in);
}

void AuditReport::write_json(std::ostream& out) const {
  out << "{\"ok\":" << (ok() ? "true" : "false") << ",\"events\":" << events
      << ",\"jobs\":" << jobs << ",\"unknown_events\":" << unknown_events
      << ",\"dropped_violations\":" << dropped_violations << ",\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    if (i > 0) out << ',';
    out << "{\"code\":\"" << to_string(v.code) << "\",\"line\":" << v.line
        << ",\"job\":" << v.job << ",\"message\":";
    write_json_string(out, v.message);
    out << '}';
  }
  out << "]}\n";
}

}  // namespace bgl::obs
