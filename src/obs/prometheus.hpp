// Prometheus text-format exposition over the observability registries.
//
// prometheus_render() turns the counter registry, histogram registry, phase
// profiler and an optional list of instantaneous gauges into the Prometheus
// text exposition format (version 0.0.4): every metric family is preceded by
// one `# TYPE` line, counters carry the conventional `_total` suffix,
// histograms are exposed as summaries (p50/p90/p99 quantile labels plus
// `_sum`/`_count`), and phase-tree nodes become one sample per tree path
// under three families (`bgl_phase_spans_total`, `bgl_phase_seconds_total`,
// `bgl_phase_self_seconds_total`). Dotted registry names map to metric
// names by prefixing `bgl_` and replacing every non-alphanumeric byte with
// '_' ("sched.decision_us" -> "bgl_sched_decision_us").
//
// docs/OBSERVABILITY.md ("Prometheus exposition") is the rendered contract;
// tools/sched_server serves this text on --metrics-socket.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bgl::obs {

class CounterRegistry;
class HistogramRegistry;
class PhaseProfiler;

/// One instantaneous gauge: (dotted name, value), e.g. {"svc.queue_depth", 4}.
using GaugeList = std::vector<std::pair<std::string, double>>;

/// Sanitized Prometheus metric name for a dotted registry name (adds the
/// "bgl_" prefix, maps every byte outside [a-zA-Z0-9_] to '_').
std::string prometheus_metric_name(std::string_view dotted);

/// Append the full exposition to `out`. Null registries are skipped; empty
/// histograms render `_sum`/`_count` only (a summary with no observations
/// has no quantile samples). The output always ends with "# EOF\n" so
/// scrapers can detect truncation.
void prometheus_render(std::string& out, const CounterRegistry* counters,
                       const HistogramRegistry* histograms,
                       const PhaseProfiler* profiler,
                       const GaugeList& gauges = {});

}  // namespace bgl::obs
