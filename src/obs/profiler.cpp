#include "obs/profiler.hpp"

#include <ostream>

namespace bgl::obs {

std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::kDesEvent: return "des.event";
    case Phase::kSvcEvent: return "svc.event";
    case Phase::kSchedPass: return "sched.pass";
    case Phase::kIndexSync: return "sched.index_sync";
    case Phase::kEnumerate: return "sched.enumerate";
    case Phase::kPlace: return "sched.place";
    case Phase::kScore: return "sched.score";
    case Phase::kPredict: return "sched.predict";
    case Phase::kBackfill: return "sched.backfill";
    case Phase::kMigration: return "sched.migration";
    case Phase::kReservation: return "sched.reservation";
    case Phase::kCount_: break;
  }
  return "unknown";
}

void PhaseProfiler::reset() {
  nodes_ = {};
  for (auto& row : child_lookup_) row.fill(-1);
  num_nodes_ = 0;
  depth_ = 0;
  overflow_ = 0;
  dropped_ = 0;
}

void PhaseProfiler::merge(const PhaseProfiler& other) {
  // Parents are always interned before their children (a parent span opens
  // first), so one forward walk in index order can remap the whole tree.
  std::array<std::int16_t, kMaxNodes> map{};
  for (std::size_t i = 0; i < other.num_nodes_; ++i) {
    const Node& on = other.nodes_[i];
    std::int16_t mine = -2;
    if (on.parent < 0) {
      mine = intern(kRoot, on.phase);
    } else {
      const std::int16_t parent = map[static_cast<std::size_t>(on.parent)];
      if (parent >= 0) mine = intern(parent, on.phase);
    }
    map[i] = mine;
    if (mine >= 0) {
      Node& n = nodes_[static_cast<std::size_t>(mine)];
      n.count += on.count;
      n.total_ns += on.total_ns;
      n.child_ns += on.child_ns;
      if (on.max_ns > n.max_ns) n.max_ns = on.max_ns;
    } else {
      dropped_ += on.count;
    }
  }
  dropped_ += other.dropped_;
}

std::uint64_t PhaseProfiler::count(Phase p) const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    if (nodes_[i].phase == p) sum += nodes_[i].count;
  }
  return sum;
}

std::uint64_t PhaseProfiler::total_ns(Phase p) const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    if (nodes_[i].phase == p) sum += nodes_[i].total_ns;
  }
  return sum;
}

std::uint64_t PhaseProfiler::self_ns(Phase p) const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    const Node& n = nodes_[i];
    if (n.phase != p) continue;
    sum += n.total_ns - (n.child_ns > n.total_ns ? n.total_ns : n.child_ns);
  }
  return sum;
}

std::string PhaseProfiler::path_of(std::size_t node) const {
  std::array<std::int16_t, kMaxDepth> chain{};
  std::size_t len = 0;
  std::int16_t cur = static_cast<std::int16_t>(node);
  while (cur >= 0 && len < chain.size()) {
    chain[len++] = cur;
    cur = nodes_[static_cast<std::size_t>(cur)].parent;
  }
  std::string path;
  for (std::size_t i = len; i-- > 0;) {
    if (!path.empty()) path += '/';
    path += phase_name(nodes_[static_cast<std::size_t>(chain[i])].phase);
  }
  return path;
}

PhaseProfiler::NodeView PhaseProfiler::node_view(std::size_t i) const {
  const Node& n = nodes_[i];
  const std::uint64_t child = n.child_ns > n.total_ns ? n.total_ns : n.child_ns;
  NodeView view;
  view.path = path_of(i);
  view.phase = phase_name(n.phase);
  view.count = n.count;
  view.total_ns = n.total_ns;
  view.self_ns = n.total_ns - child;
  view.max_ns = n.max_ns;
  return view;
}

void PhaseProfiler::write_node_json(std::ostream& out, std::size_t node) const {
  const Node& n = nodes_[node];
  const std::uint64_t child = n.child_ns > n.total_ns ? n.total_ns : n.child_ns;
  out << "{\"phase\":\"" << phase_name(n.phase) << "\",\"count\":" << n.count
      << ",\"total_ns\":" << n.total_ns << ",\"self_ns\":" << (n.total_ns - child)
      << ",\"max_ns\":" << n.max_ns;
  bool first = true;
  for (std::size_t c = 0; c < num_nodes_; ++c) {
    if (nodes_[c].parent != static_cast<std::int16_t>(node)) continue;
    out << (first ? ",\"children\":[" : ",");
    first = false;
    write_node_json(out, c);
  }
  if (!first) out << "]";
  out << "}";
}

void PhaseProfiler::write_json(std::ostream& out) const {
  out << "{\"dropped\":" << dropped_ << ",\"tree\":[";
  bool first = true;
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    if (nodes_[i].parent != kRoot) continue;
    if (!first) out << ",";
    first = false;
    write_node_json(out, i);
  }
  out << "]}";
}

void PhaseProfiler::append_stats_fields(std::string& out) const {
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    const Node& n = nodes_[i];
    const std::string path = path_of(i);
    const std::uint64_t child = n.child_ns > n.total_ns ? n.total_ns : n.child_ns;
    out += ",\"ph_count:" + path + "\":" + std::to_string(n.count);
    out += ",\"ph_total_ns:" + path + "\":" + std::to_string(n.total_ns);
    out += ",\"ph_self_ns:" + path + "\":" + std::to_string(n.total_ns - child);
  }
}

}  // namespace bgl::obs
