// Hierarchical phase profiler for the scheduler decision path.
//
// The counter registry answers "how long does schedule() take in total"
// (sched.decision_ns); this profiler answers "where inside the pass the time
// goes" — candidate enumeration vs scoring vs placement commit vs backfill
// vs migration vs reservation vs index maintenance — plus the DES event loop
// and the service event dispatch above it. Design constraints mirror
// counters.hpp (docs/OBSERVABILITY.md has the phase glossary):
//
//   * allocation-free span stack — begin()/end() push and pop a fixed-depth
//     stack of open spans; aggregation nodes live in a fixed array keyed by
//     (parent node, phase), so the dynamic call tree is interned without a
//     single heap allocation on the hot path.
//   * zero-cost when disabled — every instrumentation site holds a nullable
//     PhaseProfiler* (via obs::Observer) behind one branch; ScopedPhase with
//     a null profiler performs no clock read, exactly like ScopedTimer.
//   * self/cumulative accounting — each node accumulates count, total and
//     max wall nanoseconds plus the time spent in *recorded* child spans, so
//     self = total - children holds exactly and the per-phase self times of
//     a subtree tile its root's total (the property the bench_scale
//     acceptance check asserts against sched.decision_ns).
//
// Like the registries the profiler is not thread-safe: one run owns one
// profiler; the sweep engine merges per-unit profilers deterministically in
// (cell, repeat) order. Wall-clock totals are host-dependent; the tree
// *structure* and span counts are deterministic for a deterministic run.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace bgl::obs {

/// Every instrumented phase. Names (phase_name) are stable API: docs,
/// dashboards, metrics_report and tests key on them.
enum class Phase : std::size_t {
  kDesEvent = 0,  ///< One discrete event dispatched by the simulation driver.
  kSvcEvent,      ///< One protocol event handled by SchedulerService.
  kSchedPass,     ///< One Scheduler::schedule() pass (the decision path root).
  kIndexSync,     ///< Cloning the caller's FreePartitionIndex into the pass scratch.
  kEnumerate,     ///< Free-candidate enumeration (scan or index free-list).
  kPlace,         ///< Placing one job: scoring + occupancy/index/live commit.
  kScore,         ///< PlacementPolicy::choose over the candidate list.
  kPredict,       ///< FaultPredictor::flagged_nodes query.
  kBackfill,      ///< The discipline's backfill section (wraps enumerate/place).
  kMigration,     ///< Migration/repack attempt.
  kReservation,   ///< Head-of-queue reservation computation.
  kCount_,        ///< Sentinel; keep last.
};

inline constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount_);

/// Stable dotted name of a phase (e.g. "sched.enumerate").
std::string_view phase_name(Phase p);

class PhaseProfiler {
 public:
  /// Distinct (parent, phase) tree nodes; spans beyond the cap are counted
  /// in dropped_spans() instead of silently vanishing.
  static constexpr std::size_t kMaxNodes = 64;
  /// Open-span stack depth; deeper nesting is dropped, never unbalanced.
  static constexpr std::size_t kMaxDepth = 32;

  PhaseProfiler() { reset(); }

  /// Open a span of phase `p` nested under the currently open span (or at
  /// the root). Every begin() must be matched by one end(); use ScopedPhase.
  void begin(Phase p) {
    if (depth_ >= kMaxDepth) {
      ++overflow_;
      ++dropped_;
      return;
    }
    const std::int16_t parent = depth_ > 0 ? stack_[depth_ - 1].node : kRoot;
    // A child of a dropped span is dropped too (a -2 parent is not a valid
    // child_lookup_ row).
    const std::int16_t node = parent < kRoot ? kDropped : intern(parent, p);
    if (node < 0) ++dropped_;
    stack_[depth_].node = node;
    stack_[depth_].start = std::chrono::steady_clock::now();
    ++depth_;
  }

  void end() {
    if (overflow_ > 0) {
      --overflow_;
      return;
    }
    if (depth_ == 0) return;  // unbalanced end(); ignore
    const auto now = std::chrono::steady_clock::now();
    --depth_;
    const OpenSpan& span = stack_[depth_];
    if (span.node < 0) return;
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - span.start)
            .count());
    Node& node = nodes_[static_cast<std::size_t>(span.node)];
    ++node.count;
    node.total_ns += ns;
    if (ns > node.max_ns) node.max_ns = ns;
    if (depth_ > 0 && stack_[depth_ - 1].node >= 0) {
      nodes_[static_cast<std::size_t>(stack_[depth_ - 1].node)].child_ns += ns;
    }
  }

  void reset();
  /// Accumulate another profiler's tree into this one, interning its nodes
  /// by (parent path, phase). Deterministic given a deterministic call order.
  void merge(const PhaseProfiler& other);

  bool empty() const { return num_nodes_ == 0; }
  std::size_t num_nodes() const { return num_nodes_; }
  /// Spans lost to the node or depth caps (0 in every in-tree workload).
  std::uint64_t dropped_spans() const { return dropped_; }

  /// Aggregates over every tree node of phase `p` (a phase can appear under
  /// several parents, e.g. sched.enumerate under the pass root and under
  /// sched.backfill).
  std::uint64_t count(Phase p) const;
  std::uint64_t total_ns(Phase p) const;
  std::uint64_t self_ns(Phase p) const;

  /// Materialized view of one tree node, for renderers outside the class
  /// (obs::prometheus_render, tools/metrics_report). `i` < num_nodes().
  struct NodeView {
    std::string path;        ///< Phase names root-down joined with '/'.
    std::string_view phase;  ///< Leaf phase name.
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
    std::uint64_t max_ns = 0;
  };
  NodeView node_view(std::size_t i) const;

  /// {"dropped":0,"tree":[{"phase":...,"count":...,"total_ns":...,
  ///  "self_ns":...,"max_ns":...,"children":[...]},...]} — the cumulative
  /// tree in first-seen order; self_ns = total_ns - recorded child time.
  void write_json(std::ostream& out) const;

  /// Flat fields for the server's one-line stats reply (the trace schema
  /// forbids nested containers): for every tree node, appends
  ///   ,"ph_count:<path>":N,"ph_total_ns:<path>":T,"ph_self_ns:<path>":S
  /// where <path> joins phase names root-down with '/'.
  void append_stats_fields(std::string& out) const;

 private:
  static constexpr std::int16_t kRoot = -1;
  /// Span marker for "no node" (capacity exhausted or dropped parent).
  static constexpr std::int16_t kDropped = -2;

  struct Node {
    Phase phase = Phase::kCount_;
    std::int16_t parent = kRoot;  ///< Node index of the parent, kRoot at top.
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    std::uint64_t child_ns = 0;  ///< Time recorded by direct child spans.
  };

  struct OpenSpan {
    std::int16_t node = kRoot;  ///< < 0 when the span was dropped.
    std::chrono::steady_clock::time_point start;
  };

  std::int16_t intern(std::int16_t parent, Phase p) {
    std::int16_t& slot =
        child_lookup_[static_cast<std::size_t>(parent + 1)][static_cast<std::size_t>(p)];
    if (slot >= 0) return slot;
    if (num_nodes_ >= kMaxNodes) return kDropped;
    const auto idx = static_cast<std::int16_t>(num_nodes_++);
    Node& node = nodes_[static_cast<std::size_t>(idx)];
    node.phase = p;
    node.parent = parent;
    slot = idx;
    return idx;
  }

  std::string path_of(std::size_t node) const;
  void write_node_json(std::ostream& out, std::size_t node) const;

  std::array<Node, kMaxNodes> nodes_;
  /// (parent node + 1) x phase -> node index, -1 when not yet interned.
  std::array<std::array<std::int16_t, kNumPhases>, kMaxNodes + 1> child_lookup_;
  std::array<OpenSpan, kMaxDepth> stack_;
  std::size_t num_nodes_ = 0;
  std::size_t depth_ = 0;
  std::size_t overflow_ = 0;  ///< Opens beyond kMaxDepth awaiting their end().
  std::uint64_t dropped_ = 0;
};

/// RAII span guard: opens `phase` on construction, closes it on destruction.
/// A null profiler skips the clock reads entirely (same contract as
/// ScopedTimer).
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, Phase phase) : profiler_(profiler) {
    if (profiler_ != nullptr) profiler_->begin(phase);
  }
  ~ScopedPhase() {
    if (profiler_ != nullptr) profiler_->end();
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler* profiler_;
};

}  // namespace bgl::obs
