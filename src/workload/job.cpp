#include "workload/job.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace bgl {

double Workload::arrival_span() const {
  if (jobs.empty()) return 0.0;
  return jobs.back().arrival - jobs.front().arrival;
}

double Workload::total_work() const {
  double work = 0.0;
  for (const Job& j : jobs) work += static_cast<double>(j.size) * j.runtime;
  return work;
}

void normalize(Workload& workload) {
  for (const Job& j : workload.jobs) {
    if (j.size < 1) throw ConfigError("job " + std::to_string(j.id) + " has size < 1");
    if (j.arrival < 0.0 || j.runtime < 0.0 || j.estimate < 0.0) {
      throw ConfigError("job " + std::to_string(j.id) + " has negative time field");
    }
  }
  std::sort(workload.jobs.begin(), workload.jobs.end(), [](const Job& a, const Job& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.id < b.id;
  });
}

Workload scale_load(const Workload& workload, double c) {
  BGL_CHECK(c > 0.0, "load scale coefficient must be positive");
  Workload out = workload;
  for (Job& j : out.jobs) {
    j.runtime *= c;
    j.estimate *= c;
  }
  return out;
}

Workload rescale_sizes(const Workload& workload, int target_nodes) {
  BGL_CHECK(target_nodes > 0, "target machine size must be positive");
  BGL_CHECK(workload.machine_nodes > 0, "workload has unknown machine size");
  Workload out = workload;
  if (workload.machine_nodes == target_nodes) return out;
  for (Job& j : out.jobs) {
    const long long scaled =
        ceil_div(static_cast<long long>(j.size) * target_nodes, workload.machine_nodes);
    j.size = static_cast<int>(std::clamp<long long>(scaled, 1, target_nodes));
  }
  out.machine_nodes = target_nodes;
  return out;
}

}  // namespace bgl
