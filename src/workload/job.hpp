// Job and workload records.
//
// The scheduler consumes exactly the tuple the paper's simulator consumes:
// arrival time, requested node count, actual runtime, and the user's runtime
// estimate. A Workload is an arrival-sorted job list plus provenance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bgl {

struct Job {
  std::uint64_t id = 0;    ///< Stable id (log job number or generator index).
  double arrival = 0.0;    ///< Seconds since the workload epoch.
  double runtime = 0.0;    ///< Actual uninterrupted execution time (seconds).
  double estimate = 0.0;   ///< User-supplied runtime estimate (>= 1 s).
  int size = 1;            ///< Requested (super)nodes.
};

struct Workload {
  std::string name;
  int machine_nodes = 0;   ///< Node count of the machine the log targets.
  std::vector<Job> jobs;   ///< Sorted by (arrival, id).

  bool empty() const { return jobs.empty(); }
  std::size_t size() const { return jobs.size(); }

  /// Time span [first arrival, last arrival].
  double arrival_span() const;

  /// Total work (sum of size * runtime) in node-seconds.
  double total_work() const;
};

/// Sort jobs by (arrival, id) and validate basic invariants (positive sizes,
/// non-negative times). Throws ConfigError on violation.
void normalize(Workload& workload);

/// Apply the paper's load-scale coefficient c: multiply every runtime and
/// estimate by c ("we also use a scaling factor c multiplied to each job's
/// execution time", §6.2). Returns a scaled copy.
Workload scale_load(const Workload& workload, double c);

/// Rescale job sizes from the traced machine's node count onto a target
/// machine size: size' = clamp(ceil(size * target / machine_nodes), 1,
/// target). Identity when the counts already match (NASA/SDSC at 128).
Workload rescale_sizes(const Workload& workload, int target_nodes);

}  // namespace bgl
