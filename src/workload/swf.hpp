// Standard Workload Format (SWF) reader/writer.
//
// The Parallel Workloads Archive distributes the NASA iPSC/860, SDSC SP2
// and LLNL Cray T3D logs the paper uses in SWF: one job per line with 18
// whitespace-separated fields, '-1' for unknown, ';' comment headers. This
// module parses the fields the simulator needs and can round-trip synthetic
// workloads so users can swap in the real archive files.
//
// Field indices (1-based, per the SWF definition):
//   1 job number, 2 submit time, 3 wait time, 4 run time,
//   5 allocated processors, 6 average CPU time, 7 used memory,
//   8 requested processors, 9 requested time, 10 requested memory,
//   11 status, 12 user, 13 group, 14 application, 15 queue,
//   16 partition, 17 preceding job, 18 think time.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/job.hpp"

namespace bgl {

struct SwfOptions {
  /// Use requested processors (field 8) when valid, else allocated (field 5).
  bool prefer_requested_processors = false;
  /// Use requested time (field 9) as the estimate; when missing, estimate is
  /// estimate_fallback_factor * runtime.
  double estimate_fallback_factor = 2.0;
  /// Drop jobs whose status (field 11) is 0 (failed) — off by default; the
  /// paper replays whatever the log contains.
  bool drop_failed_status = false;
  /// Clamp runtimes to at least this many seconds (zero-length log entries).
  double min_runtime = 1.0;
};

/// Parse an SWF stream. `machine_nodes` may be 0 to auto-detect from the
/// "; MaxProcs:" header or the maximum job size seen.
Workload read_swf(std::istream& in, const std::string& name, int machine_nodes = 0,
                  const SwfOptions& options = {});

/// Parse an SWF file (throws Error if unreadable, ParseError if malformed).
Workload read_swf_file(const std::string& path, int machine_nodes = 0,
                       const SwfOptions& options = {});

/// Write a workload as SWF (only the fields the simulator fills are
/// meaningful; the rest are -1).
void write_swf(std::ostream& out, const Workload& workload);
void write_swf_file(const std::string& path, const Workload& workload);

}  // namespace bgl
