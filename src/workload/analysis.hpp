// Workload statistics: used by tests (model calibration checks), examples,
// and the experiment reports.
#pragma once

#include <string>

#include "util/stats.hpp"
#include "workload/job.hpp"

namespace bgl {

struct WorkloadSummary {
  std::size_t jobs = 0;
  double span_seconds = 0.0;
  double offered_load = 0.0;       ///< sum(s*t) / (N * span)
  double pow2_size_fraction = 0.0;
  RunningStats size;
  RunningStats runtime;
  RunningStats estimate_factor;    ///< estimate / runtime
  RunningStats interarrival;
};

WorkloadSummary summarize(const Workload& workload);

/// Multi-line human-readable report.
std::string describe(const Workload& workload);

}  // namespace bgl
