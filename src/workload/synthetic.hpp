// Synthetic workload generators calibrated to the paper's three job logs.
//
// The paper replays the NASA Ames iPSC/860 (1993, 128 nodes), SDSC SP2
// (1998-2000, 128 nodes) and LLNL Cray T3D (1996, 256 nodes) logs from the
// Parallel Workloads Archive. Those archives cannot be shipped here, so we
// generate statistically similar logs instead (and read_swf_file() accepts
// the real ones wherever a Workload is consumed). What the schedulers are
// sensitive to — and what the models reproduce — is:
//
//   * the job-size mix (power-of-two dominated, small-job heavy for NASA,
//     mid-size heavy for LLNL, mixed for SDSC),
//   * heavy-tailed runtimes (lognormal body, capped tail),
//   * user runtime over-estimation (estimates are multiples of the true
//     runtime, with a point mass at exact),
//   * diurnal/weekly arrival modulation with Poisson micro-structure,
//   * an offered load (utilisation if nothing were wasted) around 50 %.
//     The torus's contiguous-rectangle constraint wastes roughly a quarter
//     of the machine to packing loss, so 50 % offered sits just below the
//     effective knee of the queueing curve and the paper's c = 1.2 scaling
//     pushes the system decisively toward saturation.
//
// Generation is a pure function of (model, seed).
#pragma once

#include <cstdint>
#include <string>

#include "workload/job.hpp"

namespace bgl {

struct SyntheticModel {
  std::string name = "synthetic";
  int machine_nodes = 128;      ///< Node count of the emulated machine.
  int num_jobs = 8000;

  /// Duration of the real log this model emulates. The paper's failure
  /// budgets (4000 events for NASA/SDSC, 1000 for LLNL) refer to those full
  /// spans; when a synthetic log is shorter the harness scales the injected
  /// event count proportionally so the failure *density* matches the paper.
  double reference_span_days = 365.0;

  // --- job sizes ---
  int min_size = 1;
  int max_size = 128;
  double pow2_fraction = 0.85;  ///< Fraction of jobs with power-of-two sizes.
  double size_zipf_s = 0.9;     ///< Zipf exponent over log2-size classes.
  bool small_heavy = true;      ///< true: class 0 is size 1; false: reversed
                                ///  (large classes more likely).

  // --- runtimes (seconds) ---
  double runtime_mu = 6.2;      ///< lognormal location (exp(6.2) ≈ 8 min).
  double runtime_sigma = 1.9;   ///< lognormal scale.
  double min_runtime = 10.0;
  double max_runtime = 48.0 * 3600.0;
  double size_runtime_corr = 0.35;  ///< Larger jobs run somewhat longer.

  // --- user estimates ---
  double exact_estimate_fraction = 0.15;
  double max_overestimate = 6.0;  ///< estimate <= runtime * this.

  // --- arrival process ---
  double offered_load = 0.50;     ///< Target sum(s*t)/(N*span) at c = 1.0.
  double diurnal_amplitude = 0.6; ///< 0 = flat, 1 = full day/night swing.
  double weekend_factor = 0.5;    ///< Arrival-rate multiplier on weekends.

  /// NASA Ames iPSC/860 (1993): strictly power-of-two sizes, many tiny
  /// jobs, short runtimes, moderate load.
  static SyntheticModel nasa();
  /// SDSC SP2 (1998-2000): mixed sizes, long heavy-tailed runtimes, the
  /// paper's primary log.
  static SyntheticModel sdsc();
  /// LLNL Cray T3D (1996): 256-node machine, mid/large power-of-two jobs.
  static SyntheticModel llnl();
};

/// Generate a workload. Deterministic in (model, seed). Arrivals start at 0
/// and the span is set so that total work / (machine_nodes * span) equals
/// model.offered_load.
Workload generate_workload(const SyntheticModel& model, std::uint64_t seed);

}  // namespace bgl
