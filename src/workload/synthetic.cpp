#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace bgl {

SyntheticModel SyntheticModel::nasa() {
  SyntheticModel m;
  m.name = "nasa-ipsc860";
  m.machine_nodes = 128;
  m.reference_span_days = 92.0;  // Oct-Dec 1993
  m.num_jobs = 6000;
  m.pow2_fraction = 1.0;  // the iPSC/860 only ran power-of-two jobs
  m.size_zipf_s = 1.1;
  m.small_heavy = true;
  m.runtime_mu = 5.3;   // exp(5.3) ≈ 3.3 min — the NASA log is short-job heavy
  m.runtime_sigma = 1.7;
  m.max_runtime = 12.0 * 3600.0;
  m.exact_estimate_fraction = 0.25;
  m.offered_load = 0.50;
  return m;
}

SyntheticModel SyntheticModel::sdsc() {
  SyntheticModel m;
  m.name = "sdsc-sp2";
  m.machine_nodes = 128;
  m.reference_span_days = 730.0;  // 1998-2000
  m.num_jobs = 8000;
  m.pow2_fraction = 0.8;
  m.size_zipf_s = 0.85;
  m.small_heavy = true;
  m.runtime_mu = 6.8;   // exp(6.8) ≈ 15 min body with a long tail
  m.runtime_sigma = 2.0;
  m.max_runtime = 36.0 * 3600.0;
  m.exact_estimate_fraction = 0.10;
  m.offered_load = 0.50;
  return m;
}

SyntheticModel SyntheticModel::llnl() {
  SyntheticModel m;
  m.name = "llnl-t3d";
  m.machine_nodes = 256;
  m.reference_span_days = 360.0;  // 1996
  m.num_jobs = 5000;
  m.min_size = 8;
  m.max_size = 256;
  m.pow2_fraction = 1.0;  // T3D partitions were power-of-two
  m.size_zipf_s = 0.4;    // flatter: mid/large jobs common
  m.small_heavy = false;
  m.runtime_mu = 6.5;
  m.runtime_sigma = 1.6;
  m.max_runtime = 24.0 * 3600.0;
  m.exact_estimate_fraction = 0.15;
  m.offered_load = 0.48;
  return m;
}

namespace {

int sample_size(const SyntheticModel& m, Rng& rng) {
  const int k_min = static_cast<int>(std::floor(std::log2(static_cast<double>(m.min_size))));
  const int k_max = static_cast<int>(std::floor(std::log2(static_cast<double>(m.max_size))));
  const auto classes = static_cast<std::size_t>(k_max - k_min + 1);
  std::size_t cls = rng.zipf(classes, m.size_zipf_s);
  if (!m.small_heavy) cls = classes - 1 - cls;  // favour large classes
  const int k = k_min + static_cast<int>(cls);
  int size = 1 << k;
  if (!rng.bernoulli(m.pow2_fraction) && size > 1) {
    // Perturb off the power of two within the same binary class.
    const int hi = std::min(m.max_size, (size << 1) - 1);
    size = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(size),
                                            static_cast<std::uint64_t>(hi)));
  }
  return std::clamp(size, m.min_size, m.max_size);
}

double sample_runtime(const SyntheticModel& m, int size, Rng& rng) {
  const double k_frac =
      std::log2(static_cast<double>(std::max(size, 1))) /
      std::max(1.0, std::log2(static_cast<double>(m.max_size)));
  const double mu = m.runtime_mu + m.size_runtime_corr * k_frac;
  const double t = rng.lognormal(mu, m.runtime_sigma);
  return std::clamp(t, m.min_runtime, m.max_runtime);
}

double sample_estimate(const SyntheticModel& m, double runtime, Rng& rng) {
  if (rng.bernoulli(m.exact_estimate_fraction)) return runtime;
  // Users round up: multiplicative over-estimate, biased toward small factors.
  const double factor = 1.0 + (m.max_overestimate - 1.0) * rng.uniform() * rng.uniform();
  return std::min(runtime * factor, m.max_runtime * m.max_overestimate);
}

/// Relative arrival intensity at time t (seconds): day/night and weekday
/// modulation, mean close to 1.
double arrival_intensity(const SyntheticModel& m, double t) {
  const double day_phase = 2.0 * M_PI * std::fmod(t, 86400.0) / 86400.0;
  // Peak mid-day (phase shifted so t=0 is midnight).
  double intensity = 1.0 + m.diurnal_amplitude * std::sin(day_phase - M_PI / 2.0);
  const int day_index = static_cast<int>(std::floor(t / 86400.0));
  const int weekday = ((day_index % 7) + 7) % 7;
  if (weekday >= 5) intensity *= m.weekend_factor;
  return std::max(intensity, 0.05);
}

}  // namespace

Workload generate_workload(const SyntheticModel& model, std::uint64_t seed) {
  BGL_CHECK(model.num_jobs > 0, "synthetic model needs at least one job");
  BGL_CHECK(model.min_size >= 1 && model.min_size <= model.max_size &&
                model.max_size <= model.machine_nodes,
            "synthetic model size bounds invalid");
  BGL_CHECK(model.offered_load > 0.0 && model.offered_load < 1.0,
            "offered load must lie in (0, 1)");

  Rng rng(hash_combine(seed, 0x776f726b6c6f6164ULL));  // "workload"

  Workload workload;
  workload.name = model.name;
  workload.machine_nodes = model.machine_nodes;
  workload.jobs.reserve(static_cast<std::size_t>(model.num_jobs));

  // 1. Sizes, runtimes, estimates.
  double total_work = 0.0;
  for (int i = 0; i < model.num_jobs; ++i) {
    Job job;
    job.id = static_cast<std::uint64_t>(i + 1);
    job.size = sample_size(model, rng);
    job.runtime = sample_runtime(model, job.size, rng);
    job.estimate = sample_estimate(model, job.runtime, rng);
    total_work += static_cast<double>(job.size) * job.runtime;
    workload.jobs.push_back(job);
  }

  // 2. Arrival process: thinned Poisson with diurnal/weekly modulation,
  //    then a linear rescale so the span hits the offered-load target.
  const double target_span =
      total_work / (static_cast<double>(model.machine_nodes) * model.offered_load);
  const double base_rate = static_cast<double>(model.num_jobs) / target_span;
  double t = 0.0;
  for (Job& job : workload.jobs) {
    // Non-homogeneous Poisson by thinning against max intensity (1 + A).
    const double max_intensity = (1.0 + model.diurnal_amplitude);
    while (true) {
      t += rng.exponential(base_rate * max_intensity);
      if (rng.uniform() * max_intensity <= arrival_intensity(model, t)) break;
    }
    job.arrival = t;
  }
  double first = workload.jobs.front().arrival;
  double last = first;
  for (const Job& job : workload.jobs) {
    first = std::min(first, job.arrival);
    last = std::max(last, job.arrival);
  }
  const double raw_span = last - first;
  if (raw_span > 0.0) {
    const double scale = target_span / raw_span;
    for (Job& job : workload.jobs) job.arrival = (job.arrival - first) * scale;
  }

  normalize(workload);
  return workload;
}

}  // namespace bgl
