#include "workload/transform.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace bgl {

namespace {
/// Re-base arrivals so the earliest is 0, then normalise.
void rebase(Workload& workload) {
  if (!workload.jobs.empty()) {
    double t0 = workload.jobs.front().arrival;
    for (const Job& j : workload.jobs) t0 = std::min(t0, j.arrival);
    for (Job& j : workload.jobs) j.arrival -= t0;
  }
  normalize(workload);
}
}  // namespace

Workload filter_jobs(const Workload& workload,
                     const std::function<bool(const Job&)>& keep) {
  Workload out;
  out.name = workload.name;
  out.machine_nodes = workload.machine_nodes;
  for (const Job& j : workload.jobs) {
    if (keep(j)) out.jobs.push_back(j);
  }
  rebase(out);
  return out;
}

Workload slice_time(const Workload& workload, double t0, double t1) {
  BGL_CHECK(t1 >= t0, "slice interval must be non-degenerate");
  return filter_jobs(workload,
                     [&](const Job& j) { return j.arrival >= t0 && j.arrival < t1; });
}

Workload head_jobs(const Workload& workload, std::size_t count) {
  Workload out = workload;
  normalize(out);
  if (out.jobs.size() > count) out.jobs.resize(count);
  rebase(out);
  return out;
}

Workload merge_workloads(const std::vector<Workload>& workloads) {
  BGL_CHECK(!workloads.empty(), "merge requires at least one workload");
  Workload out;
  out.name = "merged";
  for (const Workload& w : workloads) {
    out.machine_nodes = std::max(out.machine_nodes, w.machine_nodes);
    for (const Job& j : w.jobs) out.jobs.push_back(j);
  }
  // Renumber ids to keep them unique across the merged log.
  std::sort(out.jobs.begin(), out.jobs.end(), [](const Job& a, const Job& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.id < b.id;
  });
  for (std::size_t i = 0; i < out.jobs.size(); ++i) {
    out.jobs[i].id = static_cast<std::uint64_t>(i + 1);
  }
  rebase(out);
  return out;
}

Workload cap_estimates(const Workload& workload, double factor) {
  BGL_CHECK(factor >= 1.0, "estimate cap factor must be >= 1");
  Workload out = workload;
  for (Job& j : out.jobs) {
    j.estimate = std::min(j.estimate, j.runtime * factor);
    j.estimate = std::max(j.estimate, j.runtime);
  }
  return out;
}

Workload exact_estimates(const Workload& workload) {
  Workload out = workload;
  for (Job& j : out.jobs) j.estimate = j.runtime;
  return out;
}

Workload thin_workload(const Workload& workload, double keep_p, std::uint64_t seed) {
  BGL_CHECK(keep_p >= 0.0 && keep_p <= 1.0, "keep probability must lie in [0, 1]");
  Rng rng(hash_combine(seed, 0x7468696eULL));
  Workload out;
  out.name = workload.name;
  out.machine_nodes = workload.machine_nodes;
  for (const Job& j : workload.jobs) {
    if (rng.bernoulli(keep_p)) out.jobs.push_back(j);
  }
  // Arrivals preserved (not re-based): thinning changes load, not timing.
  normalize(out);
  return out;
}

}  // namespace bgl
