// Workload transformations: the log-preparation operations needed when
// working with real archive traces (and for building controlled experiment
// variants from synthetic ones).
//
// All functions are pure: they return a new Workload, re-normalised
// (arrival-sorted) and, where arrivals may have shifted, re-based to t = 0.
#pragma once

#include <functional>
#include <vector>

#include "workload/job.hpp"

namespace bgl {

/// Keep only jobs satisfying `keep`. Arrivals are re-based to zero.
Workload filter_jobs(const Workload& workload,
                     const std::function<bool(const Job&)>& keep);

/// Keep jobs arriving within [t0, t1) (seconds from the workload epoch).
Workload slice_time(const Workload& workload, double t0, double t1);

/// Keep the first `count` jobs by arrival order.
Workload head_jobs(const Workload& workload, std::size_t count);

/// Merge several workloads onto one machine: arrivals are interleaved as-is
/// (all logs share the epoch); job ids are renumbered 1..n to stay unique.
/// The machine size is the max of the inputs'.
Workload merge_workloads(const std::vector<Workload>& workloads);

/// Clamp every user estimate to at most `factor` times the actual runtime
/// (studies of estimate quality commonly sweep this).
Workload cap_estimates(const Workload& workload, double factor);

/// Replace every estimate with the exact runtime (perfect user estimates).
Workload exact_estimates(const Workload& workload);

/// Thin the workload: keep each job independently with probability `keep_p`
/// (deterministic in `seed`), preserving arrival times — the standard way
/// to reduce load without changing the job mix.
Workload thin_workload(const Workload& workload, double keep_p, std::uint64_t seed);

}  // namespace bgl
