#include "workload/analysis.hpp"

#include <sstream>

#include "util/math.hpp"
#include "util/strings.hpp"

namespace bgl {

WorkloadSummary summarize(const Workload& workload) {
  WorkloadSummary s;
  s.jobs = workload.jobs.size();
  if (workload.jobs.empty()) return s;
  s.span_seconds = workload.arrival_span();
  std::size_t pow2 = 0;
  double prev_arrival = workload.jobs.front().arrival;
  for (const Job& j : workload.jobs) {
    s.size.add(static_cast<double>(j.size));
    s.runtime.add(j.runtime);
    if (j.runtime > 0.0) s.estimate_factor.add(j.estimate / j.runtime);
    if (is_pow2(j.size)) ++pow2;
    s.interarrival.add(j.arrival - prev_arrival);
    prev_arrival = j.arrival;
  }
  s.pow2_size_fraction = static_cast<double>(pow2) / static_cast<double>(s.jobs);
  if (s.span_seconds > 0.0 && workload.machine_nodes > 0) {
    s.offered_load = workload.total_work() /
                     (static_cast<double>(workload.machine_nodes) * s.span_seconds);
  }
  return s;
}

std::string describe(const Workload& workload) {
  const WorkloadSummary s = summarize(workload);
  std::ostringstream os;
  os << "workload '" << workload.name << "': " << s.jobs << " jobs on "
     << workload.machine_nodes << " nodes over " << format_duration(s.span_seconds) << '\n';
  os << "  offered load: " << format_double(s.offered_load, 3) << '\n';
  os << "  sizes: mean " << format_double(s.size.mean(), 1) << ", max "
     << format_double(s.size.max(), 0) << ", pow2 fraction "
     << format_double(s.pow2_size_fraction, 2) << '\n';
  os << "  runtimes: mean " << format_duration(s.runtime.mean()) << ", max "
     << format_duration(s.runtime.max()) << '\n';
  os << "  estimate factor: mean " << format_double(s.estimate_factor.mean(), 2) << '\n';
  return os.str();
}

}  // namespace bgl
