#include "des/engine.hpp"

namespace bgl {

void Engine::on(EventType type, Handler handler) {
  handlers_[static_cast<std::size_t>(type)] = std::move(handler);
}

void Engine::schedule(SimTime time, EventType type, std::uint64_t id, std::uint64_t tag) {
  queue_.push(Event{time, type, id, tag, 0});
}

std::size_t Engine::run(std::size_t max_events) {
  stopped_ = false;
  std::size_t dispatched = 0;
  while (!stopped_ && !queue_.empty() && dispatched < max_events) {
    const Event e = queue_.pop();
    ++dispatched;
    Handler& h = handlers_[static_cast<std::size_t>(e.type)];
    if (h) h(*this, e);
  }
  return dispatched;
}

}  // namespace bgl
