// Pending-event set with stable FIFO tie-breaking.
//
// Two interchangeable implementations sit behind one API:
//
//   * kCalendar (default) — a calendar queue (Brown 1988): events hash into
//     time-sliced buckets of `width` seconds, `num_buckets` covering one
//     "year". Push and pop are O(1) amortised; the bucket table doubles /
//     halves as the population crosses 2N / N/2 and the width is re-derived
//     from the live min/max event times, so both the million-arrival preload
//     and the near-term finish/failure churn stay at ~1 event per bucket.
//   * kHeap — the original std::priority_queue binary heap, kept as the
//     reference implementation for differential tests and perf baselines.
//
// Both honour the exact total order of EventAfter — (time, semantic type,
// FIFO seq) — so any trace produced through one is byte-identical through the
// other. Equal-time events always land in the same calendar bucket (the slot
// index is a pure function of the timestamp), which keeps tie-breaking a
// purely intra-bucket affair; the in-bucket min scan uses the full
// comparator, whose seq field makes the order total (no two events compare
// equal).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "des/event.hpp"
#include "util/error.hpp"

namespace bgl {

enum class EventQueueKind : std::uint8_t {
  kCalendar = 0,  ///< Bucketed calendar queue, O(1) amortised (default).
  kHeap = 1,      ///< Binary heap reference implementation.
};

const char* to_string(EventQueueKind kind);

class EventQueue {
 public:
  explicit EventQueue(EventQueueKind kind = EventQueueKind::kCalendar);

  EventQueueKind kind() const { return kind_; }
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Enqueue; the event's seq field is overwritten with a fresh number.
  /// Events must not be scheduled before the last popped time.
  void push(Event event);

  /// Earliest event (undefined if empty — checked).
  const Event& top() const;

  /// Remove and return the earliest event; advances the internal clock.
  Event pop();

  /// Time of the last popped event (0 before the first pop).
  SimTime now() const { return now_; }

  void clear();

 private:
  // --- calendar implementation ---
  void cal_push(Event event);
  Event cal_pop();
  /// Locate the minimum event (sets min_bucket_/min_index_); scans at most
  /// one calendar year from the current cursor before falling back to a
  /// direct search. Logically const — only touches the mutable cursor/cache.
  void cal_find_min() const;
  std::uint64_t slot_of(SimTime t) const {
    return static_cast<std::uint64_t>(t / width_);
  }
  /// Rebuild the bucket table with `new_buckets` buckets and a width derived
  /// from the live event population, then re-seat the cursor on the minimum.
  void cal_rehash(std::size_t new_buckets);

  static constexpr std::size_t kMinBuckets = 4;

  EventQueueKind kind_ = EventQueueKind::kCalendar;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = 0.0;

  // Heap state (kind_ == kHeap).
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;

  // Calendar state (kind_ == kCalendar). Buckets are unsorted; the pop-side
  // min scan uses the full EventAfter order, so intra-bucket order is free.
  std::vector<std::vector<Event>> buckets_;
  double width_ = 1.0;
  mutable std::uint64_t cursor_slot_ = 0;   ///< Earliest slot any event can occupy.
  mutable bool min_valid_ = false;          ///< min_bucket_/min_index_ point at the min.
  mutable std::size_t min_bucket_ = 0;
  mutable std::size_t min_index_ = 0;
};

}  // namespace bgl
