// Binary-heap event queue with stable FIFO tie-breaking.
#pragma once

#include <queue>
#include <vector>

#include "des/event.hpp"
#include "util/error.hpp"

namespace bgl {

class EventQueue {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Enqueue; the event's seq field is overwritten with a fresh number.
  /// Events must not be scheduled before the last popped time.
  void push(Event event);

  /// Earliest event (undefined if empty — checked).
  const Event& top() const;

  /// Remove and return the earliest event; advances the internal clock.
  Event pop();

  /// Time of the last popped event (0 before the first pop).
  SimTime now() const { return now_; }

  void clear();

 private:
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = 0.0;
};

}  // namespace bgl
