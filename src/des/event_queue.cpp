#include "des/event_queue.hpp"

#include <algorithm>
#include <bit>

namespace bgl {

namespace {
constexpr EventAfter kAfter{};  // a.after(b): a sorts later than b

// True if `a` pops before `b` (strict, total — seq breaks all ties).
inline bool pops_before(const Event& a, const Event& b) { return kAfter(b, a); }
}  // namespace

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kFinish: return "finish";
    case EventType::kFailure: return "failure";
    case EventType::kArrival: return "arrival";
    case EventType::kCheckpoint: return "checkpoint";
    case EventType::kCustom: return "custom";
  }
  return "?";
}

const char* to_string(EventQueueKind kind) {
  switch (kind) {
    case EventQueueKind::kCalendar: return "calendar";
    case EventQueueKind::kHeap: return "heap";
  }
  return "?";
}

EventQueue::EventQueue(EventQueueKind kind) : kind_(kind) {
  if (kind_ == EventQueueKind::kCalendar) buckets_.resize(kMinBuckets);
}

void EventQueue::push(Event event) {
  BGL_CHECK(event.time >= now_, "event scheduled in the past");
  event.seq = next_seq_++;
  if (kind_ == EventQueueKind::kHeap) {
    heap_.push(event);
  } else {
    cal_push(event);
  }
  ++size_;
}

const Event& EventQueue::top() const {
  BGL_CHECK(size_ != 0, "top() on empty event queue");
  if (kind_ == EventQueueKind::kHeap) return heap_.top();
  if (!min_valid_) cal_find_min();
  return buckets_[min_bucket_][min_index_];
}

Event EventQueue::pop() {
  BGL_CHECK(size_ != 0, "pop() on empty event queue");
  Event e;
  if (kind_ == EventQueueKind::kHeap) {
    e = heap_.top();
    heap_.pop();
    --size_;
  } else {
    e = cal_pop();
  }
  now_ = e.time;
  return e;
}

void EventQueue::clear() {
  heap_ = {};
  buckets_.clear();
  if (kind_ == EventQueueKind::kCalendar) buckets_.resize(kMinBuckets);
  width_ = 1.0;
  cursor_slot_ = 0;
  min_valid_ = false;
  size_ = 0;
  next_seq_ = 0;
  now_ = 0.0;
}

void EventQueue::cal_push(Event event) {
  const std::uint64_t slot = slot_of(event.time);
  // A zero-delay event can land in an earlier slot than the cursor (which
  // sits on the last located minimum); drag the cursor back so the one-year
  // scan in cal_find_min never starts past a live event.
  if (slot < cursor_slot_ || size_ == 0) cursor_slot_ = slot;
  const std::size_t bucket = static_cast<std::size_t>(slot & (buckets_.size() - 1));
  buckets_[bucket].push_back(event);
  if (min_valid_ && pops_before(event, buckets_[min_bucket_][min_index_])) {
    min_bucket_ = bucket;
    min_index_ = buckets_[bucket].size() - 1;
  }
  if (size_ + 1 > 2 * buckets_.size()) cal_rehash(2 * buckets_.size());
}

Event EventQueue::cal_pop() {
  if (!min_valid_) cal_find_min();
  std::vector<Event>& bucket = buckets_[min_bucket_];
  const Event e = bucket[min_index_];
  bucket[min_index_] = bucket.back();
  bucket.pop_back();
  min_valid_ = false;
  --size_;
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 2) {
    cal_rehash(buckets_.size() / 2);
  }
  return e;
}

void EventQueue::cal_find_min() const {
  const std::size_t nbuckets = buckets_.size();
  // Scan one calendar year, bucket by bucket, starting from the cursor slot.
  // The first slot holding any event holds the global minimum (events in
  // later slots have strictly later times); ties inside the slot resolve by
  // the full comparator, which is total thanks to the FIFO seq.
  for (std::size_t i = 0; i < nbuckets; ++i) {
    const std::uint64_t slot = cursor_slot_ + i;
    const std::vector<Event>& bucket =
        buckets_[static_cast<std::size_t>(slot & (nbuckets - 1))];
    bool found = false;
    std::size_t best = 0;
    for (std::size_t k = 0; k < bucket.size(); ++k) {
      if (slot_of(bucket[k].time) != slot) continue;  // different year
      if (!found || pops_before(bucket[k], bucket[best])) {
        found = true;
        best = k;
      }
    }
    if (found) {
      cursor_slot_ = slot;
      min_bucket_ = static_cast<std::size_t>(slot & (nbuckets - 1));
      min_index_ = best;
      min_valid_ = true;
      return;
    }
  }
  // Nothing within a year of the cursor: direct search (rare — only when the
  // live events are clustered far past the cursor, e.g. right after a long
  // idle gap). Re-seats the cursor so subsequent pops scan locally again.
  bool found = false;
  for (std::size_t b = 0; b < nbuckets; ++b) {
    for (std::size_t k = 0; k < buckets_[b].size(); ++k) {
      if (!found || pops_before(buckets_[b][k], buckets_[min_bucket_][min_index_])) {
        found = true;
        min_bucket_ = b;
        min_index_ = k;
      }
    }
  }
  BGL_CHECK(found, "calendar queue lost an event");
  cursor_slot_ = slot_of(buckets_[min_bucket_][min_index_].time);
  min_valid_ = true;
}

void EventQueue::cal_rehash(std::size_t new_buckets) {
  new_buckets = std::bit_ceil(std::max(new_buckets, kMinBuckets));
  std::vector<std::vector<Event>> old = std::move(buckets_);
  // Re-derive the bucket width from the live population: one average
  // inter-event gap per bucket keeps occupancy near one event per bucket for
  // roughly uniform spacings (the arrival preload) while the resize
  // hysteresis absorbs clustered spacings (the finish/failure churn).
  SimTime lo = 0.0, hi = 0.0;
  bool first = true;
  for (const std::vector<Event>& bucket : old) {
    for (const Event& e : bucket) {
      if (first || e.time < lo) lo = e.time;
      if (first || e.time > hi) hi = e.time;
      first = false;
    }
  }
  const double span = hi - lo;
  width_ = (size_ >= 2 && span > 0.0)
               ? std::max(span / static_cast<double>(size_), 1e-9)
               : 1.0;
  buckets_.assign(new_buckets, {});
  for (std::vector<Event>& bucket : old) {
    for (Event& e : bucket) {
      buckets_[static_cast<std::size_t>(slot_of(e.time) & (new_buckets - 1))]
          .push_back(e);
    }
  }
  // Re-seat the cursor (and the min cache) on the new layout's minimum.
  min_valid_ = false;
  for (std::size_t b = 0; b < new_buckets; ++b) {
    for (std::size_t k = 0; k < buckets_[b].size(); ++k) {
      if (!min_valid_ ||
          pops_before(buckets_[b][k], buckets_[min_bucket_][min_index_])) {
        min_bucket_ = b;
        min_index_ = k;
        min_valid_ = true;
      }
    }
  }
  cursor_slot_ =
      min_valid_ ? slot_of(buckets_[min_bucket_][min_index_].time) : 0;
}

}  // namespace bgl
