#include "des/event_queue.hpp"

namespace bgl {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kFinish: return "finish";
    case EventType::kFailure: return "failure";
    case EventType::kArrival: return "arrival";
    case EventType::kCheckpoint: return "checkpoint";
    case EventType::kCustom: return "custom";
  }
  return "?";
}

void EventQueue::push(Event event) {
  BGL_CHECK(event.time >= now_, "event scheduled in the past");
  event.seq = next_seq_++;
  heap_.push(event);
}

const Event& EventQueue::top() const {
  BGL_CHECK(!heap_.empty(), "top() on empty event queue");
  return heap_.top();
}

Event EventQueue::pop() {
  BGL_CHECK(!heap_.empty(), "pop() on empty event queue");
  Event e = heap_.top();
  heap_.pop();
  now_ = e.time;
  return e;
}

void EventQueue::clear() {
  heap_ = {};
  next_seq_ = 0;
  now_ = 0.0;
}

}  // namespace bgl
