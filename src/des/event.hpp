// Discrete-event primitives.
//
// The simulator is event-driven, as in the paper (§6.1): arrival, start,
// finish, failure and checkpoint events. Start events are implicit (jobs
// start the moment the scheduler places them — "jobs are always scheduled
// for immediate execution"), so the queue carries arrival/finish/failure/
// checkpoint plus a custom type for extensions.
//
// Tie-breaking at equal timestamps is semantically load-bearing:
//   finish < failure < arrival < checkpoint
// A job finishing at exactly the instant a node fails has completed its
// work; a job arriving at that instant sees the freed nodes.
#pragma once

#include <cstdint>

namespace bgl {

/// Simulation time in seconds since the workload epoch.
using SimTime = double;

enum class EventType : std::uint8_t {
  kFinish = 0,
  kFailure = 1,
  kArrival = 2,
  kCheckpoint = 3,
  kCustom = 4,
};

const char* to_string(EventType type);

struct Event {
  SimTime time = 0.0;
  EventType type = EventType::kCustom;
  /// Payload id: job id for arrival/finish/checkpoint, node id for failure.
  std::uint64_t id = 0;
  /// Generation tag. Finish events of a job killed by a failure are "stale":
  /// the handler compares tag against the job's current generation and drops
  /// mismatches instead of deleting from the middle of the heap.
  std::uint64_t tag = 0;
  /// Stable FIFO sequence number assigned by the queue.
  std::uint64_t seq = 0;
};

/// Heap ordering: earliest time first, then the semantic type order above,
/// then insertion order.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.type != b.type) return a.type > b.type;
    return a.seq > b.seq;
  }
};

}  // namespace bgl
