// Generic dispatch loop over an EventQueue.
//
// The production simulator (src/sim/driver.cpp) runs its own tight loop; the
// Engine exists for examples, tests and user code that wants a callback-based
// interface without writing the loop by hand.
#pragma once

#include <array>
#include <functional>

#include "des/event_queue.hpp"

namespace bgl {

class Engine {
 public:
  using Handler = std::function<void(Engine&, const Event&)>;

  /// Register the handler for one event type (replaces any previous one).
  void on(EventType type, Handler handler);

  /// Schedule an event.
  void schedule(Event event) { queue_.push(event); }
  void schedule(SimTime time, EventType type, std::uint64_t id, std::uint64_t tag = 0);

  /// Run until the queue drains or `max_events` have been dispatched.
  /// Returns the number of events dispatched.
  std::size_t run(std::size_t max_events = static_cast<std::size_t>(-1));

  /// Stop after the current handler returns.
  void stop() { stopped_ = true; }

  SimTime now() const { return queue_.now(); }
  EventQueue& queue() { return queue_; }

 private:
  EventQueue queue_;
  std::array<Handler, 5> handlers_;
  bool stopped_ = false;
};

}  // namespace bgl
