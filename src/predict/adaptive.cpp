#include "predict/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace bgl {

namespace {

/// Hour-of-day bucket for a simulation timestamp (day = 86400 s; timestamps
/// may legitimately start before 0 after trace retiming, hence the wrap).
std::size_t tod_bucket(double t) {
  const double day = std::fmod(t, 86400.0);
  const double wrapped = day < 0.0 ? day + 86400.0 : day;
  std::size_t bucket = static_cast<std::size_t>(wrapped / 3600.0);
  return bucket < 24 ? bucket : 23;
}

}  // namespace

AdaptivePredictor::AdaptivePredictor(int num_nodes, const AdaptiveConfig& config)
    : config_(config),
      num_nodes_(num_nodes),
      num_midplanes_((num_nodes + config.midplane_nodes - 1) /
                     std::max(config.midplane_nodes, 1)),
      flagged_(num_nodes),
      flag_until_(static_cast<std::size_t>(num_nodes), 0.0),
      last_fail_(static_cast<std::size_t>(num_nodes), -1.0) {
  BGL_CHECK(num_nodes > 0, "adaptive predictor needs a positive node count");
  BGL_CHECK(config.confidence >= 0.0 && config.confidence <= 1.0,
            "confidence must lie in [0, 1]");
  BGL_CHECK(config.node_flag_window > 0.0, "node_flag_window must be positive");
  BGL_CHECK(config.midplane_nodes > 0, "midplane_nodes must be positive");
  BGL_CHECK(config.midplane_threshold > 0, "midplane_threshold must be positive");
  BGL_CHECK(config.burst_threshold > 0, "burst_threshold must be positive");
  BGL_CHECK(config.repeat_boost >= 1.0 && config.burst_boost >= 1.0 &&
                config.tod_max_boost >= 1.0,
            "boost factors must be >= 1");
  burst_times_.assign(static_cast<std::size_t>(config.burst_threshold), 0.0);
  mp_times_.assign(static_cast<std::size_t>(num_midplanes_) *
                       static_cast<std::size_t>(config.midplane_threshold),
                   0.0);
  mp_pos_.assign(static_cast<std::size_t>(num_midplanes_), 0);
  mp_count_.assign(static_cast<std::size_t>(num_midplanes_), 0);
}

void AdaptivePredictor::flag(int node, double until) {
  double& cur = flag_until_[static_cast<std::size_t>(node)];
  if (until <= cur) return;  // already flagged at least that long
  cur = until;
  flagged_.set(node);
  expiry_heap_.emplace_back(until, node);
  std::push_heap(expiry_heap_.begin(), expiry_heap_.end(),
                 std::greater<std::pair<double, int>>{});
}

double AdaptivePredictor::window_multiplier(int node, double t) const {
  double mult = 1.0;
  // Repeat offender: the *previous* failure of this node was recent.
  const double prev = last_fail_[static_cast<std::size_t>(node)];
  if (prev >= 0.0 && t - prev <= config_.repeat_window) {
    mult *= config_.repeat_boost;
  }
  // Burst: the last burst_threshold failures (including this one, already in
  // the ring) span less than burst_window.
  if (burst_count_ >= static_cast<std::uint64_t>(config_.burst_threshold)) {
    // burst_pos_ points at the slot just overwritten + 1 == the oldest entry.
    const double oldest = burst_times_[burst_pos_];
    if (t - oldest <= config_.burst_window) mult *= config_.burst_boost;
  }
  // Time-of-day: relative intensity of this hour's learned rate.
  if (tod_total_ >= config_.tod_min_samples) {
    const double rel = static_cast<double>(tod_counts_[tod_bucket(t)]) * 24.0 /
                       static_cast<double>(tod_total_);
    mult *= std::clamp(rel, 1.0 / config_.tod_max_boost, config_.tod_max_boost);
  }
  return mult;
}

void AdaptivePredictor::observe_failure(int node, double t, double down_for) {
  // `down_for` is advisory and deliberately unused: the simulator knows the
  // configured downtime while the live protocol does not, and the hazard
  // state must be identical under both clock owners (differential test).
  (void)down_for;
  if (node < 0 || node >= num_nodes_) return;
  ++failures_seen_;

  // Update the learned features *before* scoring so this failure's own
  // evidence (burst membership, time-of-day) shapes its flag window.
  ++tod_counts_[tod_bucket(t)];
  ++tod_total_;
  burst_times_[burst_pos_] = t;
  burst_pos_ = (burst_pos_ + 1) % burst_times_.size();
  ++burst_count_;

  const double mult = window_multiplier(node, t);
  if (burst_count_ >= static_cast<std::uint64_t>(config_.burst_threshold) &&
      t - burst_times_[burst_pos_] <= config_.burst_window) {
    ++bursts_detected_;
  }
  flag(node, t + config_.node_flag_window * mult);
  last_fail_[static_cast<std::size_t>(node)] = t;

  // Spatially correlated failures: enough hits inside one midplane flag the
  // whole group.
  const int mp = node / config_.midplane_nodes;
  const std::size_t base = static_cast<std::size_t>(mp) *
                           static_cast<std::size_t>(config_.midplane_threshold);
  std::uint32_t& pos = mp_pos_[static_cast<std::size_t>(mp)];
  mp_times_[base + pos] = t;
  pos = (pos + 1) % static_cast<std::uint32_t>(config_.midplane_threshold);
  std::uint64_t& count = mp_count_[static_cast<std::size_t>(mp)];
  ++count;
  if (count >= static_cast<std::uint64_t>(config_.midplane_threshold)) {
    const double oldest = mp_times_[base + pos];  // next overwrite = oldest
    if (t - oldest <= config_.midplane_window) {
      ++midplane_flags_;
      const int lo = mp * config_.midplane_nodes;
      const int hi = std::min(lo + config_.midplane_nodes, num_nodes_);
      const double until = t + config_.midplane_flag_window;
      for (int n = lo; n < hi; ++n) flag(n, until);
    }
  }
}

void AdaptivePredictor::observe_repair(int node, double t) {
  // A repair ends the down-time, not the hazard: freshly repaired nodes are
  // exactly the repeat offenders the flag is watching (Sahoo), so flags
  // persist across repairs. Counted for introspection only.
  (void)node, (void)t;
  ++repairs_seen_;
}

void AdaptivePredictor::advance(double t) {
  while (!expiry_heap_.empty() && expiry_heap_.front().first <= t) {
    const int node = expiry_heap_.front().second;
    std::pop_heap(expiry_heap_.begin(), expiry_heap_.end(),
                  std::greater<std::pair<double, int>>{});
    expiry_heap_.pop_back();
    // Lazy deletion: an extension pushed a newer entry; only clear the bit
    // when the authoritative expiry really has passed.
    if (flag_until_[static_cast<std::size_t>(node)] <= t) flagged_.reset(node);
  }
}

NodeSet AdaptivePredictor::flagged_nodes(double, double, std::uint64_t) const {
  return flagged_;
}

void AdaptivePredictor::flagged_nodes_into(NodeSet& out, double, double,
                                           std::uint64_t) const {
  out = flagged_;  // word-copy; reuses out's allocation when already sized
}

}  // namespace bgl
