#include "predict/predictor.hpp"

#include <bit>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace bgl {

namespace {
/// Deterministic uniform in [0, 1) from a (seed, node, key) triple.
double coin(std::uint64_t seed, int node, std::uint64_t key) {
  const std::uint64_t h =
      hash_combine(hash_combine(seed, static_cast<std::uint64_t>(node)), key);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}
}  // namespace

BalancingPredictor::BalancingPredictor(const FailureTrace& trace, double confidence)
    : trace_(&trace), confidence_(confidence) {
  BGL_CHECK(confidence >= 0.0 && confidence <= 1.0,
            "prediction confidence must lie in [0, 1]");
}

NodeSet BalancingPredictor::flagged_nodes(double t0, double t1, std::uint64_t) const {
  if (confidence_ <= 0.0) return NodeSet(trace_->num_nodes());
  return trace_->failing_nodes(t0, t1);
}

void BalancingPredictor::flagged_nodes_into(NodeSet& out, double t0, double t1,
                                            std::uint64_t) const {
  if (confidence_ <= 0.0) {
    if (out.bits() != trace_->num_nodes()) out = NodeSet(trace_->num_nodes());
    out.clear();
    return;
  }
  trace_->failing_nodes_into(out, t0, t1);
}

TieBreakPredictor::TieBreakPredictor(const FailureTrace& trace, double accuracy,
                                     double false_positive_rate, std::uint64_t seed)
    : trace_(&trace),
      accuracy_(accuracy),
      false_positive_rate_(false_positive_rate),
      seed_(seed) {
  BGL_CHECK(accuracy >= 0.0 && accuracy <= 1.0, "accuracy must lie in [0, 1]");
  BGL_CHECK(false_positive_rate >= 0.0 && false_positive_rate <= 1.0,
            "false-positive rate must lie in [0, 1]");
}

NodeSet TieBreakPredictor::flagged_nodes(double t0, double t1,
                                         std::uint64_t query_key) const {
  NodeSet flagged(trace_->num_nodes());
  flagged_nodes_into(flagged, t0, t1, query_key);
  return flagged;
}

void TieBreakPredictor::flagged_nodes_into(NodeSet& out, double t0, double t1,
                                           std::uint64_t query_key) const {
  trace_->failing_nodes_into(truth_scratch_, t0, t1);
  const NodeSet& truth = truth_scratch_;
  if (out.bits() != trace_->num_nodes()) out = NodeSet(trace_->num_nodes());
  out.clear();
  if (accuracy_ > 0.0) {
    const NodeSet::WordSpan words = truth.words();
    for (std::size_t wi = 0; wi < words.size(); ++wi) {
      std::uint64_t w = words[wi];
      while (w) {
        const int node = static_cast<int>(wi * 64) + std::countr_zero(w);
        w &= w - 1;
        if (coin(seed_, node, query_key) < accuracy_) out.set(node);
      }
    }
  }
  if (false_positive_rate_ > 0.0) {
    for (int node = 0; node < trace_->num_nodes(); ++node) {
      if (truth.test(node)) continue;
      // Salt differently from the true-positive coin so the two decisions
      // are independent.
      if (coin(seed_ ^ 0x5a5a5a5aULL, node, query_key) < false_positive_rate_) {
        out.set(node);
      }
    }
  }
}

HistoryPredictor::HistoryPredictor(const FailureTrace& trace, double lookback_seconds,
                                   double confidence)
    : trace_(&trace), lookback_(lookback_seconds), confidence_(confidence) {
  BGL_CHECK(lookback_seconds > 0.0, "lookback must be positive");
  BGL_CHECK(confidence >= 0.0 && confidence <= 1.0, "confidence must lie in [0, 1]");
}

NodeSet HistoryPredictor::flagged_nodes(double t0, double t1, std::uint64_t) const {
  (void)t1;  // the forecast window length does not change what we know
  // Past information only: failures in (t0 - lookback, t0].
  return trace_->failing_nodes(t0 - lookback_, t0);
}

void HistoryPredictor::flagged_nodes_into(NodeSet& out, double t0, double t1,
                                          std::uint64_t) const {
  (void)t1;
  trace_->failing_nodes_into(out, t0 - lookback_, t0);
}

PredictionQuality evaluate_predictor(const FaultPredictor& predictor,
                                     const FailureTrace& truth, double window,
                                     double step) {
  BGL_CHECK(window > 0.0 && step > 0.0, "window and step must be positive");
  PredictionQuality quality;
  if (truth.empty()) return quality;
  const double t_begin = truth.events().front().time;
  const double t_end = truth.events().back().time;
  std::size_t true_positives = 0;
  std::uint64_t key = 0;
  for (double t = t_begin; t + window <= t_end; t += step, ++key) {
    const NodeSet flagged = predictor.flagged_nodes(t, t + window, key);
    const NodeSet failing = truth.failing_nodes(t, t + window);
    quality.flagged += static_cast<std::size_t>(flagged.count());
    quality.failing += static_cast<std::size_t>(failing.count());
    true_positives += static_cast<std::size_t>(flagged.intersect_count(failing));
    ++quality.windows;
  }
  if (quality.flagged > 0) {
    quality.precision = static_cast<double>(true_positives) /
                        static_cast<double>(quality.flagged);
  }
  if (quality.failing > 0) {
    quality.recall = static_cast<double>(true_positives) /
                     static_cast<double>(quality.failing);
  }
  return quality;
}

PredictionQuality evaluate_predictor_online(FaultPredictor& predictor,
                                            const FailureTrace& truth,
                                            double window, double step) {
  BGL_CHECK(window > 0.0 && step > 0.0, "window and step must be positive");
  PredictionQuality quality;
  if (truth.empty()) return quality;
  const std::vector<FailureEvent>& events = truth.events();
  const double t_begin = events.front().time;
  const double t_end = events.back().time;
  std::size_t true_positives = 0;
  std::size_t fed = 0;  ///< Truth events already shown to the predictor.
  std::uint64_t key = 0;
  for (double t = t_begin; t + window <= t_end; t += step, ++key) {
    while (fed < events.size() && events[fed].time <= t) {
      predictor.observe_failure(events[fed].node, events[fed].time, 0.0);
      ++fed;
    }
    predictor.advance(t);
    const NodeSet flagged = predictor.flagged_nodes(t, t + window, key);
    const NodeSet failing = truth.failing_nodes(t, t + window);
    quality.flagged += static_cast<std::size_t>(flagged.count());
    quality.failing += static_cast<std::size_t>(failing.count());
    true_positives += static_cast<std::size_t>(flagged.intersect_count(failing));
    ++quality.windows;
  }
  if (quality.flagged > 0) {
    quality.precision = static_cast<double>(true_positives) /
                        static_cast<double>(quality.flagged);
  }
  if (quality.failing > 0) {
    quality.recall = static_cast<double>(true_positives) /
                     static_cast<double>(quality.failing);
  }
  return quality;
}

}  // namespace bgl
