#include "predict/registry.hpp"

#include <string>

namespace bgl {

const char* to_string(PredictorModel model) {
  switch (model) {
    case PredictorModel::kPaper: return "paper";
    case PredictorModel::kHistory: return "history";
    case PredictorModel::kPerfect: return "perfect";
    case PredictorModel::kNone: return "none";
    case PredictorModel::kAdaptive: return "adaptive";
  }
  return "?";
}

std::optional<PredictorModel> parse_predictor_model(std::string_view name) {
  if (name == "paper") return PredictorModel::kPaper;
  if (name == "history") return PredictorModel::kHistory;
  if (name == "perfect") return PredictorModel::kPerfect;
  if (name == "none") return PredictorModel::kNone;
  if (name == "adaptive") return PredictorModel::kAdaptive;
  return std::nullopt;
}

bool predictor_needs_oracle(PredictorModel model, PaperRole role) {
  switch (model) {
    case PredictorModel::kPaper:
      return role != PaperRole::kNull;
    case PredictorModel::kHistory:
    case PredictorModel::kPerfect:
      return true;
    case PredictorModel::kNone:
    case PredictorModel::kAdaptive:
      return false;
  }
  return false;
}

std::unique_ptr<FaultPredictor> make_predictor(const PredictorSpec& spec,
                                               int num_nodes,
                                               const FailureTrace* oracle) {
  auto need_oracle = [&]() -> const FailureTrace& {
    if (oracle == nullptr) {
      throw OracleRequiredError(
          spec.model,
          std::string("predictor '") + to_string(spec.model) +
              "' needs a failure oracle trace; pass one or use predictor "
              "'none' or 'adaptive'");
    }
    BGL_CHECK(oracle->empty() || oracle->num_nodes() == num_nodes,
              "failure oracle node count mismatch");
    return *oracle;
  };

  switch (spec.model) {
    case PredictorModel::kPaper:
      switch (spec.paper_role) {
        case PaperRole::kNull:
          return std::make_unique<NullPredictor>(num_nodes);
        case PaperRole::kBalancing:
          return std::make_unique<BalancingPredictor>(need_oracle(), spec.alpha);
        case PaperRole::kTieBreak:
          return std::make_unique<TieBreakPredictor>(
              need_oracle(), spec.alpha, spec.tiebreak_false_positive_rate,
              spec.seed);
      }
      break;
    case PredictorModel::kHistory:
      return std::make_unique<HistoryPredictor>(need_oracle(),
                                                spec.history_lookback,
                                                spec.alpha);
    case PredictorModel::kPerfect:
      return std::make_unique<PerfectPredictor>(need_oracle());
    case PredictorModel::kNone:
      return std::make_unique<NullPredictor>(num_nodes);
    case PredictorModel::kAdaptive: {
      AdaptiveConfig cfg = spec.adaptive;
      // alpha 0 is the "unset" default everywhere (and would zero the
      // balancing scheduler's failure probabilities); keep the
      // AdaptiveConfig default confidence in that case.
      if (spec.alpha > 0.0) cfg.confidence = spec.alpha;
      return std::make_unique<AdaptivePredictor>(num_nodes, cfg);
    }
  }
  return std::make_unique<NullPredictor>(num_nodes);
}

}  // namespace bgl
