// Fault predictors (§4 of the paper).
//
// The paper deliberately does not run a real prediction algorithm; it
// *simulates* one against the ground-truth failure log with a single knob:
//
//   * BalancingPredictor (§4.1) — flags exactly the nodes that truly fail
//     inside the query window and assigns each the probability a
//     ("confidence"). The balancing scheduler converts the per-node
//     probabilities into a partition failure probability.
//   * TieBreakPredictor (§4.2) — boolean forecasts with false-negative
//     probability 1 - a ("accuracy") and, by default, zero false positives
//     (the paper argues measured p_f+ stays below half of p_f-; we expose
//     an optional false-positive rate for that ablation).
//
// Stochastic predictors must answer the *same* question identically when
// the scheduler re-asks it while comparing candidate partitions during one
// decision. We therefore derive each per-node coin from a hash of
// (predictor seed, node, query_key), where the scheduler passes the job id
// as query_key: deterministic per (job, node), independent across jobs.
//
// The interface returns the full flagged-node bitmask for a window; the
// placement policies intersect it with candidate partition masks, which
// keeps the per-candidate cost at two word-ops.
#pragma once

#include <cstdint>
#include <memory>

#include "failure/trace.hpp"
#include "torus/nodeset.hpp"

namespace bgl {

class FaultPredictor {
 public:
  virtual ~FaultPredictor() = default;

  // --- observation interface (event-fed lifecycle) -----------------------
  //
  // The clock owner (sim/driver or svc/SchedulerService) feeds the predictor
  // the failure stream as it unfolds: observe_failure() at every node
  // failure, observe_repair() when a down node returns, and advance() at
  // every event so time-based state (flag expiry) can retire. The paper's
  // oracle predictors answer from the ground-truth trace and ignore all
  // three (the no-op defaults below keep every pre-seam trace and golden CSV
  // byte-identical); learned predictors (AdaptivePredictor) build their
  // entire state from these calls and never see the future.
  //
  // Contract for implementers, enforced by the driver-vs-service
  // differential test: advance(t) must be monotone and idempotent —
  // advance(a); advance(b) with a <= b must leave the same state as
  // advance(b) alone — because the simulator calls it on stale events that
  // the service-side adapter filters out. Queries must not mutate state
  // (they are re-asked within one scheduling pass), and `down_for` is
  // advisory only: the live protocol has no up-front down-time, so the
  // service always passes 0 where the simulator passes the configured
  // downtime.

  /// A node failed at time `t`; it will be unschedulable for `down_for`
  /// seconds (0 = transient / unknown, see contract above).
  virtual void observe_failure(int node, double t, double down_for) {
    (void)node, (void)t, (void)down_for;
  }

  /// A down node came back at time `t`.
  virtual void observe_repair(int node, double t) { (void)node, (void)t; }

  /// Simulation/stream time reached `t`; retire expired internal state.
  virtual void advance(double t) { (void)t; }

  /// Nodes flagged as "will fail" for the window (t0, t1]. `query_key`
  /// seeds any stochastic decisions (pass the job id).
  virtual NodeSet flagged_nodes(double t0, double t1,
                                std::uint64_t query_key) const = 0;

  /// Same verdict written into `out` (resized to the machine if needed).
  /// The scheduler issues one query per candidate-bearing job, so the
  /// by-value form would put one bitset allocation per placement on the hot
  /// path; subclasses override this to fill in place. The default delegates
  /// to flagged_nodes() so third-party predictors stay correct unchanged.
  virtual void flagged_nodes_into(NodeSet& out, double t0, double t1,
                                  std::uint64_t query_key) const {
    out = flagged_nodes(t0, t1, query_key);
  }

  /// Probability the predictor attaches to each flagged node (the paper's
  /// confidence a for the balancing predictor; 1.0 for boolean predictors).
  virtual double confidence() const = 0;
};

/// Never predicts anything (the fault-unaware baseline, a = 0).
class NullPredictor final : public FaultPredictor {
 public:
  explicit NullPredictor(int num_nodes) : num_nodes_(num_nodes) {}
  NodeSet flagged_nodes(double, double, std::uint64_t) const override {
    return NodeSet(num_nodes_);
  }
  void flagged_nodes_into(NodeSet& out, double, double, std::uint64_t) const override {
    if (out.bits() != num_nodes_) out = NodeSet(num_nodes_);
    out.clear();
  }
  double confidence() const override { return 0.0; }

 private:
  int num_nodes_;
};

/// §4.1: flags the true failing nodes, each with probability `confidence`.
class BalancingPredictor final : public FaultPredictor {
 public:
  BalancingPredictor(const FailureTrace& trace, double confidence);
  NodeSet flagged_nodes(double t0, double t1, std::uint64_t) const override;
  void flagged_nodes_into(NodeSet& out, double t0, double t1,
                          std::uint64_t) const override;
  double confidence() const override { return confidence_; }

 private:
  const FailureTrace* trace_;
  double confidence_;
};

/// §4.2: boolean forecast; true failing nodes are reported with probability
/// `accuracy` (false-negative rate 1 - accuracy); healthy nodes are reported
/// failing with probability `false_positive_rate` (0 in the paper).
class TieBreakPredictor final : public FaultPredictor {
 public:
  TieBreakPredictor(const FailureTrace& trace, double accuracy,
                    double false_positive_rate = 0.0,
                    std::uint64_t seed = 0x74696562726bULL);
  NodeSet flagged_nodes(double t0, double t1, std::uint64_t query_key) const override;
  void flagged_nodes_into(NodeSet& out, double t0, double t1,
                          std::uint64_t query_key) const override;
  double confidence() const override { return 1.0; }
  double accuracy() const { return accuracy_; }
  double false_positive_rate() const { return false_positive_rate_; }

 private:
  const FailureTrace* trace_;
  double accuracy_;
  double false_positive_rate_;
  std::uint64_t seed_;
  /// Ground-truth scratch for the in-place query path. Predictors are
  /// consulted from one scheduler pass at a time (each driver owns its
  /// predictor), so a single buffer suffices.
  mutable NodeSet truth_scratch_;
};

/// A *real* predictor (extension): flags node n for a future window iff n
/// failed within the preceding `lookback` seconds. Unlike the paper's
/// simulated predictors it never peeks at the future; its effectiveness
/// comes entirely from the empirical structure of failure logs — temporal
/// bursts and repeat-offender nodes (Sahoo et al., KDD'03). Its realised
/// precision/recall can be measured with evaluate_predictor() and compared
/// against the paper's parametric confidence knob.
class HistoryPredictor final : public FaultPredictor {
 public:
  HistoryPredictor(const FailureTrace& trace, double lookback_seconds,
                   double confidence = 0.5);
  NodeSet flagged_nodes(double t0, double t1, std::uint64_t) const override;
  void flagged_nodes_into(NodeSet& out, double t0, double t1,
                          std::uint64_t) const override;
  double confidence() const override { return confidence_; }
  double lookback() const { return lookback_; }

 private:
  const FailureTrace* trace_;
  double lookback_;
  double confidence_;
};

/// Realised forecast quality of a predictor measured against ground truth:
/// sample windows of length `window` every `step` seconds across the trace
/// span and compare flagged vs actually-failing node sets.
struct PredictionQuality {
  double precision = 0.0;  ///< flagged ∩ failing / flagged
  double recall = 0.0;     ///< flagged ∩ failing / failing
  std::size_t windows = 0;
  std::size_t flagged = 0;
  std::size_t failing = 0;
};

PredictionQuality evaluate_predictor(const FaultPredictor& predictor,
                                     const FailureTrace& truth, double window,
                                     double step);

/// Online/rolling variant: before each sampled window starting at t, the
/// predictor is fed (observe_failure + advance) every truth event with time
/// <= t — exactly the information a live deployment would have — and only
/// then queried for (t, t + window]. For the oracle predictors (no-op
/// observers) this returns the same numbers as evaluate_predictor(); for
/// event-fed predictors it measures *realized* precision/recall with no
/// future leakage. Takes the predictor by non-const reference because
/// feeding observations mutates it; evaluate a fresh instance, not one
/// mid-simulation.
PredictionQuality evaluate_predictor_online(FaultPredictor& predictor,
                                            const FailureTrace& truth,
                                            double window, double step);

/// Oracle: flags exactly the failing nodes with probability 1 (upper bound).
class PerfectPredictor final : public FaultPredictor {
 public:
  explicit PerfectPredictor(const FailureTrace& trace) : trace_(&trace) {}
  NodeSet flagged_nodes(double t0, double t1, std::uint64_t) const override {
    return trace_->failing_nodes(t0, t1);
  }
  void flagged_nodes_into(NodeSet& out, double t0, double t1,
                          std::uint64_t) const override {
    trace_->failing_nodes_into(out, t0, t1);
  }
  double confidence() const override { return 1.0; }

 private:
  const FailureTrace* trace_;
};

}  // namespace bgl
