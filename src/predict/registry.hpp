// Single registry for predictor models: the enum, its stable string forms,
// the oracle requirement, and the factory that builds a FaultPredictor from
// a spec. sim/driver, svc/SchedulerService, the CLIs (simulate_cli,
// sched_server) and the sweep engine (SweepSpec::predictors) all consume
// this one table, so adding a model is: extend the enum, the three switch
// statements below, and docs/PREDICTORS.md.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "predict/adaptive.hpp"
#include "predict/predictor.hpp"
#include "util/error.hpp"

namespace bgl {

/// Which predictor feeds the fault-aware placement policies.
enum class PredictorModel {
  kPaper,    ///< §4: balancing/tie-breaking predictors with knob `alpha`.
  kHistory,  ///< Extension: real past-only predictor (HistoryPredictor);
             ///  `alpha` becomes its per-node confidence, lookback below.
  kPerfect,  ///< Oracle upper bound.
  kNone,     ///< Fault-oblivious regardless of scheduler kind.
  kAdaptive, ///< Online learned predictor (AdaptivePredictor); event-fed,
             ///  needs no oracle, `alpha` is its reported confidence.
};

const char* to_string(PredictorModel model);

/// Inverse of to_string(); nullopt on an unknown name (callers own the
/// error wording — CLI flag vs sweep spec vs protocol line).
std::optional<PredictorModel> parse_predictor_model(std::string_view name);

/// Which paper-simulated predictor kPaper maps to. The mapping is decided
/// by the scheduler kind (balancing scheduler -> BalancingPredictor,
/// tie-break -> TieBreakPredictor, krevat -> none), but the predict layer
/// cannot see SchedulerKind, so the clock owners pass the resolved role.
enum class PaperRole {
  kNull,       ///< Fault-unaware scheduler; kPaper degenerates to no flags.
  kBalancing,  ///< §4.1 BalancingPredictor (confidence alpha).
  kTieBreak,   ///< §4.2 TieBreakPredictor (accuracy alpha).
};

/// True when (model, role) answers queries from a ground-truth FailureTrace
/// and therefore cannot be built without one.
bool predictor_needs_oracle(PredictorModel model, PaperRole role);

/// Typed "this model needs a trace you didn't supply" error, raised by
/// make_predictor() — names the model so online frontends (sched_server)
/// can report exactly which flag to fix.
class OracleRequiredError : public ConfigError {
 public:
  OracleRequiredError(PredictorModel model, const std::string& what)
      : ConfigError(what), model_(model) {}
  PredictorModel model() const { return model_; }

 private:
  PredictorModel model_;
};

/// Everything the factory needs; mirrors the SimConfig/ServiceConfig knobs.
struct PredictorSpec {
  PredictorModel model = PredictorModel::kPaper;
  PaperRole paper_role = PaperRole::kNull;  ///< Consulted for kPaper only.
  /// Confidence (balancing/history/adaptive) or accuracy (tie-break).
  double alpha = 0.0;
  double tiebreak_false_positive_rate = 0.0;
  double history_lookback = 7.0 * 86400.0;
  std::uint64_t seed = 1;  ///< Salts the tie-break predictor's coins.
  AdaptiveConfig adaptive; ///< kAdaptive knobs; confidence comes from alpha.
};

/// Build the predictor a spec describes. `oracle` (borrowed, nullable) is
/// required iff predictor_needs_oracle(); a missing one raises
/// OracleRequiredError. For kAdaptive a non-zero spec.alpha overrides
/// spec.adaptive.confidence, keeping the per-model confidence knob on the
/// one alpha axis (alpha 0, the unset default, keeps the AdaptiveConfig
/// default).
std::unique_ptr<FaultPredictor> make_predictor(const PredictorSpec& spec,
                                               int num_nodes,
                                               const FailureTrace* oracle);

}  // namespace bgl
