// AdaptivePredictor: an online learned failure predictor (ROADMAP item 4).
//
// Unlike the paper's oracles it never sees the ground-truth trace; its whole
// state is built from the observation interface (observe_failure /
// observe_repair / advance) as failures arrive, so the identical predictor
// runs under the simulator and under a live sched_server stream. The hazard
// model is ATLAS-style (adaptive failure-aware scheduling) crossed with the
// empirical structure Sahoo et al. (KDD'03) report for real failure logs and
// that HistoryPredictor already exploits offline:
//
//   * repeat offenders — a node that fails is flagged for a base window;
//     a node that fails again within `repeat_window` gets the window
//     multiplied by `repeat_boost` (failures cluster on few nodes);
//   * spatial correlation — `midplane_threshold` failures inside one
//     midplane (a contiguous group of `midplane_nodes` node ids) within
//     `midplane_window` flag the whole midplane (shared power/cooling/links
//     take out neighbours);
//   * temporal bursts — when the last `burst_threshold` machine-wide
//     failures span less than `burst_window`, new flags are stretched by
//     `burst_boost` (failures arrive in bursts);
//   * time-of-day — per-hour failure rates are estimated online; flags
//     raised during hours that historically fail more last proportionally
//     longer (bounded by `tod_max_boost`, inactive until `tod_min_samples`
//     failures have been seen).
//
// Mechanics: every flag is a per-node expiry time plus a bit in a cached
// NodeSet; a lazy-deletion min-heap lets advance() retire expired flags in
// O(log n) per transition, and flagged_nodes_into() is a straight word-copy
// of the cache — allocation-free on the scheduler's hot path and identical
// under re-query. advance() is monotone and idempotent (required by the
// driver-vs-service differential; see the FaultPredictor contract).
#pragma once

#include <cstdint>
#include <vector>

#include "predict/predictor.hpp"

namespace bgl {

struct AdaptiveConfig {
  /// Per-node failure probability reported for flagged nodes (the balancing
  /// scheduler's a; boolean consumers ignore it). Same role as
  /// HistoryPredictor's confidence.
  double confidence = 0.5;

  double node_flag_window = 6.0 * 3600.0;  ///< Base flag after one failure.
  double repeat_window = 7.0 * 86400.0;    ///< Repeat-offender memory.
  double repeat_boost = 4.0;               ///< Window multiplier on repeat.

  int midplane_nodes = 32;                  ///< Node-ids per midplane group.
  int midplane_threshold = 3;               ///< Failures that flag the group.
  double midplane_window = 86400.0;         ///< ...within this span.
  double midplane_flag_window = 6.0 * 3600.0;

  int burst_threshold = 3;         ///< Machine-wide failures that open a burst.
  double burst_window = 1800.0;    ///< ...within this span (Sahoo: minutes).
  double burst_boost = 2.0;        ///< Flag-window multiplier during a burst.

  std::uint64_t tod_min_samples = 24;  ///< Failures before time-of-day kicks in.
  double tod_max_boost = 2.0;          ///< Clamp for the per-hour rate ratio.
};

class AdaptivePredictor final : public FaultPredictor {
 public:
  explicit AdaptivePredictor(int num_nodes, const AdaptiveConfig& config = {});

  // --- event-fed lifecycle ---
  void observe_failure(int node, double t, double down_for) override;
  void observe_repair(int node, double t) override;
  void advance(double t) override;

  // --- query (const, deterministic, allocation-free in-place form) ---
  NodeSet flagged_nodes(double t0, double t1, std::uint64_t) const override;
  void flagged_nodes_into(NodeSet& out, double t0, double t1,
                          std::uint64_t) const override;
  double confidence() const override { return config_.confidence; }

  // --- introspection (tests, provenance, stats lines) ---
  const AdaptiveConfig& config() const { return config_; }
  int flagged_count() const { return flagged_.count(); }
  std::uint64_t failures_seen() const { return failures_seen_; }
  std::uint64_t repairs_seen() const { return repairs_seen_; }
  std::uint64_t bursts_detected() const { return bursts_detected_; }
  std::uint64_t midplane_flags() const { return midplane_flags_; }
  /// Flag expiry of one node (0 when unflagged or expired before `now`).
  double flag_until(int node) const {
    return flag_until_[static_cast<std::size_t>(node)];
  }

 private:
  void flag(int node, double until);
  double window_multiplier(int node, double t) const;

  AdaptiveConfig config_;
  int num_nodes_;
  int num_midplanes_;

  NodeSet flagged_;                 ///< Cache: bit set iff flag not expired.
  std::vector<double> flag_until_;  ///< Authoritative per-node expiry.
  /// Lazy-deletion min-heap of (expiry, node); extensions push a new entry
  /// and stale pops are discarded by comparing against flag_until_.
  std::vector<std::pair<double, int>> expiry_heap_;

  std::vector<double> last_fail_;  ///< Previous failure time; < 0 = never.

  /// Last `burst_threshold` machine-wide failure times (circular).
  std::vector<double> burst_times_;
  std::size_t burst_pos_ = 0;
  std::uint64_t burst_count_ = 0;  ///< Total failures pushed into the ring.

  /// Per-midplane circular ring of the last `midplane_threshold` failure
  /// times, flattened: midplane mp owns [mp * threshold, (mp+1) * threshold).
  std::vector<double> mp_times_;
  std::vector<std::uint32_t> mp_pos_;
  std::vector<std::uint64_t> mp_count_;

  std::uint64_t tod_counts_[24] = {};
  std::uint64_t tod_total_ = 0;

  std::uint64_t failures_seen_ = 0;
  std::uint64_t repairs_seen_ = 0;
  std::uint64_t bursts_detected_ = 0;
  std::uint64_t midplane_flags_ = 0;
};

}  // namespace bgl
