#include "sched/algorithm.hpp"

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "sched/migration.hpp"
#include "util/error.hpp"

namespace bgl {

const char* to_string(SchedAlgorithm algorithm) {
  switch (algorithm) {
    case SchedAlgorithm::kKrevat: return "krevat";
    case SchedAlgorithm::kEasy: return "easy";
    case SchedAlgorithm::kConservative: return "conservative";
    case SchedAlgorithm::kEasyHoldback: return "easy-holdback";
  }
  return "?";
}

std::optional<SchedAlgorithm> parse_sched_algorithm(std::string_view name) {
  if (name == "krevat") return SchedAlgorithm::kKrevat;
  if (name == "easy") return SchedAlgorithm::kEasy;
  if (name == "conservative") return SchedAlgorithm::kConservative;
  if (name == "easy-holdback") return SchedAlgorithm::kEasyHoldback;
  return std::nullopt;
}

std::unique_ptr<ISchedulingAlgorithm> make_scheduling_algorithm(
    SchedAlgorithm algorithm) {
  switch (algorithm) {
    case SchedAlgorithm::kKrevat: return make_krevat_algorithm();
    case SchedAlgorithm::kEasy: return make_easy_algorithm(/*holdback=*/false);
    case SchedAlgorithm::kEasyHoldback:
      return make_easy_algorithm(/*holdback=*/true);
    case SchedAlgorithm::kConservative: return make_conservative_algorithm();
  }
  BGL_CHECK(false, "unknown scheduling algorithm");
  return nullptr;
}

SchedulingPass::SchedulingPass(const PartitionCatalog& catalog,
                               PlacementPolicy& policy,
                               const FaultPredictor& predictor,
                               const SchedulerConfig& config,
                               const obs::Observer& obs, double now,
                               const std::vector<WaitingJob>& queue,
                               SchedulerPassScratch& scratch,
                               PlacementArena* explain_arena,
                               FreePartitionIndex* index,
                               SchedulingDecision& decision)
    : catalog_(&catalog),
      policy_(&policy),
      predictor_(&predictor),
      config_(&config),
      obs_(&obs),
      tracing_(obs.trace != nullptr),
      now_(now),
      queue_(&queue),
      s_(&scratch),
      explain_arena_(explain_arena),
      idx_(index),
      decision_(&decision),
      placed_(scratch.arena),
      candidates_(scratch.arena) {
  placed_.assign(queue.size(), 0);
}

const std::vector<RunningJob>& SchedulingPass::live() const { return s_->live; }

const NodeSet& SchedulingPass::occupied() const { return s_->occ; }

PlacementArena& SchedulingPass::scratch_arena() { return s_->arena; }

std::vector<Reservation>& SchedulingPass::reservation_scratch() {
  return s_->reservations;
}

// Consult the predictor for a job's execution window, accounting the query
// (and its verdict size) to the observer. The verdict lands in the pooled
// s_->flagged (allocation-free in arena mode; the by-value call is the
// reference behaviour, one fresh NodeSet per query).
const NodeSet& SchedulingPass::query_predictor(const WaitingJob& job) {
  obs::ScopedPhase span(obs_->profiler, obs::Phase::kPredict);
  if (config_->arena_scratch) {
    predictor_->flagged_nodes_into(s_->flagged, now_, now_ + job.estimate,
                                   job.id);
  } else {
    s_->flagged = predictor_->flagged_nodes(now_, now_ + job.estimate, job.id);
  }
  if (obs_->counters != nullptr || tracing_) {
    const int n_flagged = s_->flagged.count();
    if (obs_->counters != nullptr) {
      obs_->counters->add(obs::Counter::kPredictorQueries);
      obs_->counters->add(obs::Counter::kPredictorNodesFlagged,
                          static_cast<std::uint64_t>(n_flagged));
    }
    if (tracing_) {
      decision_->predictor_queries.push_back(
          PredictorQueryRecord{job.id, now_, now_ + job.estimate, n_flagged});
    }
  }
  return s_->flagged;
}

std::span<const int> SchedulingPass::free_candidates(int alloc_size) {
  obs::ScopedPhase span(obs_->profiler, obs::Phase::kEnumerate);
  BGL_CHECK(alloc_size > 0 && alloc_size <= catalog_->num_nodes(),
            "waiting job has invalid alloc size");
  candidates_.clear();
  if (idx_ != nullptr) {
    idx_->free_entries_of_size(alloc_size, candidates_);
  } else {
    catalog_->free_entries_of_size(s_->occ, alloc_size, candidates_);
  }
  // Account one free-list scan over the entries of this size that offered
  // candidates_.size() candidates.
  if (obs_->counters != nullptr) {
    const auto [first, last] = catalog_->size_range(alloc_size);
    obs_->counters->add(obs::Counter::kPartitionsScanned,
                        static_cast<std::uint64_t>(last - first));
    obs_->counters->add(obs::Counter::kCandidatesConsidered,
                        static_cast<std::uint64_t>(candidates_.size()));
  }
  return candidates_;
}

void SchedulingPass::place(std::size_t q, std::span<const int> candidates,
                           bool backfill, const Reservation* res) {
  obs::ScopedPhase span(obs_->profiler, obs::Phase::kPlace);
  const WaitingJob& job = (*queue_)[q];
  const NodeSet& flagged = query_predictor(job);

  PlacementContext ctx;
  ctx.catalog = catalog_;
  ctx.occupied = &s_->occ;
  ctx.index = idx_;
  ctx.mfp_before_index = idx_ != nullptr ? idx_->first_free_index()
                                         : catalog_->first_free_index(s_->occ);
  ctx.mfp_before_size =
      ctx.mfp_before_index < 0 ? 0 : catalog_->entry(ctx.mfp_before_index).size;
  ctx.flagged = &flagged;
  ctx.confidence = predictor_->confidence();
  ctx.pf_rule = config_->pf_rule;
  ctx.job_size = job.size;
  ctx.counters = obs_->counters;
  ctx.arena = explain_arena_;

  PlacementExplain explain;
  int chosen;
  {
    obs::ScopedPhase score_span(obs_->profiler, obs::Phase::kScore);
    chosen = policy_->choose(ctx, candidates, tracing_ ? &explain : nullptr);
  }

  decision_->starts.push_back(Start{job.id, chosen});
  if (catalog_->entry(chosen).mask.intersects(flagged)) {
    ++decision_->starts_on_flagged;
    for (const int c : candidates) {
      if (!catalog_->entry(c).mask.intersects(flagged)) {
        ++decision_->flagged_with_alternative;
        break;
      }
    }
  }
  s_->occ |= catalog_->entry(chosen).mask;
  if (idx_ != nullptr) idx_->occupy(catalog_->entry(chosen).mask);
  s_->live.push_back(RunningJob{job.id, chosen, now_ + job.estimate});
  if (obs_->counters != nullptr) {
    obs_->counters->add(obs::Counter::kSchedStarts);
    if (backfill) obs_->counters->add(obs::Counter::kSchedBackfillStarts);
  }
  if (obs_->histograms != nullptr) {
    obs_->histograms->add(obs::Hist::kCandidates,
                          static_cast<double>(candidates.size()));
  }
  if (tracing_) {
    PlacementRecord record{job.id, chosen, static_cast<int>(candidates.size()),
                           explain.flags, explain.l_mfp, explain.l_pf,
                           explain.e_loss, explain.mfp_after, backfill};
    if (res != nullptr) {
      record.res_time = res->time;
      record.res_entry = res->entry;
    }
    decision_->placements.push_back(record);
  }
  placed_[q] = 1;
}

bool SchedulingPass::try_migration(int alloc_size) {
  if (!config_->migration || migration_tried_ || s_->live.empty()) return false;
  obs::ScopedPhase span(obs_->profiler, obs::Phase::kMigration);
  migration_tried_ = true;
  // Occupancy that does not belong to any live job — failed nodes still
  // inside their downtime window — must survive the compaction intact.
  // try_repack rebuilds the occupancy from the re-placed jobs, so without
  // this seed it would silently resurrect down nodes as free space and
  // the retried job (or a backfill filler) could start on them.
  s_->obstacles = s_->occ;
  for (const RunningJob& r : s_->live) {
    s_->obstacles.subtract(catalog_->entry(r.entry_index).mask);
  }
  auto repack = try_repack(*catalog_, s_->live, alloc_size, &s_->obstacles,
                           explain_arena_);
  if (!repack) return false;
  for (const Migration& m : repack->migrations) {
    // A job started earlier in this same pass has not been committed by the
    // driver yet; rewrite its pending start instead of reporting a
    // migration of a not-yet-running job. The paired placement audit record
    // (placements[i] explains starts[i]) must follow, or the trace would
    // report a placement that was never committed.
    bool was_started_here = false;
    for (std::size_t s_i = 0; s_i < decision_->starts.size(); ++s_i) {
      if (decision_->starts[s_i].id == m.id) {
        decision_->starts[s_i].entry_index = m.to_entry;
        if (tracing_) decision_->placements[s_i].entry_index = m.to_entry;
        was_started_here = true;
        break;
      }
    }
    if (!was_started_here) decision_->migrations.push_back(m);
  }
  s_->occ = std::move(repack->occupied_after);
  s_->live = std::move(repack->running_after);
  // Compaction rewrote the occupancy wholesale; resync the scratch index
  // with one rebuild (migration passes are rare and already
  // O(running x catalog) in try_repack itself).
  if (idx_ != nullptr) idx_->reset(s_->occ);
  return true;
}

std::optional<Reservation> SchedulingPass::reservation(int alloc_size) const {
  obs::ScopedPhase span(obs_->profiler, obs::Phase::kReservation);
  return compute_reservation(*catalog_, s_->occ, s_->live, alloc_size, now_,
                             explain_arena_);
}

void SchedulingPass::note_reservation(std::uint64_t job_id,
                                      const Reservation& r) {
  if (!tracing_) return;
  decision_->reservations.push_back(ReservationRecord{job_id, r.time, r.entry});
}

}  // namespace bgl
