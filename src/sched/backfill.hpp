// EASY-style spatial backfilling support.
//
// To backfill without ever delaying the FCFS head job we compute the head
// job's *reservation*: the earliest time it could start if no further jobs
// were admitted, found by replaying the running jobs' estimated completions
// onto a scratch occupancy. The reservation also fixes a concrete partition
// (its node mask); a waiting job may jump the queue iff it fits now and
// either (a) its estimated completion is no later than the reservation time
// or (b) its partition is disjoint from the reserved partition's nodes.
#pragma once

#include <optional>
#include <vector>

#include "sched/arena.hpp"
#include "sched/types.hpp"
#include "torus/catalog.hpp"

namespace bgl {

struct Reservation {
  double time = 0.0;   ///< Earliest estimated start of the head job.
  NodeSet mask;        ///< Nodes of the partition reserved for it.
};

/// Compute the head job's reservation given current occupancy and the
/// estimated finish times of running jobs (including any jobs started
/// earlier in the same scheduling pass). Returns nullopt only if the job
/// can never fit (alloc_size has no partitions — callers guard against it).
/// `arena`, when non-null, supplies the candidate and sorted-running scratch
/// buffers (the engine passes its per-decision arena); with nullptr they
/// come from the heap, which is the pre-arena reference behaviour.
std::optional<Reservation> compute_reservation(const PartitionCatalog& catalog,
                                               const NodeSet& occupied,
                                               const std::vector<RunningJob>& running,
                                               int alloc_size, double now,
                                               PlacementArena* arena = nullptr);

}  // namespace bgl
