// Spatial reservation computation shared by every backfilling discipline.
//
// To backfill without delaying a blocked job we compute its *reservation*:
// the earliest time it could start if no further jobs were admitted, found
// by replaying the running jobs' estimated completions onto a scratch
// occupancy. The reservation fixes a concrete partition (entry + node
// mask); a waiting job may jump the queue iff it fits now and either (a)
// its estimated completion is no later than the reservation time or (b)
// its partition is disjoint from the reserved partition's nodes.
//
// Note this is a *single-shot spatial* reservation against the current
// running set — how many jobs hold one, and whether reservations stack into
// a schedule profile, is the algorithm's discipline (src/sched/algorithm.hpp):
// the krevat baseline reserves for the head only (or the first
// reservation_depth jobs, each independently, under BackfillMode::
// kConservative); the EASY algorithm records the head's reservation in the
// trace; the conservative algorithm layers reservations into a profile so
// no queued job is ever delayed (algo_conservative.cpp).
#pragma once

#include <optional>
#include <vector>

#include "sched/arena.hpp"
#include "sched/types.hpp"
#include "torus/catalog.hpp"

namespace bgl {

struct Reservation {
  double time = 0.0;   ///< Earliest estimated start of the reserved job.
  NodeSet mask;        ///< Nodes of the partition reserved for it.
  int entry = -1;      ///< Catalog entry of that partition.
};

/// Compute a blocked job's reservation given current occupancy and the
/// estimated finish times of running jobs (including any jobs started
/// earlier in the same scheduling pass). Returns nullopt only if the job
/// can never fit (alloc_size has no partitions — callers guard against it).
/// `arena`, when non-null, supplies the candidate and sorted-running scratch
/// buffers (the engine passes its per-decision arena); with nullptr they
/// come from the heap, which is the pre-arena reference behaviour.
std::optional<Reservation> compute_reservation(const PartitionCatalog& catalog,
                                               const NodeSet& occupied,
                                               const std::vector<RunningJob>& running,
                                               int alloc_size, double now,
                                               PlacementArena* arena = nullptr);

}  // namespace bgl
