// EASY backfilling (Lifka/Skovira, the Maui/SLURM default) and its
// holdback variant, behind the algorithm seam.
//
// Phase 1 is strict FCFS: jobs start in queue order until the first one
// that does not fit (one compaction attempt is allowed for it, like every
// algorithm here). Phase 2 grants that blocked head job the pass's single
// explicit reservation — earliest estimated start plus a concrete partition
// — and admits later jobs iff they cannot delay it: a filler must finish
// before the reservation time or avoid the reserved partition entirely.
// The reservation is recorded in the decision trail (note_reservation) and
// stamped on every backfill placement, so traces carry the provenance the
// auditor re-checks (res_time / res_entry on sched_decision).
//
// The holdback variant (batsched's easy_bf_*_holdback lineage) additionally
// refuses fillers that would shrink the free pool below
// SchedulerConfig::holdback_nodes, keeping headroom for imminent arrivals
// at some cost in utilization.
//
// With the default BackfillMode (kEasy) and equal depths, phase-1 + phase-2
// decisions coincide with the krevat baseline's — asserted by
// tests/sched_algorithms_test.cpp — making "easy" the documented clean-room
// restatement of the paper discipline, plus trace provenance.
#include "sched/algorithm.hpp"

namespace bgl {

namespace {

class EasyAlgorithm final : public ISchedulingAlgorithm {
 public:
  explicit EasyAlgorithm(bool holdback) : holdback_(holdback) {}

  const char* name() const override {
    return holdback_ ? "easy-holdback" : "easy";
  }

  void run(SchedulingPass& p) const override {
    const std::vector<WaitingJob>& queue = p.queue();
    const SchedulerConfig& config = p.config();

    // Phase 1: FCFS until the head blocks.
    std::size_t head = 0;
    while (head < queue.size()) {
      if (p.placed(head)) {
        ++head;
        continue;
      }
      const std::span<const int> candidates =
          p.free_candidates(queue[head].alloc_size);
      if (!candidates.empty()) {
        p.place(head, candidates, /*backfill=*/false);
        ++head;
        continue;
      }
      if (p.try_migration(queue[head].alloc_size)) continue;
      break;  // head blocked
    }
    if (head >= queue.size()) return;
    if (config.backfill == BackfillMode::kNone || config.backfill_depth <= 0) {
      return;
    }

    // Phase 2: the blocked head holds the pass's single reservation.
    obs::ScopedPhase backfill_span(p.profiler(), obs::Phase::kBackfill);
    const std::optional<Reservation> res =
        p.reservation(queue[head].alloc_size);
    if (!res) return;  // head can never fit: no safe backfilling
    p.note_reservation(queue[head].id, *res);

    const int num_nodes = p.catalog().num_nodes();
    int examined = 0;
    for (std::size_t j = head + 1;
         j < queue.size() && examined < config.backfill_depth; ++j) {
      if (p.placed(j)) continue;
      ++examined;
      const WaitingJob& filler = queue[j];
      if (holdback_) {
        const int free_after =
            num_nodes - p.occupied().count() - filler.alloc_size;
        if (free_after < config.holdback_nodes) continue;
      }
      const std::span<const int> candidates =
          p.free_candidates(filler.alloc_size);
      if (candidates.empty()) continue;
      ArenaVector<int> allowed(p.scratch_arena());
      const bool in_time = p.now() + filler.estimate <= res->time + 1e-9;
      for (const int c : candidates) {
        if (in_time || !p.catalog().entry(c).mask.intersects(res->mask)) {
          allowed.push_back(c);
        }
      }
      if (allowed.empty()) continue;
      p.place(j, allowed, /*backfill=*/true, &*res);
    }
  }

 private:
  bool holdback_;
};

}  // namespace

std::unique_ptr<ISchedulingAlgorithm> make_easy_algorithm(bool holdback) {
  return std::make_unique<EasyAlgorithm>(holdback);
}

}  // namespace bgl
