// The paper's scheduling discipline (§5), frozen behind the algorithm seam.
//
// FCFS with spatial backfilling behind a blocked head job and one migration
// (compaction) attempt per pass, parameterised by BackfillMode: kEasy
// reserves for the head only, kConservative independently reserves for the
// first reservation_depth waiting jobs (each against the current running
// set — a spatially conservative approximation, see backfill.hpp), kNone
// disables fillers entirely.
//
// This translation unit is the byte-identity anchor of the seam: its
// decisions, counters and trace output are bit-for-bit those of the
// pre-seam Scheduler::schedule() loop (tests/sched_reference_diff_test.cpp
// holds it against a frozen copy of that loop; bench/golden pins the figure
// CSVs). Deliberately, it never calls note_reservation() or passes a
// binding reservation to place() — reservation provenance in traces is a
// feature of the newer algorithms only.
#include <algorithm>

#include "sched/algorithm.hpp"

namespace bgl {

namespace {

class KrevatAlgorithm final : public ISchedulingAlgorithm {
 public:
  const char* name() const override { return "krevat"; }

  void run(SchedulingPass& p) const override {
    const std::vector<WaitingJob>& queue = p.queue();
    const SchedulerConfig& config = p.config();

    std::size_t head = 0;
    while (head < queue.size()) {
      if (p.placed(head)) {
        ++head;
        continue;
      }
      const WaitingJob& job = queue[head];

      const std::span<const int> candidates = p.free_candidates(job.alloc_size);
      if (!candidates.empty()) {
        p.place(head, candidates, /*backfill=*/false);
        ++head;
        continue;
      }

      // Head job blocked: first try compaction, once per pass.
      if (p.try_migration(job.alloc_size)) {
        continue;  // retry the head job on the compacted torus
      }

      // Backfill behind the blocked head job.
      if (config.backfill != BackfillMode::kNone && config.backfill_depth > 0) {
        obs::ScopedPhase backfill_span(p.profiler(), obs::Phase::kBackfill);
        // Reservations a filler must not delay. EASY: the head job only.
        // Conservative: the first reservation_depth waiting jobs; each
        // reservation is computed against the current running set, which
        // yields reservation times no later than the true ones — a stricter
        // (hence safe) admission constraint for fillers.
        std::vector<Reservation>& reservations = p.reservation_scratch();
        reservations.clear();
        const int reservation_count =
            config.backfill == BackfillMode::kEasy
                ? 1
                : std::max(1, config.reservation_depth);
        for (std::size_t q = head;
             q < queue.size() &&
             static_cast<int>(reservations.size()) < reservation_count;
             ++q) {
          if (p.placed(q)) continue;
          auto r = p.reservation(queue[q].alloc_size);
          if (!r) {
            if (q == head) break;  // head can never fit: no safe backfilling
            continue;
          }
          reservations.push_back(std::move(*r));
        }
        if (reservations.empty()) break;

        auto admissible = [&](double est_finish, const NodeSet& mask) {
          for (const Reservation& r : reservations) {
            const bool in_time = est_finish <= r.time + 1e-9;
            if (!in_time && mask.intersects(r.mask)) return false;
          }
          return true;
        };

        int examined = 0;
        for (std::size_t j = head + 1;
             j < queue.size() && examined < config.backfill_depth; ++j) {
          if (p.placed(j)) continue;
          ++examined;
          const WaitingJob& filler = queue[j];
          const std::span<const int> free =
              p.free_candidates(filler.alloc_size);
          if (free.empty()) continue;
          ArenaVector<int> allowed(p.scratch_arena());
          for (const int c : free) {
            if (admissible(p.now() + filler.estimate,
                           p.catalog().entry(c).mask)) {
              allowed.push_back(c);
            }
          }
          if (allowed.empty()) continue;
          p.place(j, allowed, /*backfill=*/true);
        }
      }
      break;  // FCFS: the head job stays first in line
    }
  }
};

}  // namespace

std::unique_ptr<ISchedulingAlgorithm> make_krevat_algorithm() {
  return std::make_unique<KrevatAlgorithm>();
}

}  // namespace bgl
