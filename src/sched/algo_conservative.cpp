// Conservative backfilling (Mu'alem & Feitelson) behind the algorithm seam.
//
// Unlike EASY — where only the blocked head is protected and a deep filler
// may delay mid-queue jobs — conservative backfilling grants *every*
// examined waiting job a reservation, layered into a queue-order schedule
// profile. A job is admitted now only if no earlier-queued reservation is
// delayed (it must finish before each reservation starts or avoid its
// partition); otherwise its own reservation is computed against the live
// jobs AND every reservation already in the profile, then appended. Under
// estimate-faithful execution no queued job's start is ever pushed later by
// a backfilled one — the invariant tests/sched_algorithms_test.cpp asserts
// per pass.
//
// The profile is spatial as well as temporal: each slot pins a concrete
// partition for [start, start + estimate), so feasibility at a time point
// checks free nodes net of unfinished live jobs plus every reservation
// active at that point, and a candidate slot must additionally stay clear
// of reservations that begin inside its window.
//
// Cost: reserving scans candidate time points (live finishes + profile
// boundaries) per blocked job, so a pass is O(depth · points · catalog).
// That is fine for the paper-scale queue views this algorithm targets
// (bench_baselines); the krevat baseline remains the hot-path default.
//
// Edge cases: a blocked job whose reservation cannot be computed at all
// (down-node obstacles cover every partition of its size even on an empty
// machine) stops the pass when it is the first blocked job — FCFS order
// must not be silently violated — and is skipped (left unprotected until
// the obstacles clear) when it sits behind an existing profile.
#include <algorithm>
#include <vector>

#include "sched/algorithm.hpp"

namespace bgl {

namespace {

constexpr double kEps = 1e-9;

/// One granted reservation: entry `entry` is held for [start, end).
struct ProfileSlot {
  double start = 0.0;
  double end = 0.0;
  int entry = -1;
};

/// Would a placement finishing at `est_finish` on `mask` delay any reserved
/// job? Admissible iff for every slot it either finishes before the slot
/// starts or stays off the slot's partition.
bool admissible(const PartitionCatalog& catalog, double est_finish,
                const NodeSet& mask, std::span<const ProfileSlot> profile) {
  for (const ProfileSlot& r : profile) {
    const bool in_time = est_finish <= r.start + kEps;
    if (!in_time && mask.intersects(catalog.entry(r.entry).mask)) return false;
  }
  return true;
}

/// Earliest (start, partition) for a job of `alloc_size`/`estimate` that
/// respects the live jobs' estimated finishes and every earlier reservation.
std::optional<ProfileSlot> reserve_against(const SchedulingPass& p,
                                           int alloc_size, double estimate,
                                           std::span<const ProfileSlot> profile) {
  const PartitionCatalog& catalog = p.catalog();
  const double now = p.now();

  // Candidate start times: now, plus every event that frees or claims
  // nodes — live finishes and profile slot boundaries.
  std::vector<double> times;
  times.reserve(1 + p.live().size() + 2 * profile.size());
  times.push_back(now);
  for (const RunningJob& r : p.live()) {
    if (r.est_finish > now) times.push_back(r.est_finish);
  }
  for (const ProfileSlot& r : profile) {
    if (r.start > now) times.push_back(r.start);
    if (r.end > now) times.push_back(r.end);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());

  NodeSet occ;
  std::vector<int> candidates;
  for (const double t : times) {
    // Occupancy at t under estimate-faithful execution: live jobs that have
    // not finished by t, immovable occupancy (down nodes), and reservations
    // active at t.
    occ = p.occupied();
    for (const RunningJob& r : p.live()) {
      if (std::max(r.est_finish, now) <= t + kEps) {
        occ.subtract(catalog.entry(r.entry_index).mask);
      }
    }
    for (const ProfileSlot& r : profile) {
      if (r.start <= t + kEps && t + kEps < r.end) {
        occ |= catalog.entry(r.entry).mask;
      }
    }
    candidates.clear();
    catalog.free_entries_of_size(occ, alloc_size, candidates);
    for (const int c : candidates) {
      const NodeSet& mask = catalog.entry(c).mask;
      // Free at t is not enough: the slot must also stay clear of
      // reservations that begin inside its own window.
      bool clear = true;
      for (const ProfileSlot& r : profile) {
        if (r.start > t + kEps && r.start < t + estimate - kEps &&
            mask.intersects(catalog.entry(r.entry).mask)) {
          clear = false;
          break;
        }
      }
      if (clear) return ProfileSlot{t, t + estimate, c};
    }
  }
  return std::nullopt;
}

class ConservativeAlgorithm final : public ISchedulingAlgorithm {
 public:
  const char* name() const override { return "conservative"; }

  void run(SchedulingPass& p) const override {
    const std::vector<WaitingJob>& queue = p.queue();
    const SchedulerConfig& config = p.config();
    const bool fillers_allowed =
        config.backfill != BackfillMode::kNone && config.backfill_depth > 0;

    ArenaVector<ProfileSlot> profile(p.scratch_arena());
    int examined = 0;
    std::size_t q = 0;
    while (q < queue.size()) {
      if (p.placed(q)) {
        ++q;
        continue;
      }
      const WaitingJob& job = queue[q];

      if (profile.empty()) {
        // FCFS phase: nothing is blocked yet.
        const std::span<const int> candidates =
            p.free_candidates(job.alloc_size);
        if (!candidates.empty()) {
          p.place(q, candidates, /*backfill=*/false);
          ++q;
          continue;
        }
        if (p.try_migration(job.alloc_size)) continue;  // retry compacted
      } else {
        // Backfill phase: admission must respect every reservation.
        if (!fillers_allowed || examined >= config.backfill_depth) break;
        obs::ScopedPhase backfill_span(p.profiler(), obs::Phase::kBackfill);
        ++examined;
        const std::span<const int> candidates =
            p.free_candidates(job.alloc_size);
        if (!candidates.empty()) {
          ArenaVector<int> allowed(p.scratch_arena());
          const double est_finish = p.now() + job.estimate;
          for (const int c : candidates) {
            if (admissible(p.catalog(), est_finish, p.catalog().entry(c).mask,
                           profile)) {
              allowed.push_back(c);
            }
          }
          if (!allowed.empty()) {
            // The binding reservation recorded on the placement is the
            // earliest-queued one — the slot EASY would have held.
            Reservation binding;
            binding.time = profile[0].start;
            binding.entry = profile[0].entry;
            p.place(q, allowed, /*backfill=*/true, &binding);
            ++q;
            continue;
          }
        }
      }

      // Blocked: grant this job its reservation, in queue order.
      // (reserve_against builds the full schedule profile itself rather
      // than going through pass.reservation(), so the span is opened here.)
      std::optional<ProfileSlot> slot;
      {
        obs::ScopedPhase res_span(p.profiler(), obs::Phase::kReservation);
        slot = reserve_against(p, job.alloc_size, job.estimate, profile);
      }
      if (slot) {
        Reservation granted;
        granted.time = slot->start;
        granted.entry = slot->entry;
        p.note_reservation(job.id, granted);
        profile.push_back(*slot);
      } else if (profile.empty()) {
        break;  // first blocked job can never fit: keep strict FCFS
      }
      ++q;
    }
  }
};

}  // namespace

std::unique_ptr<ISchedulingAlgorithm> make_conservative_algorithm() {
  return std::make_unique<ConservativeAlgorithm>();
}

}  // namespace bgl
