// The scheduling engine (§5).
//
// One engine hosts every scheduling discipline; three orthogonal policies
// plug into it (docs/SCHEDULERS.md):
//
//   algorithm   ISchedulingAlgorithm (algorithm.hpp): queue traversal and
//               reservation discipline — krevat (the paper's engine, the
//               default), easy, conservative, easy-holdback.
//   scoring     PlacementPolicy: Krevat baseline = MfpLossPolicy (predictor
//               ignored), Balancing = BalancingPolicy + Balancing-
//               Predictor(confidence a), Tie-breaking = TieBreakPolicy +
//               TieBreakPredictor(accuracy a).
//   prediction  FaultPredictor (predict/): which nodes get flagged.
//
// The engine is stateless: schedule() is a pure function of (now, queue,
// running, occupancy). It prepares the pass scratch and the cloned index,
// hands a SchedulingPass to the configured algorithm, and accounts the
// pass-level timing. The simulation driver owns all mutable state and
// applies the returned decision, which keeps the engine trivially testable
// and lets benches share one driver across schedulers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "predict/predictor.hpp"
#include "sched/policy.hpp"
#include "sched/types.hpp"
#include "torus/catalog.hpp"

namespace bgl {

struct SchedulerPassScratch;
class ISchedulingAlgorithm;

class Scheduler {
 public:
  Scheduler(const PartitionCatalog& catalog, std::unique_ptr<PlacementPolicy> policy,
            const FaultPredictor& predictor, SchedulerConfig config = {});
  ~Scheduler();

  /// Decide which jobs to start (and which running jobs to migrate) at time
  /// `now`. `queue` must be in FCFS priority order; `running` carries the
  /// current partition and estimated finish of every executing job;
  /// `occupied` is the current occupancy mask (consistent with `running`).
  ///
  /// `index` (nullable) is an incremental free-partition view that must be
  /// synced to `occupied` (checked). When provided, the engine clones it
  /// into a per-pass scratch — updated incrementally as the pass places
  /// jobs — and answers candidate enumeration and every MFP query through
  /// it instead of scanning the catalog. Decisions are bit-for-bit
  /// identical with and without the index (the scan path remains the
  /// reference implementation and the differential tests hold both up
  /// against each other).
  SchedulingDecision schedule(double now, const std::vector<WaitingJob>& queue,
                              const std::vector<RunningJob>& running,
                              const NodeSet& occupied,
                              const FreePartitionIndex* index = nullptr) const;

  const SchedulerConfig& config() const { return config_; }
  std::string name() const { return policy_->name(); }
  /// The discipline's registry name ("krevat", "easy", ...).
  std::string algorithm_name() const;

  /// Attach observability hooks (nullable; see src/obs/observer.hpp). With
  /// the default (disabled) observer, schedule() behaves and costs exactly
  /// as if this call never happened. The counters must outlive the engine.
  void set_observer(const obs::Observer& obs) { obs_ = obs; }
  const obs::Observer& observer() const { return obs_; }

 private:
  const PartitionCatalog* catalog_;
  std::unique_ptr<PlacementPolicy> policy_;
  const FaultPredictor* predictor_;
  SchedulerConfig config_;
  /// The configured discipline (config_.algorithm), stateless across passes.
  std::unique_ptr<ISchedulingAlgorithm> algorithm_;
  obs::Observer obs_{};
  /// Per-pass working copy of the caller's index. schedule() stays a pure
  /// function of its inputs — the scratch is reassigned from the caller's
  /// index at the top of every pass (reusing its buffers; the immutable
  /// CSR layout is shared) and never read across calls.
  mutable std::unique_ptr<FreePartitionIndex> scratch_index_;
  /// Pooled per-pass scratch (arena + occupancy/flag sets + live-job copy),
  /// reused across schedule() calls when config_.arena_scratch is set so the
  /// steady-state pass performs no heap allocation. Purely a cache: it is
  /// overwritten from the call's inputs before any read, so schedule()
  /// remains a pure function of its arguments.
  mutable std::unique_ptr<SchedulerPassScratch> pass_scratch_;
};

/// Factory helpers for the three paper schedulers.
std::unique_ptr<Scheduler> make_krevat_scheduler(const PartitionCatalog& catalog,
                                                 const FaultPredictor& predictor,
                                                 SchedulerConfig config = {});
std::unique_ptr<Scheduler> make_balancing_scheduler(const PartitionCatalog& catalog,
                                                    const FaultPredictor& predictor,
                                                    SchedulerConfig config = {});
std::unique_ptr<Scheduler> make_tiebreak_scheduler(const PartitionCatalog& catalog,
                                                   const FaultPredictor& predictor,
                                                   SchedulerConfig config = {});

}  // namespace bgl
