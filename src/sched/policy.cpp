#include "sched/policy.hpp"

#include <algorithm>
#include <cmath>

#include "obs/counters.hpp"
#include "util/error.hpp"

namespace bgl {

namespace {
/// MFP size after hypothetically placing candidate `entry_index`.
int mfp_after(const PlacementContext& ctx, int entry_index) {
  const auto& entry = ctx.catalog->entry(entry_index);
  if (ctx.counters != nullptr) ctx.counters->add(obs::Counter::kMfpEvaluations);
  // Adding nodes can only shrink the MFP, so resume the size-descending scan
  // at the index of the pre-placement MFP.
  const int hint = ctx.mfp_before_index < 0 ? 0 : ctx.mfp_before_index;
  if (ctx.index != nullptr) return ctx.index->mfp_with(entry.mask, hint);
  return ctx.catalog->mfp_with(*ctx.occupied, entry.mask, hint);
}

/// E_loss comparisons must tolerate floating-point noise, and the noise
/// scales with the terms: L_PF = P_f * s_j grows with the job size, so an
/// absolute epsilon that is adequate for small jobs silently stops
/// detecting ties for large ones (one ulp of a ~5000-node-second loss
/// already exceeds 1e-12). Scale the tolerance with the operands.
double loss_tolerance(double a, double b) {
  return 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
}

/// Fill `explain` for the chosen candidate. The loss terms are recomputed
/// here (once, off the comparison loop) so the disabled-tracing hot path
/// pays nothing.
void explain_choice(const PlacementContext& ctx, int chosen, int chosen_mfp,
                    PlacementExplain* explain) {
  if (explain == nullptr) return;
  explain->mfp_after = chosen_mfp;
  explain->l_mfp = static_cast<double>(ctx.mfp_before_size - chosen_mfp);
  explain->flags =
      ctx.flagged == nullptr
          ? 0
          : ctx.catalog->entry(chosen).mask.intersect_count(*ctx.flagged);
  const double p_f =
      partition_failure_probability(explain->flags, ctx.confidence, ctx.pf_rule);
  explain->l_pf = p_f * static_cast<double>(ctx.job_size);
  explain->e_loss = explain->l_mfp + explain->l_pf;
}
}  // namespace

double partition_failure_probability(int flagged_in_partition, double confidence,
                                     PartitionFailureRule rule) {
  BGL_CHECK(flagged_in_partition >= 0, "flag count must be non-negative");
  if (flagged_in_partition == 0 || confidence <= 0.0) return 0.0;
  switch (rule) {
    case PartitionFailureRule::kMax:
      return confidence;
    case PartitionFailureRule::kProduct:
      return 1.0 - std::pow(1.0 - confidence, flagged_in_partition);
  }
  return confidence;
}

int MfpLossPolicy::choose(const PlacementContext& ctx,
                          std::span<const int> candidates,
                          PlacementExplain* explain) const {
  BGL_CHECK(!candidates.empty(), "policy invoked with no candidates");
  int best = candidates.front();
  int best_mfp = -1;
  for (const int c : candidates) {
    const int m = mfp_after(ctx, c);
    if (m > best_mfp) {
      best_mfp = m;
      best = c;
    }
  }
  explain_choice(ctx, best, best_mfp, explain);
  return best;
}

int BalancingPolicy::choose(const PlacementContext& ctx,
                            std::span<const int> candidates,
                            PlacementExplain* explain) const {
  BGL_CHECK(!candidates.empty(), "policy invoked with no candidates");
  BGL_CHECK(ctx.flagged != nullptr, "balancing policy requires predictor flags");
  int best = candidates.front();
  double best_loss = 0.0;
  int best_mfp = -1;
  bool first = true;
  for (const int c : candidates) {
    const auto& entry = ctx.catalog->entry(c);
    const int m = mfp_after(ctx, c);
    const double l_mfp = static_cast<double>(ctx.mfp_before_size - m);
    const int flags = entry.mask.intersect_count(*ctx.flagged);
    const double p_f = partition_failure_probability(flags, ctx.confidence, ctx.pf_rule);
    const double l_pf = p_f * static_cast<double>(ctx.job_size);
    const double e_loss = l_mfp + l_pf;
    // Minimise E_loss; tie-break toward the larger resulting MFP, then the
    // catalog order (deterministic).
    const double tol = loss_tolerance(e_loss, best_loss);
    if (first || e_loss < best_loss - tol ||
        (std::abs(e_loss - best_loss) <= tol && m > best_mfp)) {
      best = c;
      best_loss = e_loss;
      best_mfp = m;
      first = false;
    }
  }
  explain_choice(ctx, best, best_mfp, explain);
  return best;
}

int TieBreakPolicy::choose(const PlacementContext& ctx,
                           std::span<const int> candidates,
                           PlacementExplain* explain) const {
  BGL_CHECK(!candidates.empty(), "policy invoked with no candidates");
  BGL_CHECK(ctx.flagged != nullptr, "tie-break policy requires predictor flags");
  // Pass 1: the optimal (maximal) resulting MFP, exactly as Krevat's policy.
  // The per-candidate score buffer comes from the decision arena when the
  // engine provides one; the heap fallback is the reference behaviour.
  int best_mfp = -1;
  std::vector<int> heap_mfps;
  int* mfps;
  if (ctx.arena != nullptr) {
    mfps = ctx.arena->alloc<int>(candidates.size());
  } else {
    heap_mfps.resize(candidates.size());
    mfps = heap_mfps.data();
  }
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    mfps[i] = mfp_after(ctx, candidates[i]);
    if (mfps[i] > best_mfp) best_mfp = mfps[i];
  }
  // Pass 2: among the tied optima, the first candidate the predictor does
  // not flag; if all are flagged, the first optimum (arbitrary choice).
  int fallback = -1;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (mfps[i] != best_mfp) continue;
    const auto& entry = ctx.catalog->entry(candidates[i]);
    if (!entry.mask.intersects(*ctx.flagged)) {
      explain_choice(ctx, candidates[i], best_mfp, explain);
      return candidates[i];
    }
    if (fallback < 0) fallback = candidates[i];
  }
  explain_choice(ctx, fallback, best_mfp, explain);
  return fallback;
}

}  // namespace bgl
