// The scheduling-algorithm seam (docs/SCHEDULERS.md).
//
// A pass of the engine has three orthogonal policy dimensions:
//
//   queue traversal + reservation discipline   ISchedulingAlgorithm (here)
//   placement scoring                          PlacementPolicy (policy.hpp)
//   fault prediction                           FaultPredictor (predict/)
//
// The Scheduler prepares one SchedulingPass — pass-local occupancy, the
// live-job view, the cloned free-partition index, the decision being built,
// counters/trace plumbing — and hands it to the configured algorithm, which
// owns only the *discipline*: which queued jobs to try, in what order, and
// under which reservation constraints. Every mutation goes through the pass
// (place / try_migration / reservation), so any algorithm composes with any
// scorer, any predictor, the migration machinery, and the incremental index
// without re-implementing the bookkeeping or the observability contract.
//
// Four disciplines ship (SchedAlgorithm in types.hpp):
//
//   krevat        algo_krevat.cpp — the paper's engine, frozen: decisions,
//                 counters and traces are byte-identical to the pre-seam
//                 scheduler (differential-tested and pinned by the golden
//                 figure-CSV hashes in bench/golden/).
//   easy          algo_easy.cpp — EASY backfilling; the blocked head holds
//                 one explicit reservation recorded in the decision trail.
//   easy-holdback algo_easy.cpp — EASY plus a free-node floor for fillers.
//   conservative  algo_conservative.cpp — a queue-order reservation profile;
//                 fillers may delay no reserved job.
//
// To add an algorithm: implement ISchedulingAlgorithm in a new
// algo_*.cpp, extend SchedAlgorithm + to_string/parse_sched_algorithm
// (types.hpp / algorithm.cpp), and register it in
// make_scheduling_algorithm(). docs/SCHEDULERS.md walks through it.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "obs/observer.hpp"
#include "obs/profiler.hpp"
#include "predict/predictor.hpp"
#include "sched/arena.hpp"
#include "sched/backfill.hpp"
#include "sched/policy.hpp"
#include "sched/types.hpp"
#include "torus/catalog.hpp"
#include "torus/index.hpp"

namespace bgl {

/// Everything one scheduling pass needs that would otherwise be allocated
/// fresh per decision: the bump arena feeding the int/job scratch arrays, the
/// three full-width node sets, and the containers whose elements own heap
/// memory (Reservation masks) and therefore stay std::vector. With
/// config.arena_scratch the engine keeps one of these across passes; without
/// it a fresh local instance reproduces the pre-arena allocating behaviour.
struct SchedulerPassScratch {
  PlacementArena arena;
  NodeSet occ;        ///< Pass-local occupancy (occupied + this pass's starts).
  NodeSet flagged;    ///< Predictor verdict for the job under consideration.
  NodeSet obstacles;  ///< Non-job occupancy seeded into migration re-packs.
  std::vector<RunningJob> live;
  std::vector<Reservation> reservations;
};

/// One scheduling pass: the engine-owned state an algorithm drives. All
/// mutation of the decision / occupancy / index happens through the methods
/// here, which also keep the observability contract (counters, histograms,
/// audit records) identical across algorithms.
class SchedulingPass {
 public:
  SchedulingPass(const PartitionCatalog& catalog, PlacementPolicy& policy,
                 const FaultPredictor& predictor, const SchedulerConfig& config,
                 const obs::Observer& obs, double now,
                 const std::vector<WaitingJob>& queue,
                 SchedulerPassScratch& scratch, PlacementArena* explain_arena,
                 FreePartitionIndex* index, SchedulingDecision& decision);

  SchedulingPass(const SchedulingPass&) = delete;
  SchedulingPass& operator=(const SchedulingPass&) = delete;

  // --- read-only views ---
  double now() const { return now_; }
  const std::vector<WaitingJob>& queue() const { return *queue_; }
  const PartitionCatalog& catalog() const { return *catalog_; }
  const SchedulerConfig& config() const { return *config_; }
  /// Running jobs plus everything started earlier in this pass.
  const std::vector<RunningJob>& live() const;
  /// Pass-local occupancy (occupied + this pass's starts).
  const NodeSet& occupied() const;
  bool placed(std::size_t q) const { return placed_[q] != 0; }

  /// The per-decision bump arena backing short-lived algorithm scratch
  /// (always valid — non-arena mode uses the throwaway local scratch's).
  PlacementArena& scratch_arena();
  /// The arena handed to compute_reservation / try_repack / the policy:
  /// null when config().arena_scratch is off (the allocating reference
  /// behaviour the perf gate measures against).
  PlacementArena* explain_arena() const { return explain_arena_; }
  /// Pooled reservation scratch (elements own heap masks, so it stays a
  /// std::vector reused across passes).
  std::vector<Reservation>& reservation_scratch();

  /// The pass's phase profiler (null when profiling is off). Algorithms use
  /// it to open the one span the engine cannot place for them — their own
  /// backfill section (obs::Phase::kBackfill) — so enumerate/place/
  /// reservation spans nest under it in the tree.
  obs::PhaseProfiler* profiler() const { return obs_->profiler; }

  // --- actions ---
  /// Enumerate the free partitions of `alloc_size` into an internal scratch
  /// list (via the incremental index when present, catalog scans otherwise)
  /// and account the scan. The span is valid until the next call.
  std::span<const int> free_candidates(int alloc_size);

  /// Score `candidates` with the placement policy and commit the winner:
  /// occupancy, index, live set, counters, histogram, audit record. Marks
  /// queue position `q` placed. `res`, when non-null, is the binding
  /// reservation the placement was admitted against (recorded on the
  /// PlacementRecord so the trace carries reservation provenance).
  void place(std::size_t q, std::span<const int> candidates, bool backfill,
             const Reservation* res = nullptr);

  /// One compaction attempt for a blocked job of `alloc_size` — at most one
  /// per pass, and only when config().migration is on and jobs are live.
  /// On success the occupancy/live/index are rewritten (and same-pass
  /// starts re-pointed); the caller should retry the blocked job.
  bool try_migration(int alloc_size);

  /// Earliest-start reservation for `alloc_size` against the live set.
  std::optional<Reservation> reservation(int alloc_size) const;

  /// Record a granted reservation in the decision audit trail (no-op unless
  /// tracing; krevat deliberately never calls this — see types.hpp).
  void note_reservation(std::uint64_t job_id, const Reservation& r);

 private:
  const NodeSet& query_predictor(const WaitingJob& job);

  const PartitionCatalog* catalog_;
  PlacementPolicy* policy_;
  const FaultPredictor* predictor_;
  const SchedulerConfig* config_;
  const obs::Observer* obs_;
  bool tracing_;
  double now_;
  const std::vector<WaitingJob>* queue_;
  SchedulerPassScratch* s_;
  PlacementArena* explain_arena_;
  FreePartitionIndex* idx_;
  SchedulingDecision* decision_;
  ArenaVector<char> placed_;
  ArenaVector<int> candidates_;
  bool migration_tried_ = false;
};

/// A scheduling discipline. Stateless across passes: run() must be a pure
/// function of the pass (the Scheduler reuses one instance for its
/// lifetime and schedule() must stay a pure function of its inputs).
class ISchedulingAlgorithm {
 public:
  virtual ~ISchedulingAlgorithm() = default;
  virtual const char* name() const = 0;
  virtual void run(SchedulingPass& pass) const = 0;
};

/// Registry: the concrete algorithm for a SchedAlgorithm value.
std::unique_ptr<ISchedulingAlgorithm> make_scheduling_algorithm(
    SchedAlgorithm algorithm);

// Factories, one per algo_*.cpp (exposed for direct construction in tests).
std::unique_ptr<ISchedulingAlgorithm> make_krevat_algorithm();
std::unique_ptr<ISchedulingAlgorithm> make_easy_algorithm(bool holdback);
std::unique_ptr<ISchedulingAlgorithm> make_conservative_algorithm();

}  // namespace bgl
