#include "sched/backfill.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bgl {

std::optional<Reservation> compute_reservation(const PartitionCatalog& catalog,
                                               const NodeSet& occupied,
                                               const std::vector<RunningJob>& running,
                                               int alloc_size, double now) {
  // Immediate fit (callers normally ask only after failing to place, but be
  // correct regardless).
  std::vector<int> candidates;
  catalog.free_entries_of_size(occupied, alloc_size, candidates);
  if (!candidates.empty()) {
    return Reservation{now, catalog.entry(candidates.front()).mask};
  }

  std::vector<RunningJob> order = running;
  std::sort(order.begin(), order.end(), [](const RunningJob& a, const RunningJob& b) {
    if (a.est_finish != b.est_finish) return a.est_finish < b.est_finish;
    return a.id < b.id;
  });

  NodeSet scratch = occupied;
  for (const RunningJob& r : order) {
    BGL_CHECK(r.entry_index >= 0, "running job without a partition");
    scratch.subtract(catalog.entry(r.entry_index).mask);
    candidates.clear();
    catalog.free_entries_of_size(scratch, alloc_size, candidates);
    if (!candidates.empty()) {
      const double at = std::max(r.est_finish, now);
      return Reservation{at, catalog.entry(candidates.front()).mask};
    }
  }
  return std::nullopt;
}

}  // namespace bgl
