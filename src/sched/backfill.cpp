#include "sched/backfill.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bgl {

namespace {

// Shared body, generic over the scratch container type (std::vector on the
// reference path, ArenaVector when the engine passes its decision arena).
template <typename IntVec, typename JobVec>
std::optional<Reservation> reservation_impl(const PartitionCatalog& catalog,
                                            const NodeSet& occupied,
                                            const std::vector<RunningJob>& running,
                                            int alloc_size, double now,
                                            IntVec& candidates, JobVec& order) {
  // Immediate fit (callers normally ask only after failing to place, but be
  // correct regardless).
  catalog.free_entries_of_size(occupied, alloc_size, candidates);
  if (!candidates.empty()) {
    return Reservation{now, catalog.entry(candidates.front()).mask,
                       candidates.front()};
  }

  for (const RunningJob& r : running) order.push_back(r);
  std::sort(order.data(), order.data() + order.size(),
            [](const RunningJob& a, const RunningJob& b) {
              if (a.est_finish != b.est_finish) return a.est_finish < b.est_finish;
              return a.id < b.id;
            });

  NodeSet scratch = occupied;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const RunningJob& r = order[i];
    BGL_CHECK(r.entry_index >= 0, "running job without a partition");
    scratch.subtract(catalog.entry(r.entry_index).mask);
    candidates.clear();
    catalog.free_entries_of_size(scratch, alloc_size, candidates);
    if (!candidates.empty()) {
      const double at = std::max(r.est_finish, now);
      return Reservation{at, catalog.entry(candidates.front()).mask,
                         candidates.front()};
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Reservation> compute_reservation(const PartitionCatalog& catalog,
                                               const NodeSet& occupied,
                                               const std::vector<RunningJob>& running,
                                               int alloc_size, double now,
                                               PlacementArena* arena) {
  if (arena != nullptr) {
    ArenaVector<int> candidates(*arena);
    ArenaVector<RunningJob> order(*arena);
    order.reserve(running.size());
    return reservation_impl(catalog, occupied, running, alloc_size, now,
                            candidates, order);
  }
  std::vector<int> candidates;
  std::vector<RunningJob> order;
  order.reserve(running.size());
  return reservation_impl(catalog, occupied, running, alloc_size, now,
                          candidates, order);
}

}  // namespace bgl
