// Migration: torus compaction by re-packing running jobs.
//
// Krevat's scheduler can migrate running jobs (checkpoint, move, restart;
// instantaneous here because the paper's study excludes checkpoint costs)
// to defragment the torus. We re-pack greedily: running jobs sorted by
// partition size descending are placed onto an empty scratch torus with the
// MFP-loss heuristic; the compaction is adopted only if the stuck head job
// then fits.
#pragma once

#include <optional>
#include <vector>

#include "sched/arena.hpp"
#include "sched/types.hpp"
#include "torus/catalog.hpp"

namespace bgl {

struct RepackResult {
  std::vector<Migration> migrations;  ///< Only jobs whose partition changed.
  NodeSet occupied_after;             ///< Occupancy after the re-pack.
  std::vector<RunningJob> running_after;  ///< Same jobs, updated entries.
};

/// Attempt a compaction that frees a partition of `head_alloc_size` nodes.
/// `obstacles`, when non-null, marks nodes that are busy for reasons other
/// than a running job — failed nodes still inside their downtime window —
/// and that the packer must route around; they are seeded into the scratch
/// occupancy and carried through into `occupied_after`.
/// `arena`, when non-null, supplies the sort/candidate scratch buffers (the
/// engine passes its per-decision arena); with nullptr they come from the
/// heap, which is the pre-arena reference behaviour.
/// Returns nullopt if the greedy packing fails or still leaves no room.
std::optional<RepackResult> try_repack(const PartitionCatalog& catalog,
                                       const std::vector<RunningJob>& running,
                                       int head_alloc_size,
                                       const NodeSet* obstacles = nullptr,
                                       PlacementArena* arena = nullptr);

}  // namespace bgl
