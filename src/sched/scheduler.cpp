#include "sched/scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "sched/backfill.hpp"
#include "sched/migration.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace bgl {

const char* to_string(BackfillMode mode) {
  switch (mode) {
    case BackfillMode::kNone: return "none";
    case BackfillMode::kEasy: return "easy";
    case BackfillMode::kConservative: return "conservative";
  }
  return "?";
}

/// Everything one scheduling pass needs that would otherwise be allocated
/// fresh per decision: the bump arena feeding the int/job scratch arrays, the
/// three full-width node sets, and the containers whose elements own heap
/// memory (Reservation masks) and therefore stay std::vector. With
/// config.arena_scratch the engine keeps one of these across passes; without
/// it a fresh local instance reproduces the pre-arena allocating behaviour.
struct SchedulerPassScratch {
  PlacementArena arena;
  NodeSet occ;        ///< Pass-local occupancy (occupied + this pass's starts).
  NodeSet flagged;    ///< Predictor verdict for the job under consideration.
  NodeSet obstacles;  ///< Non-job occupancy seeded into migration re-packs.
  std::vector<RunningJob> live;
  std::vector<Reservation> reservations;
};

Scheduler::Scheduler(const PartitionCatalog& catalog,
                     std::unique_ptr<PlacementPolicy> policy,
                     const FaultPredictor& predictor, SchedulerConfig config)
    : catalog_(&catalog),
      policy_(std::move(policy)),
      predictor_(&predictor),
      config_(config) {
  BGL_CHECK(policy_ != nullptr, "scheduler requires a placement policy");
  BGL_CHECK(config_.backfill_depth >= 0, "backfill depth must be non-negative");
}

Scheduler::~Scheduler() = default;

PlacementContext Scheduler::make_context(const NodeSet& occ, const NodeSet& flagged,
                                         int job_size,
                                         const FreePartitionIndex* index,
                                         PlacementArena* arena) const {
  PlacementContext ctx;
  ctx.catalog = catalog_;
  ctx.occupied = &occ;
  ctx.index = index;
  ctx.mfp_before_index =
      index != nullptr ? index->first_free_index() : catalog_->first_free_index(occ);
  ctx.mfp_before_size =
      ctx.mfp_before_index < 0 ? 0 : catalog_->entry(ctx.mfp_before_index).size;
  ctx.flagged = &flagged;
  ctx.confidence = predictor_->confidence();
  ctx.pf_rule = config_.pf_rule;
  ctx.job_size = job_size;
  ctx.counters = obs_.counters;
  ctx.arena = arena;
  return ctx;
}

SchedulingDecision Scheduler::schedule(double now, const std::vector<WaitingJob>& queue,
                                       const std::vector<RunningJob>& running,
                                       const NodeSet& occupied,
                                       const FreePartitionIndex* index) const {
  // Decision latency feeds both the counter (total ns) and the histogram
  // (per-decision µs); time manually so one clock read serves both.
  // schedule() has a single return, so no scope guard is needed.
  const bool timing = obs_.counters != nullptr || obs_.histograms != nullptr;
  std::chrono::steady_clock::time_point t_begin;
  if (timing) t_begin = std::chrono::steady_clock::now();
  if (obs_.counters != nullptr) {
    obs_.counters->add(obs::Counter::kSchedInvocations);
  }
  const bool tracing = obs_.trace != nullptr;

  SchedulingDecision decision;

  // Scratch selection: the pooled member in arena mode (steady state: zero
  // heap allocations per pass), a throwaway local otherwise (every buffer
  // below allocates fresh — the reference cost profile the perf gate
  // measures against).
  SchedulerPassScratch local;
  if (config_.arena_scratch && pass_scratch_ == nullptr) {
    pass_scratch_ = std::make_unique<SchedulerPassScratch>();
  }
  SchedulerPassScratch& s = config_.arena_scratch ? *pass_scratch_ : local;
  PlacementArena* arena = config_.arena_scratch ? &s.arena : nullptr;
  s.arena.reset();
  s.occ = occupied;  // copy-assign reuses the pooled buffer when widths match
  s.live.assign(running.begin(), running.end());
  NodeSet& occ = s.occ;
  std::vector<RunningJob>& live = s.live;

  ArenaVector<char> placed(s.arena);  // hoisted: was vector<bool> per pass
  placed.assign(queue.size(), 0);
  ArenaVector<int> candidates(s.arena);
  bool migration_tried = false;

  // Working copy of the caller's incremental index, kept in lockstep with
  // the pass-local `occ`. Reassignment reuses the scratch's buffers and
  // shares the immutable CSR layout, so this is a ~40 KB copy, not a build.
  FreePartitionIndex* idx = nullptr;
  if (index != nullptr) {
    BGL_CHECK(index->occupied() == occupied,
              "free-partition index out of sync with occupancy");
    if (scratch_index_ == nullptr) {
      scratch_index_ = std::make_unique<FreePartitionIndex>(*index);
    } else {
      *scratch_index_ = *index;
    }
    idx = scratch_index_.get();
  }

  // Consult the predictor for a job's execution window, accounting the
  // query (and its verdict size) to the observer. The verdict lands in the
  // pooled s.flagged (allocation-free in arena mode; the by-value call is
  // the reference behaviour, one fresh NodeSet per query).
  auto query_predictor = [&](const WaitingJob& job) -> const NodeSet& {
    if (config_.arena_scratch) {
      predictor_->flagged_nodes_into(s.flagged, now, now + job.estimate, job.id);
    } else {
      s.flagged = predictor_->flagged_nodes(now, now + job.estimate, job.id);
    }
    if (obs_.counters != nullptr || tracing) {
      const int n_flagged = s.flagged.count();
      if (obs_.counters != nullptr) {
        obs_.counters->add(obs::Counter::kPredictorQueries);
        obs_.counters->add(obs::Counter::kPredictorNodesFlagged,
                           static_cast<std::uint64_t>(n_flagged));
      }
      if (tracing) {
        decision.predictor_queries.push_back(
            PredictorQueryRecord{job.id, now, now + job.estimate, n_flagged});
      }
    }
    return s.flagged;
  };

  // Account one catalog free-list scan for partitions of `alloc_size` that
  // offered `found` candidates.
  auto note_scan = [&](int alloc_size, std::size_t found) {
    if (obs_.counters == nullptr) return;
    const auto [first, last] = catalog_->size_range(alloc_size);
    obs_.counters->add(obs::Counter::kPartitionsScanned,
                       static_cast<std::uint64_t>(last - first));
    obs_.counters->add(obs::Counter::kCandidatesConsidered,
                       static_cast<std::uint64_t>(found));
  };

  auto start_job = [&](const WaitingJob& job, int entry_index, const NodeSet& flagged,
                       std::span<const int> considered,
                       const PlacementExplain& explain, bool backfill) {
    decision.starts.push_back(Start{job.id, entry_index});
    if (catalog_->entry(entry_index).mask.intersects(flagged)) {
      ++decision.starts_on_flagged;
      for (const int c : considered) {
        if (!catalog_->entry(c).mask.intersects(flagged)) {
          ++decision.flagged_with_alternative;
          break;
        }
      }
    }
    occ |= catalog_->entry(entry_index).mask;
    if (idx != nullptr) idx->occupy(catalog_->entry(entry_index).mask);
    live.push_back(RunningJob{job.id, entry_index, now + job.estimate});
    if (obs_.counters != nullptr) {
      obs_.counters->add(obs::Counter::kSchedStarts);
      if (backfill) obs_.counters->add(obs::Counter::kSchedBackfillStarts);
    }
    if (obs_.histograms != nullptr) {
      obs_.histograms->add(obs::Hist::kCandidates,
                           static_cast<double>(considered.size()));
    }
    if (tracing) {
      decision.placements.push_back(PlacementRecord{
          job.id, entry_index, static_cast<int>(considered.size()),
          explain.flags, explain.l_mfp, explain.l_pf, explain.e_loss,
          explain.mfp_after, backfill});
    }
  };

  std::size_t head = 0;
  while (head < queue.size()) {
    if (placed[head]) {
      ++head;
      continue;
    }
    const WaitingJob& job = queue[head];
    BGL_CHECK(job.alloc_size > 0 && job.alloc_size <= catalog_->num_nodes(),
              "waiting job has invalid alloc size");

    candidates.clear();
    if (idx != nullptr) {
      idx->free_entries_of_size(job.alloc_size, candidates);
    } else {
      catalog_->free_entries_of_size(occ, job.alloc_size, candidates);
    }
    note_scan(job.alloc_size, candidates.size());
    if (!candidates.empty()) {
      const NodeSet& flagged = query_predictor(job);
      const PlacementContext ctx = make_context(occ, flagged, job.size, idx, arena);
      PlacementExplain explain;
      const int chosen =
          policy_->choose(ctx, candidates, tracing ? &explain : nullptr);
      start_job(job, chosen, flagged, candidates, explain, /*backfill=*/false);
      placed[head] = 1;
      ++head;
      continue;
    }

    // Head job blocked: first try compaction, once per pass.
    if (config_.migration && !migration_tried && !live.empty()) {
      migration_tried = true;
      // Occupancy that does not belong to any live job — failed nodes still
      // inside their downtime window — must survive the compaction intact.
      // try_repack rebuilds the occupancy from the re-placed jobs, so without
      // this seed it would silently resurrect down nodes as free space and
      // the retried head (or a backfill filler) could start on them.
      s.obstacles = occ;
      for (const RunningJob& r : live) {
        s.obstacles.subtract(catalog_->entry(r.entry_index).mask);
      }
      if (auto repack =
              try_repack(*catalog_, live, job.alloc_size, &s.obstacles, arena)) {
        for (const Migration& m : repack->migrations) {
          // A job started earlier in this same pass has not been committed
          // by the driver yet; rewrite its pending start instead of
          // reporting a migration of a not-yet-running job. The paired
          // placement audit record (placements[i] explains starts[i]) must
          // follow, or the trace would report a placement that was never
          // committed.
          bool was_started_here = false;
          for (std::size_t s_i = 0; s_i < decision.starts.size(); ++s_i) {
            if (decision.starts[s_i].id == m.id) {
              decision.starts[s_i].entry_index = m.to_entry;
              if (tracing) decision.placements[s_i].entry_index = m.to_entry;
              was_started_here = true;
              break;
            }
          }
          if (!was_started_here) decision.migrations.push_back(m);
        }
        occ = std::move(repack->occupied_after);
        live = std::move(repack->running_after);
        // Compaction rewrote the occupancy wholesale; resync the scratch
        // index with one rebuild (migration passes are rare and already
        // O(running x catalog) in try_repack itself).
        if (idx != nullptr) idx->reset(occ);
        continue;  // retry the head job on the compacted torus
      }
    }

    // Backfill behind the blocked head job.
    if (config_.backfill != BackfillMode::kNone && config_.backfill_depth > 0) {
      // Reservations a filler must not delay. EASY: the head job only.
      // Conservative: the first reservation_depth waiting jobs; each
      // reservation is computed against the current running set, which
      // yields reservation times no later than the true ones — a stricter
      // (hence safe) admission constraint for fillers.
      std::vector<Reservation>& reservations = s.reservations;
      reservations.clear();
      const int reservation_count =
          config_.backfill == BackfillMode::kEasy
              ? 1
              : std::max(1, config_.reservation_depth);
      for (std::size_t q = head;
           q < queue.size() &&
           static_cast<int>(reservations.size()) < reservation_count;
           ++q) {
        if (placed[q]) continue;
        auto r = compute_reservation(*catalog_, occ, live, queue[q].alloc_size,
                                     now, arena);
        if (!r) {
          if (q == head) break;  // head can never fit: no safe backfilling
          continue;
        }
        reservations.push_back(std::move(*r));
      }
      if (reservations.empty()) break;

      auto admissible = [&](double est_finish, const NodeSet& mask) {
        for (const Reservation& r : reservations) {
          const bool in_time = est_finish <= r.time + 1e-9;
          if (!in_time && mask.intersects(r.mask)) return false;
        }
        return true;
      };

      int examined = 0;
      for (std::size_t j = head + 1;
           j < queue.size() && examined < config_.backfill_depth; ++j) {
        if (placed[j]) continue;
        ++examined;
        const WaitingJob& filler = queue[j];
        candidates.clear();
        if (idx != nullptr) {
          idx->free_entries_of_size(filler.alloc_size, candidates);
        } else {
          catalog_->free_entries_of_size(occ, filler.alloc_size, candidates);
        }
        note_scan(filler.alloc_size, candidates.size());
        if (candidates.empty()) continue;
        ArenaVector<int> allowed(s.arena);
        for (const int c : candidates) {
          if (admissible(now + filler.estimate, catalog_->entry(c).mask)) {
            allowed.push_back(c);
          }
        }
        if (allowed.empty()) continue;
        const NodeSet& flagged = query_predictor(filler);
        const PlacementContext ctx =
            make_context(occ, flagged, filler.size, idx, arena);
        PlacementExplain explain;
        const int chosen =
            policy_->choose(ctx, allowed, tracing ? &explain : nullptr);
        start_job(filler, chosen, flagged, allowed, explain, /*backfill=*/true);
        placed[j] = 1;
      }
    }
    break;  // FCFS: the head job stays first in line
  }

  if (obs_.counters != nullptr) {
    obs_.counters->add(obs::Counter::kSchedMigrations,
                       static_cast<std::uint64_t>(decision.migrations.size()));
  }
  if (timing) {
    const auto elapsed = std::chrono::steady_clock::now() - t_begin;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    if (obs_.counters != nullptr) {
      obs_.counters->add(obs::Counter::kSchedDecisionNanos,
                         static_cast<std::uint64_t>(ns));
    }
    if (obs_.histograms != nullptr) {
      obs_.histograms->add(obs::Hist::kDecisionUs,
                           static_cast<double>(ns) / 1000.0);
    }
  }
  return decision;
}

std::unique_ptr<Scheduler> make_krevat_scheduler(const PartitionCatalog& catalog,
                                                 const FaultPredictor& predictor,
                                                 SchedulerConfig config) {
  return std::make_unique<Scheduler>(catalog, std::make_unique<MfpLossPolicy>(),
                                     predictor, config);
}

std::unique_ptr<Scheduler> make_balancing_scheduler(const PartitionCatalog& catalog,
                                                    const FaultPredictor& predictor,
                                                    SchedulerConfig config) {
  return std::make_unique<Scheduler>(catalog, std::make_unique<BalancingPolicy>(),
                                     predictor, config);
}

std::unique_ptr<Scheduler> make_tiebreak_scheduler(const PartitionCatalog& catalog,
                                                   const FaultPredictor& predictor,
                                                   SchedulerConfig config) {
  return std::make_unique<Scheduler>(catalog, std::make_unique<TieBreakPolicy>(),
                                     predictor, config);
}

}  // namespace bgl
