#include "sched/scheduler.hpp"

#include <chrono>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "sched/algorithm.hpp"
#include "util/error.hpp"

namespace bgl {

const char* to_string(BackfillMode mode) {
  switch (mode) {
    case BackfillMode::kNone: return "none";
    case BackfillMode::kEasy: return "easy";
    case BackfillMode::kConservative: return "conservative";
  }
  return "?";
}

Scheduler::Scheduler(const PartitionCatalog& catalog,
                     std::unique_ptr<PlacementPolicy> policy,
                     const FaultPredictor& predictor, SchedulerConfig config)
    : catalog_(&catalog),
      policy_(std::move(policy)),
      predictor_(&predictor),
      config_(config),
      algorithm_(make_scheduling_algorithm(config.algorithm)) {
  BGL_CHECK(policy_ != nullptr, "scheduler requires a placement policy");
  BGL_CHECK(config_.backfill_depth >= 0, "backfill depth must be non-negative");
}

Scheduler::~Scheduler() = default;

std::string Scheduler::algorithm_name() const { return algorithm_->name(); }

SchedulingDecision Scheduler::schedule(double now, const std::vector<WaitingJob>& queue,
                                       const std::vector<RunningJob>& running,
                                       const NodeSet& occupied,
                                       const FreePartitionIndex* index) const {
  // Decision latency feeds both the counter (total ns) and the histogram
  // (per-decision µs); time manually so one clock read serves both.
  // schedule() has a single return, so no scope guard is needed.
  const bool timing = obs_.counters != nullptr || obs_.histograms != nullptr;
  std::chrono::steady_clock::time_point t_begin;
  if (timing) t_begin = std::chrono::steady_clock::now();
  if (obs_.counters != nullptr) {
    obs_.counters->add(obs::Counter::kSchedInvocations);
  }
  // The sched.pass span opens after t_begin and closes before the elapsed
  // read below, so its total is contained in sched.decision_ns — the
  // tiling property the bench_scale acceptance check asserts.
  obs::PhaseProfiler* const prof = obs_.profiler;
  if (prof != nullptr) prof->begin(obs::Phase::kSchedPass);

  SchedulingDecision decision;

  // Scratch selection: the pooled member in arena mode (steady state: zero
  // heap allocations per pass), a throwaway local otherwise (every buffer
  // below allocates fresh — the reference cost profile the perf gate
  // measures against).
  SchedulerPassScratch local;
  if (config_.arena_scratch && pass_scratch_ == nullptr) {
    pass_scratch_ = std::make_unique<SchedulerPassScratch>();
  }
  SchedulerPassScratch& s = config_.arena_scratch ? *pass_scratch_ : local;
  PlacementArena* arena = config_.arena_scratch ? &s.arena : nullptr;
  s.arena.reset();
  s.occ = occupied;  // copy-assign reuses the pooled buffer when widths match
  s.live.assign(running.begin(), running.end());

  // Working copy of the caller's incremental index, kept in lockstep with
  // the pass-local `s.occ`. Reassignment reuses the scratch's buffers and
  // shares the immutable CSR layout, so this is a ~40 KB copy, not a build.
  FreePartitionIndex* idx = nullptr;
  if (index != nullptr) {
    obs::ScopedPhase sync_span(prof, obs::Phase::kIndexSync);
    BGL_CHECK(index->occupied() == occupied,
              "free-partition index out of sync with occupancy");
    if (scratch_index_ == nullptr) {
      scratch_index_ = std::make_unique<FreePartitionIndex>(*index);
    } else {
      *scratch_index_ = *index;
    }
    idx = scratch_index_.get();
  }

  // The configured algorithm drives the pass; every commit — occupancy,
  // index, live set, counters, audit records — goes through SchedulingPass
  // so the observability contract is discipline-independent.
  SchedulingPass pass(*catalog_, *policy_, *predictor_, config_, obs_, now,
                      queue, s, arena, idx, decision);
  algorithm_->run(pass);

  if (prof != nullptr) prof->end();
  if (obs_.counters != nullptr) {
    obs_.counters->add(obs::Counter::kSchedMigrations,
                       static_cast<std::uint64_t>(decision.migrations.size()));
  }
  if (timing) {
    const auto elapsed = std::chrono::steady_clock::now() - t_begin;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    if (obs_.counters != nullptr) {
      obs_.counters->add(obs::Counter::kSchedDecisionNanos,
                         static_cast<std::uint64_t>(ns));
    }
    if (obs_.histograms != nullptr) {
      obs_.histograms->add(obs::Hist::kDecisionUs,
                           static_cast<double>(ns) / 1000.0);
    }
  }
  return decision;
}

std::unique_ptr<Scheduler> make_krevat_scheduler(const PartitionCatalog& catalog,
                                                 const FaultPredictor& predictor,
                                                 SchedulerConfig config) {
  return std::make_unique<Scheduler>(catalog, std::make_unique<MfpLossPolicy>(),
                                     predictor, config);
}

std::unique_ptr<Scheduler> make_balancing_scheduler(const PartitionCatalog& catalog,
                                                    const FaultPredictor& predictor,
                                                    SchedulerConfig config) {
  return std::make_unique<Scheduler>(catalog, std::make_unique<BalancingPolicy>(),
                                     predictor, config);
}

std::unique_ptr<Scheduler> make_tiebreak_scheduler(const PartitionCatalog& catalog,
                                                   const FaultPredictor& predictor,
                                                   SchedulerConfig config) {
  return std::make_unique<Scheduler>(catalog, std::make_unique<TieBreakPolicy>(),
                                     predictor, config);
}

}  // namespace bgl
