// Placement policies (§5 of the paper).
//
// Given the set of free candidate partitions for a job, a policy picks one:
//
//   * MfpLossPolicy   — Krevat's heuristic: keep the maximal free partition
//                       as large as possible after placement (equivalently,
//                       minimise L_MFP). Fault-unaware.
//   * BalancingPolicy — §5.2.1: minimise E_loss = L_MFP + L_PF where
//                       L_PF = P_f * s_j and P_f combines the predictor's
//                       per-node probabilities over the candidate.
//   * TieBreakPolicy  — §5.2.2: Krevat's heuristic, but among candidates
//                       tied at the optimal MFP prefer one the boolean
//                       predictor does not expect to fail; if every
//                       candidate is predicted to fail, fall back to an
//                       arbitrary (first) choice, as the paper specifies.
//
// All policies are deterministic given the context (stochastic predictors
// already folded their coins into ctx.flagged).
#pragma once

#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sched/arena.hpp"
#include "sched/types.hpp"
#include "torus/catalog.hpp"
#include "torus/index.hpp"

namespace bgl {

namespace obs {
class CounterRegistry;
}

struct PlacementContext {
  const PartitionCatalog* catalog = nullptr;
  const NodeSet* occupied = nullptr;   ///< Current occupancy (scratch view).
  /// Incremental free-partition view synced to *occupied (nullable). When
  /// set, policies answer mfp_after via the index's candidate overlay
  /// (only entries free under the base occupancy are tested against the
  /// candidate mask) instead of rescanning the catalog. Answers are
  /// bit-for-bit identical either way; the catalog scan stays as the
  /// reference path.
  const FreePartitionIndex* index = nullptr;
  int mfp_before_index = -1;           ///< first_free_index(occupied).
  int mfp_before_size = 0;             ///< MFP size before placing the job.
  const NodeSet* flagged = nullptr;    ///< Predictor flags for the job window.
  double confidence = 0.0;             ///< Per-node probability of flags.
  PartitionFailureRule pf_rule = PartitionFailureRule::kProduct;
  int job_size = 1;                    ///< s_j (requested, not rounded).
  obs::CounterRegistry* counters = nullptr;  ///< Hot-path stats (nullable).
  /// Per-decision scratch arena (nullable). Policies draw their score
  /// buffers from it when present; with nullptr they fall back to heap
  /// allocation (the pre-arena reference behaviour).
  PlacementArena* arena = nullptr;
};

/// Why a policy chose the candidate it chose: the loss terms of the chosen
/// partition under the balancing decomposition E_loss = L_MFP + L_PF (§5.2).
/// Policies that do not score a term report it as 0 (e.g. L_PF under the
/// fault-unaware MFP-loss policy). Consumed by the `sched_decision` trace
/// event (docs/OBSERVABILITY.md).
struct PlacementExplain {
  double l_mfp = 0.0;   ///< MFP shrinkage (nodes) caused by the placement.
  double l_pf = 0.0;    ///< Expected failure loss P_f * s_j.
  double e_loss = 0.0;  ///< The value the policy minimised.
  int mfp_after = 0;    ///< MFP size after the hypothetical placement.
  int flags = 0;        ///< Predictor-flagged nodes inside the chosen mask.
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Pick one of `candidates` (catalog entry indices, all free, non-empty).
  /// When `explain` is non-null, fill it for the chosen candidate (tracing
  /// path only; a null explain must not change the choice or its cost).
  /// The span form lets the engine pass arena-backed candidate arrays
  /// without copying into a std::vector.
  virtual int choose(const PlacementContext& ctx, std::span<const int> candidates,
                     PlacementExplain* explain = nullptr) const = 0;

  /// Brace-list convenience for tests and examples: choose(ctx, {a, b}).
  int choose(const PlacementContext& ctx, std::initializer_list<int> candidates,
             PlacementExplain* explain = nullptr) const {
    return choose(ctx, std::span<const int>(candidates.begin(), candidates.size()),
                  explain);
  }

  virtual std::string name() const = 0;
};

class MfpLossPolicy final : public PlacementPolicy {
 public:
  using PlacementPolicy::choose;
  int choose(const PlacementContext& ctx, std::span<const int> candidates,
             PlacementExplain* explain = nullptr) const override;
  std::string name() const override { return "mfp-loss"; }
};

class BalancingPolicy final : public PlacementPolicy {
 public:
  using PlacementPolicy::choose;
  int choose(const PlacementContext& ctx, std::span<const int> candidates,
             PlacementExplain* explain = nullptr) const override;
  std::string name() const override { return "balancing"; }
};

class TieBreakPolicy final : public PlacementPolicy {
 public:
  using PlacementPolicy::choose;
  int choose(const PlacementContext& ctx, std::span<const int> candidates,
             PlacementExplain* explain = nullptr) const override;
  std::string name() const override { return "tie-break"; }
};

/// Partition failure probability for a candidate with `flagged_in_partition`
/// predicted-faulty nodes of per-node probability `confidence`.
double partition_failure_probability(int flagged_in_partition, double confidence,
                                     PartitionFailureRule rule);

}  // namespace bgl
