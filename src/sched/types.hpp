// Shared scheduler data types.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace bgl {

/// How per-node failure probabilities combine into a partition probability.
/// The paper states both rules (§4.1 uses max, §5.2.1 uses the product
/// complement); they differ only when several predicted-faulty nodes fall in
/// one candidate. kProduct is the rule the balancing algorithm's E_loss
/// derivation uses and is the default.
enum class PartitionFailureRule { kProduct, kMax };

/// A job waiting in the FCFS queue, in priority order (oldest first).
struct WaitingJob {
  std::uint64_t id = 0;
  int size = 1;        ///< Requested nodes s_j (used in L_PF = P_f * s_j).
  int alloc_size = 1;  ///< Rounded-up allocatable partition size.
  double estimate = 0.0;
};

/// A job currently running on the torus.
struct RunningJob {
  std::uint64_t id = 0;
  int entry_index = -1;     ///< Catalog entry of its partition.
  double est_finish = 0.0;  ///< start + user estimate (backfill horizon).
};

/// Decision: start job `id` on catalog entry `entry_index` now.
struct Start {
  std::uint64_t id = 0;
  int entry_index = -1;
};

/// Decision: move running job `id` between partitions (checkpoint-free in
/// the paper's study, so it is instantaneous).
struct Migration {
  std::uint64_t id = 0;
  int from_entry = -1;
  int to_entry = -1;
};

/// Decision audit record for one placement, captured only when tracing is
/// enabled (obs::Observer::trace). Field semantics match the
/// `sched_decision` trace event in docs/OBSERVABILITY.md.
struct PlacementRecord {
  std::uint64_t id = 0;       ///< Scheduler-facing job id.
  int entry_index = -1;       ///< Chosen catalog entry.
  int candidates = 0;         ///< Free candidates offered to the policy.
  int flags_in_chosen = 0;    ///< Predictor-flagged nodes in the chosen mask.
  double l_mfp = 0.0;         ///< MFP shrinkage caused by the placement.
  double l_pf = 0.0;          ///< Expected failure loss P_f * s_j.
  double e_loss = 0.0;        ///< Combined loss the policy minimised.
  int mfp_after = 0;          ///< MFP size after the placement.
  bool backfill = false;      ///< Placed by the backfill pass.
  /// The binding reservation this backfill placement was admitted against
  /// (the earliest-queued blocked job's). Recorded only by the
  /// reservation-carrying algorithms; res_entry stays -1 for head starts
  /// and for the krevat baseline, and the driver then omits the trace
  /// fields so pre-seam traces remain byte-identical.
  double res_time = -1.0;
  int res_entry = -1;
};

/// One predictor consultation, captured only when tracing is enabled.
struct PredictorQueryRecord {
  std::uint64_t id = 0;        ///< Job the query was made for.
  double window_start = 0.0;   ///< Query window (t0, t1].
  double window_end = 0.0;
  int nodes_flagged = 0;
};

/// One reservation granted during a pass, captured only when tracing is
/// enabled and only by the reservation-carrying algorithms (easy,
/// conservative, easy-holdback). The krevat baseline computes reservations
/// internally but does not record them, keeping its traces byte-identical
/// to every pre-seam run.
struct ReservationRecord {
  std::uint64_t id = 0;   ///< Scheduler-facing id of the job holding it.
  double time = 0.0;      ///< Earliest estimated start.
  int entry_index = -1;   ///< Catalog entry reserved for it.
};

struct SchedulingDecision {
  std::vector<Migration> migrations;  ///< Applied before the starts.
  std::vector<Start> starts;

  // Placement diagnostics (filled by the engine, aggregated by the driver).
  int starts_on_flagged = 0;       ///< Chosen partition contained a flagged node.
  int flagged_with_alternative = 0;  ///< ... although a flag-free candidate existed.

  // Decision audit trail; empty unless the scheduler's observer traces.
  std::vector<PlacementRecord> placements;
  std::vector<PredictorQueryRecord> predictor_queries;
  std::vector<ReservationRecord> reservations;

  bool empty() const { return migrations.empty() && starts.empty(); }
};

/// Backfilling discipline.
enum class BackfillMode {
  kNone,          ///< Strict FCFS: nothing may pass a blocked head job.
  kEasy,          ///< EASY: only the head job holds a reservation (the
                  ///  paper/Krevat behaviour).
  kConservative,  ///< Every examined waiting job holds a reservation; a
                  ///  filler may start only if it cannot delay any of them
                  ///  (spatially conservative approximation: it must finish
                  ///  before the earliest reservation or avoid every
                  ///  reserved partition that starts before it finishes).
};

const char* to_string(BackfillMode mode);

/// Which scheduling algorithm drives a pass (src/sched/algorithm.hpp). The
/// algorithm owns queue traversal and the reservation discipline; placement
/// scoring (PlacementPolicy) and fault prediction (FaultPredictor) remain
/// orthogonal injection points, so every algorithm composes with every
/// scorer/predictor pair and with the migration machinery.
enum class SchedAlgorithm {
  kKrevat,        ///< The paper's engine: FCFS + spatial backfill behind a
                  ///  blocked head, parameterised by BackfillMode. Default;
                  ///  byte-identical to the pre-seam scheduler.
  kEasy,          ///< EASY backfilling: the blocked head job holds one
                  ///  explicit reservation (time + partition), recorded in
                  ///  the decision trail; fillers must finish before it or
                  ///  avoid the reserved partition.
  kConservative,  ///< Conservative backfilling: every examined waiting job
                  ///  holds a reservation in a queue-order profile; a filler
                  ///  is admitted only if it delays none of them.
  kEasyHoldback,  ///< EASY plus a free-node floor: fillers may not shrink
                  ///  the free pool below SchedulerConfig::holdback_nodes,
                  ///  keeping room for imminent arrivals.
};

const char* to_string(SchedAlgorithm algorithm);
std::optional<SchedAlgorithm> parse_sched_algorithm(std::string_view name);

struct SchedulerConfig {
  /// Queue/reservation discipline of the pass (see SchedAlgorithm).
  SchedAlgorithm algorithm = SchedAlgorithm::kKrevat;
  BackfillMode backfill = BackfillMode::kEasy;
  bool migration = true;
  /// Max queued jobs examined per backfill pass (the head job excluded);
  /// under kConservative also the number of jobs holding reservations.
  int backfill_depth = 64;
  /// Reservations computed per pass under kConservative (krevat only; the
  /// conservative *algorithm* reserves for every job it examines, capped by
  /// backfill_depth).
  int reservation_depth = 8;
  /// kEasyHoldback: free nodes a filler must leave behind. A filler of
  /// alloc size a is admitted only if free_nodes - a >= holdback_nodes.
  int holdback_nodes = 8;
  PartitionFailureRule pf_rule = PartitionFailureRule::kProduct;
  /// Reuse one arena + scratch-set pool across scheduling passes instead of
  /// allocating per decision. Decisions are identical either way; false is
  /// the pre-arena allocating behaviour, kept as the perf-gate reference.
  bool arena_scratch = true;
};

}  // namespace bgl
