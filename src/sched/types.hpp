// Shared scheduler data types.
#pragma once

#include <cstdint>
#include <vector>

namespace bgl {

/// How per-node failure probabilities combine into a partition probability.
/// The paper states both rules (§4.1 uses max, §5.2.1 uses the product
/// complement); they differ only when several predicted-faulty nodes fall in
/// one candidate. kProduct is the rule the balancing algorithm's E_loss
/// derivation uses and is the default.
enum class PartitionFailureRule { kProduct, kMax };

/// A job waiting in the FCFS queue, in priority order (oldest first).
struct WaitingJob {
  std::uint64_t id = 0;
  int size = 1;        ///< Requested nodes s_j (used in L_PF = P_f * s_j).
  int alloc_size = 1;  ///< Rounded-up allocatable partition size.
  double estimate = 0.0;
};

/// A job currently running on the torus.
struct RunningJob {
  std::uint64_t id = 0;
  int entry_index = -1;     ///< Catalog entry of its partition.
  double est_finish = 0.0;  ///< start + user estimate (backfill horizon).
};

/// Decision: start job `id` on catalog entry `entry_index` now.
struct Start {
  std::uint64_t id = 0;
  int entry_index = -1;
};

/// Decision: move running job `id` between partitions (checkpoint-free in
/// the paper's study, so it is instantaneous).
struct Migration {
  std::uint64_t id = 0;
  int from_entry = -1;
  int to_entry = -1;
};

/// Decision audit record for one placement, captured only when tracing is
/// enabled (obs::Observer::trace). Field semantics match the
/// `sched_decision` trace event in docs/OBSERVABILITY.md.
struct PlacementRecord {
  std::uint64_t id = 0;       ///< Scheduler-facing job id.
  int entry_index = -1;       ///< Chosen catalog entry.
  int candidates = 0;         ///< Free candidates offered to the policy.
  int flags_in_chosen = 0;    ///< Predictor-flagged nodes in the chosen mask.
  double l_mfp = 0.0;         ///< MFP shrinkage caused by the placement.
  double l_pf = 0.0;          ///< Expected failure loss P_f * s_j.
  double e_loss = 0.0;        ///< Combined loss the policy minimised.
  int mfp_after = 0;          ///< MFP size after the placement.
  bool backfill = false;      ///< Placed by the backfill pass.
};

/// One predictor consultation, captured only when tracing is enabled.
struct PredictorQueryRecord {
  std::uint64_t id = 0;        ///< Job the query was made for.
  double window_start = 0.0;   ///< Query window (t0, t1].
  double window_end = 0.0;
  int nodes_flagged = 0;
};

struct SchedulingDecision {
  std::vector<Migration> migrations;  ///< Applied before the starts.
  std::vector<Start> starts;

  // Placement diagnostics (filled by the engine, aggregated by the driver).
  int starts_on_flagged = 0;       ///< Chosen partition contained a flagged node.
  int flagged_with_alternative = 0;  ///< ... although a flag-free candidate existed.

  // Decision audit trail; empty unless the scheduler's observer traces.
  std::vector<PlacementRecord> placements;
  std::vector<PredictorQueryRecord> predictor_queries;

  bool empty() const { return migrations.empty() && starts.empty(); }
};

/// Backfilling discipline.
enum class BackfillMode {
  kNone,          ///< Strict FCFS: nothing may pass a blocked head job.
  kEasy,          ///< EASY: only the head job holds a reservation (the
                  ///  paper/Krevat behaviour).
  kConservative,  ///< Every examined waiting job holds a reservation; a
                  ///  filler may start only if it cannot delay any of them
                  ///  (spatially conservative approximation: it must finish
                  ///  before the earliest reservation or avoid every
                  ///  reserved partition that starts before it finishes).
};

const char* to_string(BackfillMode mode);

struct SchedulerConfig {
  BackfillMode backfill = BackfillMode::kEasy;
  bool migration = true;
  /// Max queued jobs examined per backfill pass (the head job excluded);
  /// under kConservative also the number of jobs holding reservations.
  int backfill_depth = 64;
  /// Reservations computed per pass under kConservative.
  int reservation_depth = 8;
  PartitionFailureRule pf_rule = PartitionFailureRule::kProduct;
  /// Reuse one arena + scratch-set pool across scheduling passes instead of
  /// allocating per decision. Decisions are identical either way; false is
  /// the pre-arena allocating behaviour, kept as the perf-gate reference.
  bool arena_scratch = true;
};

}  // namespace bgl
