#include "sched/migration.hpp"

#include <algorithm>

#include "sched/policy.hpp"
#include "util/error.hpp"

namespace bgl {

namespace {

// Shared body, generic over the scratch container type (std::vector on the
// reference path, ArenaVector when the engine passes its decision arena).
template <typename JobVec, typename IntVec>
std::optional<RepackResult> repack_impl(const PartitionCatalog& catalog,
                                        const std::vector<RunningJob>& running,
                                        int head_alloc_size,
                                        const NodeSet* obstacles,
                                        PlacementArena* arena, JobVec& order,
                                        IntVec& candidates) {
  for (const RunningJob& r : running) order.push_back(r);
  std::sort(order.data(), order.data() + order.size(),
            [&](const RunningJob& a, const RunningJob& b) {
              const int sa = catalog.entry(a.entry_index).size;
              const int sb = catalog.entry(b.entry_index).size;
              if (sa != sb) return sa > sb;  // largest first packs best
              if (a.est_finish != b.est_finish) return a.est_finish > b.est_finish;
              return a.id < b.id;
            });

  RepackResult result;
  if (obstacles != nullptr) {
    BGL_CHECK(obstacles->bits() == catalog.num_nodes(),
              "obstacle set width must match the machine");
    result.occupied_after = *obstacles;
  } else {
    result.occupied_after = NodeSet(catalog.num_nodes());
  }
  result.running_after.reserve(order.size());

  MfpLossPolicy packer;
  NodeSet no_flags(catalog.num_nodes());

  for (std::size_t i = 0; i < order.size(); ++i) {
    const RunningJob& r = order[i];
    const int size = catalog.entry(r.entry_index).size;
    candidates.clear();
    catalog.free_entries_of_size(result.occupied_after, size, candidates);
    if (candidates.empty()) return std::nullopt;  // greedy packing failed

    PlacementContext ctx;
    ctx.catalog = &catalog;
    ctx.occupied = &result.occupied_after;
    ctx.mfp_before_index = catalog.first_free_index(result.occupied_after);
    ctx.mfp_before_size =
        ctx.mfp_before_index < 0 ? 0 : catalog.entry(ctx.mfp_before_index).size;
    ctx.flagged = &no_flags;
    ctx.job_size = size;
    ctx.arena = arena;
    const int chosen = packer.choose(
        ctx, std::span<const int>(candidates.data(), candidates.size()));

    result.occupied_after |= catalog.entry(chosen).mask;
    RunningJob moved = r;
    moved.entry_index = chosen;
    result.running_after.push_back(moved);
    if (chosen != r.entry_index) {
      result.migrations.push_back(Migration{r.id, r.entry_index, chosen});
    }
  }

  if (!catalog.has_free_of_size(result.occupied_after, head_alloc_size)) {
    return std::nullopt;  // compaction does not help the head job
  }
  return result;
}

}  // namespace

std::optional<RepackResult> try_repack(const PartitionCatalog& catalog,
                                       const std::vector<RunningJob>& running,
                                       int head_alloc_size,
                                       const NodeSet* obstacles,
                                       PlacementArena* arena) {
  if (arena != nullptr) {
    ArenaVector<RunningJob> order(*arena);
    order.reserve(running.size());
    ArenaVector<int> candidates(*arena);
    return repack_impl(catalog, running, head_alloc_size, obstacles, arena,
                       order, candidates);
  }
  std::vector<RunningJob> order;
  order.reserve(running.size());
  std::vector<int> candidates;
  return repack_impl(catalog, running, head_alloc_size, obstacles, arena, order,
                     candidates);
}

}  // namespace bgl
