// PlacementArena: per-decision scratch memory for the scheduling engine.
//
// One scheduler invocation churns through a family of short-lived buffers —
// candidate entry lists, per-candidate score arrays, the placed bitmap, the
// sorted running-job copies inside backfill and migration. Allocating each
// from the heap puts malloc/free on the per-decision hot path (millions of
// invocations in a full-machine trace). The arena replaces that with a
// monotonic bump allocator: allocation is a pointer increment into a chunk,
// nothing is ever freed individually, and reset() at the top of the next
// invocation rewinds the chunks for reuse. Steady state performs zero heap
// allocations per decision.
//
// ArenaVector<T> is the companion container for trivially copyable element
// types: a std::vector-shaped grow-by-doubling array whose storage comes
// from the arena. Growth abandons the old block (monotonic arenas cannot
// free), which wastes at most the final capacity again — bounded and
// reclaimed wholesale by the next reset().
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace bgl {

class PlacementArena {
 public:
  PlacementArena() = default;
  PlacementArena(const PlacementArena&) = delete;
  PlacementArena& operator=(const PlacementArena&) = delete;

  /// Uninitialised storage for `n` elements of T. Alignment follows T.
  template <typename T>
  T* alloc(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "arena storage holds trivially copyable types only");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewind every chunk for reuse; capacity is retained, nothing returns to
  /// the heap. Invalidates all outstanding allocations.
  void reset() {
    chunk_index_ = 0;
    offset_ = 0;
  }

  /// Total bytes currently reserved from the heap (test introspection).
  std::size_t reserved_bytes() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    while (true) {
      if (chunk_index_ < chunks_.size()) {
        Chunk& chunk = chunks_[chunk_index_];
        const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
        if (aligned + bytes <= chunk.size) {
          offset_ = aligned + bytes;
          return chunk.data.get() + aligned;
        }
        ++chunk_index_;
        offset_ = 0;
        continue;
      }
      // All chunks exhausted: grow. Chunks double so a pass needing more
      // than the steady-state footprint settles after O(log n) allocations.
      std::size_t want = next_chunk_bytes_;
      while (want < bytes + align) want *= 2;
      chunks_.push_back(Chunk{std::make_unique<std::byte[]>(want), want});
      next_chunk_bytes_ = want * 2;
      offset_ = 0;
    }
  }

  static constexpr std::size_t kFirstChunkBytes = 1 << 16;

  std::vector<Chunk> chunks_;
  std::size_t chunk_index_ = 0;
  std::size_t offset_ = 0;
  std::size_t next_chunk_bytes_ = kFirstChunkBytes;
};

/// Grow-by-doubling array over arena storage (trivially copyable T only).
/// Cleared implicitly by PlacementArena::reset(); never call into one after
/// its arena has been reset.
template <typename T>
class ArenaVector {
 public:
  explicit ArenaVector(PlacementArena& arena) : arena_(&arena) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  const T* data() const { return data_; }
  T* data() { return data_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }

  operator std::span<const T>() const { return {data_, size_}; }

  void clear() { size_ = 0; }

  void reserve(std::size_t capacity) {
    if (capacity <= capacity_) return;
    T* grown = arena_->alloc<T>(capacity);
    if (size_ != 0) std::memcpy(grown, data_, size_ * sizeof(T));
    data_ = grown;
    capacity_ = capacity;
  }

  void push_back(const T& value) {
    if (size_ == capacity_) reserve(capacity_ == 0 ? 8 : capacity_ * 2);
    data_[size_++] = value;
  }

  /// Size to `n` default-filled elements (contents unspecified beyond the
  /// copied prefix — callers overwrite, as with the placed bitmap).
  void assign(std::size_t n, const T& value) {
    reserve(n);
    size_ = n;
    for (std::size_t i = 0; i < n; ++i) data_[i] = value;
  }

 private:
  PlacementArena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace bgl
