// SweepRunner: execute every (cell, repeat) of a SweepSpec on a thread
// pool and reduce the results deterministically.
//
// Parallelism model: the unit of work is one simulation — (cell, repeat) —
// so even a 3-cell ablation with 5 repeats fans out to 15 units. Each unit
// writes into its own pre-allocated slot (its own CounterRegistry /
// HistogramRegistry — nothing process-global); after the pool drains, the
// runner reduces slots in (cell, repeat) order: repeat metrics average in
// repeat order (bit-stable floating-point), registries merge repeat-then-
// cell order. Every input of a unit is a pure function of (spec, cell,
// repeat) — see derive_seeds() — so the reduction sees identical operands
// in identical order whatever the thread count: `--threads 8` output is
// byte-identical to `--threads 1`.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "exp/sweep.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"

namespace bgl::exp {

struct RunOptions {
  /// Worker threads; <= 1 runs inline on the caller (no pool).
  int threads = 1;
  /// Progress hook, called after each completed simulation with
  /// (done, total). Serialized by the runner; keep it cheap.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// The executed grid: per-cell averaged summaries plus the sweep-wide
/// observability registries, all reduced in deterministic order.
class SweepResult {
 public:
  /// Axis extents in spec declaration order (degenerate axes count 1).
  struct Shape {
    std::size_t models = 1, loads = 1, failures = 1, schedulers = 1,
                algorithms = 1, alphas = 1, predictors = 1, configs = 1;
  };

  const Shape& shape() const { return shape_; }
  std::size_t num_cells() const { return cells_.size(); }

  /// Cell summary by flat index (row-major, configs fastest).
  const PointSummary& cell(std::size_t index) const { return cells_.at(index); }

  /// Cell summary by axis position; degenerate axes take index 0.
  const PointSummary& at(std::size_t model, std::size_t load,
                         std::size_t failures, std::size_t scheduler,
                         std::size_t algorithm, std::size_t alpha,
                         std::size_t predictor, std::size_t config) const;

  /// Hot-path counters / distribution histograms over every simulation of
  /// the sweep, merged in (cell, repeat) order.
  const obs::CounterRegistry& counters() const { return counters_; }
  const obs::HistogramRegistry& histograms() const { return histograms_; }
  /// Phase tree over every simulation, merged in the same deterministic
  /// order: span counts and tree structure are thread-count invariant
  /// (wall times are host noise).
  const obs::PhaseProfiler& profiler() const { return profiler_; }

 private:
  friend class SweepRunner;
  Shape shape_;
  std::vector<PointSummary> cells_;
  obs::CounterRegistry counters_;
  obs::HistogramRegistry histograms_;
  obs::PhaseProfiler profiler_;
};

class SweepRunner {
 public:
  /// Expand, execute, reduce. Builds one shared PartitionCatalog for the
  /// torus cells; mesh-topology configs build their own per run (as the
  /// historical benches did). Rethrows the first cell failure.
  SweepResult run(const SweepSpec& spec, const RunOptions& options = {}) const;
};

}  // namespace bgl::exp
