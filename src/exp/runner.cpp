#include "exp/runner.hpp"

#include <algorithm>
#include <mutex>

#include "failure/generator.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "workload/job.hpp"

namespace bgl::exp {

namespace {

/// Everything one (cell, repeat) simulation produces, written into its own
/// slot so execution order cannot leak into the reduction.
struct UnitOutcome {
  SimResult result;
  std::size_t injected_events = 0;
  obs::CounterRegistry counters;
  obs::HistogramRegistry histograms;
  obs::PhaseProfiler profiler;
};

/// One simulation, replicating the historical bench recipe exactly:
/// generate the log, rescale sizes onto the machine, scale the load,
/// stretch the failure trace over the estimated makespan at the nominal
/// density, and simulate under the cell's scheduler configuration.
void run_unit(const SweepSpec& spec, const Cell& cell, int repeat,
              const PartitionCatalog& torus_catalog, UnitOutcome& out) {
  const RepeatSeeds seeds = derive_seeds(spec, cell.index, repeat);
  const SyntheticModel& model = cell.model->model;

  // The machine is the config case's dims (default: the paper's 4x4x8
  // supernode view, identical to the historical hardcoding; scale-up specs
  // override it, e.g. bench_scale's 64x32x32).
  const Dims dims = cell.config->proto.dims;

  Workload w = generate_workload(model, seeds.workload);
  w = rescale_sizes(w, dims.volume());
  const double span = w.arrival_span();
  if (cell.load_scale != 1.0) w = scale_load(w, cell.load_scale);

  double max_runtime = 0.0;
  for (const Job& j : w.jobs) max_runtime = std::max(max_runtime, j.runtime);
  const double trace_span = span * 1.05 + 2.0 * max_runtime;
  out.injected_events =
      span_scaled_events(cell.nominal_failures, trace_span, model);

  FailureModel fm = FailureModel::bluegene_l(out.injected_events, trace_span);
  fm.num_nodes = dims.volume();  // no-op at paper scale (128)
  const FailureTrace trace = generate_failures(fm, seeds.trace);

  SimConfig config = cell.config->proto;
  config.scheduler = cell.scheduler;
  if (cell.algorithm) config.sched.algorithm = *cell.algorithm;
  if (cell.predictor) config.predictor_model = *cell.predictor;
  config.alpha = cell.alpha;
  config.seed = seeds.sim;
  apply_partition_index_env(config);
  // Each unit records into its own registries; any observer the prototype
  // carried is dropped (a shared TraceSink or registry would race).
  config.obs = obs::Observer{};
  config.obs.counters = &out.counters;
  config.obs.histograms = &out.histograms;
  config.obs.profiler = &out.profiler;

  // The shared catalog is the default paper-scale torus one; cells that
  // deviate on any catalog-shaping axis (mesh topology, non-paper dims,
  // block mode, reference scan kernels) build their own inside
  // run_simulation.
  const bool shares_catalog = config.topology == Topology::kTorus &&
                              config.dims == torus_catalog.dims() &&
                              config.catalog.mode == CatalogOptions::Mode::kBoxes &&
                              !config.catalog.full_width_scans;
  out.result = run_simulation(w, trace, config,
                              shares_catalog ? &torus_catalog : nullptr);
}

}  // namespace

const PointSummary& SweepResult::at(std::size_t model, std::size_t load,
                                    std::size_t failures,
                                    std::size_t scheduler,
                                    std::size_t algorithm, std::size_t alpha,
                                    std::size_t predictor,
                                    std::size_t config) const {
  BGL_CHECK(model < shape_.models && load < shape_.loads &&
                failures < shape_.failures && scheduler < shape_.schedulers &&
                algorithm < shape_.algorithms && alpha < shape_.alphas &&
                predictor < shape_.predictors && config < shape_.configs,
            "sweep cell coordinate out of range");
  const std::size_t index =
      ((((((model * shape_.loads + load) * shape_.failures + failures) *
              shape_.schedulers +
          scheduler) *
             shape_.algorithms +
         algorithm) *
            shape_.alphas +
        alpha) *
           shape_.predictors +
       predictor) *
          shape_.configs +
      config;
  return cells_[index];
}

SweepResult SweepRunner::run(const SweepSpec& spec,
                             const RunOptions& options) const {
  const std::vector<Cell> cells = expand_cells(spec);
  const int repeats = spec.repeats();
  const std::size_t units = cells.size() * static_cast<std::size_t>(repeats);

  // Built once, shared read-only by every torus cell (the catalog has no
  // lazy state; each driver builds its own FreePartitionIndex from it).
  const PartitionCatalog torus_catalog(Dims::bluegene_l());

  std::vector<UnitOutcome> outcomes(units);
  std::mutex progress_mutex;
  std::size_t done = 0;
  util::parallel_for(
      units, options.threads <= 1 ? 1 : static_cast<std::size_t>(options.threads),
      [&](std::size_t u) {
        const Cell& cell = cells[u / static_cast<std::size_t>(repeats)];
        const int repeat = static_cast<int>(u % static_cast<std::size_t>(repeats));
        run_unit(spec, cell, repeat, torus_catalog, outcomes[u]);
        if (options.progress) {
          std::lock_guard<std::mutex> lock(progress_mutex);
          options.progress(++done, units);
        }
      });

  SweepResult result;
  result.shape_.models = spec.models.size();
  result.shape_.loads = std::max<std::size_t>(1, spec.load_scales.size());
  result.shape_.failures = std::max<std::size_t>(1, spec.failure_budgets.size());
  result.shape_.schedulers = std::max<std::size_t>(1, spec.schedulers.size());
  result.shape_.algorithms = std::max<std::size_t>(1, spec.algorithms.size());
  result.shape_.alphas = std::max<std::size_t>(1, spec.alphas.size());
  result.shape_.predictors = std::max<std::size_t>(1, spec.predictors.size());
  result.shape_.configs = std::max<std::size_t>(1, spec.configs.size());

  // Deterministic reduction: repeats average in repeat order within each
  // cell (the exact summation order of the historical serial benches);
  // registries merge in (cell, repeat) order.
  result.cells_.resize(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    PointSummary& s = result.cells_[c];
    s.seeds = repeats;
    obs::HistogramRegistry cell_hists;  // merged repeats, for the p99
    for (int r = 0; r < repeats; ++r) {
      const UnitOutcome& o =
          outcomes[c * static_cast<std::size_t>(repeats) +
                   static_cast<std::size_t>(r)];
      s.wall_seconds += o.result.wall_seconds;
      s.jobs_completed += static_cast<double>(o.result.jobs_completed);
      s.decisions +=
          static_cast<double>(o.counters.value(obs::Counter::kSchedInvocations));
      cell_hists.merge(o.histograms);
      s.slowdown += o.result.avg_bounded_slowdown;
      s.response += o.result.avg_response;
      s.wait += o.result.avg_wait;
      s.utilization += o.result.utilization;
      s.unused += o.result.unused;
      s.lost += o.result.lost;
      s.kills += static_cast<double>(o.result.job_kills);
      s.migrations += static_cast<double>(o.result.migrations);
      s.injected_events += static_cast<double>(o.injected_events);
      s.work_lost_node_hours += o.result.work_lost_node_seconds / 3600.0;
      result.counters_.merge(o.counters);
      result.histograms_.merge(o.histograms);
      result.profiler_.merge(o.profiler);
    }
    s.decision_p99_us =
        cell_hists.histogram(obs::Hist::kDecisionUs).quantile(0.99);
    const double n = static_cast<double>(repeats);
    s.slowdown /= n;
    s.response /= n;
    s.wait /= n;
    s.utilization /= n;
    s.unused /= n;
    s.lost /= n;
    s.kills /= n;
    s.migrations /= n;
    s.injected_events /= n;
    s.work_lost_node_hours /= n;
  }
  return result;
}

}  // namespace bgl::exp
