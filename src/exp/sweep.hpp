// Declarative experiment sweeps over the paper's §6–7 grid.
//
// The paper's results are a cartesian grid — {NASA, SDSC, LLNL} × load
// scale c × failure budget × α ∈ [0, 1] × scheduler × config variant — and
// every figure is one rectangular slice of it. A SweepSpec names those axes
// once; expand_cells() turns the spec into a flat, deterministically
// ordered list of cells (row-major, last axis fastest); SweepRunner
// (runner.hpp) executes the cells on a thread pool. Nothing here depends on
// execution order: a cell's inputs — including every RNG seed — are pure
// functions of (spec, cell index, repeat), which is what makes `--threads 8`
// and `--threads 1` byte-identical.
//
// Environment knobs honoured by the helpers in this header (single source
// of truth for their documentation; misuse is a hard ConfigError, never a
// silent fallback):
//
//   BGL_BENCH_SEEDS  repeats averaged per cell (integer >= 1, default 3;
//                    specs may force a higher floor via repeat_floor)
//   BGL_JOB_SCALE    multiplies synthetic job counts (positive finite
//                    number, default 1.0) — parsed by apply_job_scale_env()
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "workload/synthetic.hpp"

namespace bgl::exp {

/// One value of the workload-model axis.
struct ModelCase {
  std::string label;       ///< e.g. "SDSC" — used in table/CSV naming.
  SyntheticModel model;
};

/// One value of the config axis: a SimConfig prototype (backfill /
/// migration / checkpoint / predictor / topology knobs). `alpha`, when set,
/// overrides the alpha axis for every cell of this case — used by sweeps
/// whose variants each carry their own knob value (e.g. the
/// history-predictor ablation, where the oracle runs at α = 1.0 while the
/// oblivious baseline runs at α = 0.0).
struct ConfigCase {
  std::string label;
  SimConfig proto;
  std::optional<double> alpha;
};

/// How per-repeat RNG seeds are derived. Both schemes are pure functions of
/// (spec, cell, repeat) and therefore independent of execution order.
enum class SeedScheme {
  /// The historical bench derivation: workload seed 1000 + 17·repeat,
  /// trace seed 500 + 29·repeat, identical for every cell (cells share
  /// workloads, isolating the axis effect). Keeps every figure CSV
  /// byte-identical to the pre-engine per-figure binaries.
  kSharedAcrossCells,
  /// Decorrelated streams: splitmix64 over (base_seed, cell, repeat,
  /// stream). Use when cells must not share sampling noise (e.g. when the
  /// cells ARE the replicates).
  kPerCell,
};

/// Axes of one sweep. `models` must be non-empty; every other axis left
/// empty iterates once over its documented default at expand time (so a
/// factory can always `push_back` its values without first clearing a
/// baked-in element):
///
///   load_scales      {1.0}
///   failure_budgets  the paper's per-log budget, paper_failure_count(model)
///   schedulers       {SchedulerKind::kBalancing}
///   algorithms       whatever each ConfigCase proto carries (i.e. the axis
///                    does not override SchedulerConfig::algorithm at all)
///   alphas           {0.0}
///   predictors       whatever each ConfigCase proto carries (i.e. the axis
///                    does not override SimConfig::predictor_model at all)
///   configs          one default-constructed SimConfig, no alpha override
struct SweepSpec {
  std::string name;                       ///< e.g. "fig3" — output naming.

  std::vector<ModelCase> models;
  std::vector<double> load_scales;        ///< The paper's c.
  std::vector<std::size_t> failure_budgets;
  std::vector<SchedulerKind> schedulers;
  /// Scheduling-algorithm axis (docs/SCHEDULERS.md): which backfill
  /// discipline drives the pass, orthogonal to the `schedulers` axis (which
  /// picks the placement-scoring policy + predictor pairing).
  std::vector<SchedAlgorithm> algorithms;
  std::vector<double> alphas;
  /// Predictor-model axis (docs/PREDICTORS.md): which fault-prediction
  /// source feeds the scheduler, orthogonal to `alphas` (the quality /
  /// confidence knob the oracle models consume).
  std::vector<PredictorModel> predictors;
  std::vector<ConfigCase> configs;

  /// Repeats (seeds) averaged per cell: max(BGL_BENCH_SEEDS, repeat_floor).
  /// Noise-sensitive sweeps (the slowdown figures) raise the floor to 5.
  int repeat_floor = 1;
  /// Upper bound on repeats (0 = none). Expensive scale benches cap at 1 so
  /// the BGL_BENCH_SEEDS default does not triple a million-job run.
  int repeat_cap = 0;

  SeedScheme seed_scheme = SeedScheme::kSharedAcrossCells;
  std::uint64_t base_seed = 0;            ///< Only used by kPerCell.

  std::size_t num_cells() const;
  /// Resolved repeats per cell (env + floor). Throws ConfigError on a
  /// malformed BGL_BENCH_SEEDS.
  int repeats() const;
};

/// Position of a cell on each axis, in spec order.
struct CellCoord {
  std::size_t model = 0;
  std::size_t load = 0;
  std::size_t failures = 0;
  std::size_t scheduler = 0;
  std::size_t algorithm = 0;
  std::size_t alpha = 0;
  std::size_t predictor = 0;
  std::size_t config = 0;
};

/// One fully resolved grid cell.
struct Cell {
  std::size_t index = 0;    ///< Flat row-major index (configs fastest).
  CellCoord coord;
  const ModelCase* model = nullptr;
  double load_scale = 1.0;
  /// Nominal failure budget (paper_failure_count(model) when the axis was
  /// left empty).
  std::size_t nominal_failures = 0;
  SchedulerKind scheduler = SchedulerKind::kBalancing;
  /// Set iff the spec's algorithm axis is non-empty; nullopt means "keep the
  /// ConfigCase proto's SchedulerConfig::algorithm" (the degenerate-axis
  /// default, which keeps pre-axis sweeps byte-identical).
  std::optional<SchedAlgorithm> algorithm;
  double alpha = 0.0;       ///< After any ConfigCase override.
  /// Set iff the spec's predictor axis is non-empty; nullopt keeps the
  /// ConfigCase proto's PredictorModel (same degenerate-axis contract).
  std::optional<PredictorModel> predictor;
  const ConfigCase* config = nullptr;
};

/// Expand the spec into its cell list (row-major over the axes in
/// declaration order; `configs` varies fastest). Pointers borrow from
/// `spec`, which must outlive the cells. Throws ConfigError on an empty
/// model axis.
std::vector<Cell> expand_cells(const SweepSpec& spec);

/// The three seeds of one (cell, repeat) simulation.
struct RepeatSeeds {
  std::uint64_t workload = 0;  ///< generate_workload()
  std::uint64_t trace = 0;     ///< generate_failures()
  std::uint64_t sim = 0;       ///< SimConfig::seed (predictor coins)
};

/// Pure function of (spec.seed_scheme, spec.base_seed, cell_index, repeat).
RepeatSeeds derive_seeds(const SweepSpec& spec, std::size_t cell_index,
                         int repeat);

/// splitmix64-mix `parts` into one seed; the building block of
/// SeedScheme::kPerCell, exposed for tests and custom specs.
std::uint64_t mix_seed(std::initializer_list<std::uint64_t> parts);

/// Repeats-per-cell environment default (BGL_BENCH_SEEDS, default 3).
/// Throws ConfigError when the variable is set to anything but an integer
/// >= 1. This is the single documented home of that knob.
int default_repeats_from_env();

/// Seed-averaged metrics of one cell (the mean over its repeats of the
/// §3.4 metric set, in repeat order — so the reduction is bit-stable).
struct PointSummary {
  double slowdown = 0.0;
  double response = 0.0;
  double wait = 0.0;
  double utilization = 0.0;
  double unused = 0.0;
  double lost = 0.0;
  double kills = 0.0;
  double migrations = 0.0;
  double injected_events = 0.0;   ///< Actual failure events per run (avg).
  double work_lost_node_hours = 0.0;
  int seeds = 0;                  ///< Repeats averaged.

  // Host-side throughput of the cell, totalled (not averaged) over its
  // repeats so rates divide out directly: jobs_per_sec() is the cell's
  // aggregate simulation throughput. Filled by the runner from
  // SimResult::wall_seconds and the per-unit counter registries.
  double wall_seconds = 0.0;      ///< Total run_simulation wall time.
  double jobs_completed = 0.0;    ///< Total jobs simulated to completion.
  double decisions = 0.0;         ///< Total schedule() invocations.
  double decision_p99_us = 0.0;   ///< p99 decision latency (merged repeats).

  double jobs_per_sec() const {
    return wall_seconds > 0.0 ? jobs_completed / wall_seconds : 0.0;
  }
  double decisions_per_sec() const {
    return wall_seconds > 0.0 ? decisions / wall_seconds : 0.0;
  }
};

}  // namespace bgl::exp
