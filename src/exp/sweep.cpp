#include "exp/sweep.hpp"

#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bgl::exp {

namespace {

std::size_t axis_size(std::size_t n) { return n == 0 ? 1 : n; }

}  // namespace

std::size_t SweepSpec::num_cells() const {
  return models.size() * axis_size(load_scales.size()) *
         axis_size(failure_budgets.size()) * axis_size(schedulers.size()) *
         axis_size(algorithms.size()) * axis_size(alphas.size()) *
         axis_size(predictors.size()) * axis_size(configs.size());
}

int SweepSpec::repeats() const {
  const int env = default_repeats_from_env();
  const int wanted = env > repeat_floor ? env : repeat_floor;
  if (repeat_cap > 0 && wanted > repeat_cap) return repeat_cap;
  return wanted;
}

std::vector<Cell> expand_cells(const SweepSpec& spec) {
  if (spec.models.empty()) {
    throw ConfigError("sweep '" + spec.name + "': the model axis is empty");
  }
  // Degenerate axes iterate once with the documented default value; the
  // failure axis additionally falls back to the paper's per-log budget.
  const std::size_t n_load = axis_size(spec.load_scales.size());
  const std::size_t n_fail = axis_size(spec.failure_budgets.size());
  const std::size_t n_sched = axis_size(spec.schedulers.size());
  const std::size_t n_algo = axis_size(spec.algorithms.size());
  const std::size_t n_alpha = axis_size(spec.alphas.size());
  const std::size_t n_pred = axis_size(spec.predictors.size());
  const std::size_t n_cfg = axis_size(spec.configs.size());
  static const ConfigCase kDefaultConfig{"", SimConfig{}, std::nullopt};

  std::vector<Cell> cells;
  cells.reserve(spec.num_cells());
  for (std::size_t mi = 0; mi < spec.models.size(); ++mi) {
    for (std::size_t li = 0; li < n_load; ++li) {
      for (std::size_t fi = 0; fi < n_fail; ++fi) {
        for (std::size_t si = 0; si < n_sched; ++si) {
          for (std::size_t gi = 0; gi < n_algo; ++gi) {
            for (std::size_t ai = 0; ai < n_alpha; ++ai) {
              for (std::size_t pi = 0; pi < n_pred; ++pi) {
                for (std::size_t ci = 0; ci < n_cfg; ++ci) {
                  Cell cell;
                  cell.index = cells.size();
                  cell.coord = {mi, li, fi, si, gi, ai, pi, ci};
                  cell.model = &spec.models[mi];
                  cell.load_scale =
                      spec.load_scales.empty() ? 1.0 : spec.load_scales[li];
                  cell.nominal_failures =
                      spec.failure_budgets.empty()
                          ? paper_failure_count(cell.model->model)
                          : spec.failure_budgets[fi];
                  cell.scheduler = spec.schedulers.empty()
                                       ? SchedulerKind::kBalancing
                                       : spec.schedulers[si];
                  if (!spec.algorithms.empty()) {
                    cell.algorithm = spec.algorithms[gi];
                  }
                  if (!spec.predictors.empty()) {
                    cell.predictor = spec.predictors[pi];
                  }
                  cell.config = spec.configs.empty() ? &kDefaultConfig
                                                     : &spec.configs[ci];
                  cell.alpha = cell.config->alpha.value_or(
                      spec.alphas.empty() ? 0.0 : spec.alphas[ai]);
                  cells.push_back(cell);
                }
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

std::uint64_t mix_seed(std::initializer_list<std::uint64_t> parts) {
  // splitmix64 finalizer over a running combine; avalanche is strong enough
  // that (base, cell, repeat, stream) tuples land in decorrelated streams.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t part : parts) {
    h += part + 0x9e3779b97f4a7c15ULL;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
  }
  return h;
}

RepeatSeeds derive_seeds(const SweepSpec& spec, std::size_t cell_index,
                         int repeat) {
  RepeatSeeds seeds;
  const auto r = static_cast<std::uint64_t>(repeat);
  switch (spec.seed_scheme) {
    case SeedScheme::kSharedAcrossCells:
      // The historical bench derivation (bench/common, pre-engine): every
      // cell replays the same workloads/traces so axis contrasts are paired.
      seeds.workload = 1000 + 17 * r;
      seeds.trace = 500 + 29 * r;
      break;
    case SeedScheme::kPerCell:
      seeds.workload = mix_seed({spec.base_seed, cell_index, r, /*stream=*/1});
      seeds.trace = mix_seed({spec.base_seed, cell_index, r, /*stream=*/2});
      break;
  }
  // The predictor-coin seed has always been derived from the trace seed
  // ("seeds" in ASCII) so that regenerating a trace reshuffles the coins.
  seeds.sim = seeds.trace ^ 0x7365656473ULL;
  return seeds;
}

int default_repeats_from_env() {
  const char* env = std::getenv("BGL_BENCH_SEEDS");
  if (env == nullptr) return 3;
  const auto parsed = parse_int(env);
  if (!parsed || *parsed < 1) {
    throw ConfigError("BGL_BENCH_SEEDS must be an integer >= 1, got '" +
                      std::string(env) + "'");
  }
  return static_cast<int>(*parsed);
}

}  // namespace bgl::exp
