// Failure-trace analysis: the statistics the paper's §6.2/§7.1 discussion
// turns on — rate, burstiness, node skew — computed from any trace
// (generated or recorded), for calibration checks and reports.
#pragma once

#include <string>
#include <vector>

#include "failure/trace.hpp"
#include "util/stats.hpp"

namespace bgl {

struct FailureSummary {
  std::size_t events = 0;
  double span_seconds = 0.0;
  double rate_per_day = 0.0;
  /// Coefficient of variation of inter-event gaps (Poisson ≈ 1, bursty ≫ 1).
  double gap_cv = 0.0;
  /// Fraction of events within `burst_window` of their predecessor.
  double clustered_fraction = 0.0;
  /// Fraction of all events on the top 10 % most-failing nodes (skew).
  double top_decile_share = 0.0;
  /// Number of distinct nodes that ever fail.
  int distinct_nodes = 0;
  RunningStats gaps;
};

/// Compute the summary; `burst_window` is the clustering threshold (s).
FailureSummary summarize_failures(const FailureTrace& trace,
                                  double burst_window = 300.0);

/// Multi-line human-readable report.
std::string describe_failures(const FailureTrace& trace);

/// Episodes: maximal runs of events separated by gaps <= `burst_window`.
/// Returns the event count of each episode, in time order.
std::vector<std::size_t> episode_sizes(const FailureTrace& trace,
                                       double burst_window = 300.0);

}  // namespace bgl
