#include "failure/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace bgl {

FailureModel FailureModel::bluegene_l(std::size_t target_events, double span_seconds) {
  FailureModel m;
  m.num_nodes = 128;
  m.span_seconds = span_seconds;
  m.target_events = target_events;
  return m;
}

FailureTrace generate_failures(const FailureModel& model, std::uint64_t seed) {
  BGL_CHECK(model.num_nodes > 0, "failure model needs nodes");
  BGL_CHECK(model.span_seconds > 0.0, "failure model needs a positive span");
  if (model.target_events == 0) return FailureTrace({}, model.num_nodes);

  Rng rng(hash_combine(seed, 0x6661696c75726573ULL));  // "failures"
  std::vector<FailureEvent> events;
  events.reserve(model.target_events + 64);

  // Repeat-offender ranking: a random permutation of the nodes; episode loci
  // are drawn Zipf-skewed over it so low ranks fail most often.
  std::vector<int> offender_rank(static_cast<std::size_t>(model.num_nodes));
  for (int i = 0; i < model.num_nodes; ++i) offender_rank[static_cast<std::size_t>(i)] = i;
  for (std::size_t i = offender_rank.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_int(0, i - 1));
    std::swap(offender_rank[i - 1], offender_rank[j]);
  }
  auto draw_locus = [&]() -> int {
    if (model.node_skew <= 0.0) {
      return static_cast<int>(
          rng.uniform_int(0, static_cast<std::uint64_t>(model.num_nodes - 1)));
    }
    return offender_rank[rng.zipf(static_cast<std::size_t>(model.num_nodes),
                                  model.node_skew)];
  };

  // Generate episodes until we have enough events, then trim. The Weibull
  // renewal gaps are scaled afterwards so the episodes cover the whole span.
  const double expected_per_episode =
      1.0 + model.burst_prob * model.mean_burst_extra;
  const std::size_t approx_episodes = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(static_cast<double>(model.target_events) / expected_per_episode)));

  // Weibull scale chosen so the mean gap tiles the span with approx_episodes.
  const double mean_gap = model.span_seconds / static_cast<double>(approx_episodes);
  const double gamma_term = std::tgamma(1.0 + 1.0 / model.weibull_shape);
  const double scale = mean_gap / gamma_term;

  double t = 0.0;
  while (events.size() < model.target_events) {
    t += rng.weibull(model.weibull_shape, scale);
    // Diurnal thinning: drop some episodes in the quiet phase.
    const double phase = 2.0 * M_PI * std::fmod(t, 86400.0) / 86400.0;
    const double intensity =
        1.0 + model.diurnal_amplitude * std::sin(phase - M_PI / 2.0);
    if (rng.uniform() * (1.0 + model.diurnal_amplitude) > intensity) continue;

    const int locus = draw_locus();
    events.push_back(FailureEvent{t, locus});

    if (rng.bernoulli(model.burst_prob)) {
      // Geometric number of extra members: P(k) ∝ (1-p)^k with mean m.
      const double p = 1.0 / (1.0 + model.mean_burst_extra);
      int extra = 0;
      while (!rng.bernoulli(p)) ++extra;
      for (int k = 0; k < extra && events.size() < model.target_events + 32; ++k) {
        int node;
        if (rng.bernoulli(model.burst_locality)) {
          const int offset = static_cast<int>(rng.uniform_int(
                                 1, static_cast<std::uint64_t>(model.locality_radius))) *
                             (rng.bernoulli(0.5) ? 1 : -1);
          node = ((locus + offset) % model.num_nodes + model.num_nodes) % model.num_nodes;
        } else {
          node = static_cast<int>(
              rng.uniform_int(0, static_cast<std::uint64_t>(model.num_nodes - 1)));
        }
        const double jitter = rng.uniform() * model.burst_spread_seconds;
        events.push_back(FailureEvent{t + jitter, node});
      }
    }
  }

  events.resize(model.target_events);

  // Affine-map onto [margin, span - margin] so early/late behaviour is sane.
  double t_min = events.front().time;
  double t_max = events.front().time;
  for (const FailureEvent& e : events) {
    t_min = std::min(t_min, e.time);
    t_max = std::max(t_max, e.time);
  }
  const double old_span = std::max(t_max - t_min, 1.0);
  for (FailureEvent& e : events) {
    e.time = (e.time - t_min) / old_span * model.span_seconds;
  }

  return FailureTrace(std::move(events), model.num_nodes);
}

}  // namespace bgl
