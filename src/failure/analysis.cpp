#include "failure/analysis.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace bgl {

FailureSummary summarize_failures(const FailureTrace& trace, double burst_window) {
  FailureSummary s;
  s.events = trace.size();
  if (trace.empty()) return s;
  const auto& events = trace.events();
  s.span_seconds = events.back().time - events.front().time;
  s.rate_per_day = trace.mean_rate_per_day();

  std::size_t clustered = 0;
  for (std::size_t i = 1; i < events.size(); ++i) {
    const double gap = events[i].time - events[i - 1].time;
    s.gaps.add(gap);
    if (gap <= burst_window) ++clustered;
  }
  if (s.gaps.count() > 0) {
    s.clustered_fraction =
        static_cast<double>(clustered) / static_cast<double>(s.gaps.count());
    if (s.gaps.mean() > 0.0) s.gap_cv = s.gaps.stddev() / s.gaps.mean();
  }

  std::vector<std::size_t> per_node(static_cast<std::size_t>(trace.num_nodes()), 0);
  for (const FailureEvent& e : events) ++per_node[static_cast<std::size_t>(e.node)];
  s.distinct_nodes = static_cast<int>(
      std::count_if(per_node.begin(), per_node.end(), [](std::size_t c) { return c > 0; }));
  std::sort(per_node.rbegin(), per_node.rend());
  const std::size_t decile = std::max<std::size_t>(1, per_node.size() / 10);
  std::size_t top = 0;
  for (std::size_t i = 0; i < decile; ++i) top += per_node[i];
  s.top_decile_share = static_cast<double>(top) / static_cast<double>(s.events);
  return s;
}

std::string describe_failures(const FailureTrace& trace) {
  const FailureSummary s = summarize_failures(trace);
  std::ostringstream os;
  os << "failure trace: " << s.events << " events over " << trace.num_nodes()
     << " nodes\n";
  if (s.events == 0) return os.str();
  os << "  span " << format_duration(s.span_seconds) << ", rate "
     << format_double(s.rate_per_day, 2) << "/day\n";
  os << "  burstiness: gap CV " << format_double(s.gap_cv, 2) << ", "
     << format_double(100.0 * s.clustered_fraction, 1)
     << "% of events within 5 min of the previous\n";
  os << "  node skew: top decile of nodes takes "
     << format_double(100.0 * s.top_decile_share, 1) << "% of events ("
     << s.distinct_nodes << " nodes ever fail)\n";
  return os.str();
}

std::vector<std::size_t> episode_sizes(const FailureTrace& trace,
                                       double burst_window) {
  std::vector<std::size_t> sizes;
  if (trace.empty()) return sizes;
  const auto& events = trace.events();
  std::size_t current = 1;
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i].time - events[i - 1].time <= burst_window) {
      ++current;
    } else {
      sizes.push_back(current);
      current = 1;
    }
  }
  sizes.push_back(current);
  return sizes;
}

}  // namespace bgl
