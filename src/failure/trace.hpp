// Failure traces: ground truth for both fault injection and prediction.
//
// The paper drives its simulator with a filtered/normalised year-long
// failure log from a 350-node cluster (Sahoo et al., KDD'03), scaled so
// each job log sees a target number of failures (4000 for NASA/SDSC, 1000
// for LLNL) within its span. A FailureTrace here is an immutable,
// time-sorted list of (time, node) events with a per-node index so the
// predictors' window queries ("does node n fail in (t0, t1]?") are binary
// searches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "torus/nodeset.hpp"

namespace bgl {

struct FailureEvent {
  double time = 0.0;
  int node = 0;
  friend bool operator==(const FailureEvent&, const FailureEvent&) = default;
};

class FailureTrace {
 public:
  FailureTrace() = default;

  /// Build from events (any order) on a machine with `num_nodes` nodes.
  FailureTrace(std::vector<FailureEvent> events, int num_nodes);

  int num_nodes() const { return num_nodes_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const std::vector<FailureEvent>& events() const { return events_; }

  /// True if node `node` has a failure event with time in (t0, t1].
  bool node_fails_within(int node, double t0, double t1) const;

  /// Time of the first failure of `node` after t0 (strictly), or +inf.
  double next_failure_after(int node, double t0) const;

  /// Bitmask of all nodes with at least one failure in (t0, t1].
  NodeSet failing_nodes(double t0, double t1) const;

  /// Same, written into `out` (resized to the machine if needed) — the
  /// allocation-free form the scheduler's per-job predictor queries use.
  void failing_nodes_into(NodeSet& out, double t0, double t1) const;

  /// Events with time in (t0, t1], time-ascending.
  std::vector<FailureEvent> events_in(double t0, double t1) const;

  /// Uniform random subsample of exactly `target` events (or a copy if the
  /// trace is smaller). Burst structure is mostly preserved because events
  /// are dropped independently of time. Deterministic in `seed`.
  FailureTrace subsample(std::size_t target, std::uint64_t seed) const;

  /// Affine-map event times from their current span onto [t0, t1].
  FailureTrace retime(double t0, double t1) const;

  /// Failures per day averaged over the event span (0 if < 2 events).
  double mean_rate_per_day() const;

 private:
  int num_nodes_ = 0;
  std::vector<FailureEvent> events_;              ///< time-ascending
  std::vector<std::vector<double>> times_by_node_;  ///< per-node ascending times
};

/// CSV I/O: lines of "time_seconds,node". '#' comments allowed.
FailureTrace read_failure_csv(const std::string& path, int num_nodes);
void write_failure_csv(const std::string& path, const FailureTrace& trace);

}  // namespace bgl
