#include "failure/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace bgl {

FailureTrace::FailureTrace(std::vector<FailureEvent> events, int num_nodes)
    : num_nodes_(num_nodes), events_(std::move(events)) {
  BGL_CHECK(num_nodes_ > 0, "failure trace requires a positive node count");
  for (const FailureEvent& e : events_) {
    BGL_CHECK(e.node >= 0 && e.node < num_nodes_, "failure event node out of range");
  }
  std::sort(events_.begin(), events_.end(), [](const FailureEvent& a, const FailureEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.node < b.node;
  });
  times_by_node_.assign(static_cast<std::size_t>(num_nodes_), {});
  for (const FailureEvent& e : events_) {
    times_by_node_[static_cast<std::size_t>(e.node)].push_back(e.time);
  }
}

bool FailureTrace::node_fails_within(int node, double t0, double t1) const {
  BGL_CHECK(node >= 0 && node < num_nodes_, "node out of range");
  const auto& times = times_by_node_[static_cast<std::size_t>(node)];
  // First time strictly greater than t0; in (t0, t1] iff <= t1.
  const auto it = std::upper_bound(times.begin(), times.end(), t0);
  return it != times.end() && *it <= t1;
}

double FailureTrace::next_failure_after(int node, double t0) const {
  BGL_CHECK(node >= 0 && node < num_nodes_, "node out of range");
  const auto& times = times_by_node_[static_cast<std::size_t>(node)];
  const auto it = std::upper_bound(times.begin(), times.end(), t0);
  return it == times.end() ? std::numeric_limits<double>::infinity() : *it;
}

NodeSet FailureTrace::failing_nodes(double t0, double t1) const {
  NodeSet mask(num_nodes_);
  failing_nodes_into(mask, t0, t1);
  return mask;
}

void FailureTrace::failing_nodes_into(NodeSet& out, double t0, double t1) const {
  if (out.bits() != num_nodes_) out = NodeSet(num_nodes_);
  out.clear();
  auto cmp = [](const FailureEvent& e, double t) { return e.time <= t; };
  auto it = std::lower_bound(events_.begin(), events_.end(), t0, cmp);
  for (; it != events_.end() && it->time <= t1; ++it) out.set(it->node);
}

std::vector<FailureEvent> FailureTrace::events_in(double t0, double t1) const {
  std::vector<FailureEvent> out;
  auto cmp = [](const FailureEvent& e, double t) { return e.time <= t; };
  auto it = std::lower_bound(events_.begin(), events_.end(), t0, cmp);
  for (; it != events_.end() && it->time <= t1; ++it) out.push_back(*it);
  return out;
}

FailureTrace FailureTrace::subsample(std::size_t target, std::uint64_t seed) const {
  if (target >= events_.size()) return *this;
  // Reservoir-free exact sampling: shuffle indices deterministically, take
  // the first `target`, restore time order in the constructor.
  std::vector<std::size_t> indices(events_.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  Rng rng(hash_combine(seed, 0x7375627361ULL));
  for (std::size_t i = indices.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_int(0, i - 1));
    std::swap(indices[i - 1], indices[j]);
  }
  std::vector<FailureEvent> picked;
  picked.reserve(target);
  for (std::size_t i = 0; i < target; ++i) picked.push_back(events_[indices[i]]);
  return FailureTrace(std::move(picked), num_nodes_);
}

FailureTrace FailureTrace::retime(double t0, double t1) const {
  BGL_CHECK(t1 >= t0, "retime target span must be non-degenerate");
  if (events_.empty()) return *this;
  const double old_t0 = events_.front().time;
  const double old_t1 = events_.back().time;
  const double old_span = old_t1 - old_t0;
  std::vector<FailureEvent> mapped = events_;
  for (FailureEvent& e : mapped) {
    const double frac = old_span > 0.0 ? (e.time - old_t0) / old_span : 0.0;
    e.time = t0 + frac * (t1 - t0);
  }
  return FailureTrace(std::move(mapped), num_nodes_);
}

double FailureTrace::mean_rate_per_day() const {
  if (events_.size() < 2) return 0.0;
  const double span = events_.back().time - events_.front().time;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(events_.size()) / (span / 86400.0);
}

FailureTrace read_failure_csv(const std::string& path, int num_nodes) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open failure trace: " + path);
  std::vector<FailureEvent> events;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string text = trim(line);
    if (text.empty() || text[0] == '#') continue;
    const auto fields = split(text, ',');
    if (fields.size() != 2) {
      throw ParseError("failure trace line " + std::to_string(line_number) +
                       ": expected 'time,node'");
    }
    const auto time = parse_double(trim(fields[0]));
    const auto node = parse_int(trim(fields[1]));
    if (!time || !node) {
      throw ParseError("failure trace line " + std::to_string(line_number) + ": bad values");
    }
    events.push_back(FailureEvent{*time, static_cast<int>(*node)});
  }
  return FailureTrace(std::move(events), num_nodes);
}

void write_failure_csv(const std::string& path, const FailureTrace& trace) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open failure trace output: " + path);
  out << "# time_seconds,node\n";
  for (const FailureEvent& e : trace.events()) {
    out << format_double(e.time, 3) << ',' << e.node << '\n';
  }
}

}  // namespace bgl
