// Bursty failure-trace generator.
//
// The paper's failure log "contains many instances of multiple failure
// events, simultaneously reported from different nodes" — burstiness is the
// structural property its §7.1 saturation result depends on, so the
// generator is organised around *episodes*: points of a Weibull-renewal
// process (shape < 1 ⇒ temporally clustered) with diurnal modulation, each
// emitting one or more near-simultaneous node failures clustered around a
// random locus in the torus index space.
#pragma once

#include <cstdint>

#include "failure/trace.hpp"

namespace bgl {

struct FailureModel {
  int num_nodes = 128;
  double span_seconds = 365.0 * 86400.0;  ///< Trace covers [0, span].
  std::size_t target_events = 4000;       ///< Exact event count produced.

  // --- episode process ---
  double weibull_shape = 0.7;     ///< < 1 ⇒ bursty inter-episode gaps.
  double diurnal_amplitude = 0.3; ///< Failures mildly follow load cycles.

  // --- per-episode burst structure ---
  double burst_prob = 0.35;       ///< Probability an episode is multi-node.
  double mean_burst_extra = 4.0;  ///< Geometric mean of extra events.
  double burst_locality = 0.8;    ///< Probability a burst member is within
                                  ///  `locality_radius` ids of the locus.
  int locality_radius = 6;
  double burst_spread_seconds = 120.0;  ///< Jitter of burst member times.

  // --- node skew ---
  // Real cluster failure logs (Sahoo et al., KDD'03) concentrate failures on
  // a small set of repeat-offender nodes; this skew is what makes proactive
  // avoidance profitable. Episode loci are drawn Zipf(node_skew) over a
  // seed-determined random permutation of the nodes (0 = uniform).
  double node_skew = 1.1;

  /// The paper's KDD'03-style trace scaled onto a 128-supernode machine.
  static FailureModel bluegene_l(std::size_t target_events, double span_seconds);
};

/// Generate exactly model.target_events failure events. Deterministic in
/// (model, seed). target_events == 0 yields an empty trace.
FailureTrace generate_failures(const FailureModel& model, std::uint64_t seed);

}  // namespace bgl
