// loadgen: closed-loop load generator for the JSONL scheduling service.
//
// Generates a synthetic workload (and optionally a failure trace), then
// plays it against a SchedulerService as a protocol event stream: submit
// events at arrival times, complete events computed from the start
// decisions the service answers with (finish = start + actual runtime; a
// kill decision cancels the pending complete, the restart re-arms it).
//
// Modes (--mode):
//   emit-stream   print the event stream to stdout, computing completes
//                 against an in-process service. Piping the output into a
//                 sched_server configured identically replays the exact
//                 session (CI's service-smoke job does this).
//   drive         fork/exec a sched_server (--server PATH), stream events
//                 over pipes in lockstep with its ok-framed replies, and
//                 report sustained events/sec + decisions/sec and the
//                 server's decision-latency quantiles. --json-out writes
//                 the measurement (docs/BENCH_service.json).
//   inproc        the drive loop without the process/pipe boundary: calls
//                 SchedulerService directly. Upper bound on the engine
//                 (no JSONL encode/decode, no syscalls).
//   verify        run the same workload through sim/driver.hpp and through
//                 the service adapter (svc/sim_adapter.hpp) and compare
//                 SimResult checksums; exit 1 on mismatch.
//
// Workload/config flags (all hard-error on malformed values):
//   --workload <nasa|sdsc|llnl>  --jobs N  --load C  --failures N  --seed N
//   --scheduler <krevat|balancing|tiebreak>  --algorithm <...>  --alpha A
//   --queue-order <fcfs|sjf|smallest>
//   --no-backfill --conservative-backfill --no-migration
//   --server PATH   sched_server binary for --mode drive
//   --json-out PATH write the drive/inproc measurement as JSON
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "failure/generator.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/reader.hpp"
#include "sim/driver.hpp"
#include "sim/metrics.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"
#include "svc/sim_adapter.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "workload/synthetic.hpp"
#include "workload/transform.hpp"

namespace {

using namespace bgl;

struct Options {
  std::string mode = "drive";
  std::string workload = "sdsc";
  int jobs = 10000;
  double load = 1.0;
  std::size_t failures = 0;
  std::uint64_t seed = 42;
  std::string scheduler = "krevat";
  std::string algorithm = "krevat";
  double alpha = 0.0;
  std::string queue_order = "fcfs";
  BackfillMode backfill = BackfillMode::kEasy;
  bool migration = true;
  std::string server = "./sched_server";
  std::optional<std::string> json_out;
};

long long require_int(const std::string& flag, const std::string& token) {
  const auto v = parse_int(token);
  if (!v) throw ConfigError(flag + " requires an integer, got '" + token + "'");
  return *v;
}

double require_double(const std::string& flag, const std::string& token) {
  const auto v = parse_double(token);
  if (!v) throw ConfigError(flag + " requires a number, got '" + token + "'");
  return *v;
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw ConfigError(arg + " requires a value");
      return std::string(argv[++i]);
    };
    if (arg == "--mode") {
      o.mode = next();
      if (o.mode != "emit-stream" && o.mode != "drive" && o.mode != "inproc" &&
          o.mode != "verify") {
        throw ConfigError("--mode must be emit-stream, drive, inproc or verify");
      }
    } else if (arg == "--workload") {
      o.workload = next();
      if (o.workload != "nasa" && o.workload != "sdsc" && o.workload != "llnl") {
        throw ConfigError("--workload must be nasa, sdsc or llnl");
      }
    } else if (arg == "--jobs") {
      o.jobs = static_cast<int>(require_int(arg, next()));
      if (o.jobs < 1) throw ConfigError("--jobs must be >= 1");
    } else if (arg == "--load") {
      o.load = require_double(arg, next());
      if (o.load <= 0.0) throw ConfigError("--load must be positive");
    } else if (arg == "--failures") {
      const long long n = require_int(arg, next());
      if (n < 0) throw ConfigError("--failures must be >= 0");
      o.failures = static_cast<std::size_t>(n);
    } else if (arg == "--seed") {
      o.seed = static_cast<std::uint64_t>(require_int(arg, next()));
    } else if (arg == "--scheduler") {
      o.scheduler = next();
    } else if (arg == "--algorithm") {
      o.algorithm = next();
    } else if (arg == "--alpha") {
      o.alpha = require_double(arg, next());
    } else if (arg == "--queue-order") {
      o.queue_order = next();
    } else if (arg == "--no-backfill") {
      o.backfill = BackfillMode::kNone;
    } else if (arg == "--conservative-backfill") {
      o.backfill = BackfillMode::kConservative;
    } else if (arg == "--no-migration") {
      o.migration = false;
    } else if (arg == "--server") {
      o.server = next();
    } else if (arg == "--json-out") {
      o.json_out = next();
    } else {
      throw ConfigError("unknown option: " + arg);
    }
  }
  return o;
}

SchedulerKind scheduler_kind(const std::string& name) {
  if (name == "krevat") return SchedulerKind::kKrevat;
  if (name == "balancing") return SchedulerKind::kBalancing;
  if (name == "tiebreak") return SchedulerKind::kTieBreak;
  throw ConfigError("unknown scheduler: '" + name + "'");
}

QueueOrder queue_order_kind(const std::string& name) {
  if (name == "fcfs") return QueueOrder::kFcfs;
  if (name == "sjf") return QueueOrder::kShortestJobFirst;
  if (name == "smallest") return QueueOrder::kSmallestJobFirst;
  throw ConfigError("--queue-order must be fcfs, sjf or smallest");
}

SchedAlgorithm algorithm_kind(const std::string& name) {
  const auto algo = parse_sched_algorithm(name);
  if (!algo) throw ConfigError("unknown algorithm: '" + name + "'");
  return *algo;
}

struct Inputs {
  Workload workload;
  FailureTrace trace;
};

Inputs make_inputs(const Options& o) {
  SyntheticModel model = o.workload == "nasa"   ? SyntheticModel::nasa()
                         : o.workload == "llnl" ? SyntheticModel::llnl()
                                                : SyntheticModel::sdsc();
  model.num_jobs = o.jobs;
  Inputs in;
  in.workload = generate_workload(model, o.seed);
  in.workload = rescale_sizes(in.workload, Dims::bluegene_l().volume());
  if (o.load != 1.0) in.workload = scale_load(in.workload, o.load);

  double max_runtime = 0.0;
  for (const Job& j : in.workload.jobs) {
    max_runtime = std::max(max_runtime, j.runtime);
  }
  const double span = in.workload.arrival_span() * 1.05 + 2.0 * max_runtime;
  in.trace = generate_failures(
      FailureModel::bluegene_l(o.failures, std::max(span, 1.0)),
      o.seed ^ 0xfa17);
  return in;
}

svc::ServiceConfig service_config(const Options& o) {
  svc::ServiceConfig c;
  c.scheduler = scheduler_kind(o.scheduler);
  c.sched.algorithm = algorithm_kind(o.algorithm);
  c.sched.backfill = o.backfill;
  c.sched.migration = o.migration;
  c.queue_order = queue_order_kind(o.queue_order);
  c.alpha = o.alpha;
  c.seed = o.seed;
  return c;
}

// --- transports -----------------------------------------------------------

/// Plays one event, returns the decisions it produced.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void play(const svc::Event& event, std::vector<svc::Decision>& out) = 0;
  virtual void finish() = 0;
};

/// Direct calls into an in-process service. With `echo` set, also prints
/// the protocol encoding of every event to stdout (emit-stream mode).
class InProcessTransport : public Transport {
 public:
  InProcessTransport(const svc::ServiceConfig& config, bool echo)
      : service_(config), echo_(echo) {}

  void play(const svc::Event& event, std::vector<svc::Decision>& out) override {
    if (echo_) {
      line_.clear();
      svc::append_event_line(line_, event);
      std::fwrite(line_.data(), 1, line_.size(), stdout);
    }
    service_.handle(event, out);
  }

  void finish() override {
    service_.finish_stream();
    if (echo_) std::fflush(stdout);
  }

  const svc::SchedulerService& service() const { return service_; }

 private:
  svc::SchedulerService service_;
  bool echo_;
  std::string line_;
};

/// Buffered line reader over a pipe fd.
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  bool next(std::string& line) {
    line.clear();
    while (true) {
      const auto nl = buf_.find('\n', pos_);
      if (nl != std::string::npos) {
        line.assign(buf_, pos_, nl - pos_);
        pos_ = nl + 1;
        if (pos_ > (1u << 16)) {
          buf_.erase(0, pos_);
          pos_ = 0;
        }
        return true;
      }
      char chunk[1 << 16];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) {
        if (pos_ < buf_.size()) {
          line.assign(buf_, pos_, buf_.size() - pos_);
          buf_.clear();
          pos_ = 0;
          return !line.empty();
        }
        return false;
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
  std::size_t pos_ = 0;
};

/// Lockstep client of a forked sched_server: write one event line, read
/// reply lines until the ok (or error) frame, collect the decisions.
class PipeTransport : public Transport {
 public:
  PipeTransport(const std::string& server_path,
                const std::vector<std::string>& server_args) {
    int to_child[2];
    int from_child[2];
    if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
      throw Error("cannot create pipes");
    }
    child_ = ::fork();
    if (child_ < 0) throw Error("fork failed");
    if (child_ == 0) {
      ::dup2(to_child[0], 0);
      ::dup2(from_child[1], 1);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(server_path.c_str()));
      for (const std::string& a : server_args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(server_path.c_str(), argv.data());
      std::perror("execv sched_server");
      ::_exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    write_fd_ = to_child[1];
    reader_ = std::make_unique<FdLineReader>(from_child[0]);
    read_fd_ = from_child[0];
  }

  ~PipeTransport() override {
    if (write_fd_ >= 0) ::close(write_fd_);
    if (read_fd_ >= 0) ::close(read_fd_);
    if (child_ > 0) ::waitpid(child_, nullptr, 0);
  }

  void play(const svc::Event& event, std::vector<svc::Decision>& out) override {
    line_.clear();
    svc::append_event_line(line_, event);
    write_all(line_);
    obs::TraceRecord record;
    while (reader_->next(line_)) {
      ++reply_lines_;
      obs::TraceReader::parse_line(line_, reply_lines_, record);
      const std::string_view type = record.type_name();
      if (type == "ok") return;
      if (type == "error") {
        ++errors_;
        std::cerr << "[loadgen] server rejected a line: " << line_ << '\n';
        return;
      }
      svc::Decision d;
      d.time = record.t();
      if (type == "start") {
        d.kind = svc::DecisionKind::kStart;
        d.job = static_cast<std::uint64_t>(record.require_int("job"));
        d.entry = static_cast<int>(record.require_int("entry"));
      } else if (type == "kill") {
        d.kind = svc::DecisionKind::kKill;
        d.job = static_cast<std::uint64_t>(record.require_int("job"));
        d.entry = static_cast<int>(record.require_int("entry"));
      } else if (type == "migrate") {
        d.kind = svc::DecisionKind::kMigrate;
        d.job = static_cast<std::uint64_t>(record.require_int("job"));
      } else {
        throw Error("unexpected reply line: " + line_);
      }
      out.push_back(d);
    }
    throw Error("server closed the reply stream mid-session");
  }

  void finish() override {
    ::close(write_fd_);
    write_fd_ = -1;
    // Drain the trailing replies; keep the final stats line.
    obs::TraceRecord record;
    while (reader_->next(line_)) {
      ++reply_lines_;
      obs::TraceReader::parse_line(line_, reply_lines_, record);
      if (record.type_name() == "stats") stats_line_ = line_;
      last_record_is_stats_ = record.type_name() == "stats";
    }
    if (last_record_is_stats_) {
      obs::TraceReader::parse_line(stats_line_, reply_lines_, record);
      if (const auto v = record.num("sched.decision_us_p50")) p50_us_ = *v;
      if (const auto v = record.num("sched.decision_us_p99")) p99_us_ = *v;
      if (const auto v = record.num("sched.decision_us_mean")) mean_us_ = *v;
    }
  }

  std::size_t errors() const { return errors_; }
  double p50_us() const { return p50_us_; }
  double p99_us() const { return p99_us_; }
  double mean_us() const { return mean_us_; }

 private:
  void write_all(const std::string& data) {
    const char* p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(write_fd_, p, left);
      if (n <= 0) throw Error("write to sched_server failed");
      p += n;
      left -= static_cast<std::size_t>(n);
    }
  }

  pid_t child_ = -1;
  int write_fd_ = -1;
  int read_fd_ = -1;
  std::unique_ptr<FdLineReader> reader_;
  std::string line_;
  std::string stats_line_;
  bool last_record_is_stats_ = false;
  std::size_t reply_lines_ = 0;
  std::size_t errors_ = 0;
  double p50_us_ = 0.0;
  double p99_us_ = 0.0;
  double mean_us_ = 0.0;
};

// --- the closed loop ------------------------------------------------------

struct LoopResult {
  std::size_t events = 0;
  std::size_t decisions = 0;
  std::size_t starts = 0;
  std::size_t kills = 0;
  double wall_seconds = 0.0;
};

/// Stream the workload through `transport`. Completes are scheduled from
/// the start decisions; a kill invalidates the job's pending complete (the
/// restart pushes a fresh one — the service models restarts from scratch).
LoopResult run_loop(const Inputs& in, Transport& transport) {
  struct PendingFinish {
    double t;
    std::uint64_t job;
    std::uint64_t gen;
  };
  const auto later = [](const PendingFinish& a, const PendingFinish& b) {
    return a.t > b.t || (a.t == b.t && a.job > b.job);
  };
  std::priority_queue<PendingFinish, std::vector<PendingFinish>,
                      decltype(later)>
      pending(later);

  const std::vector<Job>& jobs = in.workload.jobs;
  std::vector<std::uint64_t> gen(jobs.size(), 0);
  const std::vector<FailureEvent>& fails = in.trace.events();

  LoopResult r;
  std::vector<svc::Decision> decisions;
  std::size_t next_job = 0;
  std::size_t next_fail = 0;
  const auto start_wall = std::chrono::steady_clock::now();

  while (true) {
    while (!pending.empty() && pending.top().gen != gen[pending.top().job]) {
      pending.pop();
    }
    // All jobs done: stop without sending trailing failure events, exactly
    // like the simulator loop, whose exit condition is jobs_done < n. A
    // session's last event must be its last complete for the traced sim_end
    // (stamped at the latest finish) to keep the trace time-monotone.
    if (next_job >= jobs.size() && pending.empty()) break;
    // Earliest of pending complete / failure / submit; ties resolve in that
    // order, mirroring the simulator's event ranking.
    const double tc = pending.empty() ? -1.0 : pending.top().t;
    const double tf = next_fail < fails.size() ? fails[next_fail].time : -1.0;
    const double ts = next_job < jobs.size() ? jobs[next_job].arrival : -1.0;

    svc::Event e;
    if (tc >= 0.0 && (tf < 0.0 || tc <= tf) && (ts < 0.0 || tc <= ts)) {
      e.kind = svc::EventKind::kComplete;
      e.time = tc;
      e.job = pending.top().job;
      pending.pop();
    } else if (tf >= 0.0 && (ts < 0.0 || tf <= ts)) {
      e.kind = svc::EventKind::kFail;
      e.time = tf;
      e.node = fails[next_fail].node;
      ++next_fail;
    } else if (ts >= 0.0) {
      const Job& j = jobs[next_job];
      e.kind = svc::EventKind::kSubmit;
      e.time = j.arrival;
      e.job = next_job;
      e.size = j.size;
      e.estimate = j.estimate;
      e.runtime = j.runtime;
      ++next_job;
    } else {
      break;
    }

    decisions.clear();
    transport.play(e, decisions);
    ++r.events;
    r.decisions += decisions.size();
    for (const svc::Decision& d : decisions) {
      if (d.kind == svc::DecisionKind::kStart) {
        ++r.starts;
        pending.push(
            PendingFinish{d.time + jobs[d.job].runtime, d.job, gen[d.job]});
      } else if (d.kind == svc::DecisionKind::kKill) {
        ++r.kills;
        ++gen[d.job];
      }
    }
  }

  transport.finish();
  const auto end_wall = std::chrono::steady_clock::now();
  r.wall_seconds =
      std::chrono::duration<double>(end_wall - start_wall).count();
  return r;
}

int run_verify(const Options& o, const Inputs& in) {
  SimConfig config;
  config.scheduler = scheduler_kind(o.scheduler);
  config.sched.algorithm = algorithm_kind(o.algorithm);
  config.sched.backfill = o.backfill;
  config.sched.migration = o.migration;
  config.queue_order = queue_order_kind(o.queue_order);
  config.alpha = o.alpha;
  config.predictor_model =
      config.scheduler == SchedulerKind::kKrevat ? PredictorModel::kNone
                                                 : PredictorModel::kPaper;
  config.seed = o.seed;

  const SimResult via_driver = run_simulation(in.workload, in.trace, config);
  const SimResult via_service =
      svc::run_simulation_via_service(in.workload, in.trace, config);
  const std::uint64_t a = sim_result_checksum(via_driver);
  const std::uint64_t b = sim_result_checksum(via_service);
  std::printf("driver  checksum %016llx (%zu jobs, util %.6f)\n",
              static_cast<unsigned long long>(a), via_driver.jobs_completed,
              via_driver.utilization);
  std::printf("service checksum %016llx (%zu jobs, util %.6f)\n",
              static_cast<unsigned long long>(b), via_service.jobs_completed,
              via_service.utilization);
  if (a != b) {
    std::printf("MISMATCH\n");
    return 1;
  }
  std::printf("MATCH\n");
  return 0;
}

void write_bench_json(const std::string& path, const Options& o,
                      const LoopResult& r, const PipeTransport* pipe) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("cannot open --json-out file: " + path);
  out << "{\"schema_version\":2,\"bench\":\"service\""
      << ",\"stamp\":\"" << artifact_stamp() << "\""
      << ",\"mode\":\"" << o.mode << "\""
      << ",\"workload\":\"" << o.workload << "\""
      << ",\"jobs\":" << o.jobs << ",\"load\":" << format_double(o.load, 6)
      << ",\"failures\":" << o.failures << ",\"seed\":" << o.seed
      << ",\"scheduler\":\"" << o.scheduler << "\""
      << ",\"algorithm\":\"" << o.algorithm << "\""
      << ",\"events\":" << r.events << ",\"decisions\":" << r.decisions
      << ",\"starts\":" << r.starts << ",\"kills\":" << r.kills
      << ",\"wall_seconds\":" << format_double(r.wall_seconds, 6)
      << ",\"events_per_sec\":"
      << format_double(r.events / std::max(r.wall_seconds, 1e-9), 1)
      << ",\"decisions_per_sec\":"
      << format_double(r.decisions / std::max(r.wall_seconds, 1e-9), 1);
  if (pipe != nullptr) {
    out << ",\"sched.decision_us_mean\":" << format_double(pipe->mean_us(), 3)
        << ",\"sched.decision_us_p50\":" << format_double(pipe->p50_us(), 3)
        << ",\"sched.decision_us_p99\":" << format_double(pipe->p99_us(), 3);
  }
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  try {
    o = parse(argc, argv);
  } catch (const ConfigError& e) {
    std::cerr << "error: " << e.what() << '\n'
              << "see the header comment of tools/loadgen.cpp for usage\n";
    return 2;
  }

  try {
    const Inputs in = make_inputs(o);
    std::cerr << "[loadgen] " << in.workload.jobs.size() << " jobs, "
              << in.trace.size() << " failure events, mode " << o.mode << '\n';

    if (o.mode == "verify") return run_verify(o, in);

    if (o.mode == "emit-stream" || o.mode == "inproc") {
      InProcessTransport t(service_config(o), o.mode == "emit-stream");
      const LoopResult r = run_loop(in, t);
      std::cerr << "[loadgen] " << r.events << " events, " << r.decisions
                << " decisions (" << r.starts << " starts, " << r.kills
                << " kills) in " << format_double(r.wall_seconds, 2) << "s ("
                << format_double(r.events / std::max(r.wall_seconds, 1e-9), 0)
                << " events/s)\n";
      if (t.service().waiting_jobs() != 0 || t.service().running_jobs() != 0) {
        std::cerr << "[loadgen] error: stream did not drain the machine\n";
        return 1;
      }
      if (o.json_out) write_bench_json(*o.json_out, o, r, nullptr);
      return 0;
    }

    // drive
    std::vector<std::string> args = {"--scheduler", o.scheduler,
                                     "--algorithm", o.algorithm,
                                     "--queue-order", o.queue_order,
                                     "--alpha", format_double(o.alpha, 10),
                                     "--seed", std::to_string(o.seed)};
    if (o.backfill == BackfillMode::kNone) args.push_back("--no-backfill");
    if (o.backfill == BackfillMode::kConservative) {
      args.push_back("--conservative-backfill");
    }
    if (!o.migration) args.push_back("--no-migration");
    PipeTransport t(o.server, args);
    const LoopResult r = run_loop(in, t);
    std::cerr << "[loadgen] " << r.events << " events, " << r.decisions
              << " decisions (" << r.starts << " starts, " << r.kills
              << " kills) in " << format_double(r.wall_seconds, 2) << "s ("
              << format_double(r.events / std::max(r.wall_seconds, 1e-9), 0)
              << " events/s), decision p50 " << format_double(t.p50_us(), 1)
              << "us p99 " << format_double(t.p99_us(), 1) << "us\n";
    if (t.errors() > 0) {
      std::cerr << "[loadgen] error: server rejected " << t.errors()
                << " lines\n";
      return 1;
    }
    if (o.json_out) write_bench_json(*o.json_out, o, r, &t);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
