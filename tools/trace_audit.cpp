// trace_audit: replay a JSONL simulator trace and verify its invariants.
//
//   trace_audit [--strict] [--gamma G] [--max-violations N] [--quiet] [FILE]
//
// Reads FILE (or stdin when omitted or "-"), audits it with
// obs::audit_trace, writes the structured JSON report to stdout and a
// one-line human summary to stderr. Exit status: 0 when the trace is
// clean, 1 when violations were found, 2 on usage or I/O errors.
//
// Typical use (see docs/OBSERVABILITY.md, "Auditing a trace"):
//   simulate_cli --workload w.swf --failures f.txt --trace-out run.jsonl ...
//   trace_audit --strict run.jsonl
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/audit.hpp"
#include "util/strings.hpp"

namespace {

void usage(std::ostream& out) {
  out << "usage: trace_audit [--strict] [--gamma G] [--max-violations N]"
         " [--quiet] [FILE]\n"
         "  --strict            unknown event types / unreconstructable"
         " machines are violations\n"
         "  --gamma G           bounded-slowdown threshold the run used"
         " (default 10)\n"
         "  --max-violations N  cap on reported violations (default 1000)\n"
         "  --quiet             suppress the JSON report; summary only\n"
         "  FILE                trace path, '-' or omitted for stdin\n";
}

}  // namespace

int main(int argc, char** argv) {
  bgl::obs::AuditOptions options;
  bool quiet = false;
  std::string path = "-";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "trace_audit: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--strict") {
      options.strict = true;
    } else if (arg == "--gamma") {
      const auto g = bgl::parse_double(value());
      if (!g || *g <= 0.0) {
        std::cerr << "trace_audit: --gamma needs a positive number\n";
        return 2;
      }
      options.gamma = *g;
    } else if (arg == "--max-violations") {
      const auto n = bgl::parse_int(value());
      if (!n || *n < 0) {
        std::cerr << "trace_audit: --max-violations needs a count\n";
        return 2;
      }
      options.max_violations = static_cast<std::size_t>(*n);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::cerr << "trace_audit: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    } else {
      path = arg;
    }
  }

  std::ifstream file;
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::cerr << "trace_audit: cannot open " << path << "\n";
      return 2;
    }
  }
  std::istream& in = path == "-" ? std::cin : file;

  const bgl::obs::AuditReport report = bgl::obs::audit_trace(in, options);
  if (!quiet) report.write_json(std::cout);

  if (report.ok()) {
    std::cerr << "trace_audit: OK — " << report.events << " events, "
              << report.jobs << " jobs, 0 violations\n";
    return 0;
  }
  std::cerr << "trace_audit: FAILED — " << report.events << " events, "
            << report.violations.size() << " violation(s)";
  if (report.dropped_violations > 0) {
    std::cerr << " (+" << report.dropped_violations << " dropped)";
  }
  std::cerr << "\n";
  const std::size_t shown = std::min<std::size_t>(report.violations.size(), 10);
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& v = report.violations[i];
    std::cerr << "  [" << bgl::obs::to_string(v.code) << "] line " << v.line;
    if (v.job >= 0) std::cerr << " job " << v.job;
    std::cerr << ": " << v.message << "\n";
  }
  if (report.violations.size() > shown) {
    std::cerr << "  ... and " << (report.violations.size() - shown)
              << " more (see JSON report)\n";
  }
  return 1;
}
