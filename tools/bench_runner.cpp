// bench_runner: run the paper-figure benchmark sweeps from one binary.
//
//   bench_runner --list
//   bench_runner --figure fig3 [--figure fig7 ...] [options]
//   bench_runner --all [options]
//
// Options:
//   --threads N     worker threads per sweep (default 1; N=1 is the
//                   reference serial order, larger N must produce
//                   byte-identical CSVs — see docs/ARCHITECTURE.md)
//   --out DIR       output directory (default $BGL_BENCH_OUT or bench_out)
//   --seeds N       repeats per sweep cell (sets BGL_BENCH_SEEDS)
//   --job-scale X   shrink the synthetic logs (sets BGL_JOB_SCALE); use a
//                   small value like 0.1 for smoke runs
//
// Each figure writes the same CSVs, <figure>.stats.json and
// BENCH_summary.json entry as its historical standalone binary. Exit
// status: 0 on success, 1 on runtime error, 2 on usage error.
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common/figures.hpp"
#include "util/strings.hpp"

namespace {

void usage(std::ostream& out) {
  out << "usage: bench_runner --list | --figure NAME [--figure NAME ...] |"
         " --all\n"
         "  --threads N    worker threads per sweep (default 1)\n"
         "  --out DIR      output directory (default $BGL_BENCH_OUT or"
         " bench_out)\n"
         "  --seeds N      repeats per sweep cell (sets BGL_BENCH_SEEDS)\n"
         "  --job-scale X  synthetic-log scale factor (sets BGL_JOB_SCALE)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgl::bench;

  bool list = false;
  bool all = false;
  std::vector<std::string> names;
  FigureRunOptions options;
  options.out_dir = "";  // resolved after flag parsing

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "bench_runner: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--figure") {
      names.push_back(value());
    } else if (arg == "--threads") {
      const auto n = bgl::parse_int(value());
      if (!n || *n < 1) {
        std::cerr << "bench_runner: --threads needs an integer >= 1\n";
        return 2;
      }
      options.threads = static_cast<int>(*n);
    } else if (arg == "--out") {
      options.out_dir = value();
    } else if (arg == "--seeds") {
      const auto n = bgl::parse_int(value());
      if (!n || *n < 1) {
        std::cerr << "bench_runner: --seeds needs an integer >= 1\n";
        return 2;
      }
      setenv("BGL_BENCH_SEEDS", std::to_string(*n).c_str(), 1);
    } else if (arg == "--job-scale") {
      const char* v = value();
      const auto x = bgl::parse_double(v);
      if (!x || !(*x > 0.0)) {
        std::cerr << "bench_runner: --job-scale needs a positive number\n";
        return 2;
      }
      setenv("BGL_JOB_SCALE", v, 1);
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "bench_runner: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
  }
  if (options.out_dir.empty()) options.out_dir = bench_out_dir_from_env();

  try {
    // Specs read BGL_BENCH_SEEDS / BGL_JOB_SCALE, so build the registry
    // only after --seeds / --job-scale have landed in the environment.
    const std::vector<FigureDef> figures = all_figures();

    if (list) {
      for (const FigureDef& fig : figures) {
        std::cout << std::left << std::setw(28) << fig.name << fig.summary
                  << "\n";
      }
      return 0;
    }
    if (!all && names.empty()) {
      usage(std::cerr);
      return 2;
    }

    std::vector<const FigureDef*> selected;
    if (all) {
      for (const FigureDef& fig : figures) selected.push_back(&fig);
    } else {
      for (const std::string& name : names) {
        const FigureDef* found = nullptr;
        for (const FigureDef& fig : figures) {
          if (fig.name == name) found = &fig;
        }
        if (!found) {
          std::cerr << "bench_runner: unknown figure '" << name
                    << "' (try --list)\n";
          return 2;
        }
        selected.push_back(found);
      }
    }

    const auto t0 = std::chrono::steady_clock::now();
    for (const FigureDef* fig : selected) {
      const auto f0 = std::chrono::steady_clock::now();
      run_figure(*fig, options, std::cout);
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - f0;
      std::cout << "[done] " << fig->name << " in " << bgl::format_double(dt.count(), 1)
                << " s\n\n";
    }
    const std::chrono::duration<double> total =
        std::chrono::steady_clock::now() - t0;
    std::cout << "[done] " << selected.size() << " figure(s) in "
              << bgl::format_double(total.count(), 1) << " s, threads="
              << options.threads << ", out=" << options.out_dir << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_runner: " << e.what() << '\n';
    return 1;
  }
}
