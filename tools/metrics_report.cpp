// metrics_report: render the telemetry of a run for human eyes.
//
// Two input shapes, auto-detected from the first line:
//
//   * a JSONL trace (simulate_cli --trace-out, sched_server --trace-out,
//     bench_scale --emit-trace): every `metrics` event becomes one row of a
//     time-series table — queue depth, utilization, window event counts,
//     throughput, decision-latency quantiles — followed by a one-line
//     session summary. Produce the events with --metrics-interval.
//
//   * a stats JSON (simulate_cli/sched_server --stats-out, any bench
//     <name>.stats.json): the "phases" object — written when the run was
//     profiled (--profile; sweeps always profile) — renders as the
//     indented self/cumulative phase tree with per-node count, total,
//     self, max and the self-share of the tree's total.
//
// Usage:
//   metrics_report PATH           auto-detect by content
//   metrics_report --series PATH  force trace mode
//   metrics_report --phases PATH  force stats mode
//
// The stats file is parsed with a deliberately small recursive-descent JSON
// reader local to this tool: the obs::TraceReader scanner is flat by design
// (reader.hpp), and the stats dump is the one nested artifact in the repo.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/reader.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace bgl;

// --- a minimal JSON value parser (stats files only) -----------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  /// Insertion-ordered object members (the phase tree order matters).
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after the JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("stats JSON, byte " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u':
          // Stats dumps are ASCII; keep the escape verbatim rather than
          // decoding surrogate pairs this tool will never see.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          out += "\\u" + text_.substr(pos_, 4);
          pos_ += 4;
          break;
        default: fail(std::string("bad escape '\\") + e + "'");
      }
    }
  }

  JsonValue value() {
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::Kind::kObject;
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        std::string key = string();
        expect(':');
        v.members.emplace_back(std::move(key), value());
        const char d = peek();
        ++pos_;
        if (d == '}') return v;
        if (d != ',') fail("expected ',' or '}' in object");
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::kArray;
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.items.push_back(value());
        const char d = peek();
        ++pos_;
        if (d == ']') return v;
        if (d != ',') fail("expected ',' or ']' in array");
      }
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.text = string();
      return v;
    }
    if (c == 't' || c == 'f') {
      const bool is_true = c == 't';
      const std::string word = is_true ? "true" : "false";
      if (text_.compare(pos_, word.size(), word) != 0) fail("bad literal");
      pos_ += word.size();
      v.kind = JsonValue::Kind::kBool;
      v.boolean = is_true;
      return v;
    }
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
      pos_ += 4;
      return v;
    }
    // Number.
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    const auto parsed = parse_double(text_.substr(start, pos_ - start));
    if (!parsed) fail("malformed number");
    v.kind = JsonValue::Kind::kNumber;
    v.number = *parsed;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- phase-tree rendering (stats mode) ------------------------------------

double num_member(const JsonValue& node, const char* key) {
  const JsonValue* v = node.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    throw Error(std::string("phase node missing numeric \"") + key + "\"");
  }
  return v->number;
}

void add_phase_rows(Table& table, const JsonValue& node, int depth,
                    double tree_total_ns) {
  const JsonValue* phase = node.find("phase");
  if (phase == nullptr || phase->kind != JsonValue::Kind::kString) {
    throw Error("phase node missing string \"phase\"");
  }
  const double total_ns = num_member(node, "total_ns");
  const double self_ns = num_member(node, "self_ns");
  table.add_row()
      .add(std::string(static_cast<std::size_t>(depth) * 2, ' ') + phase->text)
      .add(static_cast<long long>(num_member(node, "count")))
      .add(total_ns / 1e6, 3)
      .add(self_ns / 1e6, 3)
      .add(num_member(node, "max_ns") / 1e3, 1)
      .add(tree_total_ns > 0.0 ? 100.0 * self_ns / tree_total_ns : 0.0, 1);
  if (const JsonValue* children = node.find("children")) {
    for (const JsonValue& child : children->items) {
      add_phase_rows(table, child, depth + 1, tree_total_ns);
    }
  }
}

int report_phases(const JsonValue& stats) {
  const JsonValue* phases = stats.find("phases");
  if (phases == nullptr) {
    std::cerr << "metrics_report: no \"phases\" object in this stats JSON —\n"
                 "  produce one with --profile (simulate_cli, sched_server)\n"
                 "  or from any bench <name>.stats.json\n";
    return 1;
  }
  const JsonValue* tree = phases->find("tree");
  if (tree == nullptr || tree->items.empty()) {
    std::cout << "phase tree: empty (the run made no instrumented calls)\n";
    return 0;
  }

  // Share denominators: the summed total of the root spans.
  double tree_total_ns = 0.0;
  for (const JsonValue& root : tree->items) {
    tree_total_ns += num_member(root, "total_ns");
  }

  Table table({"phase", "count", "total_ms", "self_ms", "max_us", "self_%"});
  for (const JsonValue& root : tree->items) {
    add_phase_rows(table, root, 0, tree_total_ns);
  }
  std::cout << "phase tree (self% of " << format_double(tree_total_ns / 1e6, 3)
            << " ms root total)\n"
            << table.render();
  if (const JsonValue* dropped = phases->find("dropped")) {
    if (dropped->number > 0.0) {
      std::cout << "dropped spans: "
                << static_cast<long long>(dropped->number) << "\n";
    }
  }
  return 0;
}

// --- time-series rendering (trace mode) -----------------------------------

int report_series(std::istream& in) {
  obs::TraceReader reader(in);
  obs::TraceRecord record;
  std::vector<obs::MetricsEvent> series;
  std::size_t events = 0;
  while (reader.next(record)) {
    ++events;
    if (record.type() == obs::EventType::kMetrics) {
      series.push_back(obs::MetricsEvent::from(record));
    }
  }
  if (series.empty()) {
    std::cerr << "metrics_report: no `metrics` events in this trace —\n"
                 "  produce them with --metrics-interval (simulate_cli,\n"
                 "  sched_server)\n";
    return 1;
  }

  Table table({"t", "queue", "run", "util", "submit", "start", "finish",
               "kill", "migr", "fin_per_h", "passes", "p50_us", "p99_us"});
  std::int64_t submits = 0;
  std::int64_t finishes = 0;
  std::int64_t decisions = 0;
  for (const obs::MetricsEvent& m : series) {
    table.add_row()
        .add(m.t, 0)
        .add(m.queue_depth)
        .add(m.running_jobs)
        .add(m.utilization, 3)
        .add(static_cast<long long>(m.submits))
        .add(static_cast<long long>(m.starts))
        .add(static_cast<long long>(m.finishes))
        .add(static_cast<long long>(m.kills))
        .add(static_cast<long long>(m.migrations))
        .add(m.finished_per_hour, 1)
        .add(static_cast<long long>(m.decisions))
        .add(m.decision_us_p50, 1)
        .add(m.decision_us_p99, 1);
    submits += m.submits;
    finishes += m.finishes;
    decisions += m.decisions;
  }
  std::cout << table.render();
  std::cout << series.size() << " metrics events over "
            << format_duration(series.back().t - series.front().t) << " ("
            << events << " trace events; windows: " << submits << " submits, "
            << finishes << " finishes, " << decisions
            << " scheduler passes)\n";
  return 0;
}

int usage() {
  std::cerr << "usage: metrics_report [--series|--phases] PATH\n"
               "see the header comment of tools/metrics_report.cpp\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<std::string> path;
  std::optional<std::string> mode;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--series" || arg == "--phases") {
      mode = arg;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!path) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (!path) return usage();

  try {
    std::ifstream in(*path);
    if (!in) throw Error("cannot open " + *path);

    if (!mode) {
      // Auto-detect: a trace line carries a "type" member first; a stats
      // dump starts with "config", "session" or "observability".
      std::string head;
      std::getline(in, head);
      in.clear();
      in.seekg(0);
      mode = head.find("\"type\"") != std::string::npos ? "--series"
                                                        : "--phases";
    }

    if (*mode == "--series") return report_series(in);

    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    JsonParser parser(text);
    const JsonValue stats = parser.parse();
    return report_phases(stats);
  } catch (const std::exception& e) {
    std::cerr << "metrics_report: " << e.what() << '\n';
    return 1;
  }
}
