// sched_server: drive a SchedulerService from a live JSONL event stream.
//
// Reads protocol events (docs/SERVICE.md) from stdin — or serves them on a
// Unix domain socket with --socket — and writes decision / ok / error reply
// lines to stdout (or the socket). One process holds one machine state; a
// stream of submit/complete/fail/repair/tick events IS the workload.
//
// Usage:
//   sched_server [options]
//     --dims XxYxZ        torus dimensions (default 4x4x8, BlueGene/L)
//     --mesh              mesh topology instead of torus
//     --catalog <boxes|blocks>   partition catalog mode (default boxes)
//     --min-block N       kBlocks only: smallest block size (default 256)
//     --scheduler <krevat|balancing|tiebreak>  (default krevat)
//     --algorithm <krevat|easy|conservative|easy-holdback>
//     --alpha A           predictor confidence/accuracy in [0,1]
//     --no-backfill --conservative-backfill --no-migration
//     --queue-order <fcfs|sjf|smallest>
//     --predictor <none|paper|history|perfect|adaptive>  (default none;
//                         the oracle models need --failure-csv; adaptive
//                         learns online from the event stream and needs no
//                         oracle — see docs/PREDICTORS.md)
//     --failure-csv PATH  failure oracle for the simulated predictors
//     --downfor           kDownFor failure semantics: victimless fail
//                         events still trigger a scheduling pass
//     --seed N            salts the tie-breaking predictor (default 1)
//     --no-index          disable the incremental free-partition index
//     --trace-out PATH    write the standard JSONL event trace ("-": stdout
//                         is the protocol stream, so "-" is rejected here)
//     --snapshot-interval S  with --trace-out: emit a machine_state event
//                         every S stream seconds (default off)
//     --metrics-interval S   with --trace-out: emit a `metrics` telemetry
//                         event every S stream seconds (default off)
//     --profile           attach the hierarchical phase profiler: flat ph_*
//                         fields on the stats line, bgl_phase_* families on
//                         the exposition, "phases" tree in --stats-out
//     --metrics-socket PATH  serve the live Prometheus text exposition on
//                         this Unix socket (connect, read to EOF; see
//                         docs/OBSERVABILITY.md "Prometheus exposition")
//     --stats-out PATH    write counters + histograms JSON at shutdown
//     --socket PATH       serve a Unix socket instead of stdin/stdout
//     --max-conns N       with --socket: sequential sessions to accept
//                         against the same machine state (default 1)
//     --quiet             suppress per-event ok lines (decisions + errors
//                         only; the final stats line is always written)
//
// A client can also request the stats line mid-session by sending
// {"type":"stats","t":0} — answered in-band without advancing time (the
// "t" field is demanded by the line framing and ignored).
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "failure/trace.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "svc/exporter.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

using namespace bgl;

struct Options {
  svc::ServiceConfig service;
  std::optional<std::string> failure_csv;
  std::optional<std::string> trace_out;
  std::optional<std::string> stats_out;
  std::optional<std::string> socket_path;
  std::optional<std::string> metrics_socket;
  int max_conns = 1;
  bool echo_ok = true;
  bool profile = false;
};

long long require_int(const std::string& flag, const std::string& token) {
  const auto v = parse_int(token);
  if (!v) throw ConfigError(flag + " requires an integer, got '" + token + "'");
  return *v;
}

double require_double(const std::string& flag, const std::string& token) {
  const auto v = parse_double(token);
  if (!v) throw ConfigError(flag + " requires a number, got '" + token + "'");
  return *v;
}

Dims require_dims(const std::string& flag, const std::string& token) {
  const auto a = token.find('x');
  const auto b = token.rfind('x');
  if (a == std::string::npos || b == a) {
    throw ConfigError(flag + " requires XxYxZ, got '" + token + "'");
  }
  Dims d;
  d.x = static_cast<int>(require_int(flag, token.substr(0, a)));
  d.y = static_cast<int>(require_int(flag, token.substr(a + 1, b - a - 1)));
  d.z = static_cast<int>(require_int(flag, token.substr(b + 1)));
  if (d.x < 1 || d.y < 1 || d.z < 1) {
    throw ConfigError(flag + " dimensions must be >= 1, got '" + token + "'");
  }
  return d;
}

/// Throws ConfigError on any malformed flag: no value ever defaults
/// silently (the bug class this server's protocol exists to eliminate).
Options parse(int argc, char** argv) {
  Options o;
  o.service.scheduler = SchedulerKind::kKrevat;
  o.service.predictor_model = PredictorModel::kNone;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw ConfigError(arg + " requires a value");
      return std::string(argv[++i]);
    };
    if (arg == "--dims") {
      o.service.dims = require_dims(arg, next());
    } else if (arg == "--mesh") {
      o.service.topology = Topology::kMesh;
    } else if (arg == "--catalog") {
      const std::string v = next();
      if (v == "boxes") o.service.catalog.mode = CatalogOptions::Mode::kBoxes;
      else if (v == "blocks") o.service.catalog.mode = CatalogOptions::Mode::kBlocks;
      else throw ConfigError("--catalog must be boxes or blocks, got '" + v + "'");
    } else if (arg == "--min-block") {
      o.service.catalog.min_block = static_cast<int>(require_int(arg, next()));
    } else if (arg == "--scheduler") {
      const std::string v = next();
      if (v == "krevat") o.service.scheduler = SchedulerKind::kKrevat;
      else if (v == "balancing") o.service.scheduler = SchedulerKind::kBalancing;
      else if (v == "tiebreak") o.service.scheduler = SchedulerKind::kTieBreak;
      else throw ConfigError("unknown scheduler: '" + v + "'");
    } else if (arg == "--algorithm") {
      const std::string v = next();
      const auto algo = parse_sched_algorithm(v);
      if (!algo) throw ConfigError("unknown algorithm: '" + v + "'");
      o.service.sched.algorithm = *algo;
    } else if (arg == "--alpha") {
      o.service.alpha = require_double(arg, next());
      if (o.service.alpha < 0.0 || o.service.alpha > 1.0) {
        throw ConfigError("--alpha must be in [0,1]");
      }
    } else if (arg == "--no-backfill") {
      o.service.sched.backfill = BackfillMode::kNone;
    } else if (arg == "--conservative-backfill") {
      o.service.sched.backfill = BackfillMode::kConservative;
    } else if (arg == "--no-migration") {
      o.service.sched.migration = false;
    } else if (arg == "--queue-order") {
      const std::string v = next();
      if (v == "fcfs") o.service.queue_order = QueueOrder::kFcfs;
      else if (v == "sjf") o.service.queue_order = QueueOrder::kShortestJobFirst;
      else if (v == "smallest") o.service.queue_order = QueueOrder::kSmallestJobFirst;
      else throw ConfigError("--queue-order must be fcfs, sjf or smallest");
    } else if (arg == "--predictor") {
      const std::string v = next();
      const auto model = parse_predictor_model(v);
      if (!model) throw ConfigError("unknown predictor: '" + v + "'");
      o.service.predictor_model = *model;
    } else if (arg == "--failure-csv") {
      o.failure_csv = next();
    } else if (arg == "--downfor") {
      o.service.failure_semantics = FailureSemantics::kDownFor;
    } else if (arg == "--seed") {
      o.service.seed = static_cast<std::uint64_t>(require_int(arg, next()));
    } else if (arg == "--no-index") {
      o.service.use_partition_index = false;
    } else if (arg == "--trace-out") {
      const std::string v = next();
      if (v == "-") {
        throw ConfigError("--trace-out - is unavailable: stdout carries the "
                          "reply stream; give a file path");
      }
      o.trace_out = v;
    } else if (arg == "--snapshot-interval") {
      o.service.snapshot_interval = require_double(arg, next());
      if (o.service.snapshot_interval < 0.0) {
        throw ConfigError("--snapshot-interval must be >= 0");
      }
    } else if (arg == "--metrics-interval") {
      o.service.metrics_interval = require_double(arg, next());
      if (o.service.metrics_interval < 0.0) {
        throw ConfigError("--metrics-interval must be >= 0");
      }
    } else if (arg == "--profile") {
      o.profile = true;
    } else if (arg == "--metrics-socket") {
      o.metrics_socket = next();
    } else if (arg == "--stats-out") {
      o.stats_out = next();
    } else if (arg == "--socket") {
      o.socket_path = next();
    } else if (arg == "--max-conns") {
      o.max_conns = static_cast<int>(require_int(arg, next()));
      if (o.max_conns < 1) throw ConfigError("--max-conns must be >= 1");
    } else if (arg == "--quiet") {
      o.echo_ok = false;
    } else {
      throw ConfigError("unknown option: " + arg);
    }
  }
  if ((o.service.snapshot_interval > 0.0 || o.service.metrics_interval > 0.0) &&
      !o.trace_out) {
    throw ConfigError(
        "--snapshot-interval/--metrics-interval write trace events and "
        "need --trace-out");
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  try {
    o = parse(argc, argv);
  } catch (const ConfigError& e) {
    std::cerr << "error: " << e.what() << '\n'
              << "see the header comment of tools/sched_server.cpp for usage\n";
    return 2;
  }

  try {
    // Observability is always on internally: the stats line's decision
    // latency quantiles come from the sched.decision_us histogram.
    obs::CounterRegistry counters;
    obs::HistogramRegistry histograms;
    obs::PhaseProfiler profiler;
    o.service.obs.counters = &counters;
    o.service.obs.histograms = &histograms;
    if (o.profile) o.service.obs.profiler = &profiler;

    std::unique_ptr<obs::TraceSink> sink;
    if (o.trace_out) {
      sink = obs::TraceSink::open(*o.trace_out);
      sink->set_counters(&counters);
      o.service.obs.trace = sink.get();
    }

    FailureTrace oracle;
    const bool have_oracle = o.failure_csv.has_value();
    if (have_oracle) {
      oracle = read_failure_csv(*o.failure_csv, o.service.dims.volume());
    }

    std::unique_ptr<svc::SchedulerService> service_ptr;
    try {
      service_ptr = std::make_unique<svc::SchedulerService>(
          o.service, have_oracle ? &oracle : nullptr);
    } catch (const OracleRequiredError& e) {
      // Typed: the configured model consults a failure oracle we don't have.
      std::cerr << "error: --predictor " << to_string(e.model())
                << " needs --failure-csv (or use --predictor none|adaptive)\n"
                << "see the header comment of tools/sched_server.cpp for usage\n";
      return 2;
    }
    svc::SchedulerService& service = *service_ptr;

    svc::SessionOptions session;
    session.echo_ok = o.echo_ok;
    session.histograms = &histograms;
    session.counters = &counters;
    if (o.profile) session.profiler = &profiler;
    std::unique_ptr<svc::MetricsExporter> exporter;
    if (o.metrics_socket) {
      exporter = std::make_unique<svc::MetricsExporter>(*o.metrics_socket);
      session.exporter = exporter.get();
    }

    svc::SessionStats stats;
    if (o.socket_path) {
      stats = svc::serve_unix_socket(o.socket_path->c_str(), service, session,
                                     o.max_conns);
    } else {
      stats = svc::run_session(std::cin, std::cout, service, session);
    }
    if (sink) sink->flush();

    if (o.stats_out) {
      std::ofstream out(*o.stats_out, std::ios::trunc);
      if (!out) {
        std::cerr << "error: cannot open stats output file: " << *o.stats_out
                  << '\n';
        return 1;
      }
      out << "{\"session\":{"
          << "\"lines\":" << stats.lines
          << ",\"accepted\":" << stats.accepted
          << ",\"rejected\":" << stats.rejected
          << ",\"decisions\":" << stats.decisions
          << ",\"stats_requests\":" << stats.stats_requests << "}";
      out << ",\"observability\":";
      counters.write_json(out);
      out << ",\"histograms\":";
      histograms.write_json(out);
      if (o.profile) {
        out << ",\"phases\":";
        profiler.write_json(out);
      }
      out << "}\n";
    }
    std::cerr << "[sched_server] " << stats.lines << " lines, "
              << stats.accepted << " accepted, " << stats.rejected
              << " rejected, " << stats.decisions << " decisions\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
