# Empty dependencies file for placement_demo.
# This may be replaced when dependencies are built.
