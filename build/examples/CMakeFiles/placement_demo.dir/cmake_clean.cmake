file(REMOVE_RECURSE
  "CMakeFiles/placement_demo.dir/placement_demo.cpp.o"
  "CMakeFiles/placement_demo.dir/placement_demo.cpp.o.d"
  "placement_demo"
  "placement_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
