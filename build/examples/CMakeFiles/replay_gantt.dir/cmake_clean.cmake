file(REMOVE_RECURSE
  "CMakeFiles/replay_gantt.dir/replay_gantt.cpp.o"
  "CMakeFiles/replay_gantt.dir/replay_gantt.cpp.o.d"
  "replay_gantt"
  "replay_gantt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_gantt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
