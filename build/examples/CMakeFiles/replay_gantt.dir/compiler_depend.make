# Empty compiler generated dependencies file for replay_gantt.
# This may be replaced when dependencies are built.
