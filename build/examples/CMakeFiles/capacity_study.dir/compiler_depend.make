# Empty compiler generated dependencies file for capacity_study.
# This may be replaced when dependencies are built.
