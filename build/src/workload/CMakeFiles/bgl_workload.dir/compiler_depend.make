# Empty compiler generated dependencies file for bgl_workload.
# This may be replaced when dependencies are built.
