file(REMOVE_RECURSE
  "libbgl_workload.a"
)
