file(REMOVE_RECURSE
  "CMakeFiles/bgl_workload.dir/analysis.cpp.o"
  "CMakeFiles/bgl_workload.dir/analysis.cpp.o.d"
  "CMakeFiles/bgl_workload.dir/job.cpp.o"
  "CMakeFiles/bgl_workload.dir/job.cpp.o.d"
  "CMakeFiles/bgl_workload.dir/swf.cpp.o"
  "CMakeFiles/bgl_workload.dir/swf.cpp.o.d"
  "CMakeFiles/bgl_workload.dir/synthetic.cpp.o"
  "CMakeFiles/bgl_workload.dir/synthetic.cpp.o.d"
  "CMakeFiles/bgl_workload.dir/transform.cpp.o"
  "CMakeFiles/bgl_workload.dir/transform.cpp.o.d"
  "libbgl_workload.a"
  "libbgl_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
