# Empty compiler generated dependencies file for bgl_torus.
# This may be replaced when dependencies are built.
