file(REMOVE_RECURSE
  "CMakeFiles/bgl_torus.dir/catalog.cpp.o"
  "CMakeFiles/bgl_torus.dir/catalog.cpp.o.d"
  "CMakeFiles/bgl_torus.dir/coords.cpp.o"
  "CMakeFiles/bgl_torus.dir/coords.cpp.o.d"
  "CMakeFiles/bgl_torus.dir/finders.cpp.o"
  "CMakeFiles/bgl_torus.dir/finders.cpp.o.d"
  "CMakeFiles/bgl_torus.dir/nodeset.cpp.o"
  "CMakeFiles/bgl_torus.dir/nodeset.cpp.o.d"
  "CMakeFiles/bgl_torus.dir/occupancy.cpp.o"
  "CMakeFiles/bgl_torus.dir/occupancy.cpp.o.d"
  "CMakeFiles/bgl_torus.dir/partition.cpp.o"
  "CMakeFiles/bgl_torus.dir/partition.cpp.o.d"
  "libbgl_torus.a"
  "libbgl_torus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_torus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
