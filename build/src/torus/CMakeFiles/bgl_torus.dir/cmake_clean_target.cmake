file(REMOVE_RECURSE
  "libbgl_torus.a"
)
