
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/torus/catalog.cpp" "src/torus/CMakeFiles/bgl_torus.dir/catalog.cpp.o" "gcc" "src/torus/CMakeFiles/bgl_torus.dir/catalog.cpp.o.d"
  "/root/repo/src/torus/coords.cpp" "src/torus/CMakeFiles/bgl_torus.dir/coords.cpp.o" "gcc" "src/torus/CMakeFiles/bgl_torus.dir/coords.cpp.o.d"
  "/root/repo/src/torus/finders.cpp" "src/torus/CMakeFiles/bgl_torus.dir/finders.cpp.o" "gcc" "src/torus/CMakeFiles/bgl_torus.dir/finders.cpp.o.d"
  "/root/repo/src/torus/nodeset.cpp" "src/torus/CMakeFiles/bgl_torus.dir/nodeset.cpp.o" "gcc" "src/torus/CMakeFiles/bgl_torus.dir/nodeset.cpp.o.d"
  "/root/repo/src/torus/occupancy.cpp" "src/torus/CMakeFiles/bgl_torus.dir/occupancy.cpp.o" "gcc" "src/torus/CMakeFiles/bgl_torus.dir/occupancy.cpp.o.d"
  "/root/repo/src/torus/partition.cpp" "src/torus/CMakeFiles/bgl_torus.dir/partition.cpp.o" "gcc" "src/torus/CMakeFiles/bgl_torus.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bgl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
