# Empty dependencies file for bgl_des.
# This may be replaced when dependencies are built.
