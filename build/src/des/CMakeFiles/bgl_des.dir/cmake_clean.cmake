file(REMOVE_RECURSE
  "CMakeFiles/bgl_des.dir/engine.cpp.o"
  "CMakeFiles/bgl_des.dir/engine.cpp.o.d"
  "CMakeFiles/bgl_des.dir/event_queue.cpp.o"
  "CMakeFiles/bgl_des.dir/event_queue.cpp.o.d"
  "libbgl_des.a"
  "libbgl_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
