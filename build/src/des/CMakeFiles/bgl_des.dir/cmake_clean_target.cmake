file(REMOVE_RECURSE
  "libbgl_des.a"
)
