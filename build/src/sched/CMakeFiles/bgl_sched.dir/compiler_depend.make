# Empty compiler generated dependencies file for bgl_sched.
# This may be replaced when dependencies are built.
