file(REMOVE_RECURSE
  "CMakeFiles/bgl_sched.dir/backfill.cpp.o"
  "CMakeFiles/bgl_sched.dir/backfill.cpp.o.d"
  "CMakeFiles/bgl_sched.dir/migration.cpp.o"
  "CMakeFiles/bgl_sched.dir/migration.cpp.o.d"
  "CMakeFiles/bgl_sched.dir/policy.cpp.o"
  "CMakeFiles/bgl_sched.dir/policy.cpp.o.d"
  "CMakeFiles/bgl_sched.dir/scheduler.cpp.o"
  "CMakeFiles/bgl_sched.dir/scheduler.cpp.o.d"
  "libbgl_sched.a"
  "libbgl_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
