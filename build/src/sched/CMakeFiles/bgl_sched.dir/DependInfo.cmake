
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/backfill.cpp" "src/sched/CMakeFiles/bgl_sched.dir/backfill.cpp.o" "gcc" "src/sched/CMakeFiles/bgl_sched.dir/backfill.cpp.o.d"
  "/root/repo/src/sched/migration.cpp" "src/sched/CMakeFiles/bgl_sched.dir/migration.cpp.o" "gcc" "src/sched/CMakeFiles/bgl_sched.dir/migration.cpp.o.d"
  "/root/repo/src/sched/policy.cpp" "src/sched/CMakeFiles/bgl_sched.dir/policy.cpp.o" "gcc" "src/sched/CMakeFiles/bgl_sched.dir/policy.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/bgl_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/bgl_sched.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bgl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/torus/CMakeFiles/bgl_torus.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/bgl_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/bgl_failure.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
