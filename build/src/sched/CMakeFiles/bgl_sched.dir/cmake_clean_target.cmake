file(REMOVE_RECURSE
  "libbgl_sched.a"
)
