file(REMOVE_RECURSE
  "libbgl_ckpt.a"
)
