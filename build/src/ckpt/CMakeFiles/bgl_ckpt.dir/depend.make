# Empty dependencies file for bgl_ckpt.
# This may be replaced when dependencies are built.
