file(REMOVE_RECURSE
  "CMakeFiles/bgl_ckpt.dir/checkpoint.cpp.o"
  "CMakeFiles/bgl_ckpt.dir/checkpoint.cpp.o.d"
  "libbgl_ckpt.a"
  "libbgl_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
