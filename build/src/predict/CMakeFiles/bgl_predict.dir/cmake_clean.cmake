file(REMOVE_RECURSE
  "CMakeFiles/bgl_predict.dir/predictor.cpp.o"
  "CMakeFiles/bgl_predict.dir/predictor.cpp.o.d"
  "libbgl_predict.a"
  "libbgl_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
