# Empty dependencies file for bgl_util.
# This may be replaced when dependencies are built.
