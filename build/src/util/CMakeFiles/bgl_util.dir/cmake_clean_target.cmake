file(REMOVE_RECURSE
  "libbgl_util.a"
)
