file(REMOVE_RECURSE
  "CMakeFiles/bgl_util.dir/error.cpp.o"
  "CMakeFiles/bgl_util.dir/error.cpp.o.d"
  "CMakeFiles/bgl_util.dir/logging.cpp.o"
  "CMakeFiles/bgl_util.dir/logging.cpp.o.d"
  "CMakeFiles/bgl_util.dir/math.cpp.o"
  "CMakeFiles/bgl_util.dir/math.cpp.o.d"
  "CMakeFiles/bgl_util.dir/rng.cpp.o"
  "CMakeFiles/bgl_util.dir/rng.cpp.o.d"
  "CMakeFiles/bgl_util.dir/stats.cpp.o"
  "CMakeFiles/bgl_util.dir/stats.cpp.o.d"
  "CMakeFiles/bgl_util.dir/strings.cpp.o"
  "CMakeFiles/bgl_util.dir/strings.cpp.o.d"
  "CMakeFiles/bgl_util.dir/table.cpp.o"
  "CMakeFiles/bgl_util.dir/table.cpp.o.d"
  "libbgl_util.a"
  "libbgl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
