file(REMOVE_RECURSE
  "CMakeFiles/bgl_sim.dir/driver.cpp.o"
  "CMakeFiles/bgl_sim.dir/driver.cpp.o.d"
  "CMakeFiles/bgl_sim.dir/experiment.cpp.o"
  "CMakeFiles/bgl_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/bgl_sim.dir/metrics.cpp.o"
  "CMakeFiles/bgl_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/bgl_sim.dir/replay.cpp.o"
  "CMakeFiles/bgl_sim.dir/replay.cpp.o.d"
  "libbgl_sim.a"
  "libbgl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
