file(REMOVE_RECURSE
  "libbgl_sim.a"
)
