# Empty compiler generated dependencies file for bgl_sim.
# This may be replaced when dependencies are built.
