file(REMOVE_RECURSE
  "CMakeFiles/bgl_failure.dir/analysis.cpp.o"
  "CMakeFiles/bgl_failure.dir/analysis.cpp.o.d"
  "CMakeFiles/bgl_failure.dir/generator.cpp.o"
  "CMakeFiles/bgl_failure.dir/generator.cpp.o.d"
  "CMakeFiles/bgl_failure.dir/trace.cpp.o"
  "CMakeFiles/bgl_failure.dir/trace.cpp.o.d"
  "libbgl_failure.a"
  "libbgl_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
