# Empty compiler generated dependencies file for bgl_failure.
# This may be replaced when dependencies are built.
