file(REMOVE_RECURSE
  "libbgl_failure.a"
)
