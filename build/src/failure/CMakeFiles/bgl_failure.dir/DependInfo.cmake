
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/failure/analysis.cpp" "src/failure/CMakeFiles/bgl_failure.dir/analysis.cpp.o" "gcc" "src/failure/CMakeFiles/bgl_failure.dir/analysis.cpp.o.d"
  "/root/repo/src/failure/generator.cpp" "src/failure/CMakeFiles/bgl_failure.dir/generator.cpp.o" "gcc" "src/failure/CMakeFiles/bgl_failure.dir/generator.cpp.o.d"
  "/root/repo/src/failure/trace.cpp" "src/failure/CMakeFiles/bgl_failure.dir/trace.cpp.o" "gcc" "src/failure/CMakeFiles/bgl_failure.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bgl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/torus/CMakeFiles/bgl_torus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
