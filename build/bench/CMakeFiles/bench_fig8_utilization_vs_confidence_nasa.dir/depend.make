# Empty dependencies file for bench_fig8_utilization_vs_confidence_nasa.
# This may be replaced when dependencies are built.
