file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_utilization_vs_confidence_nasa.dir/bench_fig8_utilization_vs_confidence_nasa.cpp.o"
  "CMakeFiles/bench_fig8_utilization_vs_confidence_nasa.dir/bench_fig8_utilization_vs_confidence_nasa.cpp.o.d"
  "bench_fig8_utilization_vs_confidence_nasa"
  "bench_fig8_utilization_vs_confidence_nasa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_utilization_vs_confidence_nasa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
