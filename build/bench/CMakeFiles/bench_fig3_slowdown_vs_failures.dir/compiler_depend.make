# Empty compiler generated dependencies file for bench_fig3_slowdown_vs_failures.
# This may be replaced when dependencies are built.
