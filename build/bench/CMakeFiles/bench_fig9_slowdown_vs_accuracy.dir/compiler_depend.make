# Empty compiler generated dependencies file for bench_fig9_slowdown_vs_accuracy.
# This may be replaced when dependencies are built.
