file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_utilization_vs_confidence_sdsc.dir/bench_fig7_utilization_vs_confidence_sdsc.cpp.o"
  "CMakeFiles/bench_fig7_utilization_vs_confidence_sdsc.dir/bench_fig7_utilization_vs_confidence_sdsc.cpp.o.d"
  "bench_fig7_utilization_vs_confidence_sdsc"
  "bench_fig7_utilization_vs_confidence_sdsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_utilization_vs_confidence_sdsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
