# Empty compiler generated dependencies file for bench_fig7_utilization_vs_confidence_sdsc.
# This may be replaced when dependencies are built.
