# Empty dependencies file for bench_ablation_pf_rule.
# This may be replaced when dependencies are built.
