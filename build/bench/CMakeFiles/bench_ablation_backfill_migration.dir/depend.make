# Empty dependencies file for bench_ablation_backfill_migration.
# This may be replaced when dependencies are built.
