file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_slowdown_vs_failures_load.dir/bench_fig4_slowdown_vs_failures_load.cpp.o"
  "CMakeFiles/bench_fig4_slowdown_vs_failures_load.dir/bench_fig4_slowdown_vs_failures_load.cpp.o.d"
  "bench_fig4_slowdown_vs_failures_load"
  "bench_fig4_slowdown_vs_failures_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_slowdown_vs_failures_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
