# Empty dependencies file for bench_fig4_slowdown_vs_failures_load.
# This may be replaced when dependencies are built.
