file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_history_predictor.dir/bench_ablation_history_predictor.cpp.o"
  "CMakeFiles/bench_ablation_history_predictor.dir/bench_ablation_history_predictor.cpp.o.d"
  "bench_ablation_history_predictor"
  "bench_ablation_history_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_history_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
