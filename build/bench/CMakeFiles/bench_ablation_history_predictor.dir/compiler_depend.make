# Empty compiler generated dependencies file for bench_ablation_history_predictor.
# This may be replaced when dependencies are built.
