# Empty compiler generated dependencies file for bench_partition_finder.
# This may be replaced when dependencies are built.
