file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_finder.dir/bench_partition_finder.cpp.o"
  "CMakeFiles/bench_partition_finder.dir/bench_partition_finder.cpp.o.d"
  "bench_partition_finder"
  "bench_partition_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
