file(REMOVE_RECURSE
  "CMakeFiles/bgl_bench_common.dir/common/bench_common.cpp.o"
  "CMakeFiles/bgl_bench_common.dir/common/bench_common.cpp.o.d"
  "libbgl_bench_common.a"
  "libbgl_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
