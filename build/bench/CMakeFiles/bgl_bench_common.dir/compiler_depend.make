# Empty compiler generated dependencies file for bgl_bench_common.
# This may be replaced when dependencies are built.
