file(REMOVE_RECURSE
  "libbgl_bench_common.a"
)
