# Empty compiler generated dependencies file for bench_fig10_utilization_vs_accuracy_llnl.
# This may be replaced when dependencies are built.
