file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_utilization_vs_accuracy_llnl.dir/bench_fig10_utilization_vs_accuracy_llnl.cpp.o"
  "CMakeFiles/bench_fig10_utilization_vs_accuracy_llnl.dir/bench_fig10_utilization_vs_accuracy_llnl.cpp.o.d"
  "bench_fig10_utilization_vs_accuracy_llnl"
  "bench_fig10_utilization_vs_accuracy_llnl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_utilization_vs_accuracy_llnl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
