
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_topology.cpp" "bench/CMakeFiles/bench_ablation_topology.dir/bench_ablation_topology.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_topology.dir/bench_ablation_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bgl_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bgl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/bgl_des.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bgl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/bgl_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/bgl_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/bgl_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/torus/CMakeFiles/bgl_torus.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/bgl_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bgl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
