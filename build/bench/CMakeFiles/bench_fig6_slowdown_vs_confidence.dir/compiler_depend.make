# Empty compiler generated dependencies file for bench_fig6_slowdown_vs_confidence.
# This may be replaced when dependencies are built.
