file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_slowdown_vs_confidence.dir/bench_fig6_slowdown_vs_confidence.cpp.o"
  "CMakeFiles/bench_fig6_slowdown_vs_confidence.dir/bench_fig6_slowdown_vs_confidence.cpp.o.d"
  "bench_fig6_slowdown_vs_confidence"
  "bench_fig6_slowdown_vs_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_slowdown_vs_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
