
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ckpt_test.cpp" "tests/CMakeFiles/bgl_tests.dir/ckpt_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/ckpt_test.cpp.o.d"
  "/root/repo/tests/des_test.cpp" "tests/CMakeFiles/bgl_tests.dir/des_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/des_test.cpp.o.d"
  "/root/repo/tests/failure_analysis_test.cpp" "tests/CMakeFiles/bgl_tests.dir/failure_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/failure_analysis_test.cpp.o.d"
  "/root/repo/tests/failure_test.cpp" "tests/CMakeFiles/bgl_tests.dir/failure_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/failure_test.cpp.o.d"
  "/root/repo/tests/predict_statistics_test.cpp" "tests/CMakeFiles/bgl_tests.dir/predict_statistics_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/predict_statistics_test.cpp.o.d"
  "/root/repo/tests/predict_test.cpp" "tests/CMakeFiles/bgl_tests.dir/predict_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/predict_test.cpp.o.d"
  "/root/repo/tests/sched_backfill_test.cpp" "tests/CMakeFiles/bgl_tests.dir/sched_backfill_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/sched_backfill_test.cpp.o.d"
  "/root/repo/tests/sched_invariants_test.cpp" "tests/CMakeFiles/bgl_tests.dir/sched_invariants_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/sched_invariants_test.cpp.o.d"
  "/root/repo/tests/sched_migration_test.cpp" "tests/CMakeFiles/bgl_tests.dir/sched_migration_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/sched_migration_test.cpp.o.d"
  "/root/repo/tests/sched_policy_test.cpp" "tests/CMakeFiles/bgl_tests.dir/sched_policy_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/sched_policy_test.cpp.o.d"
  "/root/repo/tests/sched_scheduler_test.cpp" "tests/CMakeFiles/bgl_tests.dir/sched_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/sched_scheduler_test.cpp.o.d"
  "/root/repo/tests/sim_driver_test.cpp" "tests/CMakeFiles/bgl_tests.dir/sim_driver_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/sim_driver_test.cpp.o.d"
  "/root/repo/tests/sim_experiment_test.cpp" "tests/CMakeFiles/bgl_tests.dir/sim_experiment_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/sim_experiment_test.cpp.o.d"
  "/root/repo/tests/sim_extensions_test.cpp" "tests/CMakeFiles/bgl_tests.dir/sim_extensions_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/sim_extensions_test.cpp.o.d"
  "/root/repo/tests/sim_integration_test.cpp" "tests/CMakeFiles/bgl_tests.dir/sim_integration_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/sim_integration_test.cpp.o.d"
  "/root/repo/tests/sim_metrics_test.cpp" "tests/CMakeFiles/bgl_tests.dir/sim_metrics_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/sim_metrics_test.cpp.o.d"
  "/root/repo/tests/sim_outcomes_test.cpp" "tests/CMakeFiles/bgl_tests.dir/sim_outcomes_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/sim_outcomes_test.cpp.o.d"
  "/root/repo/tests/sim_replay_test.cpp" "tests/CMakeFiles/bgl_tests.dir/sim_replay_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/sim_replay_test.cpp.o.d"
  "/root/repo/tests/torus_canonical_test.cpp" "tests/CMakeFiles/bgl_tests.dir/torus_canonical_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/torus_canonical_test.cpp.o.d"
  "/root/repo/tests/torus_catalog_test.cpp" "tests/CMakeFiles/bgl_tests.dir/torus_catalog_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/torus_catalog_test.cpp.o.d"
  "/root/repo/tests/torus_coords_test.cpp" "tests/CMakeFiles/bgl_tests.dir/torus_coords_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/torus_coords_test.cpp.o.d"
  "/root/repo/tests/torus_finders_test.cpp" "tests/CMakeFiles/bgl_tests.dir/torus_finders_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/torus_finders_test.cpp.o.d"
  "/root/repo/tests/torus_mfp_reference_test.cpp" "tests/CMakeFiles/bgl_tests.dir/torus_mfp_reference_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/torus_mfp_reference_test.cpp.o.d"
  "/root/repo/tests/torus_nodeset_test.cpp" "tests/CMakeFiles/bgl_tests.dir/torus_nodeset_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/torus_nodeset_test.cpp.o.d"
  "/root/repo/tests/torus_partition_test.cpp" "tests/CMakeFiles/bgl_tests.dir/torus_partition_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/torus_partition_test.cpp.o.d"
  "/root/repo/tests/util_logging_test.cpp" "tests/CMakeFiles/bgl_tests.dir/util_logging_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/util_logging_test.cpp.o.d"
  "/root/repo/tests/util_math_test.cpp" "tests/CMakeFiles/bgl_tests.dir/util_math_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/util_math_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/bgl_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/util_rng_test.cpp.o.d"
  "/root/repo/tests/util_stats_test.cpp" "tests/CMakeFiles/bgl_tests.dir/util_stats_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/util_stats_test.cpp.o.d"
  "/root/repo/tests/util_strings_test.cpp" "tests/CMakeFiles/bgl_tests.dir/util_strings_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/util_strings_test.cpp.o.d"
  "/root/repo/tests/util_table_test.cpp" "tests/CMakeFiles/bgl_tests.dir/util_table_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/util_table_test.cpp.o.d"
  "/root/repo/tests/workload_swf_test.cpp" "tests/CMakeFiles/bgl_tests.dir/workload_swf_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/workload_swf_test.cpp.o.d"
  "/root/repo/tests/workload_synthetic_test.cpp" "tests/CMakeFiles/bgl_tests.dir/workload_synthetic_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/workload_synthetic_test.cpp.o.d"
  "/root/repo/tests/workload_transform_test.cpp" "tests/CMakeFiles/bgl_tests.dir/workload_transform_test.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/workload_transform_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bgl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/bgl_des.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bgl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/bgl_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/bgl_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/bgl_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/torus/CMakeFiles/bgl_torus.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/bgl_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bgl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
