# Empty dependencies file for bgl_tests.
# This may be replaced when dependencies are built.
