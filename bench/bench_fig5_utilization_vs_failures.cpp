// Figure 5: capacity split (utilized / unused / lost) vs. failure rate for
// the SDSC log, balancing scheduler, at (a) c = 1.0 and (b) c = 1.2.
//
// Expected shape: utilization erodes and lost capacity grows as the failure
// rate rises; the c = 1.2 panel converts part of the unused capacity into
// used work relative to c = 1.0 (the paper's "20% increase in load ...
// converting marginal amount of unused work to used work").
#include <iostream>

#include "common/bench_common.hpp"

int main() {
  using namespace bgl;
  using namespace bgl::bench;

  const SyntheticModel model = bench_sdsc();
  const double alpha = 0.1;
  std::cout << "Figure 5: utilization split vs failure rate (SDSC, balancing, a="
            << format_double(alpha, 1) << ")\n"
            << "seeds/point: " << bench_seeds() << ", jobs/run: " << model.num_jobs
            << "\n\n";

  for (const double c : {1.0, 1.2}) {
    Table table({"failure_rate", "utilized", "unused", "lost"});
    for (std::size_t rate = 0; rate <= 4000; rate += 500) {
      const RunSummary r = run_point(model, c, rate, SchedulerKind::kBalancing, alpha);
      table.add_row()
          .add(static_cast<long long>(rate))
          .add(r.utilization, 3)
          .add(r.unused, 3)
          .add(r.lost, 3);
      std::cout << "." << std::flush;
    }
    std::cout << "\n\nPanel c = " << format_double(c, 1) << ":\n" << table.render();
    write_csv(table, c == 1.0 ? "fig5a_utilization_vs_failures_c10"
                              : "fig5b_utilization_vs_failures_c12");
  }
  return 0;
}
