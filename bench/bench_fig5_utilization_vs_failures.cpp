// Figure 5: capacity split (utilized / unused / lost) vs. failure rate for
// the SDSC log, balancing scheduler, at (a) c = 1.0 and (b) c = 1.2.
//
// Expected shape: utilization erodes and lost capacity grows as the failure
// rate rises; the c = 1.2 panel converts part of the unused capacity into
// used work relative to c = 1.0 (the paper's "20% increase in load ...
// converting marginal amount of unused work to used work").
#include <string>

#include "common/bench_common.hpp"
#include "common/figures.hpp"
#include "util/strings.hpp"

namespace bgl::bench {

FigureDef make_fig5() {
  const SyntheticModel model = bench_sdsc();
  const double alpha = 0.1;

  exp::SweepSpec spec;
  spec.name = "fig5";
  spec.models = {{"SDSC", model}};
  spec.load_scales = {1.0, 1.2};
  for (std::size_t rate = 0; rate <= 4000; rate += 500) {
    spec.failure_budgets.push_back(rate);
  }
  spec.alphas = {alpha};

  FigureDef fig;
  fig.name = "fig5";
  fig.summary = "Fig. 5 - utilization split vs failure rate (SDSC, two loads)";
  fig.header =
      "Figure 5: utilization split vs failure rate (SDSC, balancing, a=" +
      format_double(alpha, 1) + ")\n" +
      "seeds/point: " + std::to_string(spec.repeats()) +
      ", jobs/run: " + std::to_string(model.num_jobs) + "\n";
  fig.spec = std::move(spec);
  fig.render = [](const exp::SweepResult& r) {
    FigureOutput out;
    for (std::size_t li = 0; li < r.shape().loads; ++li) {
      const double c = li == 0 ? 1.0 : 1.2;
      Table table({"failure_rate", "utilized", "unused", "lost"});
      for (std::size_t fi = 0; fi < r.shape().failures; ++fi) {
        const exp::PointSummary& p = r.at(0, li, fi, 0, 0, 0, 0, 0);
        table.add_row()
            .add(static_cast<long long>(500 * fi))
            .add(p.utilization, 3)
            .add(p.unused, 3)
            .add(p.lost, 3);
      }
      out.parts.push_back({li == 0 ? "fig5a_utilization_vs_failures_c10"
                                   : "fig5b_utilization_vs_failures_c12",
                           "Panel c = " + format_double(c, 1) + ":",
                           std::move(table)});
    }
    return out;
  };
  return fig;
}

}  // namespace bgl::bench
