// Figure 9: average bounded slowdown vs. prediction accuracy for the
// (a) SDSC, (b) NASA, (c) LLNL logs under the tie-breaking scheduler, at
// loads c = 1.0 and c = 1.2 and the paper's failure budgets.
//
// Expected shape: moderate gains at standard load (paper: SDSC 60-70 %,
// NASA ~20 %, LLNL ~50 % at full accuracy), smaller than the balancing
// scheduler's because ties are the only decision point and false negatives
// (rate 1 - a) make this the conservative, worst-case fault-aware variant;
// at c = 1.2 low accuracies can transiently degrade performance.
#include <algorithm>
#include <iostream>

#include "common/bench_common.hpp"

int main() {
  using namespace bgl;
  using namespace bgl::bench;

  struct LogCase {
    const char* label;
    SyntheticModel model;
  };
  const LogCase cases[] = {
      {"SDSC", bench_sdsc()}, {"NASA", bench_nasa()}, {"LLNL", bench_llnl()}};

  std::cout << "Figure 9: avg bounded slowdown vs accuracy (tie-breaking)\n"
            << "seeds/point: " << std::max(bench_seeds(), 5) << "\n\n";

  for (const LogCase& lc : cases) {
    const std::size_t nominal = paper_failure_count(lc.model);
    Table table({"accuracy", "c=1.0", "impr_%", "c=1.2", "impr_%"});
    double base10 = -1.0;
    double base12 = -1.0;
    for (int step = 0; step <= 10; ++step) {
      const double a = 0.1 * step;
      const RunSummary r10 =
          run_point(lc.model, 1.0, nominal, SchedulerKind::kTieBreak, a, nullptr, 5);
      const RunSummary r12 =
          run_point(lc.model, 1.2, nominal, SchedulerKind::kTieBreak, a, nullptr, 5);
      if (step == 0) {
        base10 = r10.slowdown;
        base12 = r12.slowdown;
      }
      table.add_row()
          .add(a, 1)
          .add(r10.slowdown, 1)
          .add(improvement_pct(base10, r10.slowdown), 1)
          .add(r12.slowdown, 1)
          .add(improvement_pct(base12, r12.slowdown), 1);
      std::cout << "." << std::flush;
    }
    std::cout << "\n\nPanel " << lc.label << " (nominal failures " << nominal
              << "):\n"
              << table.render();
    write_csv(table, std::string("fig9_slowdown_vs_accuracy_") + lc.label);
  }
  return 0;
}
