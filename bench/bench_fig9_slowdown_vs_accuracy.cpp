// Figure 9: average bounded slowdown vs. prediction accuracy for the
// (a) SDSC, (b) NASA, (c) LLNL logs under the tie-breaking scheduler, at
// loads c = 1.0 and c = 1.2 and the paper's failure budgets.
//
// Expected shape: moderate gains at standard load (paper: SDSC 60-70 %,
// NASA ~20 %, LLNL ~50 % at full accuracy), smaller than the balancing
// scheduler's because ties are the only decision point and false negatives
// (rate 1 - a) make this the conservative, worst-case fault-aware variant;
// at c = 1.2 low accuracies can transiently degrade performance.
#include <string>
#include <vector>

#include "common/bench_common.hpp"
#include "common/figures.hpp"

namespace bgl::bench {

FigureDef make_fig9() {
  exp::SweepSpec spec;
  spec.name = "fig9";
  spec.models = {{"SDSC", bench_sdsc()},
                 {"NASA", bench_nasa()},
                 {"LLNL", bench_llnl()}};
  spec.load_scales = {1.0, 1.2};
  spec.schedulers = {SchedulerKind::kTieBreak};
  for (int step = 0; step <= 10; ++step) spec.alphas.push_back(0.1 * step);
  spec.repeat_floor = 5;

  std::vector<std::string> labels;
  std::vector<std::size_t> nominals;
  for (const exp::ModelCase& mc : spec.models) {
    labels.push_back(mc.label);
    nominals.push_back(paper_failure_count(mc.model));
  }

  FigureDef fig;
  fig.name = "fig9";
  fig.summary = "Fig. 9 - slowdown vs accuracy, three logs (tie-breaking)";
  fig.header =
      "Figure 9: avg bounded slowdown vs accuracy (tie-breaking)\n"
      "seeds/point: " + std::to_string(spec.repeats()) + "\n";
  fig.spec = std::move(spec);
  fig.render = [labels, nominals](const exp::SweepResult& r) {
    FigureOutput out;
    for (std::size_t mi = 0; mi < r.shape().models; ++mi) {
      Table table({"accuracy", "c=1.0", "impr_%", "c=1.2", "impr_%"});
      double base10 = -1.0;
      double base12 = -1.0;
      for (std::size_t ai = 0; ai < r.shape().alphas; ++ai) {
        const exp::PointSummary& r10 = r.at(mi, 0, 0, 0, 0, ai, 0, 0);
        const exp::PointSummary& r12 = r.at(mi, 1, 0, 0, 0, ai, 0, 0);
        if (ai == 0) {
          base10 = r10.slowdown;
          base12 = r12.slowdown;
        }
        table.add_row()
            .add(0.1 * static_cast<int>(ai), 1)
            .add(r10.slowdown, 1)
            .add(improvement_pct(base10, r10.slowdown), 1)
            .add(r12.slowdown, 1)
            .add(improvement_pct(base12, r12.slowdown), 1);
      }
      out.parts.push_back({"fig9_slowdown_vs_accuracy_" + labels[mi],
                           "Panel " + labels[mi] + " (nominal failures " +
                               std::to_string(nominals[mi]) + "):",
                           std::move(table)});
    }
    return out;
  };
  return fig;
}

}  // namespace bgl::bench
