// Figure 10: capacity split (utilized / unused / lost) vs. prediction
// accuracy for the LLNL log under the tie-breaking scheduler, panels
// (a) c = 1.0 and (b) c = 1.2, at the paper's 1000-event nominal budget.
//
// Expected shape: like Figures 7/8 the load increase shifts capacity from
// unused to used; the accuracy-driven improvement in useful work is present
// but weaker than the balancing scheduler's ("not as significant ... due to
// the aggressiveness of the tie-breaking algorithm").
#include <string>

#include "common/bench_common.hpp"
#include "common/figures.hpp"
#include "util/strings.hpp"

namespace bgl::bench {

FigureDef make_fig10() {
  const SyntheticModel model = bench_llnl();
  const std::size_t nominal = paper_failure_count(model);

  exp::SweepSpec spec;
  spec.name = "fig10";
  spec.models = {{"LLNL", model}};
  spec.load_scales = {1.0, 1.2};
  spec.schedulers = {SchedulerKind::kTieBreak};
  for (int step = 0; step <= 10; ++step) spec.alphas.push_back(0.1 * step);

  FigureDef fig;
  fig.name = "fig10";
  fig.summary = "Fig. 10 - utilization split vs accuracy (LLNL, tie-breaking)";
  fig.header =
      "Figure 10: utilization split vs accuracy (LLNL, tie-breaking, nominal " +
      std::to_string(nominal) + " failures)\n" +
      "seeds/point: " + std::to_string(spec.repeats()) +
      ", jobs/run: " + std::to_string(model.num_jobs) + "\n";
  fig.spec = std::move(spec);
  fig.render = [](const exp::SweepResult& r) {
    FigureOutput out;
    for (std::size_t li = 0; li < r.shape().loads; ++li) {
      const double c = li == 0 ? 1.0 : 1.2;
      Table table({"accuracy", "utilized", "unused", "lost", "kills"});
      for (std::size_t ai = 0; ai < r.shape().alphas; ++ai) {
        const exp::PointSummary& p = r.at(0, li, 0, 0, 0, ai, 0, 0);
        table.add_row()
            .add(0.1 * static_cast<int>(ai), 1)
            .add(p.utilization, 3)
            .add(p.unused, 3)
            .add(p.lost, 3)
            .add(p.kills, 1);
      }
      out.parts.push_back({li == 0 ? "fig10a_utilization_vs_accuracy_llnl_c10"
                                   : "fig10b_utilization_vs_accuracy_llnl_c12",
                           "Panel c = " + format_double(c, 1) + ":",
                           std::move(table)});
    }
    return out;
  };
  return fig;
}

}  // namespace bgl::bench
