// Figure 10: capacity split (utilized / unused / lost) vs. prediction
// accuracy for the LLNL log under the tie-breaking scheduler, panels
// (a) c = 1.0 and (b) c = 1.2, at the paper's 1000-event nominal budget.
//
// Expected shape: like Figures 7/8 the load increase shifts capacity from
// unused to used; the accuracy-driven improvement in useful work is present
// but weaker than the balancing scheduler's ("not as significant ... due to
// the aggressiveness of the tie-breaking algorithm").
#include <iostream>

#include "common/bench_common.hpp"

int main() {
  using namespace bgl;
  using namespace bgl::bench;

  const SyntheticModel model = bench_llnl();
  const std::size_t nominal = paper_failure_count(model);
  std::cout << "Figure 10: utilization split vs accuracy (LLNL, tie-breaking, nominal "
            << nominal << " failures)\n"
            << "seeds/point: " << bench_seeds() << ", jobs/run: " << model.num_jobs
            << "\n\n";

  for (const double c : {1.0, 1.2}) {
    Table table({"accuracy", "utilized", "unused", "lost", "kills"});
    for (int step = 0; step <= 10; ++step) {
      const double a = 0.1 * step;
      const RunSummary r = run_point(model, c, nominal, SchedulerKind::kTieBreak, a);
      table.add_row().add(a, 1).add(r.utilization, 3).add(r.unused, 3).add(r.lost, 3)
          .add(r.kills, 1);
      std::cout << "." << std::flush;
    }
    std::cout << "\n\nPanel c = " << format_double(c, 1) << ":\n" << table.render();
    write_csv(table, c == 1.0 ? "fig10a_utilization_vs_accuracy_llnl_c10"
                              : "fig10b_utilization_vs_accuracy_llnl_c12");
  }
  return 0;
}
