// Figure 3: average bounded slowdown vs. failure rate for the SDSC log,
// balancing scheduler, with and without prediction.
//
// Paper series: a = 0.0 (no prediction), a = 0.1, a = 0.9; the nominal
// failure rate runs 0..4000 in steps of 500 (scaled onto the synthetic
// log's span at the paper's density). Expected shape: slowdown climbs
// steeply as failures are introduced, then saturates; even a = 0.1 recovers
// a large share of the loss, and a = 0.9 adds only modestly more. The §1
// claim ("~70 % slowdown increase at the 1000-failure rate with no
// prediction") corresponds to comparing the rate-0 and rate-1000 rows of
// the a = 0.0 column.
#include <string>

#include "common/bench_common.hpp"
#include "common/figures.hpp"
#include "util/strings.hpp"

namespace bgl::bench {

FigureDef make_fig3() {
  const SyntheticModel model = bench_sdsc();

  exp::SweepSpec spec;
  spec.name = "fig3";
  spec.models = {{"SDSC", model}};
  for (std::size_t rate = 0; rate <= 4000; rate += 500) {
    spec.failure_budgets.push_back(rate);
  }
  spec.alphas = {0.0, 0.1, 0.9};
  spec.repeat_floor = 5;

  FigureDef fig;
  fig.name = "fig3";
  fig.summary = "Fig. 3 - slowdown vs failure rate, +- prediction (SDSC, balancing)";
  fig.header =
      "Figure 3: avg bounded slowdown vs failure rate (SDSC, balancing, c=1.0)\n"
      "seeds/point: " + std::to_string(spec.repeats()) +
      ", jobs/run: " + std::to_string(model.num_jobs) + "\n";
  fig.spec = std::move(spec);
  fig.render = [](const exp::SweepResult& r) {
    Table table({"failure_rate", "injected", "a=0.0", "a=0.1", "a=0.9",
                 "impr_a0.1_%", "impr_a0.9_%"});
    double base_at_zero = -1.0;
    double base_at_1000 = -1.0;
    for (std::size_t fi = 0; fi < r.shape().failures; ++fi) {
      const std::size_t rate = 500 * fi;
      const exp::PointSummary& none = r.at(0, 0, fi, 0, 0, 0, 0, 0);
      const exp::PointSummary& low = r.at(0, 0, fi, 0, 0, 1, 0, 0);
      const exp::PointSummary& high = r.at(0, 0, fi, 0, 0, 2, 0, 0);
      if (rate == 0) base_at_zero = none.slowdown;
      if (rate == 1000) base_at_1000 = none.slowdown;
      table.add_row()
          .add(static_cast<long long>(rate))
          .add(none.injected_events, 0)
          .add(none.slowdown, 1)
          .add(low.slowdown, 1)
          .add(high.slowdown, 1)
          .add(improvement_pct(none.slowdown, low.slowdown), 1)
          .add(improvement_pct(none.slowdown, high.slowdown), 1);
    }
    FigureOutput out;
    out.parts.push_back({"fig3_slowdown_vs_failures", "", std::move(table)});
    if (base_at_zero > 0.0 && base_at_1000 > 0.0) {
      out.notes =
          "\nSlowdown increase from rate 0 to rate 1000 without prediction: " +
          format_double(100.0 * (base_at_1000 - base_at_zero) / base_at_zero, 1) +
          "% (paper Section 1: ~70%)";
    }
    return out;
  };
  return fig;
}

}  // namespace bgl::bench
