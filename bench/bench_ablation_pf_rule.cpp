// Ablation: the paper's two partition-failure-probability rules.
//
// §4.1 defines P_f = max_n p_n^f while §5.2.1 uses the product complement
// P_f = 1 - prod(1 - p_n^f); they differ only when several predicted-faulty
// nodes fall inside one candidate partition. This bench quantifies whether
// the discrepancy matters in practice (it should not, much — multi-flag
// candidates are rare at paper failure densities).
#include <string>

#include "common/bench_common.hpp"
#include "common/figures.hpp"

namespace bgl::bench {

FigureDef make_ablation_pf_rule() {
  const SyntheticModel model = bench_sdsc();
  const std::size_t nominal = paper_failure_count(model);

  exp::SweepSpec spec;
  spec.name = "ablation_pf_rule";
  spec.models = {{"SDSC", model}};
  spec.alphas = {0.1, 0.5, 0.9};
  SimConfig product;
  product.sched.pf_rule = PartitionFailureRule::kProduct;
  SimConfig max_rule;
  max_rule.sched.pf_rule = PartitionFailureRule::kMax;
  spec.configs = {{"product", product, std::nullopt},
                  {"max", max_rule, std::nullopt}};

  FigureDef fig;
  fig.name = "ablation_pf_rule";
  fig.summary = "Ablation - P_f rule: product complement vs max (SDSC)";
  fig.header =
      "Ablation: P_f rule (product vs max), SDSC, balancing, nominal " +
      std::to_string(nominal) + " failures\n";
  fig.spec = std::move(spec);
  fig.render = [](const exp::SweepResult& r) {
    Table table({"confidence", "slowdown_product", "slowdown_max",
                 "kills_product", "kills_max"});
    const double alphas[] = {0.1, 0.5, 0.9};
    for (std::size_t ai = 0; ai < r.shape().alphas; ++ai) {
      const exp::PointSummary& rp = r.at(0, 0, 0, 0, 0, ai, 0, 0);
      const exp::PointSummary& rm = r.at(0, 0, 0, 0, 0, ai, 0, 1);
      table.add_row()
          .add(alphas[ai], 1)
          .add(rp.slowdown, 1)
          .add(rm.slowdown, 1)
          .add(rp.kills, 1)
          .add(rm.kills, 1);
    }
    FigureOutput out;
    out.parts.push_back({"ablation_pf_rule", "", std::move(table)});
    return out;
  };
  return fig;
}

}  // namespace bgl::bench
