// Ablation: the paper's two partition-failure-probability rules.
//
// §4.1 defines P_f = max_n p_n^f while §5.2.1 uses the product complement
// P_f = 1 - prod(1 - p_n^f); they differ only when several predicted-faulty
// nodes fall inside one candidate partition. This bench quantifies whether
// the discrepancy matters in practice (it should not, much — multi-flag
// candidates are rare at paper failure densities).
#include <iostream>

#include "common/bench_common.hpp"

int main() {
  using namespace bgl;
  using namespace bgl::bench;

  const SyntheticModel model = bench_sdsc();
  const std::size_t nominal = paper_failure_count(model);
  std::cout << "Ablation: P_f rule (product vs max), SDSC, balancing, nominal "
            << nominal << " failures\n\n";

  Table table({"confidence", "slowdown_product", "slowdown_max", "kills_product",
               "kills_max"});
  for (const double a : {0.1, 0.5, 0.9}) {
    SimConfig product;
    product.sched.pf_rule = PartitionFailureRule::kProduct;
    SimConfig max_rule;
    max_rule.sched.pf_rule = PartitionFailureRule::kMax;
    const RunSummary rp =
        run_point(model, 1.0, nominal, SchedulerKind::kBalancing, a, &product);
    const RunSummary rm =
        run_point(model, 1.0, nominal, SchedulerKind::kBalancing, a, &max_rule);
    table.add_row().add(a, 1).add(rp.slowdown, 1).add(rm.slowdown, 1).add(rp.kills, 1)
        .add(rm.kills, 1);
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n" << table.render();
  write_csv(table, "ablation_pf_rule");
  return 0;
}
