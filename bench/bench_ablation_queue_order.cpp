// Ablation (extension): waiting-queue discipline. The paper is strictly
// FCFS; this bench quantifies what shortest-job-first and
// smallest-job-first orderings would change under the same failure regime.
// SJF classically slashes mean slowdown at the cost of fairness; on a torus
// smallest-first also packs better.
#include <iostream>

#include "common/bench_common.hpp"

int main() {
  using namespace bgl;
  using namespace bgl::bench;

  const SyntheticModel model = bench_sdsc();
  const std::size_t nominal = paper_failure_count(model);
  std::cout << "Ablation: queue order (SDSC, balancing a=0.1, c=1.0, nominal "
            << nominal << " failures)\n\n";

  Table table({"queue_order", "slowdown", "wait_h", "max_wait_h_proxy", "utilized",
               "kills"});
  for (const QueueOrder order :
       {QueueOrder::kFcfs, QueueOrder::kShortestJobFirst,
        QueueOrder::kSmallestJobFirst}) {
    SimConfig proto;
    proto.queue_order = order;
    const RunSummary r =
        run_point(model, 1.0, nominal, SchedulerKind::kBalancing, 0.1, &proto);
    table.add_row()
        .add(std::string(to_string(order)))
        .add(r.slowdown, 1)
        .add(r.wait / 3600.0, 1)
        .add(r.response / 3600.0, 1)
        .add(r.utilization, 3)
        .add(r.kills, 1);
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n" << table.render();
  write_csv(table, "ablation_queue_order");
  return 0;
}
