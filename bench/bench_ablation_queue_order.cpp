// Ablation (extension): waiting-queue discipline. The paper is strictly
// FCFS; this bench quantifies what shortest-job-first and
// smallest-job-first orderings would change under the same failure regime.
// SJF classically slashes mean slowdown at the cost of fairness; on a torus
// smallest-first also packs better.
#include <string>
#include <vector>

#include "common/bench_common.hpp"
#include "common/figures.hpp"

namespace bgl::bench {

FigureDef make_ablation_queue_order() {
  const SyntheticModel model = bench_sdsc();
  const std::size_t nominal = paper_failure_count(model);

  exp::SweepSpec spec;
  spec.name = "ablation_queue_order";
  spec.models = {{"SDSC", model}};
  spec.alphas = {0.1};
  for (const QueueOrder order :
       {QueueOrder::kFcfs, QueueOrder::kShortestJobFirst,
        QueueOrder::kSmallestJobFirst}) {
    SimConfig proto;
    proto.queue_order = order;
    spec.configs.push_back({std::string(to_string(order)), proto, std::nullopt});
  }

  FigureDef fig;
  fig.name = "ablation_queue_order";
  fig.summary = "Ablation - waiting-queue discipline: FCFS vs SJF variants";
  fig.header = "Ablation: queue order (SDSC, balancing a=0.1, c=1.0, nominal " +
               std::to_string(nominal) + " failures)\n";

  std::vector<std::string> labels;
  for (const exp::ConfigCase& cc : spec.configs) labels.push_back(cc.label);

  fig.spec = std::move(spec);
  fig.render = [labels](const exp::SweepResult& r) {
    Table table({"queue_order", "slowdown", "wait_h", "max_wait_h_proxy",
                 "utilized", "kills"});
    for (std::size_t ci = 0; ci < r.shape().configs; ++ci) {
      const exp::PointSummary& p = r.at(0, 0, 0, 0, 0, 0, 0, ci);
      table.add_row()
          .add(labels[ci])
          .add(p.slowdown, 1)
          .add(p.wait / 3600.0, 1)
          .add(p.response / 3600.0, 1)
          .add(p.utilization, 3)
          .add(p.kills, 1);
    }
    FigureOutput out;
    out.parts.push_back({"ablation_queue_order", "", std::move(table)});
    return out;
  };
  return fig;
}

}  // namespace bgl::bench
