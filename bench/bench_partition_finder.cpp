// Appendix 9: asymptotic comparison of the free-partition finder algorithms.
//
//   naive    — enumerate all boxes of all sizes then filter: O(M^9) empty-torus
//   pop      — Krevat's Projection of Partitions: O(M^5) family
//   divisor  — the paper's divisor-shape finder with base skipping
//   catalog  — this library's production scan path (precomputed masks; the
//              build cost is amortised across a whole simulation, queries
//              are word-ops)
//   index    — FreePartitionIndex, the incremental occupancy-aware view the
//              simulator actually schedules with (src/torus/index.hpp)
//
// Run on empty and half-occupied M x M x M tori for growing M; the paper's
// claim is the divisor finder's "significant performance improvement over
// the naive algorithm and POP-based partition finder".
//
// `--perf-smoke` bypasses Google Benchmark and runs a fixed scheduler-shaped
// query mix (deltas + MFP + candidate enumeration + per-candidate overlay
// MFP) twice — once through catalog scans, once through the index — checks
// the answers agree bit-for-bit, prints the speedup, and exits non-zero if
// the index is slower than the scan baseline. CI runs this in Release mode.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <string_view>
#include <vector>

#include "torus/catalog.hpp"
#include "torus/finders.hpp"
#include "torus/index.hpp"
#include "util/rng.hpp"

namespace {

using namespace bgl;

NodeSet occupancy(const Dims& dims, double density, std::uint64_t seed) {
  Rng rng(seed);
  NodeSet occ(dims.volume());
  for (int i = 0; i < dims.volume(); ++i) {
    if (rng.bernoulli(density)) occ.set(i);
  }
  return occ;
}

/// Partition size swept: half a z-column's worth scales with the torus.
int probe_size(int m) { return m * m / 2 > 0 ? (m * m / 2) * 2 / 2 : 1; }

void BM_FinderNaive(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  const Dims dims = Dims::cube(m);
  const NodeSet occ = occupancy(dims, density, 42);
  const int s = probe_size(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_free_naive(dims, occ, s));
  }
}

void BM_FinderPop(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  const Dims dims = Dims::cube(m);
  const NodeSet occ = occupancy(dims, density, 42);
  const int s = probe_size(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_free_pop(dims, occ, s));
  }
}

void BM_FinderDivisor(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  const Dims dims = Dims::cube(m);
  const NodeSet occ = occupancy(dims, density, 42);
  const int s = probe_size(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_free_divisor(dims, occ, s));
  }
}

void BM_CatalogQuery(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  const Dims dims = Dims::cube(m);
  const PartitionCatalog catalog(dims);
  const NodeSet occ = occupancy(dims, density, 42);
  const int s = probe_size(m);
  std::vector<int> out;
  for (auto _ : state) {
    out.clear();
    catalog.free_entries_of_size(occ, s, out);
    benchmark::DoNotOptimize(out);
  }
}

void BM_CatalogBuild(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PartitionCatalog catalog(Dims::cube(m));
    benchmark::DoNotOptimize(catalog.num_entries());
  }
}

void BM_CatalogMfp(benchmark::State& state) {
  const PartitionCatalog catalog(Dims::bluegene_l());
  const NodeSet occ = occupancy(Dims::bluegene_l(),
                                static_cast<double>(state.range(0)) / 100.0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(catalog.mfp(occ));
  }
}

// ---------------------------------------------------------------------------
// FreePartitionIndex vs the catalog scans it replaces, at matched density.

void BM_IndexMfp(benchmark::State& state) {
  const PartitionCatalog catalog(Dims::bluegene_l());
  FreePartitionIndex index(catalog);
  index.reset(occupancy(Dims::bluegene_l(),
                        static_cast<double>(state.range(0)) / 100.0, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.mfp());
  }
}

/// The policy loop's inner query: MFP after overlaying one candidate mask.
/// Scan version rescans the catalog (fused OR) from the hint; the index only
/// tests entries already free under the base occupancy.
void BM_CatalogMfpWith(benchmark::State& state) {
  const PartitionCatalog catalog(Dims::bluegene_l());
  const NodeSet occ = occupancy(Dims::bluegene_l(),
                                static_cast<double>(state.range(0)) / 100.0, 7);
  const int hint = catalog.first_free_index(occ);
  const NodeSet& extra = catalog.entry(hint < 0 ? 0 : hint).mask;
  for (auto _ : state) {
    benchmark::DoNotOptimize(catalog.mfp_with(occ, extra, hint < 0 ? 0 : hint));
  }
}

void BM_IndexMfpWith(benchmark::State& state) {
  const PartitionCatalog catalog(Dims::bluegene_l());
  FreePartitionIndex index(catalog);
  index.reset(occupancy(Dims::bluegene_l(),
                        static_cast<double>(state.range(0)) / 100.0, 7));
  const int hint = index.first_free_index();
  const NodeSet& extra = catalog.entry(hint < 0 ? 0 : hint).mask;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.mfp_with(extra, hint < 0 ? 0 : hint));
  }
}

void BM_IndexFreeOfSize(benchmark::State& state) {
  const PartitionCatalog catalog(Dims::bluegene_l());
  FreePartitionIndex index(catalog);
  index.reset(occupancy(Dims::bluegene_l(),
                        static_cast<double>(state.range(0)) / 100.0, 7));
  const int s = catalog.allocatable_size(8);
  std::vector<int> out;
  for (auto _ : state) {
    out.clear();
    index.free_entries_of_size(s, out);
    benchmark::DoNotOptimize(out);
  }
}

/// Cost of keeping the index current: occupy + release one partition mask.
void BM_IndexUpdate(benchmark::State& state) {
  const PartitionCatalog catalog(Dims::bluegene_l());
  FreePartitionIndex index(catalog);
  index.reset(occupancy(Dims::bluegene_l(),
                        static_cast<double>(state.range(0)) / 100.0, 7));
  const int e = index.first_free_index();
  const NodeSet& mask = catalog.entry(e < 0 ? 0 : e).mask;
  for (auto _ : state) {
    index.occupy(mask);
    index.release(mask);
    benchmark::DoNotOptimize(index.mfp());
  }
}

void BM_IndexBuild(benchmark::State& state) {
  const PartitionCatalog catalog(Dims::bluegene_l());
  for (auto _ : state) {
    FreePartitionIndex index(catalog);
    benchmark::DoNotOptimize(index.mfp());
  }
}

// ---------------------------------------------------------------------------
// --perf-smoke: differential timing of the scheduler-shaped query mix.

struct SmokeOp {
  bool is_occupy;          ///< else release
  int entry;               ///< catalog entry whose mask is the delta
  std::array<int, 3> query_sizes;  ///< job sizes scheduled after the delta
};

/// Scripted mixed-occupancy churn shaped like the simulator's steady state:
/// pack random non-overlapping partitions until the torus is mostly full,
/// release random live ones, and after every delta run a scheduler-pass-like
/// query mix (head job + backfill depth = several sizes, each with a
/// policy loop evaluating the overlay MFP per candidate). The script is
/// generated once so both timed passes replay identical work.
std::vector<SmokeOp> make_smoke_script(const PartitionCatalog& catalog,
                                       int steps) {
  Rng rng(2024);
  NodeSet occ(catalog.num_nodes());
  std::vector<int> live;
  std::vector<SmokeOp> script;
  script.reserve(static_cast<std::size_t>(steps));
  for (int t = 0; t < steps; ++t) {
    SmokeOp op{};
    // Many tries: keeps the torus packed (~high occupancy), the regime the
    // paper's schedulers actually operate in and where MFP scans go deep.
    const int tries = 64;
    int chosen = -1;
    for (int k = 0; k < tries; ++k) {
      const int e = static_cast<int>(
          rng.uniform_int(0, static_cast<std::uint64_t>(catalog.num_entries() - 1)));
      if (!catalog.entry(e).mask.intersects(occ)) {
        chosen = e;
        break;
      }
    }
    if (chosen >= 0 && (live.empty() || rng.bernoulli(0.7))) {
      op.is_occupy = true;
      op.entry = chosen;
      occ |= catalog.entry(chosen).mask;
      live.push_back(chosen);
    } else if (!live.empty()) {
      const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::uint64_t>(live.size() - 1)));
      op.is_occupy = false;
      op.entry = live[i];
      occ.subtract(catalog.entry(live[i]).mask);
      live[i] = live.back();
      live.pop_back();
    } else {
      continue;  // nothing free to occupy and nothing live to release
    }
    for (int& s : op.query_sizes) {
      s = catalog.allocatable_size(static_cast<int>(
          rng.uniform_int(1, static_cast<std::uint64_t>(catalog.num_nodes()))));
    }
    script.push_back(op);
  }
  return script;
}

constexpr int kSmokeCandidates = 32;  ///< overlay MFPs per size (policy loop)

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return h * 1315423911ull + v + 1;
}

/// One replay through catalog scans. Returns a checksum over every answer.
std::uint64_t run_smoke_scan(const PartitionCatalog& catalog,
                             const std::vector<SmokeOp>& script) {
  NodeSet occ(catalog.num_nodes());
  std::vector<int> cand;
  std::uint64_t h = 0;
  for (const SmokeOp& op : script) {
    if (op.is_occupy) {
      occ |= catalog.entry(op.entry).mask;
    } else {
      occ.subtract(catalog.entry(op.entry).mask);
    }
    const int mfp_index = catalog.first_free_index(occ);
    h = mix(h, static_cast<std::uint64_t>(mfp_index + 1));
    h = mix(h, static_cast<std::uint64_t>(catalog.mfp(occ)));
    const int hint = mfp_index < 0 ? 0 : mfp_index;
    for (const int s : op.query_sizes) {
      cand.clear();
      catalog.free_entries_of_size(occ, s, cand);
      h = mix(h, cand.size());
      const int n = static_cast<int>(cand.size()) < kSmokeCandidates
                        ? static_cast<int>(cand.size())
                        : kSmokeCandidates;
      for (int i = 0; i < n; ++i) {
        h = mix(h, static_cast<std::uint64_t>(
                       catalog.mfp_with(occ, catalog.entry(cand[i]).mask, hint)));
      }
    }
  }
  return h;
}

/// The same replay through the incremental index.
std::uint64_t run_smoke_index(const PartitionCatalog& catalog,
                              FreePartitionIndex& index,
                              const std::vector<SmokeOp>& script) {
  index.reset();
  std::vector<int> cand;
  std::uint64_t h = 0;
  for (const SmokeOp& op : script) {
    if (op.is_occupy) {
      index.occupy(catalog.entry(op.entry).mask);
    } else {
      index.release(catalog.entry(op.entry).mask);
    }
    const int mfp_index = index.first_free_index();
    h = mix(h, static_cast<std::uint64_t>(mfp_index + 1));
    h = mix(h, static_cast<std::uint64_t>(index.mfp()));
    const int hint = mfp_index < 0 ? 0 : mfp_index;
    for (const int s : op.query_sizes) {
      cand.clear();
      index.free_entries_of_size(s, cand);
      h = mix(h, cand.size());
      const int n = static_cast<int>(cand.size()) < kSmokeCandidates
                        ? static_cast<int>(cand.size())
                        : kSmokeCandidates;
      for (int i = 0; i < n; ++i) {
        h = mix(h, static_cast<std::uint64_t>(
                       index.mfp_with(catalog.entry(cand[i]).mask, hint)));
      }
    }
  }
  return h;
}

int run_perf_smoke() {
  const PartitionCatalog catalog(Dims::bluegene_l());
  FreePartitionIndex index(catalog);
  const std::vector<SmokeOp> script = make_smoke_script(catalog, 2000);
  std::printf("perf-smoke: %zu deltas on the %d-entry BlueGene/L catalog\n",
              script.size(), catalog.num_entries());

  using clock = std::chrono::steady_clock;
  constexpr int kReps = 3;  // best-of to shave scheduler noise
  double scan_s = 1e100, index_s = 1e100;
  std::uint64_t scan_h = 0, index_h = 0;
  for (int r = 0; r < kReps; ++r) {
    const auto t0 = clock::now();
    scan_h = run_smoke_scan(catalog, script);
    const auto t1 = clock::now();
    index_h = run_smoke_index(catalog, index, script);
    const auto t2 = clock::now();
    scan_s = std::min(scan_s, std::chrono::duration<double>(t1 - t0).count());
    index_s = std::min(index_s, std::chrono::duration<double>(t2 - t1).count());
  }

  if (scan_h != index_h) {
    std::printf("perf-smoke: FAIL — index answers diverge from catalog scans "
                "(checksum %llx vs %llx)\n",
                static_cast<unsigned long long>(scan_h),
                static_cast<unsigned long long>(index_h));
    return 2;
  }
  const double speedup = scan_s / index_s;
  std::printf("perf-smoke: agreement OK (checksum %llx)\n",
              static_cast<unsigned long long>(scan_h));
  std::printf("perf-smoke: scan %.3f ms, index %.3f ms, speedup %.1fx %s\n",
              scan_s * 1e3, index_s * 1e3, speedup,
              speedup >= 5.0 ? "(>=5x target met)" : "(below 5x target)");
  if (speedup < 1.0) {
    std::printf("perf-smoke: FAIL — index slower than the scan baseline\n");
    return 1;
  }
  return 0;
}

}  // namespace

// Empty (density 0) and fragmented (density 50) tori, growing M. The naive
// finder is capped at M=8; it is O(M^9) and exists only as the strawman.
BENCHMARK(BM_FinderNaive)->Args({4, 0})->Args({4, 50})->Args({6, 0})->Args({6, 50})->Args({8, 0})->Args({8, 50})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FinderPop)->Args({4, 0})->Args({4, 50})->Args({6, 0})->Args({6, 50})->Args({8, 0})->Args({8, 50})->Args({12, 0})->Args({12, 50})->Args({16, 0})->Args({16, 50})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FinderDivisor)->Args({4, 0})->Args({4, 50})->Args({6, 0})->Args({6, 50})->Args({8, 0})->Args({8, 50})->Args({12, 0})->Args({12, 50})->Args({16, 0})->Args({16, 50})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CatalogQuery)->Args({4, 0})->Args({4, 50})->Args({6, 0})->Args({6, 50})->Args({8, 0})->Args({8, 50})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CatalogBuild)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CatalogMfp)->Arg(0)->Arg(30)->Arg(60)->Arg(90)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IndexMfp)->Arg(0)->Arg(30)->Arg(60)->Arg(90)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CatalogMfpWith)->Arg(0)->Arg(30)->Arg(60)->Arg(90)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IndexMfpWith)->Arg(0)->Arg(30)->Arg(60)->Arg(90)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IndexFreeOfSize)->Arg(0)->Arg(30)->Arg(60)->Arg(90)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IndexUpdate)->Arg(0)->Arg(30)->Arg(60)->Arg(90)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IndexBuild)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--perf-smoke") return run_perf_smoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
