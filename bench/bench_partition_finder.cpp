// Appendix 9: asymptotic comparison of the free-partition finder algorithms.
//
//   naive    — enumerate all boxes of all sizes then filter: O(M^9) empty-torus
//   pop      — Krevat's Projection of Partitions: O(M^5) family
//   divisor  — the paper's divisor-shape finder with base skipping
//   catalog  — this library's production path (precomputed masks; the build
//              cost is amortised across a whole simulation, queries are
//              word-ops)
//
// Run on empty and half-occupied M x M x M tori for growing M; the paper's
// claim is the divisor finder's "significant performance improvement over
// the naive algorithm and POP-based partition finder".
#include <benchmark/benchmark.h>

#include "torus/catalog.hpp"
#include "torus/finders.hpp"
#include "util/rng.hpp"

namespace {

using namespace bgl;

NodeSet occupancy(const Dims& dims, double density, std::uint64_t seed) {
  Rng rng(seed);
  NodeSet occ(dims.volume());
  for (int i = 0; i < dims.volume(); ++i) {
    if (rng.bernoulli(density)) occ.set(i);
  }
  return occ;
}

/// Partition size swept: half a z-column's worth scales with the torus.
int probe_size(int m) { return m * m / 2 > 0 ? (m * m / 2) * 2 / 2 : 1; }

void BM_FinderNaive(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  const Dims dims = Dims::cube(m);
  const NodeSet occ = occupancy(dims, density, 42);
  const int s = probe_size(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_free_naive(dims, occ, s));
  }
}

void BM_FinderPop(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  const Dims dims = Dims::cube(m);
  const NodeSet occ = occupancy(dims, density, 42);
  const int s = probe_size(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_free_pop(dims, occ, s));
  }
}

void BM_FinderDivisor(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  const Dims dims = Dims::cube(m);
  const NodeSet occ = occupancy(dims, density, 42);
  const int s = probe_size(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_free_divisor(dims, occ, s));
  }
}

void BM_CatalogQuery(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  const Dims dims = Dims::cube(m);
  const PartitionCatalog catalog(dims);
  const NodeSet occ = occupancy(dims, density, 42);
  const int s = probe_size(m);
  std::vector<int> out;
  for (auto _ : state) {
    out.clear();
    catalog.free_entries_of_size(occ, s, out);
    benchmark::DoNotOptimize(out);
  }
}

void BM_CatalogBuild(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PartitionCatalog catalog(Dims::cube(m));
    benchmark::DoNotOptimize(catalog.num_entries());
  }
}

void BM_CatalogMfp(benchmark::State& state) {
  const PartitionCatalog catalog(Dims::bluegene_l());
  const NodeSet occ = occupancy(Dims::bluegene_l(),
                                static_cast<double>(state.range(0)) / 100.0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(catalog.mfp(occ));
  }
}

}  // namespace

// Empty (density 0) and fragmented (density 50) tori, growing M. The naive
// finder is capped at M=8; it is O(M^9) and exists only as the strawman.
BENCHMARK(BM_FinderNaive)->Args({4, 0})->Args({4, 50})->Args({6, 0})->Args({6, 50})->Args({8, 0})->Args({8, 50})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FinderPop)->Args({4, 0})->Args({4, 50})->Args({6, 0})->Args({6, 50})->Args({8, 0})->Args({8, 50})->Args({12, 0})->Args({12, 50})->Args({16, 0})->Args({16, 50})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FinderDivisor)->Args({4, 0})->Args({4, 50})->Args({6, 0})->Args({6, 50})->Args({8, 0})->Args({8, 50})->Args({12, 0})->Args({12, 50})->Args({16, 0})->Args({16, 50})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CatalogQuery)->Args({4, 0})->Args({4, 50})->Args({6, 0})->Args({6, 50})->Args({8, 0})->Args({8, 50})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CatalogBuild)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CatalogMfp)->Arg(0)->Arg(30)->Arg(60)->Arg(90)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
