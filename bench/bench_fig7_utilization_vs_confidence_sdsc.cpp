// Figure 7: capacity split (utilized / unused / lost) vs. prediction
// confidence for the SDSC log under the balancing scheduler, panels
// (a) c = 1.0 and (b) c = 1.2, at the paper's 4000-event nominal budget.
//
// Expected shape: with rising confidence some lost work converts to useful
// work; the effect is clearest under high load, where "more and more wasted
// work is converted to useful work".
#include <iostream>

#include "common/bench_common.hpp"

int main() {
  using namespace bgl;
  using namespace bgl::bench;

  const SyntheticModel model = bench_sdsc();
  const std::size_t nominal = paper_failure_count(model);
  std::cout << "Figure 7: utilization split vs confidence (SDSC, balancing, nominal "
            << nominal << " failures)\n"
            << "seeds/point: " << bench_seeds() << ", jobs/run: " << model.num_jobs
            << "\n\n";

  for (const double c : {1.0, 1.2}) {
    Table table({"confidence", "utilized", "unused", "lost", "kills"});
    for (int step = 0; step <= 10; ++step) {
      const double a = 0.1 * step;
      const RunSummary r = run_point(model, c, nominal, SchedulerKind::kBalancing, a);
      table.add_row().add(a, 1).add(r.utilization, 3).add(r.unused, 3).add(r.lost, 3)
          .add(r.kills, 1);
      std::cout << "." << std::flush;
    }
    std::cout << "\n\nPanel c = " << format_double(c, 1) << ":\n" << table.render();
    write_csv(table, c == 1.0 ? "fig7a_utilization_vs_confidence_sdsc_c10"
                              : "fig7b_utilization_vs_confidence_sdsc_c12");
  }
  return 0;
}
