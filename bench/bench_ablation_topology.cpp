// Ablation: torus wrap-around vs mesh partitions.
//
// The paper models partitions as wrap-around rectangles; Krevat et al. also
// evaluated the non-wrapping (mesh) variant. Wrap-around multiplies the
// candidate placements per shape and reduces fragmentation, so the mesh
// machine should show higher slowdown at equal load — this bench measures
// by how much, with and without fault prediction.
#include <string>
#include <vector>

#include "common/bench_common.hpp"
#include "common/figures.hpp"

namespace bgl::bench {

FigureDef make_ablation_topology() {
  const SyntheticModel model = bench_sdsc();
  const std::size_t nominal = paper_failure_count(model);

  exp::SweepSpec spec;
  spec.name = "ablation_topology";
  spec.models = {{"SDSC", model}};
  spec.alphas = {0.0, 0.1};
  for (const Topology topology : {Topology::kTorus, Topology::kMesh}) {
    SimConfig proto;
    proto.topology = topology;
    spec.configs.push_back(
        {std::string(to_string(topology)), proto, std::nullopt});
  }

  FigureDef fig;
  fig.name = "ablation_topology";
  fig.summary = "Ablation - torus wrap-around vs mesh partitions (SDSC)";
  fig.header = "Ablation: torus vs mesh partitions (SDSC, c=1.0, nominal " +
               std::to_string(nominal) + " failures)\n";

  std::vector<std::string> labels;
  for (const exp::ConfigCase& cc : spec.configs) labels.push_back(cc.label);

  fig.spec = std::move(spec);
  fig.render = [labels](const exp::SweepResult& r) {
    Table table({"topology", "alpha", "slowdown", "wait_h", "utilized",
                 "kills"});
    for (std::size_t ci = 0; ci < r.shape().configs; ++ci) {
      for (std::size_t ai = 0; ai < r.shape().alphas; ++ai) {
        const exp::PointSummary& p = r.at(0, 0, 0, 0, 0, ai, 0, ci);
        table.add_row()
            .add(labels[ci])
            .add(0.1 * static_cast<int>(ai), 1)
            .add(p.slowdown, 1)
            .add(p.wait / 3600.0, 1)
            .add(p.utilization, 3)
            .add(p.kills, 1);
      }
    }
    FigureOutput out;
    out.parts.push_back({"ablation_topology", "", std::move(table)});
    return out;
  };
  return fig;
}

}  // namespace bgl::bench
