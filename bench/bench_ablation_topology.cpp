// Ablation: torus wrap-around vs mesh partitions.
//
// The paper models partitions as wrap-around rectangles; Krevat et al. also
// evaluated the non-wrapping (mesh) variant. Wrap-around multiplies the
// candidate placements per shape and reduces fragmentation, so the mesh
// machine should show higher slowdown at equal load — this bench measures
// by how much, with and without fault prediction.
#include <iostream>

#include "common/bench_common.hpp"

int main() {
  using namespace bgl;
  using namespace bgl::bench;

  const SyntheticModel model = bench_sdsc();
  const std::size_t nominal = paper_failure_count(model);
  std::cout << "Ablation: torus vs mesh partitions (SDSC, c=1.0, nominal " << nominal
            << " failures)\n\n";

  Table table({"topology", "alpha", "slowdown", "wait_h", "utilized", "kills"});
  for (const Topology topology : {Topology::kTorus, Topology::kMesh}) {
    for (const double a : {0.0, 0.1}) {
      SimConfig proto;
      proto.topology = topology;
      const RunSummary r =
          run_point(model, 1.0, nominal, SchedulerKind::kBalancing, a, &proto);
      table.add_row()
          .add(std::string(to_string(topology)))
          .add(a, 1)
          .add(r.slowdown, 1)
          .add(r.wait / 3600.0, 1)
          .add(r.utilization, 3)
          .add(r.kills, 1);
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n\n" << table.render();
  write_csv(table, "ablation_topology");
  return 0;
}
