// bench_scale: throughput of the simulator itself at BlueGene/L-full scale.
//
// Every other figure measures the *schedulers*; this one measures the
// *simulator*: a 64 x 32 x 32 (65 536-node) machine, a million-job
// synthetic SDSC-profile trace, and all three paper schedulers, reporting
// host-side throughput (jobs/sec, scheduling decisions/sec) and the p99
// decision latency from the sched.decision_us histogram. The machine uses
// the block catalog (CatalogOptions::kBlocks — full box enumeration is
// infeasible at this volume) with the default calendar event queue and
// pooled scheduler scratch.
//
// Outputs, beyond the usual CSV/stats pair: BENCH_scale.json, one entry per
// scheduler with the throughput numbers — the artifact the CI perf job
// uploads. The companion binary (bench_scale_main.cpp) adds --perf-smoke
// (optimized vs reference-configuration differential gate) and
// --emit-trace (a small full-scale trace for tools/trace_audit --strict).
#include <sstream>
#include <string>

#include "common/bench_common.hpp"
#include "common/figures.hpp"
#include "util/strings.hpp"

namespace bgl::bench {

Dims scale_machine_dims() { return Dims{64, 32, 32}; }

SyntheticModel scale_model() {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = 1'000'000;
  apply_job_scale_env(model);  // BGL_JOB_SCALE shrinks CI / test runs
  return model;
}

SimConfig scale_proto() {
  SimConfig proto;
  proto.dims = scale_machine_dims();
  proto.catalog.mode = CatalogOptions::Mode::kBlocks;
  proto.catalog.min_block = 256;
  return proto;
}

FigureDef make_scale() {
  const SyntheticModel model = scale_model();
  const double alpha = 0.1;

  exp::SweepSpec spec;
  spec.name = "scale";
  spec.models = {{"SDSC", model}};
  spec.schedulers = {SchedulerKind::kKrevat, SchedulerKind::kBalancing,
                     SchedulerKind::kTieBreak};
  spec.alphas = {alpha};
  spec.configs = {{"full-machine", scale_proto(), std::nullopt}};
  // One seed: this figure measures host throughput, not a noisy simulated
  // metric, and a repeat would double a million-job run for nothing.
  spec.repeat_floor = 1;
  spec.repeat_cap = 1;

  FigureDef fig;
  fig.name = "scale";
  fig.summary = "Scale-up throughput: 64x32x32 machine, 1M-job trace, "
                "all three schedulers";
  fig.header = "Scale bench: " + to_string(scale_machine_dims()) +
               " supernodes (block catalog), " +
               std::to_string(model.num_jobs) +
               " SDSC-profile jobs per scheduler\n" +
               "seeds/point: " + std::to_string(spec.repeats()) + "\n";
  fig.spec = std::move(spec);
  fig.render = [](const exp::SweepResult& r) {
    FigureOutput out;
    Table table({"scheduler", "jobs", "wall_s", "jobs_per_s", "decisions",
                 "decisions_per_s", "p99_decision_us", "utilization"});
    std::ostringstream json;
    json << "{\n  \"schema_version\": 2,\n  \"stamp\": \"" << artifact_stamp()
         << "\",\n  \"machine\": \"" << to_string(scale_machine_dims())
         << "\",\n  \"catalog\": \"blocks\",\n  \"schedulers\": {\n";
    const char* names[] = {"krevat", "balancing", "tie-break"};
    for (std::size_t si = 0; si < r.shape().schedulers; ++si) {
      const exp::PointSummary& p = r.at(0, 0, 0, si, 0, 0, 0, 0);
      table.add_row()
          .add(names[si])
          .add(static_cast<long long>(p.jobs_completed))
          .add(p.wall_seconds, 2)
          .add(p.jobs_per_sec(), 0)
          .add(static_cast<long long>(p.decisions))
          .add(p.decisions_per_sec(), 0)
          .add(p.decision_p99_us, 1)
          .add(p.utilization, 3);
      json << "    \"" << names[si] << "\": {"
           << "\"jobs\": " << static_cast<long long>(p.jobs_completed)
           << ", \"wall_seconds\": " << format_double(p.wall_seconds, 3)
           << ", \"jobs_per_sec\": " << format_double(p.jobs_per_sec(), 1)
           << ", \"decisions\": " << static_cast<long long>(p.decisions)
           << ", \"decisions_per_sec\": "
           << format_double(p.decisions_per_sec(), 1)
           << ", \"p99_decision_us\": "
           << format_double(p.decision_p99_us, 2)
           << ", \"utilization\": " << format_double(p.utilization, 4) << "}"
           << (si + 1 < r.shape().schedulers ? ",\n" : "\n");
    }
    json << "  }\n}\n";
    out.parts.push_back({"scale_throughput", "Throughput:", std::move(table)});
    out.artifacts.push_back({"BENCH_scale.json", json.str()});
    return out;
  };
  return fig;
}

}  // namespace bgl::bench
