// Figure 6: average bounded slowdown vs. prediction confidence for the
// (a) SDSC, (b) NASA, (c) LLNL logs under the balancing scheduler, at
// loads c = 1.0 and c = 1.2 and the paper's failure budgets (4000 / 4000 /
// 1000 nominal events).
//
// Expected shape: most of the improvement appears within the first step
// (a = 0.1); beyond it the curves are non-monotonic ("little correlation
// between the value of the confidence and the overall performance") because
// E_loss trades MFP against stability. Gains are larger at c = 1.2.
#include <algorithm>
#include <iostream>

#include "common/bench_common.hpp"

int main() {
  using namespace bgl;
  using namespace bgl::bench;

  struct LogCase {
    const char* label;
    SyntheticModel model;
  };
  const LogCase cases[] = {
      {"SDSC", bench_sdsc()}, {"NASA", bench_nasa()}, {"LLNL", bench_llnl()}};

  std::cout << "Figure 6: avg bounded slowdown vs confidence (balancing)\n"
            << "seeds/point: " << std::max(bench_seeds(), 5) << "\n\n";

  for (const LogCase& lc : cases) {
    const std::size_t nominal = paper_failure_count(lc.model);
    Table table({"confidence", "c=1.0", "impr_%", "c=1.2", "impr_%"});
    double base10 = -1.0;
    double base12 = -1.0;
    for (int step = 0; step <= 10; ++step) {
      const double a = 0.1 * step;
      const RunSummary r10 =
          run_point(lc.model, 1.0, nominal, SchedulerKind::kBalancing, a, nullptr, 5);
      const RunSummary r12 =
          run_point(lc.model, 1.2, nominal, SchedulerKind::kBalancing, a, nullptr, 5);
      if (step == 0) {
        base10 = r10.slowdown;
        base12 = r12.slowdown;
      }
      table.add_row()
          .add(a, 1)
          .add(r10.slowdown, 1)
          .add(improvement_pct(base10, r10.slowdown), 1)
          .add(r12.slowdown, 1)
          .add(improvement_pct(base12, r12.slowdown), 1);
      std::cout << "." << std::flush;
    }
    std::cout << "\n\nPanel " << lc.label << " (nominal failures " << nominal
              << "):\n"
              << table.render();
    write_csv(table, std::string("fig6_slowdown_vs_confidence_") + lc.label);
  }
  return 0;
}
