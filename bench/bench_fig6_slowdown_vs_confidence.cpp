// Figure 6: average bounded slowdown vs. prediction confidence for the
// (a) SDSC, (b) NASA, (c) LLNL logs under the balancing scheduler, at
// loads c = 1.0 and c = 1.2 and the paper's failure budgets (4000 / 4000 /
// 1000 nominal events).
//
// Expected shape: most of the improvement appears within the first step
// (a = 0.1); beyond it the curves are non-monotonic ("little correlation
// between the value of the confidence and the overall performance") because
// E_loss trades MFP against stability. Gains are larger at c = 1.2.
#include <string>
#include <vector>

#include "common/bench_common.hpp"
#include "common/figures.hpp"

namespace bgl::bench {

FigureDef make_fig6() {
  exp::SweepSpec spec;
  spec.name = "fig6";
  spec.models = {{"SDSC", bench_sdsc()},
                 {"NASA", bench_nasa()},
                 {"LLNL", bench_llnl()}};
  spec.load_scales = {1.0, 1.2};
  // failure_budgets left empty: each log runs at its paper budget.
  for (int step = 0; step <= 10; ++step) spec.alphas.push_back(0.1 * step);
  spec.repeat_floor = 5;

  std::vector<std::string> labels;
  std::vector<std::size_t> nominals;
  for (const exp::ModelCase& mc : spec.models) {
    labels.push_back(mc.label);
    nominals.push_back(paper_failure_count(mc.model));
  }

  FigureDef fig;
  fig.name = "fig6";
  fig.summary = "Fig. 6 - slowdown vs confidence, three logs (balancing)";
  fig.header =
      "Figure 6: avg bounded slowdown vs confidence (balancing)\n"
      "seeds/point: " + std::to_string(spec.repeats()) + "\n";
  fig.spec = std::move(spec);
  fig.render = [labels, nominals](const exp::SweepResult& r) {
    FigureOutput out;
    for (std::size_t mi = 0; mi < r.shape().models; ++mi) {
      Table table({"confidence", "c=1.0", "impr_%", "c=1.2", "impr_%"});
      double base10 = -1.0;
      double base12 = -1.0;
      for (std::size_t ai = 0; ai < r.shape().alphas; ++ai) {
        const exp::PointSummary& r10 = r.at(mi, 0, 0, 0, 0, ai, 0, 0);
        const exp::PointSummary& r12 = r.at(mi, 1, 0, 0, 0, ai, 0, 0);
        if (ai == 0) {
          base10 = r10.slowdown;
          base12 = r12.slowdown;
        }
        table.add_row()
            .add(0.1 * static_cast<int>(ai), 1)
            .add(r10.slowdown, 1)
            .add(improvement_pct(base10, r10.slowdown), 1)
            .add(r12.slowdown, 1)
            .add(improvement_pct(base12, r12.slowdown), 1);
      }
      out.parts.push_back({"fig6_slowdown_vs_confidence_" + labels[mi],
                           "Panel " + labels[mi] + " (nominal failures " +
                               std::to_string(nominals[mi]) + "):",
                           std::move(table)});
    }
    return out;
  };
  return fig;
}

}  // namespace bgl::bench
