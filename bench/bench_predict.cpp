// Predictor ablation (extension): every PredictorModel on the oracle
// confidence axis. The paper's §4 predictors are simulated against the
// ground-truth failure log with a single quality knob alpha; this figure
// brackets them with the real, event-fed predictors (history, adaptive) that
// never see the future, so the learned models' *realized* precision/recall
// can be placed on the oracle's alpha curve:
//
//   * scheduling outcome — the full predictors x alphas grid (new
//     SweepSpec::predictors axis) on SDSC under the balancing scheduler:
//     what each prediction source buys in slowdown/kills/lost work. The
//     oblivious (none) and oracle (perfect) rows repeat across alphas by
//     construction and bound the curve.
//   * forecast quality — evaluate_predictor_online() feeds each learned
//     predictor the truth events up to every sampled window start (exactly
//     a live deployment's information) and scores the flags against the
//     window's actual failures. Post-processing on a fixed-seed trace, so
//     it lives in the renderer, mirroring bench_ablation_history_predictor.
//
// Beyond the usual CSV/stats pair this emits BENCH_predict.json (schema
// below) — the artifact checked into docs/ and refreshed by the CI
// predict-smoke job. See docs/PREDICTORS.md for the model matrix.
#include <sstream>
#include <string>
#include <vector>

#include "common/bench_common.hpp"
#include "common/figures.hpp"
#include "failure/generator.hpp"
#include "predict/adaptive.hpp"
#include "predict/registry.hpp"
#include "util/strings.hpp"

namespace bgl::bench {

FigureDef make_predict() {
  const SyntheticModel model = bench_sdsc();
  const std::size_t nominal = paper_failure_count(model);

  const std::vector<PredictorModel> predictors = {
      PredictorModel::kNone, PredictorModel::kPaper, PredictorModel::kHistory,
      PredictorModel::kAdaptive, PredictorModel::kPerfect};
  const std::vector<double> alphas = {0.2, 0.5, 0.8};

  exp::SweepSpec spec;
  spec.name = "predict";
  spec.models = {{"SDSC", model}};
  spec.alphas = alphas;
  spec.predictors = predictors;

  FigureDef fig;
  fig.name = "predict";
  fig.summary = "Extension - every predictor model on the oracle alpha axis";
  fig.header =
      "Predictor ablation: model x alpha grid (SDSC, balancing, nominal " +
      std::to_string(nominal) + " failures)\n";

  fig.spec = std::move(spec);
  fig.render = [predictors, alphas, nominal](const exp::SweepResult& r) {
    FigureOutput out;

    // Realized forecast quality of the learned predictors, measured the way
    // a deployment would: truth events fed up to each window start, flags
    // scored against the window's actual failures. The oracle rows use the
    // same rolling harness (their observers are no-ops, so online ==
    // offline) to keep every number on one footing.
    const FailureModel fm = FailureModel::bluegene_l(nominal, 730.0 * 86400.0);
    const FailureTrace trace = generate_failures(fm, 11);
    struct QualityRow {
      const char* label;
      PredictionQuality q;
    };
    std::vector<QualityRow> quality_rows;
    {
      HistoryPredictor history(trace, 7.0 * 86400.0);
      AdaptivePredictor adaptive(fm.num_nodes);
      PerfectPredictor perfect(trace);
      const double window = 6.0 * 3600.0;
      const double step = 12.0 * 3600.0;
      quality_rows.push_back(
          {"history 7d",
           evaluate_predictor_online(history, trace, window, step)});
      quality_rows.push_back(
          {"adaptive",
           evaluate_predictor_online(adaptive, trace, window, step)});
      quality_rows.push_back(
          {"perfect oracle",
           evaluate_predictor_online(perfect, trace, window, step)});

      Table quality({"predictor", "precision", "recall", "windows"});
      for (const QualityRow& row : quality_rows) {
        quality.add_row()
            .add(row.label)
            .add(row.q.precision, 3)
            .add(row.q.recall, 3)
            .add(static_cast<long long>(row.q.windows));
      }
      out.parts.push_back({"predict_quality",
                           "Realized forecast quality (6 h windows, online):",
                           std::move(quality)});
    }

    // Scheduling outcome across the full grid: predictor outer (each model's
    // alpha curve grouped), alpha inner.
    Table table({"predictor", "alpha", "slowdown", "kills", "utilized",
                 "lost"});
    std::ostringstream json;
    json << "{\n  \"schema_version\": 1,\n  \"stamp\": \"" << artifact_stamp()
         << "\",\n  \"model\": \"SDSC\",\n  \"scheduler\": \"balancing\",\n"
         << "  \"nominal_failures\": " << nominal << ",\n  \"quality\": {\n";
    for (std::size_t qi = 0; qi < quality_rows.size(); ++qi) {
      const QualityRow& row = quality_rows[qi];
      json << "    \"" << row.label << "\": {"
           << "\"precision\": " << format_double(row.q.precision, 4)
           << ", \"recall\": " << format_double(row.q.recall, 4)
           << ", \"windows\": " << static_cast<long long>(row.q.windows) << "}"
           << (qi + 1 < quality_rows.size() ? ",\n" : "\n");
    }
    json << "  },\n  \"scheduling\": {\n";
    for (std::size_t pi = 0; pi < predictors.size(); ++pi) {
      const char* name = to_string(predictors[pi]);
      json << "    \"" << name << "\": [\n";
      for (std::size_t ai = 0; ai < alphas.size(); ++ai) {
        const exp::PointSummary& p = r.at(0, 0, 0, 0, 0, ai, pi, 0);
        table.add_row()
            .add(name)
            .add(alphas[ai], 1)
            .add(p.slowdown, 1)
            .add(p.kills, 1)
            .add(p.utilization, 3)
            .add(p.lost, 3);
        json << "      {\"alpha\": " << format_double(alphas[ai], 1)
             << ", \"slowdown\": " << format_double(p.slowdown, 2)
             << ", \"kills\": " << format_double(p.kills, 1)
             << ", \"utilization\": " << format_double(p.utilization, 4)
             << ", \"lost\": " << format_double(p.lost, 4) << "}"
             << (ai + 1 < alphas.size() ? ",\n" : "\n");
      }
      json << "    ]" << (pi + 1 < predictors.size() ? ",\n" : "\n");
    }
    json << "  }\n}\n";
    out.parts.push_back({"predict", "", std::move(table)});
    out.artifacts.push_back({"BENCH_predict.json", json.str()});
    return out;
  };
  return fig;
}

}  // namespace bgl::bench
