// Shared main() of every thin per-figure binary. Each executable target
// compiles this one file with -DBGL_FIGURE_NAME="<name>" and links the
// figure library; the actual figure definition lives in the matching
// bench_*.cpp factory (see common/figures.hpp).
#include "common/figures.hpp"

#ifndef BGL_FIGURE_NAME
#error "BGL_FIGURE_NAME must be defined to the registry name of the figure"
#endif

int main() { return bgl::bench::figure_binary_main(BGL_FIGURE_NAME); }
