// Figure 8: capacity split (utilized / unused / lost) vs. prediction
// confidence for the NASA log under the balancing scheduler, panels
// (a) c = 1.0 and (b) c = 1.2, at the paper's 4000-event nominal budget.
//
// Same reading as Figure 7 on the second log: under high load increased
// confidence converts wasted work to useful work; under low load the
// benefit is smaller because free partitions abound.
#include <string>

#include "common/bench_common.hpp"
#include "common/figures.hpp"
#include "util/strings.hpp"

namespace bgl::bench {

FigureDef make_fig8() {
  const SyntheticModel model = bench_nasa();
  const std::size_t nominal = paper_failure_count(model);

  exp::SweepSpec spec;
  spec.name = "fig8";
  spec.models = {{"NASA", model}};
  spec.load_scales = {1.0, 1.2};
  for (int step = 0; step <= 10; ++step) spec.alphas.push_back(0.1 * step);

  FigureDef fig;
  fig.name = "fig8";
  fig.summary = "Fig. 8 - utilization split vs confidence (NASA)";
  fig.header =
      "Figure 8: utilization split vs confidence (NASA, balancing, nominal " +
      std::to_string(nominal) + " failures)\n" +
      "seeds/point: " + std::to_string(spec.repeats()) +
      ", jobs/run: " + std::to_string(model.num_jobs) + "\n";
  fig.spec = std::move(spec);
  fig.render = [](const exp::SweepResult& r) {
    FigureOutput out;
    for (std::size_t li = 0; li < r.shape().loads; ++li) {
      const double c = li == 0 ? 1.0 : 1.2;
      Table table({"confidence", "utilized", "unused", "lost", "kills"});
      for (std::size_t ai = 0; ai < r.shape().alphas; ++ai) {
        const exp::PointSummary& p = r.at(0, li, 0, 0, 0, ai, 0, 0);
        table.add_row()
            .add(0.1 * static_cast<int>(ai), 1)
            .add(p.utilization, 3)
            .add(p.unused, 3)
            .add(p.lost, 3)
            .add(p.kills, 1);
      }
      out.parts.push_back({li == 0 ? "fig8a_utilization_vs_confidence_nasa_c10"
                                   : "fig8b_utilization_vs_confidence_nasa_c12",
                           "Panel c = " + format_double(c, 1) + ":",
                           std::move(table)});
    }
    return out;
  };
  return fig;
}

}  // namespace bgl::bench
