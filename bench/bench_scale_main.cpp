// bench_scale binary: the scale-up throughput figure plus the CI gates.
//
//   bench_scale
//       Run the "scale" figure from the registry: 64 x 32 x 32 machine,
//       1M-job SDSC trace (x BGL_JOB_SCALE), all three schedulers. Writes
//       scale_throughput.csv, scale.stats.json and BENCH_scale.json into
//       ${BGL_BENCH_OUT:-bench_out}.
//
//   bench_scale --perf-smoke [--jobs N]
//       Differential perf gate: replay one full-machine SDSC workload
//       (default 20 000 jobs) through the optimized configuration (calendar
//       event queue, pooled arena scratch, word-range scan kernels) and
//       through the pre-optimization reference (binary-heap queue,
//       per-decision allocation, full-width scans). The two SimResults must
//       be identical — the optimizations are pure mechanism — and the
//       optimized run must be at least kMinSpeedup x faster end to end.
//       Both gated runs carry a null phase profiler (the zero-cost-when-
//       detached assertion); a third run with the profiler attached must
//       reproduce the same SimResult with a populated, drop-free tree.
//       Exit status: 0 ok, 1 below the speedup gate, 2 results diverge.
//
//   bench_scale --emit-trace PATH [--jobs N]
//       Write the JSONL trace of a short full-scale run (default 2 000
//       jobs, machine_state snapshots on) so CI can feed a 65 536-node
//       block-catalog trace through `tools/trace_audit --strict`.
#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>

#include "common/figures.hpp"
#include "des/event_queue.hpp"
#include "obs/counters.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "util/strings.hpp"

namespace {

using namespace bgl;

/// End-to-end speedup the optimized configuration must reach over the
/// reference on the same workload (ISSUE 6 acceptance gate). Measured
/// margin is far larger; 3x keeps the gate robust on noisy CI runners.
constexpr double kMinSpeedup = 3.0;

struct ScaleInputs {
  Workload workload;
  FailureTrace trace;
  std::size_t injected_events = 0;
};

/// The bench recipe at full machine scale (same shape as exp::run_unit):
/// generate the SDSC log, rescale sizes onto 65 536 nodes, stretch the
/// paper's failure budget over the log's span at matching density.
ScaleInputs make_inputs(int jobs) {
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = jobs;
  const Dims dims = bench::scale_machine_dims();

  ScaleInputs in;
  in.workload = generate_workload(model, /*seed=*/1000);
  in.workload = rescale_sizes(in.workload, dims.volume());
  const double span = in.workload.arrival_span();
  double max_runtime = 0.0;
  for (const Job& j : in.workload.jobs) {
    max_runtime = std::max(max_runtime, j.runtime);
  }
  const double trace_span = span * 1.05 + 2.0 * max_runtime;
  in.injected_events =
      span_scaled_events(paper_failure_count(model), trace_span, model);

  FailureModel fm = FailureModel::bluegene_l(in.injected_events, trace_span);
  fm.num_nodes = dims.volume();
  in.trace = generate_failures(fm, /*seed=*/500);
  return in;
}

SimConfig smoke_config() {
  SimConfig config = bench::scale_proto();
  config.scheduler = SchedulerKind::kBalancing;
  config.alpha = 0.1;
  config.seed = 500 ^ 0x7365656473ULL;  // The bench seed derivation.
  return config;
}


int run_perf_smoke(int jobs) {
  const ScaleInputs in = make_inputs(jobs);
  std::printf("perf-smoke: %d nodes (%s), %zu jobs, %zu failure events\n",
              bench::scale_machine_dims().volume(),
              to_string(bench::scale_machine_dims()).c_str(),
              in.workload.jobs.size(), in.injected_events);

  // Reference = the pre-optimization engine: binary-heap event queue,
  // fresh scratch + heap vectors per scheduling pass, full-width word
  // scans in the catalog kernels. The partition index stays on in both
  // (it predates this optimization pass).
  SimConfig reference = smoke_config();
  reference.event_queue = EventQueueKind::kHeap;
  reference.sched.arena_scratch = false;
  reference.catalog.full_width_scans = true;

  const SimConfig optimized = smoke_config();

  // Per-run counters so the log shows where the time went (scheduler
  // decisions vs the event loop) when the gate regresses.
  auto timed_run = [&in](SimConfig config, const char* label) {
    obs::CounterRegistry counters;
    config.obs.counters = &counters;
    const SimResult result = run_simulation(in.workload, in.trace, config);
    std::printf(
        "perf-smoke: %s: %.3f s (%.3f s in %llu scheduler passes)\n", label,
        result.wall_seconds,
        static_cast<double>(counters.value(obs::Counter::kSchedDecisionNanos)) *
            1e-9,
        static_cast<unsigned long long>(
            counters.value(obs::Counter::kSchedInvocations)));
    return result;
  };

  const SimResult ref = timed_run(
      reference, "reference (heap queue, allocating scratch, full-width scans)");
  const SimResult opt = timed_run(
      optimized, "optimized (calendar queue, arena scratch, word-range scans)");

  const std::uint64_t ref_sum = sim_result_checksum(ref);
  const std::uint64_t opt_sum = sim_result_checksum(opt);
  if (ref_sum != opt_sum) {
    std::printf(
        "perf-smoke: FAIL — results diverge (reference %016llx, optimized "
        "%016llx); the optimizations changed a scheduling decision\n",
        static_cast<unsigned long long>(ref_sum),
        static_cast<unsigned long long>(opt_sum));
    return 2;
  }
  std::printf("perf-smoke: results identical (checksum %016llx)\n",
              static_cast<unsigned long long>(opt_sum));

  const double speedup =
      opt.wall_seconds > 0.0 ? ref.wall_seconds / opt.wall_seconds : 0.0;
  std::printf("perf-smoke: speedup %.2fx (gate: >= %.0fx)\n", speedup,
              kMinSpeedup);
  if (speedup < kMinSpeedup) {
    std::printf("perf-smoke: FAIL — below the %.0fx gate\n", kMinSpeedup);
    return 1;
  }

  // Phase-profiler gate. The two timed runs above carried a null profiler,
  // so clearing the speedup gate doubles as the zero-cost-when-detached
  // assertion for the instrumentation sites. Attaching the profiler must
  // be pure observation: identical SimResult, spans recorded, none lost.
  SimConfig profiled = smoke_config();
  obs::PhaseProfiler profiler;
  profiled.obs.profiler = &profiler;
  const SimResult prof = timed_run(profiled, "optimized + phase profiler");
  if (sim_result_checksum(prof) != opt_sum) {
    std::printf(
        "perf-smoke: FAIL — attaching the phase profiler changed a "
        "scheduling decision (checksum %016llx vs %016llx)\n",
        static_cast<unsigned long long>(sim_result_checksum(prof)),
        static_cast<unsigned long long>(opt_sum));
    return 2;
  }
  if (profiler.empty() || profiler.dropped_spans() != 0) {
    std::printf("perf-smoke: FAIL — profiler recorded %zu nodes, dropped "
                "%llu spans (want a populated tree with zero drops)\n",
                profiler.num_nodes(),
                static_cast<unsigned long long>(profiler.dropped_spans()));
    return 2;
  }
  std::printf(
      "perf-smoke: profiler attached: %.3f s (%.2fx of the detached run), "
      "%zu tree nodes, 0 dropped spans\n",
      prof.wall_seconds,
      opt.wall_seconds > 0.0 ? prof.wall_seconds / opt.wall_seconds : 0.0,
      profiler.num_nodes());

  std::printf("perf-smoke: PASS\n");
  return 0;
}

int run_emit_trace(const std::string& path, int jobs) {
  const ScaleInputs in = make_inputs(jobs);
  auto sink = obs::TraceSink::open(path);
  if (sink == nullptr) {
    std::cerr << "bench_scale: cannot open " << path << " for writing\n";
    return 1;
  }
  SimConfig config = smoke_config();
  config.obs.trace = sink.get();
  config.snapshot_interval = 43200.0;  // machine_state coverage for audit
  const SimResult result = run_simulation(in.workload, in.trace, config);
  std::printf("emit-trace: %s (%zu jobs completed, %.3f s)\n", path.c_str(),
              result.jobs_completed, result.wall_seconds);
  return 0;
}

void usage(std::ostream& out) {
  out << "usage: bench_scale [--perf-smoke [--jobs N]"
         " | --emit-trace PATH [--jobs N]]\n"
         "  (no mode)         run the 'scale' figure into"
         " ${BGL_BENCH_OUT:-bench_out}\n"
         "  --perf-smoke      optimized vs reference differential gate\n"
         "  --emit-trace PATH write a short full-scale trace for"
         " tools/trace_audit\n"
         "  --jobs N          synthetic job count for the smoke/trace modes\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool perf_smoke = false;
  std::optional<std::string> trace_path;
  std::optional<int> jobs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "bench_scale: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--perf-smoke") {
      perf_smoke = true;
    } else if (arg == "--emit-trace") {
      trace_path = value();
    } else if (arg == "--jobs") {
      const auto n = bgl::parse_int(value());
      if (!n || *n < 1) {
        std::cerr << "bench_scale: --jobs needs an integer >= 1\n";
        return 2;
      }
      jobs = static_cast<int>(*n);
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "bench_scale: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
  }

  try {
    if (perf_smoke) return run_perf_smoke(jobs.value_or(20000));
    if (trace_path) return run_emit_trace(*trace_path, jobs.value_or(2000));
    return bgl::bench::figure_binary_main("scale");
  } catch (const std::exception& e) {
    std::cerr << "bench_scale: " << e.what() << '\n';
    return 1;
  }
}
