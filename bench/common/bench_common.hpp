// Shared ingredients of the per-figure bench specs.
//
// Every figure bench is now a declarative exp::SweepSpec (see
// bench/common/figures.hpp and src/exp/sweep.hpp): build a synthetic log
// for one of the paper's three machines, scale the paper's nominal failure
// budget onto the log's span (so the failure *density* matches the
// paper's), replay it under a scheduler configuration, and average the
// §3.4 metrics over a few seeds. This header holds what the specs share:
// the paper-calibrated bench models and the improvement metric.
//
// Environment knobs (BGL_BENCH_SEEDS, BGL_JOB_SCALE, BGL_BENCH_OUT,
// BGL_BENCH_THREADS) are documented at their single parsing sites:
// src/exp/sweep.hpp for the first two, bench/common/figures.hpp for the
// rest. All of them reject malformed values with a ConfigError.
#pragma once

#include "sim/experiment.hpp"
#include "workload/synthetic.hpp"

namespace bgl::bench {

/// Repeats averaged per sweep cell — exp::default_repeats_from_env()
/// (BGL_BENCH_SEEDS, default 3, hard error below 1 or on garbage); figure
/// specs raise their floor via SweepSpec::repeat_floor.
int bench_seeds();

/// The default per-log bench models (paper-calibrated), with BGL_JOB_SCALE
/// applied. Runs are deliberately short (~1000-1200 jobs) and averaged over
/// several seeds: average bounded slowdown in the near-knee regime is
/// heavy-tailed, and many short runs estimate the mean far better than few
/// long ones at equal cost.
SyntheticModel bench_nasa();
SyntheticModel bench_sdsc();
SyntheticModel bench_llnl();

/// Percent improvement of `value` relative to `baseline` (positive = better
/// when lower-is-better). A zero baseline has no meaningful relative
/// improvement, so it is defined to return 0 rather than divide by zero —
/// figure columns then read "no change" for degenerate base rows.
double improvement_pct(double baseline, double value);

}  // namespace bgl::bench
