// Shared sweep harness for the per-figure bench binaries.
//
// Every figure bench follows the same recipe: build a synthetic log for one
// of the paper's three machines, scale the paper's nominal failure budget
// onto the log's span (so the failure *density* matches the paper's),
// replay it under a scheduler configuration, and average the §3.4 metrics
// over a few seeds. Environment knobs:
//
//   BGL_JOB_SCALE    multiply the per-log default job counts (default 1.0)
//   BGL_BENCH_SEEDS  seeds averaged per data point (default 2)
//   BGL_BENCH_OUT    directory for CSV dumps (default ./bench_out)
#pragma once

#include <cstdint>
#include <string>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/synthetic.hpp"

namespace bgl::bench {

/// Seed-averaged metrics of one sweep point.
struct RunSummary {
  double slowdown = 0.0;
  double response = 0.0;
  double wait = 0.0;
  double utilization = 0.0;
  double unused = 0.0;
  double lost = 0.0;
  double kills = 0.0;
  double migrations = 0.0;
  double injected_events = 0.0;   ///< Actual failure events per run (avg).
  double work_lost_node_hours = 0.0;
  int seeds = 0;
};

/// Number of seeds per point (BGL_BENCH_SEEDS, default 3, min 1).
int bench_seeds();

/// The default per-log bench models (paper-calibrated), with BGL_JOB_SCALE
/// applied. Runs are deliberately short (~1100-1200 jobs) and averaged over
/// several seeds: average bounded slowdown in the near-knee regime is
/// heavy-tailed, and many short runs estimate the mean far better than few
/// long ones at equal cost.
SyntheticModel bench_nasa();
SyntheticModel bench_sdsc();
SyntheticModel bench_llnl();

/// Run one sweep point: generate the log (per seed), inject
/// span_scaled_events(nominal_failures) failures, simulate under
/// (kind, alpha) with load scale c, and average over bench_seeds().
/// `proto` (optional) seeds the SimConfig (backfill/migration/ckpt/metrics
/// knobs); scheduler/alpha/seed fields are overwritten per run.
/// `min_seeds` lets noise-sensitive figures (the slowdown sweeps) force more
/// averaging than the BGL_BENCH_SEEDS default.
RunSummary run_point(const SyntheticModel& model, double load_scale,
                     std::size_t nominal_failures, SchedulerKind kind, double alpha,
                     const SimConfig* proto = nullptr, int min_seeds = 1);

/// Process-wide counter registry. Every simulation run_point() launches
/// feeds it, so after a sweep it holds the aggregate hot-path statistics
/// (decisions, scans, predictor traffic, decision latency) of the whole
/// figure. write_csv() dumps it next to the CSV as <name>.stats.json.
obs::CounterRegistry& bench_counters();

/// Process-wide histogram registry, fed alongside bench_counters(): wait /
/// response / slowdown / decision-latency / candidates distributions over
/// every simulation of the figure, dumped with p50/p90/p99 by write_csv().
obs::HistogramRegistry& bench_histograms();

/// Write a table to ${BGL_BENCH_OUT:-bench_out}/<name>.csv (best effort;
/// prints a note on failure instead of aborting the bench), plus the
/// bench_counters() + bench_histograms() dump as <name>.stats.json, and
/// update this bench's entry in the consolidated
/// ${BGL_BENCH_OUT}/BENCH_summary.json (one entry per bench binary;
/// entries from other benches in the same output directory survive).
void write_csv(const Table& table, const std::string& name);

/// Percent improvement of `value` relative to `baseline` (positive = better
/// when lower-is-better).
double improvement_pct(double baseline, double value);

}  // namespace bgl::bench
