// The figure registry: every paper figure / ablation as a declarative
// sweep against the exp:: engine.
//
// Each bench/bench_*.cpp translation unit declares exactly one figure — an
// exp::SweepSpec (the axes) plus a renderer (grid → tables) — via a
// make_*() factory below. run_figure() executes the spec on a thread pool
// (exp::SweepRunner), prints the rendered tables, and writes the figure's
// outputs:
//
//   ${out_dir}/<csv name>.csv          one per rendered table, byte-for-byte
//                                      the historical per-figure CSVs
//   ${out_dir}/<figure>.stats.json     merged counter + histogram dump over
//                                      every simulation of the figure
//   ${out_dir}/BENCH_summary.json      one line-keyed entry per figure,
//                                      entries from other figures survive
//
// Environment knobs parsed here (hard ConfigError on malformed values):
//
//   BGL_BENCH_OUT      output directory (default ./bench_out)
//   BGL_BENCH_THREADS  worker threads for the thin per-figure binaries
//                      (default 1 — serial; tools/bench_runner takes
//                      --threads instead and defaults to all cores)
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "util/table.hpp"

namespace bgl::bench {

/// One rendered table of a figure (a figure may have several panels).
struct FigurePart {
  std::string csv_name;   ///< CSV base name (no directory, no extension).
  std::string heading;    ///< Console heading (may be empty).
  Table table;
};

/// A non-CSV file a figure wants written next to its tables (e.g.
/// bench_scale's BENCH_scale.json). Content is written verbatim.
struct FigureArtifact {
  std::string file_name;  ///< Name inside the output directory.
  std::string content;
};

struct FigureOutput {
  std::vector<FigurePart> parts;
  std::vector<FigureArtifact> artifacts;
  std::string notes;      ///< Extra console text (e.g. fig3's §1 claim check).
};

/// A figure: declarative axes + pure renderer. The spec is built when the
/// factory runs (it reads the BGL_JOB_SCALE / BGL_BENCH_SEEDS environment),
/// and the renderer is a pure function of the executed grid.
struct FigureDef {
  std::string name;       ///< Registry key and stats/summary name, e.g. "fig3".
  std::string summary;    ///< One-liner for `bench_runner --list`.
  std::string header;     ///< Console preamble printed before the run.
  exp::SweepSpec spec;
  std::function<FigureOutput(const exp::SweepResult&)> render;
};

// One factory per bench/bench_*.cpp translation unit.
FigureDef make_fig3();
FigureDef make_fig4();
FigureDef make_fig5();
FigureDef make_fig6();
FigureDef make_fig7();
FigureDef make_fig8();
FigureDef make_fig9();
FigureDef make_fig10();
FigureDef make_load_sweep();
FigureDef make_ablation_pf_rule();
FigureDef make_ablation_topology();
FigureDef make_ablation_queue_order();
FigureDef make_ablation_history_predictor();
FigureDef make_ablation_backfill_migration();
FigureDef make_ablation_checkpoint();
FigureDef make_baselines();
FigureDef make_predict();
FigureDef make_scale();

// bench_scale's machine recipe, shared with its companion binary
// (bench_scale_main.cpp: --perf-smoke gate, --emit-trace for trace_audit).
Dims scale_machine_dims();        ///< 64 x 32 x 32 — the full BlueGene/L.
SyntheticModel scale_model();     ///< SDSC profile, 1M jobs x BGL_JOB_SCALE.
SimConfig scale_proto();          ///< Block catalog (min_block 256).

/// All figures, in paper order. Built fresh on every call (the specs
/// depend on the environment; set BGL_JOB_SCALE / BGL_BENCH_SEEDS first).
std::vector<FigureDef> all_figures();

struct FigureRunOptions {
  int threads = 1;
  std::string out_dir = "bench_out";
  bool progress = true;     ///< Print one '.' per completed simulation.
};

/// ${BGL_BENCH_OUT:-bench_out}.
std::string bench_out_dir_from_env();

/// Execute one figure: run the sweep, print header/tables/notes to `out`,
/// and write the CSV / stats.json / BENCH_summary.json outputs (best
/// effort; an unwritable directory prints a note instead of aborting).
void run_figure(const FigureDef& figure, const FigureRunOptions& options,
                std::ostream& out);

/// main() of a thin per-figure binary: run `name` with BGL_BENCH_THREADS
/// workers (default 1) into ${BGL_BENCH_OUT:-bench_out}. Returns the
/// process exit code.
int figure_binary_main(const std::string& name);

}  // namespace bgl::bench
