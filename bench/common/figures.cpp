#include "common/figures.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bgl::bench {

std::vector<FigureDef> all_figures() {
  std::vector<FigureDef> figures;
  figures.push_back(make_fig3());
  figures.push_back(make_fig4());
  figures.push_back(make_fig5());
  figures.push_back(make_fig6());
  figures.push_back(make_fig7());
  figures.push_back(make_fig8());
  figures.push_back(make_fig9());
  figures.push_back(make_fig10());
  figures.push_back(make_load_sweep());
  figures.push_back(make_ablation_pf_rule());
  figures.push_back(make_ablation_topology());
  figures.push_back(make_ablation_queue_order());
  figures.push_back(make_ablation_history_predictor());
  figures.push_back(make_ablation_backfill_migration());
  figures.push_back(make_ablation_checkpoint());
  figures.push_back(make_baselines());
  figures.push_back(make_predict());
  figures.push_back(make_scale());
  return figures;
}

std::string bench_out_dir_from_env() {
  const char* env = std::getenv("BGL_BENCH_OUT");
  return env ? env : "bench_out";
}

namespace {

/// Read-modify-write the consolidated BENCH_summary.json. Figures may run
/// from separate processes, so the file is kept line-keyed — one
/// `"<figure>": {...}` entry per line between the braces — and merged
/// textually: no JSON parser needed, entries written by other figures are
/// preserved, and re-running a figure overwrites only its own line.
void update_bench_summary(const std::string& dir, const std::string& name,
                          const exp::SweepResult& result, std::ostream& out) {
  const std::string path = dir + "/BENCH_summary.json";

  std::map<std::string, std::string> entries;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      const auto start = line.find_first_not_of(" \t");
      if (start == std::string::npos || line[start] != '"') continue;
      const auto key_end = line.find('"', start + 1);
      if (key_end == std::string::npos) continue;
      auto end = line.find_last_not_of(" \t");
      if (line[end] == ',') --end;  // stored without the joining comma
      entries[line.substr(start + 1, key_end - start - 1)] =
          line.substr(start, end - start + 1);
    }
  }

  std::ostringstream entry;
  entry << '"' << name << "\": {\"counters\":";
  result.counters().write_json(entry);
  entry << ",\"histograms\":";
  result.histograms().write_json(entry);
  entry << '}';
  entries[name] = entry.str();

  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    out << "[summary] skipped (" << path << " not writable)\n";
    return;
  }
  file << "{\n";
  bool first = true;
  for (const auto& [key, value] : entries) {
    (void)key;
    if (!first) file << ",\n";
    first = false;
    file << value;
  }
  file << "\n}\n";
  out << "[summary] " << path << "\n";
}

void write_outputs(const FigureDef& figure, const FigureOutput& output,
                   const exp::SweepResult& result, const std::string& dir,
                   std::ostream& out) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  for (const FigurePart& part : output.parts) {
    const std::string path = dir + "/" + part.csv_name + ".csv";
    try {
      part.table.write_csv(path);
      out << "[csv] " << path << "\n";
    } catch (const std::exception& e) {
      out << "[csv] skipped (" << e.what() << ")\n";
    }
  }

  for (const FigureArtifact& artifact : output.artifacts) {
    const std::string path = dir + "/" + artifact.file_name;
    std::ofstream file(path, std::ios::trunc);
    if (file) {
      file << artifact.content;
      out << "[artifact] " << path << "\n";
    } else {
      out << "[artifact] skipped (" << path << " not writable)\n";
    }
  }

  const std::string stats_path = dir + "/" + figure.name + ".stats.json";
  std::ofstream stats(stats_path, std::ios::trunc);
  if (stats) {
    stats << "{\"observability\":";
    result.counters().write_json(stats);
    stats << ",\"histograms\":";
    result.histograms().write_json(stats);
    stats << ",\"phases\":";
    result.profiler().write_json(stats);
    stats << "}\n";
    out << "[stats] " << stats_path << "\n";
  } else {
    out << "[stats] skipped (" << stats_path << " not writable)\n";
  }

  update_bench_summary(dir, figure.name, result, out);
}

}  // namespace

void run_figure(const FigureDef& figure, const FigureRunOptions& options,
                std::ostream& out) {
  out << figure.header << "\n";

  exp::RunOptions run_options;
  run_options.threads = options.threads;
  if (options.progress) {
    run_options.progress = [&out](std::size_t, std::size_t) {
      out << "." << std::flush;
    };
  }
  const exp::SweepResult result =
      exp::SweepRunner().run(figure.spec, run_options);

  const FigureOutput output = figure.render(result);
  for (const FigurePart& part : output.parts) {
    out << "\n\n";
    if (!part.heading.empty()) out << part.heading << "\n";
    out << part.table.render();
  }
  if (!output.notes.empty()) out << output.notes;
  out << "\n";

  write_outputs(figure, output, result, options.out_dir, out);
}

int figure_binary_main(const std::string& name) {
  try {
    FigureRunOptions options;
    options.out_dir = bench_out_dir_from_env();
    if (const char* env = std::getenv("BGL_BENCH_THREADS")) {
      const auto parsed = parse_int(env);
      if (!parsed || *parsed < 1) {
        throw ConfigError("BGL_BENCH_THREADS must be an integer >= 1, got '" +
                          std::string(env) + "'");
      }
      options.threads = static_cast<int>(*parsed);
    }
    for (const FigureDef& figure : all_figures()) {
      if (figure.name == name) {
        run_figure(figure, options, std::cout);
        return 0;
      }
    }
    std::cerr << "unknown figure: " << name << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace bgl::bench
