#include "common/bench_common.hpp"

#include "exp/sweep.hpp"

namespace bgl::bench {

int bench_seeds() { return exp::default_repeats_from_env(); }

namespace {
SyntheticModel sized(SyntheticModel model, int default_jobs) {
  model.num_jobs = default_jobs;
  apply_job_scale_env(model);
  return model;
}
}  // namespace

SyntheticModel bench_nasa() { return sized(SyntheticModel::nasa(), 1100); }
SyntheticModel bench_sdsc() { return sized(SyntheticModel::sdsc(), 1200); }
SyntheticModel bench_llnl() { return sized(SyntheticModel::llnl(), 1000); }

double improvement_pct(double baseline, double value) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (baseline - value) / baseline;
}

}  // namespace bgl::bench
