#include "common/bench_common.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "failure/generator.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace bgl::bench {

int bench_seeds() {
  if (const char* env = std::getenv("BGL_BENCH_SEEDS")) {
    if (const auto v = parse_int(env); v && *v >= 1) return static_cast<int>(*v);
  }
  return 3;
}

namespace {
SyntheticModel sized(SyntheticModel model, int default_jobs) {
  model.num_jobs = default_jobs;
  apply_job_scale_env(model);
  return model;
}

const PartitionCatalog& shared_catalog() {
  static PartitionCatalog catalog(Dims::bluegene_l());
  return catalog;
}
}  // namespace

obs::CounterRegistry& bench_counters() {
  static obs::CounterRegistry registry;
  return registry;
}

obs::HistogramRegistry& bench_histograms() {
  static obs::HistogramRegistry registry;
  return registry;
}

SyntheticModel bench_nasa() { return sized(SyntheticModel::nasa(), 1100); }
SyntheticModel bench_sdsc() { return sized(SyntheticModel::sdsc(), 1200); }
SyntheticModel bench_llnl() { return sized(SyntheticModel::llnl(), 1000); }

RunSummary run_point(const SyntheticModel& model, double load_scale,
                     std::size_t nominal_failures, SchedulerKind kind, double alpha,
                     const SimConfig* proto, int min_seeds) {
  RunSummary summary;
  summary.seeds = std::max(bench_seeds(), min_seeds);
  for (int s = 0; s < summary.seeds; ++s) {
    const std::uint64_t workload_seed = 1000 + 17 * static_cast<std::uint64_t>(s);
    const std::uint64_t trace_seed = 500 + 29 * static_cast<std::uint64_t>(s);

    Workload w = generate_workload(model, workload_seed);
    w = rescale_sizes(w, 128);
    const double span = w.arrival_span();
    if (load_scale != 1.0) w = scale_load(w, load_scale);

    double max_runtime = 0.0;
    for (const Job& j : w.jobs) max_runtime = std::max(max_runtime, j.runtime);
    const double trace_span = span * 1.05 + 2.0 * max_runtime;
    const std::size_t events = span_scaled_events(nominal_failures, trace_span, model);

    FailureModel fm = FailureModel::bluegene_l(events, trace_span);
    const FailureTrace trace = generate_failures(fm, trace_seed);

    SimConfig config;
    if (proto) config = *proto;
    config.dims = Dims::bluegene_l();
    config.scheduler = kind;
    config.alpha = alpha;
    config.seed = trace_seed ^ 0x7365656473ULL;
    config.obs.counters = &bench_counters();
    config.obs.histograms = &bench_histograms();

    // The shared catalog is the default torus one; mesh-topology protos
    // build their own.
    const PartitionCatalog* catalog =
        config.topology == Topology::kTorus ? &shared_catalog() : nullptr;
    const SimResult r = run_simulation(w, trace, config, catalog);
    summary.slowdown += r.avg_bounded_slowdown;
    summary.response += r.avg_response;
    summary.wait += r.avg_wait;
    summary.utilization += r.utilization;
    summary.unused += r.unused;
    summary.lost += r.lost;
    summary.kills += static_cast<double>(r.job_kills);
    summary.migrations += static_cast<double>(r.migrations);
    summary.injected_events += static_cast<double>(events);
    summary.work_lost_node_hours += r.work_lost_node_seconds / 3600.0;
  }
  const double n = static_cast<double>(summary.seeds);
  summary.slowdown /= n;
  summary.response /= n;
  summary.wait /= n;
  summary.utilization /= n;
  summary.unused /= n;
  summary.lost /= n;
  summary.kills /= n;
  summary.migrations /= n;
  summary.injected_events /= n;
  summary.work_lost_node_hours /= n;
  return summary;
}

namespace {

/// Read-modify-write the consolidated BENCH_summary.json. Each bench binary
/// is its own process, so the file is kept line-keyed — one
/// `"<name>": {...}` entry per line between the braces — and merged
/// textually: no JSON parser needed, entries written by other benches are
/// preserved, and re-running a bench overwrites only its own line.
void update_bench_summary(const std::string& dir, const std::string& name) {
  const std::string path = dir + "/BENCH_summary.json";

  std::map<std::string, std::string> entries;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      const auto start = line.find_first_not_of(" \t");
      if (start == std::string::npos || line[start] != '"') continue;
      const auto key_end = line.find('"', start + 1);
      if (key_end == std::string::npos) continue;
      auto end = line.find_last_not_of(" \t");
      if (line[end] == ',') --end;  // stored without the joining comma
      entries[line.substr(start + 1, key_end - start - 1)] =
          line.substr(start, end - start + 1);
    }
  }

  std::ostringstream entry;
  entry << '"' << name << "\": {\"counters\":";
  bench_counters().write_json(entry);
  entry << ",\"histograms\":";
  bench_histograms().write_json(entry);
  entry << '}';
  entries[name] = entry.str();

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cout << "[summary] skipped (" << path << " not writable)\n";
    return;
  }
  out << "{\n";
  bool first = true;
  for (const auto& [key, value] : entries) {
    (void)key;
    if (!first) out << ",\n";
    first = false;
    out << value;
  }
  out << "\n}\n";
  std::cout << "[summary] " << path << "\n";
}

}  // namespace

void write_csv(const Table& table, const std::string& name) {
  const char* env = std::getenv("BGL_BENCH_OUT");
  const std::string dir = env ? env : "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + name + ".csv";
  try {
    table.write_csv(path);
    std::cout << "[csv] " << path << "\n";
  } catch (const std::exception& e) {
    std::cout << "[csv] skipped (" << e.what() << ")\n";
  }

  const std::string stats_path = dir + "/" + name + ".stats.json";
  std::ofstream stats(stats_path, std::ios::trunc);
  if (stats) {
    stats << "{\"observability\":";
    bench_counters().write_json(stats);
    stats << ",\"histograms\":";
    bench_histograms().write_json(stats);
    stats << "}\n";
    std::cout << "[stats] " << stats_path << "\n";
  } else {
    std::cout << "[stats] skipped (" << stats_path << " not writable)\n";
  }

  update_bench_summary(dir, name);
}

double improvement_pct(double baseline, double value) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (baseline - value) / baseline;
}

}  // namespace bgl::bench
