// §6.2 load sweep: the paper varied the load-scale coefficient c from 0.5
// to 1.5 in steps of 0.1 and presented c = 1.0 / 1.2 because "significant
// changes in system performance [appear] when we increased the standard
// load by 20%". This bench regenerates the whole sweep for the SDSC log so
// that the knee is visible, with and without prediction.
#include <iostream>

#include "common/bench_common.hpp"

int main() {
  using namespace bgl;
  using namespace bgl::bench;

  const SyntheticModel model = bench_sdsc();
  const std::size_t nominal = paper_failure_count(model);
  std::cout << "Load sweep: avg bounded slowdown and utilization vs c (SDSC, "
            << "nominal " << nominal << " failures)\n"
            << "seeds/point: " << bench_seeds() << ", jobs/run: " << model.num_jobs
            << "\n\n";

  Table table({"c", "slowdown_a0.0", "slowdown_a0.1", "impr_%", "util_a0.0",
               "util_a0.1"});
  for (int step = 5; step <= 15; ++step) {
    const double c = 0.1 * step;
    const RunSummary none = run_point(model, c, nominal, SchedulerKind::kBalancing, 0.0);
    const RunSummary low = run_point(model, c, nominal, SchedulerKind::kBalancing, 0.1);
    table.add_row()
        .add(c, 1)
        .add(none.slowdown, 1)
        .add(low.slowdown, 1)
        .add(improvement_pct(none.slowdown, low.slowdown), 1)
        .add(none.utilization, 3)
        .add(low.utilization, 3);
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n" << table.render();
  write_csv(table, "load_sweep");
  return 0;
}
