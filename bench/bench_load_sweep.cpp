// §6.2 load sweep: the paper varied the load-scale coefficient c from 0.5
// to 1.5 in steps of 0.1 and presented c = 1.0 / 1.2 because "significant
// changes in system performance [appear] when we increased the standard
// load by 20%". This bench regenerates the whole sweep for the SDSC log so
// that the knee is visible, with and without prediction.
#include <string>

#include "common/bench_common.hpp"
#include "common/figures.hpp"

namespace bgl::bench {

FigureDef make_load_sweep() {
  const SyntheticModel model = bench_sdsc();
  const std::size_t nominal = paper_failure_count(model);

  exp::SweepSpec spec;
  spec.name = "load_sweep";
  spec.models = {{"SDSC", model}};
  // 0.1 * step (not step / 10.0): the product is the exact double the
  // historical bench fed scale_load, and bit-equal inputs keep the replay
  // bit-equal.
  for (int step = 5; step <= 15; ++step) spec.load_scales.push_back(0.1 * step);
  spec.alphas = {0.0, 0.1};

  FigureDef fig;
  fig.name = "load_sweep";
  fig.summary = "Sec. 6.2 - slowdown/utilization vs load scale c (SDSC)";
  fig.header =
      "Load sweep: avg bounded slowdown and utilization vs c (SDSC, nominal " +
      std::to_string(nominal) + " failures)\n" +
      "seeds/point: " + std::to_string(spec.repeats()) +
      ", jobs/run: " + std::to_string(model.num_jobs) + "\n";
  fig.spec = std::move(spec);
  fig.render = [](const exp::SweepResult& r) {
    Table table({"c", "slowdown_a0.0", "slowdown_a0.1", "impr_%", "util_a0.0",
                 "util_a0.1"});
    for (std::size_t li = 0; li < r.shape().loads; ++li) {
      const double c = 0.1 * static_cast<int>(5 + li);
      const exp::PointSummary& none = r.at(0, li, 0, 0, 0, 0, 0, 0);
      const exp::PointSummary& low = r.at(0, li, 0, 0, 0, 1, 0, 0);
      table.add_row()
          .add(c, 1)
          .add(none.slowdown, 1)
          .add(low.slowdown, 1)
          .add(improvement_pct(none.slowdown, low.slowdown), 1)
          .add(none.utilization, 3)
          .add(low.utilization, 3);
    }
    FigureOutput out;
    out.parts.push_back({"load_sweep", "", std::move(table)});
    return out;
  };
  return fig;
}

}  // namespace bgl::bench
