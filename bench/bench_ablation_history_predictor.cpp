// Ablation (extension): a *real* predictor instead of the paper's simulated
// one. The HistoryPredictor flags nodes that failed within a trailing
// lookback window — no future information — exploiting the burstiness and
// repeat-offender skew of real failure logs. This bench reports (a) its
// measured precision/recall on the generated traces and (b) the scheduling
// outcome it buys, bracketed by the fault-oblivious baseline and the oracle.
#include <iostream>

#include "common/bench_common.hpp"
#include "failure/generator.hpp"
#include "predict/predictor.hpp"

int main() {
  using namespace bgl;
  using namespace bgl::bench;

  const SyntheticModel model = bench_sdsc();
  const std::size_t nominal = paper_failure_count(model);
  std::cout << "Extension: history-based predictor (SDSC, balancing, c=1.0, nominal "
            << nominal << " failures)\n\n";

  // Measure the predictor's forecast quality on a representative trace.
  {
    FailureModel fm = FailureModel::bluegene_l(nominal, 730.0 * 86400.0);
    const FailureTrace trace = generate_failures(fm, 11);
    Table quality({"lookback_days", "precision", "recall", "windows"});
    for (const double days : {1.0, 3.0, 7.0, 30.0}) {
      HistoryPredictor predictor(trace, days * 86400.0);
      const PredictionQuality q =
          evaluate_predictor(predictor, trace, /*window=*/6.0 * 3600.0,
                             /*step=*/12.0 * 3600.0);
      quality.add_row()
          .add(days, 0)
          .add(q.precision, 3)
          .add(q.recall, 3)
          .add(static_cast<long long>(q.windows));
    }
    std::cout << "Forecast quality (6 h windows):\n" << quality.render() << '\n';
    write_csv(quality, "ablation_history_predictor_quality");
  }

  Table table({"predictor", "slowdown", "kills", "utilized", "lost"});
  struct Variant {
    const char* label;
    PredictorModel predictor;
    double alpha;
    double lookback_days;
  };
  const Variant variants[] = {
      {"none (oblivious)", PredictorModel::kNone, 0.0, 0.0},
      {"paper a=0.1", PredictorModel::kPaper, 0.1, 0.0},
      {"history 3d", PredictorModel::kHistory, 0.3, 3.0},
      {"history 7d", PredictorModel::kHistory, 0.3, 7.0},
      {"perfect oracle", PredictorModel::kPerfect, 1.0, 0.0},
  };
  for (const Variant& v : variants) {
    SimConfig proto;
    proto.predictor_model = v.predictor;
    if (v.lookback_days > 0.0) proto.history_lookback = v.lookback_days * 86400.0;
    const RunSummary r =
        run_point(model, 1.0, nominal, SchedulerKind::kBalancing, v.alpha, &proto);
    table.add_row()
        .add(std::string(v.label))
        .add(r.slowdown, 1)
        .add(r.kills, 1)
        .add(r.utilization, 3)
        .add(r.lost, 3);
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n" << table.render();
  write_csv(table, "ablation_history_predictor");
  return 0;
}
