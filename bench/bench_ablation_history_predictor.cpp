// Ablation (extension): a *real* predictor instead of the paper's simulated
// one. The HistoryPredictor flags nodes that failed within a trailing
// lookback window — no future information — exploiting the burstiness and
// repeat-offender skew of real failure logs. This bench reports (a) its
// measured precision/recall on the generated traces and (b) the scheduling
// outcome it buys, bracketed by the fault-oblivious baseline and the oracle.
#include <string>
#include <vector>

#include "common/bench_common.hpp"
#include "common/figures.hpp"
#include "failure/generator.hpp"
#include "predict/predictor.hpp"

namespace bgl::bench {

FigureDef make_ablation_history_predictor() {
  const SyntheticModel model = bench_sdsc();
  const std::size_t nominal = paper_failure_count(model);

  struct Variant {
    const char* label;
    PredictorModel predictor;
    double alpha;
    double lookback_days;
  };
  const Variant variants[] = {
      {"none (oblivious)", PredictorModel::kNone, 0.0, 0.0},
      {"paper a=0.1", PredictorModel::kPaper, 0.1, 0.0},
      {"history 3d", PredictorModel::kHistory, 0.3, 3.0},
      {"history 7d", PredictorModel::kHistory, 0.3, 7.0},
      {"perfect oracle", PredictorModel::kPerfect, 1.0, 0.0},
  };

  exp::SweepSpec spec;
  spec.name = "ablation_history_predictor";
  spec.models = {{"SDSC", model}};
  for (const Variant& v : variants) {
    SimConfig proto;
    proto.predictor_model = v.predictor;
    if (v.lookback_days > 0.0) proto.history_lookback = v.lookback_days * 86400.0;
    // The per-variant confidence rides on the config (each predictor is
    // meaningful at its own alpha), not on the alpha axis.
    spec.configs.push_back({v.label, proto, v.alpha});
  }

  FigureDef fig;
  fig.name = "ablation_history_predictor";
  fig.summary = "Extension - history-based predictor vs paper's simulated one";
  fig.header =
      "Extension: history-based predictor (SDSC, balancing, c=1.0, nominal " +
      std::to_string(nominal) + " failures)\n";

  std::vector<std::string> labels;
  for (const exp::ConfigCase& cc : spec.configs) labels.push_back(cc.label);

  fig.spec = std::move(spec);
  fig.render = [labels, nominal](const exp::SweepResult& r) {
    FigureOutput out;

    // Measure the predictor's forecast quality on a representative trace.
    // Pure post-processing: no simulation, a fixed seed, so it lives in the
    // renderer rather than on a sweep axis.
    {
      FailureModel fm = FailureModel::bluegene_l(nominal, 730.0 * 86400.0);
      const FailureTrace trace = generate_failures(fm, 11);
      Table quality({"lookback_days", "precision", "recall", "windows"});
      for (const double days : {1.0, 3.0, 7.0, 30.0}) {
        HistoryPredictor predictor(trace, days * 86400.0);
        const PredictionQuality q =
            evaluate_predictor(predictor, trace, /*window=*/6.0 * 3600.0,
                               /*step=*/12.0 * 3600.0);
        quality.add_row()
            .add(days, 0)
            .add(q.precision, 3)
            .add(q.recall, 3)
            .add(static_cast<long long>(q.windows));
      }
      out.parts.push_back({"ablation_history_predictor_quality",
                           "Forecast quality (6 h windows):",
                           std::move(quality)});
    }

    Table table({"predictor", "slowdown", "kills", "utilized", "lost"});
    for (std::size_t ci = 0; ci < r.shape().configs; ++ci) {
      const exp::PointSummary& p = r.at(0, 0, 0, 0, 0, 0, 0, ci);
      table.add_row()
          .add(labels[ci])
          .add(p.slowdown, 1)
          .add(p.kills, 1)
          .add(p.utilization, 3)
          .add(p.lost, 3);
    }
    out.parts.push_back({"ablation_history_predictor", "", std::move(table)});
    return out;
  };
  return fig;
}

}  // namespace bgl::bench
