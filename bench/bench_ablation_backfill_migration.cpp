// Ablation: the scheduler structure the paper inherits from Krevat [11] —
// FCFS alone vs +backfilling vs +migration vs both — under the paper's
// failure regime. Krevat's result (backfilling dominates, migration adds a
// little on top) should reproduce.
#include <string>
#include <vector>

#include "common/bench_common.hpp"
#include "common/figures.hpp"

namespace bgl::bench {

FigureDef make_ablation_backfill_migration() {
  const SyntheticModel model = bench_sdsc();
  const std::size_t nominal = paper_failure_count(model);

  struct Variant {
    const char* label;
    BackfillMode backfill;
    bool migration;
  };
  const Variant variants[] = {
      {"fcfs", BackfillMode::kNone, false},
      {"fcfs+easy-backfill", BackfillMode::kEasy, false},
      {"fcfs+conservative-backfill", BackfillMode::kConservative, false},
      {"fcfs+migration", BackfillMode::kNone, true},
      {"fcfs+easy-backfill+migration", BackfillMode::kEasy, true},
  };

  exp::SweepSpec spec;
  spec.name = "ablation_backfill_migration";
  spec.models = {{"SDSC", model}};
  spec.alphas = {0.1};
  for (const Variant& v : variants) {
    SimConfig proto;
    proto.sched.backfill = v.backfill;
    proto.sched.migration = v.migration;
    spec.configs.push_back({v.label, proto, std::nullopt});
  }

  FigureDef fig;
  fig.name = "ablation_backfill_migration";
  fig.summary = "Ablation - FCFS vs backfilling vs migration structure";
  fig.header =
      "Ablation: backfill/migration structure (SDSC, balancing a=0.1, c=1.0, "
      "nominal " + std::to_string(nominal) + " failures)\n";

  std::vector<std::string> labels;
  for (const exp::ConfigCase& cc : spec.configs) labels.push_back(cc.label);

  fig.spec = std::move(spec);
  fig.render = [labels](const exp::SweepResult& r) {
    Table table({"variant", "slowdown", "response_h", "utilized", "kills",
                 "migrations"});
    for (std::size_t ci = 0; ci < r.shape().configs; ++ci) {
      const exp::PointSummary& p = r.at(0, 0, 0, 0, 0, 0, 0, ci);
      table.add_row()
          .add(labels[ci])
          .add(p.slowdown, 1)
          .add(p.response / 3600.0, 2)
          .add(p.utilization, 3)
          .add(p.kills, 1)
          .add(p.migrations, 1);
    }
    FigureOutput out;
    out.parts.push_back({"ablation_backfill_migration", "", std::move(table)});
    return out;
  };
  return fig;
}

}  // namespace bgl::bench
