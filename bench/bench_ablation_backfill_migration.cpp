// Ablation: the scheduler structure the paper inherits from Krevat [11] —
// FCFS alone vs +backfilling vs +migration vs both — under the paper's
// failure regime. Krevat's result (backfilling dominates, migration adds a
// little on top) should reproduce.
#include <iostream>

#include "common/bench_common.hpp"

int main() {
  using namespace bgl;
  using namespace bgl::bench;

  const SyntheticModel model = bench_sdsc();
  const std::size_t nominal = paper_failure_count(model);
  std::cout << "Ablation: backfill/migration structure (SDSC, balancing a=0.1, c=1.0, "
            << "nominal " << nominal << " failures)\n\n";

  struct Variant {
    const char* label;
    BackfillMode backfill;
    bool migration;
  };
  const Variant variants[] = {
      {"fcfs", BackfillMode::kNone, false},
      {"fcfs+easy-backfill", BackfillMode::kEasy, false},
      {"fcfs+conservative-backfill", BackfillMode::kConservative, false},
      {"fcfs+migration", BackfillMode::kNone, true},
      {"fcfs+easy-backfill+migration", BackfillMode::kEasy, true},
  };

  Table table({"variant", "slowdown", "response_h", "utilized", "kills",
               "migrations"});
  for (const Variant& v : variants) {
    SimConfig proto;
    proto.sched.backfill = v.backfill;
    proto.sched.migration = v.migration;
    const RunSummary r =
        run_point(model, 1.0, nominal, SchedulerKind::kBalancing, 0.1, &proto);
    table.add_row()
        .add(std::string(v.label))
        .add(r.slowdown, 1)
        .add(r.response / 3600.0, 2)
        .add(r.utilization, 3)
        .add(r.kills, 1)
        .add(r.migrations, 1);
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n" << table.render();
  write_csv(table, "ablation_backfill_migration");
  return 0;
}
