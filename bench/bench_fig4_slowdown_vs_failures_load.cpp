// Figure 4: average bounded slowdown vs. failure rate for the SDSC log,
// balancing scheduler (a = 0.1), at loads c = 1.0 and c = 1.2.
//
// Expected shape: both curves rise then flatten; the c = 1.2 curve sits
// well above c = 1.0 everywhere (the 20 % load increase amplifies the
// queueing impact of every kill).
#include <string>

#include "common/bench_common.hpp"
#include "common/figures.hpp"
#include "util/strings.hpp"

namespace bgl::bench {

FigureDef make_fig4() {
  const SyntheticModel model = bench_sdsc();
  const double alpha = 0.1;

  exp::SweepSpec spec;
  spec.name = "fig4";
  spec.models = {{"SDSC", model}};
  spec.load_scales = {1.0, 1.2};
  for (std::size_t rate = 0; rate <= 4000; rate += 500) {
    spec.failure_budgets.push_back(rate);
  }
  spec.alphas = {alpha};
  spec.repeat_floor = 5;

  FigureDef fig;
  fig.name = "fig4";
  fig.summary = "Fig. 4 - slowdown vs failure rate at c=1.0 and c=1.2 (SDSC)";
  fig.header =
      "Figure 4: avg bounded slowdown vs failure rate (SDSC, balancing, a=" +
      format_double(alpha, 1) + ")\n" +
      "seeds/point: " + std::to_string(spec.repeats()) +
      ", jobs/run: " + std::to_string(model.num_jobs) + "\n";
  fig.spec = std::move(spec);
  fig.render = [](const exp::SweepResult& r) {
    Table table({"failure_rate", "c=1.0", "c=1.2", "ratio"});
    for (std::size_t fi = 0; fi < r.shape().failures; ++fi) {
      const exp::PointSummary& c10 = r.at(0, 0, fi, 0, 0, 0, 0, 0);
      const exp::PointSummary& c12 = r.at(0, 1, fi, 0, 0, 0, 0, 0);
      table.add_row()
          .add(static_cast<long long>(500 * fi))
          .add(c10.slowdown, 1)
          .add(c12.slowdown, 1)
          .add(c10.slowdown > 0.0 ? c12.slowdown / c10.slowdown : 0.0, 2);
    }
    FigureOutput out;
    out.parts.push_back({"fig4_slowdown_vs_failures_load", "", std::move(table)});
    return out;
  };
  return fig;
}

}  // namespace bgl::bench
