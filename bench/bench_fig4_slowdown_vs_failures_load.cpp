// Figure 4: average bounded slowdown vs. failure rate for the SDSC log,
// balancing scheduler (a = 0.1), at loads c = 1.0 and c = 1.2.
//
// Expected shape: both curves rise then flatten; the c = 1.2 curve sits
// well above c = 1.0 everywhere (the 20 % load increase amplifies the
// queueing impact of every kill).
#include <algorithm>
#include <iostream>

#include "common/bench_common.hpp"

int main() {
  using namespace bgl;
  using namespace bgl::bench;

  const SyntheticModel model = bench_sdsc();
  const double alpha = 0.1;
  std::cout << "Figure 4: avg bounded slowdown vs failure rate (SDSC, balancing, a="
            << format_double(alpha, 1) << ")\n"
            << "seeds/point: " << std::max(bench_seeds(), 5) << ", jobs/run: " << model.num_jobs
            << "\n\n";

  Table table({"failure_rate", "c=1.0", "c=1.2", "ratio"});
  for (std::size_t rate = 0; rate <= 4000; rate += 500) {
    const RunSummary c10 = run_point(model, 1.0, rate, SchedulerKind::kBalancing, alpha, nullptr, 5);
    const RunSummary c12 = run_point(model, 1.2, rate, SchedulerKind::kBalancing, alpha, nullptr, 5);
    table.add_row()
        .add(static_cast<long long>(rate))
        .add(c10.slowdown, 1)
        .add(c12.slowdown, 1)
        .add(c10.slowdown > 0.0 ? c12.slowdown / c10.slowdown : 0.0, 2);
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n" << table.render();
  write_csv(table, "fig4_slowdown_vs_failures_load");
  return 0;
}
