// Scheduler-portfolio baselines: backfill discipline x fault-aware
// predictor x load (docs/SCHEDULERS.md).
//
// The paper evaluates one discipline (krevat: FCFS + spatial backfilling
// behind the blocked head, no temporal reservation) against three
// placement/predictor pairings. This figure holds the pairing axis fixed
// per row and sweeps the discipline axis across the portfolio — krevat,
// EASY, conservative, EASY-holdback — at the standard and +20% load
// points, so the cost of reservation guarantees is measurable per
// predictor: conservative's no-delay promise trades throughput for
// fairness, holdback's free-node floor trades utilization for headroom.
//
// Row key: (c, scheduler, algorithm); all rows share workloads and failure
// traces (SeedScheme::kSharedAcrossCells), so contrasts are paired. The
// krevat rows double as the regression anchor: they must match the same
// cells run before the algorithm seam existed (bench/golden pins this).
#include <string>

#include "common/bench_common.hpp"
#include "common/figures.hpp"

namespace bgl::bench {

FigureDef make_baselines() {
  const SyntheticModel model = bench_sdsc();
  const std::size_t nominal = paper_failure_count(model);

  exp::SweepSpec spec;
  spec.name = "baselines";
  spec.models = {{"SDSC", model}};
  spec.load_scales = {1.0, 1.2};
  spec.schedulers = {SchedulerKind::kKrevat, SchedulerKind::kBalancing,
                     SchedulerKind::kTieBreak};
  spec.algorithms = {SchedAlgorithm::kKrevat, SchedAlgorithm::kEasy,
                     SchedAlgorithm::kConservative,
                     SchedAlgorithm::kEasyHoldback};
  spec.alphas = {0.1};

  FigureDef fig;
  fig.name = "baselines";
  fig.summary =
      "Scheduler portfolio - backfill discipline x predictor x load (SDSC)";
  fig.header =
      "Baselines: discipline x scheduler at c = 1.0 / 1.2 (SDSC, nominal " +
      std::to_string(nominal) + " failures, alpha 0.1)\n" +
      "seeds/point: " + std::to_string(spec.repeats()) +
      ", jobs/run: " + std::to_string(model.num_jobs) + "\n";
  fig.spec = std::move(spec);
  fig.render = [](const exp::SweepResult& r) {
    static const SchedulerKind kSchedulers[] = {SchedulerKind::kKrevat,
                                                SchedulerKind::kBalancing,
                                                SchedulerKind::kTieBreak};
    static const SchedAlgorithm kAlgorithms[] = {
        SchedAlgorithm::kKrevat, SchedAlgorithm::kEasy,
        SchedAlgorithm::kConservative, SchedAlgorithm::kEasyHoldback};
    Table table({"c", "scheduler", "algorithm", "slowdown", "wait_s",
                 "util", "kills", "migrations"});
    for (std::size_t li = 0; li < r.shape().loads; ++li) {
      const double c = li == 0 ? 1.0 : 1.2;
      for (std::size_t si = 0; si < r.shape().schedulers; ++si) {
        for (std::size_t gi = 0; gi < r.shape().algorithms; ++gi) {
          const exp::PointSummary& p = r.at(0, li, 0, si, gi, 0, 0, 0);
          table.add_row()
              .add(c, 1)
              .add(std::string(to_string(kSchedulers[si])))
              .add(std::string(to_string(kAlgorithms[gi])))
              .add(p.slowdown, 1)
              .add(p.wait, 1)
              .add(p.utilization, 3)
              .add(p.kills, 1)
              .add(p.migrations, 1);
        }
      }
    }
    FigureOutput out;
    out.parts.push_back({"baselines", "", std::move(table)});
    return out;
  };
  return fig;
}

}  // namespace bgl::bench
