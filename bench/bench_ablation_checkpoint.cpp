// Extension bench (paper §8 future work): periodic checkpointing combined
// with prediction. Sweeps checkpoint interval against prediction confidence
// and reports how the two mechanisms interact: checkpointing bounds the
// work lost per kill, prediction avoids kills altogether, and their
// combination should dominate either alone until checkpoint overhead eats
// the gains.
#include <string>
#include <vector>

#include "common/bench_common.hpp"
#include "common/figures.hpp"
#include "util/strings.hpp"

namespace bgl::bench {

FigureDef make_ablation_checkpoint() {
  const SyntheticModel model = bench_sdsc();
  const std::size_t nominal = paper_failure_count(model);

  exp::SweepSpec spec;
  spec.name = "ablation_checkpoint";
  spec.models = {{"SDSC", model}};
  spec.alphas = {0.0, 0.1, 0.9};
  for (const double interval_hours : {0.0, 1.0, 4.0}) {
    SimConfig proto;
    if (interval_hours > 0.0) {
      proto.ckpt.enabled = true;
      proto.ckpt.interval = interval_hours * 3600.0;
      proto.ckpt.overhead = 60.0;
      proto.ckpt.restart_overhead = 30.0;
    }
    spec.configs.push_back({interval_hours == 0.0
                                ? std::string("off")
                                : format_double(interval_hours, 0) + "h",
                            proto, std::nullopt});
  }

  FigureDef fig;
  fig.name = "ablation_checkpoint";
  fig.summary = "Extension - checkpoint interval x prediction confidence";
  fig.header =
      "Extension: checkpointing x prediction (SDSC, balancing, c=1.0, "
      "nominal " + std::to_string(nominal) + " failures)\n"
      "checkpoint overhead 60 s, restart overhead 30 s\n";

  std::vector<std::string> labels;
  for (const exp::ConfigCase& cc : spec.configs) labels.push_back(cc.label);

  fig.spec = std::move(spec);
  fig.render = [labels](const exp::SweepResult& r) {
    Table table({"ckpt_interval", "confidence", "slowdown", "lost", "kills",
                 "work_lost_node_h"});
    const double alphas[] = {0.0, 0.1, 0.9};
    for (std::size_t ci = 0; ci < r.shape().configs; ++ci) {
      for (std::size_t ai = 0; ai < r.shape().alphas; ++ai) {
        const exp::PointSummary& p = r.at(0, 0, 0, 0, 0, ai, 0, ci);
        table.add_row()
            .add(labels[ci])
            .add(alphas[ai], 1)
            .add(p.slowdown, 1)
            .add(p.lost, 3)
            .add(p.kills, 1)
            .add(p.work_lost_node_hours, 1);
      }
    }
    FigureOutput out;
    out.parts.push_back({"ablation_checkpoint", "", std::move(table)});
    return out;
  };
  return fig;
}

}  // namespace bgl::bench
