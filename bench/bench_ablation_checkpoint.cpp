// Extension bench (paper §8 future work): periodic checkpointing combined
// with prediction. Sweeps checkpoint interval against prediction confidence
// and reports how the two mechanisms interact: checkpointing bounds the
// work lost per kill, prediction avoids kills altogether, and their
// combination should dominate either alone until checkpoint overhead eats
// the gains.
#include <iostream>

#include "common/bench_common.hpp"

int main() {
  using namespace bgl;
  using namespace bgl::bench;

  const SyntheticModel model = bench_sdsc();
  const std::size_t nominal = paper_failure_count(model);
  std::cout << "Extension: checkpointing x prediction (SDSC, balancing, c=1.0, "
            << "nominal " << nominal << " failures)\n"
            << "checkpoint overhead 60 s, restart overhead 30 s\n\n";

  Table table({"ckpt_interval", "confidence", "slowdown", "lost", "kills",
               "work_lost_node_h"});
  for (const double interval_hours : {0.0, 1.0, 4.0}) {
    for (const double a : {0.0, 0.1, 0.9}) {
      SimConfig proto;
      if (interval_hours > 0.0) {
        proto.ckpt.enabled = true;
        proto.ckpt.interval = interval_hours * 3600.0;
        proto.ckpt.overhead = 60.0;
        proto.ckpt.restart_overhead = 30.0;
      }
      const RunSummary r =
          run_point(model, 1.0, nominal, SchedulerKind::kBalancing, a, &proto);
      table.add_row()
          .add(interval_hours == 0.0 ? std::string("off")
                                     : format_double(interval_hours, 0) + "h")
          .add(a, 1)
          .add(r.slowdown, 1)
          .add(r.lost, 3)
          .add(r.kills, 1)
          .add(r.work_lost_node_hours, 1);
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n\n" << table.render();
  write_csv(table, "ablation_checkpoint");
  return 0;
}
