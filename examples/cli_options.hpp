// Option parsing for simulate_cli, split out so tests can exercise it.
//
// parse_cli_options() throws bgl::ConfigError on any malformed flag — an
// unknown option, a missing value, or a value that does not parse as the
// required type. Nothing is ever silently defaulted: `--jobs banana` is an
// error naming the flag and the offending token, never "0 jobs". main()
// catches ConfigError, prints it to stderr, and exits 2 (usage error),
// matching the exp::ExperimentConfig semantics elsewhere in the repo.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sched/types.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace bgl_cli {

struct Options {
  std::string workload = "sdsc";
  int jobs = 2000;
  double load = 1.0;
  std::optional<std::size_t> failures;
  std::optional<std::string> failure_csv;
  std::string scheduler = "balancing";
  std::string algorithm = "krevat";
  std::string predictor = "paper";
  double alpha = 0.1;
  double history_lookback = 0.0;  ///< 0 = keep SimConfig default.
  double flag_window = 0.0;       ///< 0 = keep AdaptiveConfig default.
  bgl::BackfillMode backfill = bgl::BackfillMode::kEasy;
  bool migration = true;
  double ckpt_interval = 0.0;
  double downtime = 0.0;
  std::uint64_t seed = 42;
  std::optional<std::string> trace_out;
  std::optional<std::string> stats_out;
  double snapshot_interval = 0.0;
  double metrics_interval = 0.0;
  bool profile = false;
};

inline long long require_int(const std::string& flag, const std::string& token) {
  const auto v = bgl::parse_int(token);
  if (!v) {
    throw bgl::ConfigError(flag + " requires an integer, got '" + token + "'");
  }
  return *v;
}

inline double require_double(const std::string& flag, const std::string& token) {
  const auto v = bgl::parse_double(token);
  if (!v) {
    throw bgl::ConfigError(flag + " requires a number, got '" + token + "'");
  }
  return *v;
}

/// Parse argv[1..argc-1]. Throws bgl::ConfigError on any malformed input.
inline Options parse_cli_options(int argc, const char* const* argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw bgl::ConfigError(arg + " requires a value");
      }
      return std::string(argv[++i]);
    };
    if (arg == "--workload") {
      o.workload = next();
    } else if (arg == "--jobs") {
      const long long n = require_int(arg, next());
      if (n < 1) {
        throw bgl::ConfigError("--jobs must be >= 1, got " + std::to_string(n));
      }
      o.jobs = static_cast<int>(n);
    } else if (arg == "--load") {
      o.load = require_double(arg, next());
      if (o.load <= 0.0) throw bgl::ConfigError("--load must be positive");
    } else if (arg == "--failures") {
      const long long n = require_int(arg, next());
      if (n < 0) throw bgl::ConfigError("--failures must be >= 0");
      o.failures = static_cast<std::size_t>(n);
    } else if (arg == "--failure-csv") {
      o.failure_csv = next();
    } else if (arg == "--scheduler") {
      o.scheduler = next();
    } else if (arg == "--algorithm") {
      o.algorithm = next();
    } else if (arg == "--predictor") {
      o.predictor = next();
    } else if (arg == "--history-lookback") {
      o.history_lookback = require_double(arg, next());
      if (o.history_lookback <= 0.0) {
        throw bgl::ConfigError("--history-lookback must be positive");
      }
    } else if (arg == "--flag-window") {
      o.flag_window = require_double(arg, next());
      if (o.flag_window <= 0.0) {
        throw bgl::ConfigError("--flag-window must be positive");
      }
    } else if (arg == "--alpha") {
      o.alpha = require_double(arg, next());
      if (o.alpha < 0.0 || o.alpha > 1.0) {
        throw bgl::ConfigError("--alpha must be in [0,1]");
      }
    } else if (arg == "--no-backfill") {
      o.backfill = bgl::BackfillMode::kNone;
    } else if (arg == "--conservative-backfill") {
      o.backfill = bgl::BackfillMode::kConservative;
    } else if (arg == "--no-migration") {
      o.migration = false;
    } else if (arg == "--ckpt-interval") {
      o.ckpt_interval = require_double(arg, next());
      if (o.ckpt_interval <= 0.0) {
        throw bgl::ConfigError("--ckpt-interval must be positive");
      }
    } else if (arg == "--downtime") {
      o.downtime = require_double(arg, next());
      if (o.downtime < 0.0) throw bgl::ConfigError("--downtime must be >= 0");
    } else if (arg == "--seed") {
      o.seed = static_cast<std::uint64_t>(require_int(arg, next()));
    } else if (arg == "--trace-out") {
      o.trace_out = next();
    } else if (arg == "--snapshot-interval") {
      o.snapshot_interval = require_double(arg, next());
      if (o.snapshot_interval < 0.0) {
        throw bgl::ConfigError("--snapshot-interval must be >= 0");
      }
    } else if (arg == "--metrics-interval") {
      o.metrics_interval = require_double(arg, next());
      if (o.metrics_interval < 0.0) {
        throw bgl::ConfigError("--metrics-interval must be >= 0");
      }
    } else if (arg == "--profile") {
      o.profile = true;
    } else if (arg == "--stats-out") {
      o.stats_out = next();
    } else {
      throw bgl::ConfigError("unknown option: " + arg);
    }
  }
  return o;
}

}  // namespace bgl_cli
