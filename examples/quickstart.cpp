// Quickstart: the smallest end-to-end use of the library.
//
//   1. Generate an SDSC-like synthetic job log.
//   2. Generate a bursty failure trace at the paper's density.
//   3. Simulate the fault-oblivious baseline (Krevat) and the fault-aware
//      balancing scheduler at 10 % prediction confidence.
//   4. Print the §3.4 metrics side by side.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "failure/generator.hpp"
#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/analysis.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace bgl;

  // 1. A 1500-job SDSC-like workload on the 4x4x8 supernode machine.
  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = 1500;
  Workload workload = generate_workload(model, /*seed=*/2024);
  workload = rescale_sizes(workload, Dims::bluegene_l().volume());
  std::cout << describe(workload) << '\n';

  // 2. Failures at the paper's SDSC density (4000 events per 730 days).
  const double span = workload.arrival_span() * 1.05 + 2.0 * 36.0 * 3600.0;
  const std::size_t events = span_scaled_events(4000, span, model);
  const FailureTrace trace =
      generate_failures(FailureModel::bluegene_l(events, span), /*seed=*/7);
  std::cout << "failure trace: " << trace.size() << " events, "
            << format_double(trace.mean_rate_per_day(), 2) << " per day\n\n";

  // 3. Simulate both schedulers on identical inputs.
  SimConfig oblivious;
  oblivious.scheduler = SchedulerKind::kKrevat;

  SimConfig aware;
  aware.scheduler = SchedulerKind::kBalancing;
  aware.alpha = 0.1;  // 10% prediction confidence — the paper's headline

  const SimResult r_oblivious = run_simulation(workload, trace, oblivious);
  const SimResult r_aware = run_simulation(workload, trace, aware);

  // 4. Compare.
  Table table({"metric", "krevat (fault-oblivious)", "balancing (a=0.1)"});
  table.add_row().add("avg bounded slowdown").add(r_oblivious.avg_bounded_slowdown, 1)
      .add(r_aware.avg_bounded_slowdown, 1);
  table.add_row().add("avg response").add(format_duration(r_oblivious.avg_response))
      .add(format_duration(r_aware.avg_response));
  table.add_row().add("avg wait").add(format_duration(r_oblivious.avg_wait))
      .add(format_duration(r_aware.avg_wait));
  table.add_row().add("jobs killed by failures")
      .add(static_cast<long long>(r_oblivious.job_kills))
      .add(static_cast<long long>(r_aware.job_kills));
  table.add_row().add("utilization").add(r_oblivious.utilization, 3)
      .add(r_aware.utilization, 3);
  table.add_row().add("lost capacity").add(r_oblivious.lost, 3).add(r_aware.lost, 3);
  std::cout << table.render();
  return 0;
}
