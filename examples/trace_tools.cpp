// Trace tools: generate, inspect and convert the simulator's two input
// artifacts — SWF job logs and failure-trace CSVs — so users can prepare
// their own inputs (including real Parallel Workloads Archive logs).
//
// Usage:
//   trace_tools gen-swf <nasa|sdsc|llnl> <jobs> <seed> <out.swf>
//   trace_tools gen-failures <events> <days> <seed> <out.csv>
//   trace_tools describe-swf <file.swf>
//   trace_tools describe-failures <file.csv> [nodes]
//   trace_tools describe-trace <trace.jsonl>
#include <algorithm>
#include <array>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "failure/generator.hpp"
#include "obs/reader.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "workload/analysis.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace bgl;

int usage() {
  std::cerr << "usage:\n"
            << "  trace_tools gen-swf <nasa|sdsc|llnl> <jobs> <seed> <out.swf>\n"
            << "  trace_tools gen-failures <events> <days> <seed> <out.csv>\n"
            << "  trace_tools describe-swf <file.swf>\n"
            << "  trace_tools describe-failures <file.csv> [nodes]\n"
            << "  trace_tools describe-trace <trace.jsonl>\n";
  return 2;
}

SyntheticModel model_by_name(const std::string& name) {
  if (name == "nasa") return SyntheticModel::nasa();
  if (name == "sdsc") return SyntheticModel::sdsc();
  if (name == "llnl") return SyntheticModel::llnl();
  throw ConfigError("unknown model '" + name + "' (expected nasa|sdsc|llnl)");
}

int gen_swf(int argc, char** argv) {
  if (argc != 6) return usage();
  SyntheticModel model = model_by_name(argv[2]);
  model.num_jobs = static_cast<int>(parse_int(argv[3]).value_or(0));
  const auto seed = static_cast<std::uint64_t>(parse_int(argv[4]).value_or(1));
  const Workload w = generate_workload(model, seed);
  write_swf_file(argv[5], w);
  std::cout << "wrote " << w.jobs.size() << " jobs to " << argv[5] << '\n'
            << describe(w);
  return 0;
}

int gen_failures(int argc, char** argv) {
  if (argc != 6) return usage();
  const auto events = static_cast<std::size_t>(parse_int(argv[2]).value_or(0));
  const double days = parse_double(argv[3]).value_or(365.0);
  const auto seed = static_cast<std::uint64_t>(parse_int(argv[4]).value_or(1));
  const FailureTrace trace =
      generate_failures(FailureModel::bluegene_l(events, days * 86400.0), seed);
  write_failure_csv(argv[5], trace);
  std::cout << "wrote " << trace.size() << " failure events to " << argv[5] << " ("
            << format_double(trace.mean_rate_per_day(), 2) << "/day)\n";
  return 0;
}

int describe_swf(int argc, char** argv) {
  if (argc != 3) return usage();
  const Workload w = read_swf_file(argv[2]);
  std::cout << describe(w);
  return 0;
}

int describe_failures(int argc, char** argv) {
  if (argc != 3 && argc != 4) return usage();
  const int nodes = argc == 4 ? static_cast<int>(parse_int(argv[3]).value_or(128)) : 128;
  const FailureTrace trace = read_failure_csv(argv[2], nodes);
  std::cout << "failure trace: " << trace.size() << " events over " << nodes
            << " nodes\n";
  if (trace.empty()) return 0;
  std::cout << "  span: "
            << format_duration(trace.events().back().time - trace.events().front().time)
            << ", rate " << format_double(trace.mean_rate_per_day(), 2) << "/day\n";
  // Node skew: how concentrated are failures on repeat offenders?
  std::vector<std::size_t> per_node(static_cast<std::size_t>(nodes), 0);
  for (const FailureEvent& e : trace.events()) ++per_node[static_cast<std::size_t>(e.node)];
  std::sort(per_node.rbegin(), per_node.rend());
  std::size_t top10 = 0;
  for (std::size_t i = 0; i < per_node.size() / 10 + 1; ++i) top10 += per_node[i];
  std::cout << "  top-10% offender nodes account for "
            << format_double(100.0 * static_cast<double>(top10) /
                                 static_cast<double>(trace.size()),
                             1)
            << "% of events\n";
  // Burstiness: inter-event gap CV.
  RunningStats gaps;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    gaps.add(trace.events()[i].time - trace.events()[i - 1].time);
  }
  if (gaps.count() > 1 && gaps.mean() > 0.0) {
    std::cout << "  inter-event gap CV: " << format_double(gaps.stddev() / gaps.mean(), 2)
              << " (Poisson ~ 1, bursty >> 1)\n";
  }
  return 0;
}

// Summarise a JSONL simulator trace (docs/OBSERVABILITY.md) through
// obs::TraceReader: event counts per type, simulated span, and the jobs hit
// hardest by failures.
int describe_trace(int argc, char** argv) {
  if (argc != 3) return usage();
  std::ifstream in(argv[2]);
  if (!in) {
    std::cerr << "error: cannot open " << argv[2] << '\n';
    return 1;
  }

  std::array<std::size_t, static_cast<std::size_t>(obs::EventType::kUnknown) + 1>
      counts{};
  std::map<std::int64_t, int> restarts;  // job -> kills observed
  double t_min = 0.0, t_max = 0.0;
  std::size_t events = 0;

  obs::TraceReader reader(in);
  obs::TraceRecord rec;
  while (reader.next(rec)) {
    ++counts[static_cast<std::size_t>(rec.type())];
    if (events == 0) {
      t_min = t_max = rec.t();
    } else {
      t_min = std::min(t_min, rec.t());
      t_max = std::max(t_max, rec.t());
    }
    ++events;
    if (rec.type() == obs::EventType::kJobKill) {
      ++restarts[rec.require_int("job")];
    }
  }

  std::cout << "trace: " << events << " events";
  if (events > 0) {
    std::cout << ", t in [" << format_double(t_min, 10) << ", "
              << format_double(t_max, 10) << "] ("
              << format_duration(t_max - t_min) << ")";
  }
  std::cout << '\n';
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    std::cout << "  " << obs::to_string(static_cast<obs::EventType>(i)) << ": "
              << counts[i] << '\n';
  }

  if (!restarts.empty()) {
    std::vector<std::pair<std::int64_t, int>> worst(restarts.begin(),
                                                    restarts.end());
    std::sort(worst.begin(), worst.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    std::cout << "most-restarted jobs:\n";
    for (std::size_t i = 0; i < worst.size() && i < 5; ++i) {
      std::cout << "  job " << worst[i].first << ": " << worst[i].second
                << " kill(s)\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "gen-swf") return gen_swf(argc, argv);
    if (command == "gen-failures") return gen_failures(argc, argv);
    if (command == "describe-swf") return describe_swf(argc, argv);
    if (command == "describe-failures") return describe_failures(argc, argv);
    if (command == "describe-trace") return describe_trace(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
