// replay_gantt: visualise a simulation as an ASCII machine-utilisation
// timeline built from the structured replay log.
//
// Renders two views of a small SDSC-like run under the balancing scheduler:
//   1. a utilisation strip — one column per time bucket, bar height = busy
//      nodes, with failure events marked on top;
//   2. a per-z-plane occupancy map at a chosen instant, showing how the
//      torus is carved into rectangular partitions.
//
// Usage: replay_gantt [jobs] [failures_per_day] [seed]
#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "failure/generator.hpp"
#include "sim/driver.hpp"
#include "sim/replay.hpp"
#include "util/strings.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace bgl;

/// Busy-node count over time reconstructed from the replay log.
struct TimelinePoint {
  double time;
  int busy;
  bool failure;
};

std::vector<TimelinePoint> reconstruct(const std::vector<ReplayEvent>& replay,
                                       const PartitionCatalog& catalog) {
  std::vector<TimelinePoint> points;
  std::map<std::uint64_t, int> running;  // job -> entry
  int busy = 0;
  for (const ReplayEvent& e : replay) {
    bool failure = false;
    switch (e.type) {
      case ReplayEventType::kStart:
        running[e.job_id] = e.entry_index;
        busy += catalog.entry(e.entry_index).size;
        break;
      case ReplayEventType::kFinish:
      case ReplayEventType::kKill:
        busy -= catalog.entry(running[e.job_id]).size;
        running.erase(e.job_id);
        break;
      case ReplayEventType::kNodeFailure:
        failure = true;
        break;
      default:
        break;
    }
    points.push_back(TimelinePoint{e.time, busy, failure});
  }
  return points;
}

void render_strip(const std::vector<TimelinePoint>& points, int columns, int rows) {
  if (points.empty()) return;
  const double t0 = points.front().time;
  const double t1 = points.back().time;
  const double bucket = (t1 - t0) / columns;
  std::vector<int> level(static_cast<std::size_t>(columns), 0);
  std::vector<bool> failed(static_cast<std::size_t>(columns), false);
  std::size_t p = 0;
  int busy = 0;
  for (int c = 0; c < columns; ++c) {
    const double end = t0 + bucket * (c + 1);
    int peak = busy;
    while (p < points.size() && points[p].time <= end) {
      busy = points[p].busy;
      peak = std::max(peak, busy);
      failed[static_cast<std::size_t>(c)] =
          failed[static_cast<std::size_t>(c)] || points[p].failure;
      ++p;
    }
    level[static_cast<std::size_t>(c)] = peak;
  }
  std::cout << "busy nodes (peak per bucket; 'x' = failure events in bucket)\n";
  for (int r = rows; r >= 1; --r) {
    const int threshold = 128 * r / rows;
    std::cout << (r == rows ? "128|" : (r == 1 ? "  0|" : "   |"));
    for (int c = 0; c < columns; ++c) {
      const bool on = level[static_cast<std::size_t>(c)] >= threshold;
      if (r == rows && failed[static_cast<std::size_t>(c)]) {
        std::cout << 'x';
      } else {
        std::cout << (on ? '#' : ' ');
      }
    }
    std::cout << '\n';
  }
  std::cout << "   +" << std::string(static_cast<std::size_t>(columns), '-') << '\n';
  std::cout << "    0" << std::string(static_cast<std::size_t>(columns) - 10, ' ')
            << format_duration(t1 - t0) << '\n';
}

void render_occupancy_at(const std::vector<ReplayEvent>& replay,
                         const PartitionCatalog& catalog, double at) {
  std::map<std::uint64_t, int> running;
  for (const ReplayEvent& e : replay) {
    if (e.time > at) break;
    switch (e.type) {
      case ReplayEventType::kStart: running[e.job_id] = e.entry_index; break;
      case ReplayEventType::kFinish:
      case ReplayEventType::kKill: running.erase(e.job_id); break;
      default: break;
    }
  }
  // Letter per job, '.' for free.
  std::vector<char> cell(static_cast<std::size_t>(catalog.num_nodes()), '.');
  char letter = 'A';
  for (const auto& [job, entry] : running) {
    for (const int id : catalog.entry(entry).mask.to_ids()) {
      cell[static_cast<std::size_t>(id)] = letter;
    }
    letter = letter == 'Z' ? 'a' : static_cast<char>(letter + 1);
  }
  const Dims dims = catalog.dims();
  std::cout << "\ntorus occupancy at t = " << format_duration(at) << " ("
            << running.size() << " jobs running):\n";
  for (int z = 0; z < dims.z; ++z) {
    std::cout << "z=" << z << "  ";
    for (int y = dims.y - 1; y >= 0; --y) {
      for (int x = 0; x < dims.x; ++x) {
        std::cout << cell[static_cast<std::size_t>(node_id(dims, Coord{x, y, z}))];
      }
      std::cout << ' ';
    }
    std::cout << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgl;
  int jobs = 400;
  double failures_per_day = 6.0;
  std::uint64_t seed = 11;
  if (argc > 1) jobs = static_cast<int>(parse_int(argv[1]).value_or(jobs));
  if (argc > 2) failures_per_day = parse_double(argv[2]).value_or(failures_per_day);
  if (argc > 3) seed = static_cast<std::uint64_t>(parse_int(argv[3]).value_or(11));

  SyntheticModel model = SyntheticModel::sdsc();
  model.num_jobs = jobs;
  Workload w = generate_workload(model, seed);
  w = rescale_sizes(w, 128);
  const double span = w.arrival_span() * 1.05 + 2.0 * 36.0 * 3600.0;
  const FailureTrace trace = generate_failures(
      FailureModel::bluegene_l(
          static_cast<std::size_t>(failures_per_day * span / 86400.0), span),
      seed ^ 0x9e37);

  SimConfig config;
  config.scheduler = SchedulerKind::kBalancing;
  config.alpha = 0.1;
  config.record_replay = true;

  const PartitionCatalog catalog(Dims::bluegene_l());
  const SimResult r = run_simulation(w, trace, config, &catalog);

  std::cout << "jobs " << r.jobs_completed << ", kills " << r.job_kills
            << ", utilization " << format_double(r.utilization, 3) << ", slowdown "
            << format_double(r.avg_bounded_slowdown, 1) << "\n\n";
  const auto points = reconstruct(r.replay, catalog);
  render_strip(points, 100, 12);
  render_occupancy_at(r.replay, catalog, r.span / 2.0);
  return 0;
}
