// Placement demo: reproduces the paper's Figures 1 and 2 as ASCII scenarios.
//
// Figure 1 — the MFP heuristic: two placements of the same job, one of
// which preserves a larger maximal free partition.
// Figure 2 — fault-aware placement: (a)/(b) trading MFP size against a
// predicted-to-fail partition (the balancing algorithm's E_loss), and
// (c)/(d) breaking a tie between equal-MFP placements using the predictor
// (the tie-breaking algorithm).
//
// Scenarios run on a z = 0 slice of a 4x4x1 torus for readability; the
// engine underneath is the same PartitionCatalog/policy stack the full
// simulator uses.
#include <iostream>

#include "sched/policy.hpp"
#include "torus/catalog.hpp"
#include "util/strings.hpp"

namespace {

using namespace bgl;

/// Render a 4x4 slice: '#' busy, 'J' the candidate, 'X' flagged, '.' free.
std::string render(const Dims& dims, const NodeSet& occ, const NodeSet& job,
                   const NodeSet& flags) {
  std::string out;
  for (int y = dims.y - 1; y >= 0; --y) {
    out += "  ";
    for (int x = 0; x < dims.x; ++x) {
      const int id = node_id(dims, Coord{x, y, 0});
      char c = '.';
      if (occ.test(id)) c = '#';
      if (job.test(id)) c = 'J';
      if (flags.test(id)) c = occ.test(id) || job.test(id) ? '!' : 'X';
      out += c;
      out += ' ';
    }
    out += '\n';
  }
  return out;
}

int entry_of_box(const PartitionCatalog& catalog, const Box& box) {
  const Box canon = canonicalize(catalog.dims(), box);
  for (int i = 0; i < catalog.num_entries(); ++i) {
    if (catalog.entry(i).box == canon) return i;
  }
  return -1;
}

PlacementContext make_ctx(const PartitionCatalog& catalog, const NodeSet& occ,
                          const NodeSet& flags, double confidence, int job_size) {
  PlacementContext ctx;
  ctx.catalog = &catalog;
  ctx.occupied = &occ;
  ctx.mfp_before_index = catalog.first_free_index(occ);
  ctx.mfp_before_size =
      ctx.mfp_before_index < 0 ? 0 : catalog.entry(ctx.mfp_before_index).size;
  ctx.flagged = &flags;
  ctx.confidence = confidence;
  ctx.job_size = job_size;
  return ctx;
}

void figure1(const PartitionCatalog& catalog) {
  const Dims dims = catalog.dims();
  std::cout << "=== Figure 1: the MFP heuristic ===\n"
            << "A 2-node job arrives on a fragmented 4x4 slice. Placement (a)\n"
            << "splinters the free space; placement (b) preserves a large MFP.\n\n";

  NodeSet occ(dims.volume());
  // A busy L-shape: column x=0 plus node (1,0).
  for (int y = 0; y < dims.y; ++y) occ.set(node_id(dims, Coord{0, y, 0}));
  occ.set(node_id(dims, Coord{1, 0, 0}));

  const int a = entry_of_box(catalog, Box{Coord{2, 2, 0}, Triple{1, 2, 1}});
  const int b = entry_of_box(catalog, Box{Coord{1, 2, 0}, Triple{1, 2, 1}});
  NodeSet flags(dims.volume());

  for (const auto& [label, entry] : {std::pair{"(a)", a}, std::pair{"(b)", b}}) {
    NodeSet with = occ;
    with |= catalog.entry(entry).mask;
    std::cout << label << " MFP after placement: " << catalog.mfp(with) << "\n"
              << render(dims, occ, catalog.entry(entry).mask, flags) << '\n';
  }

  MfpLossPolicy policy;
  const int chosen = policy.choose(make_ctx(catalog, occ, flags, 0.0, 2), {a, b});
  std::cout << "MFP-loss policy picks " << (chosen == b ? "(b)" : "(a)")
            << " — the placement with the larger resulting MFP.\n\n";
}

void figure2ab(const PartitionCatalog& catalog) {
  const Dims dims = catalog.dims();
  std::cout << "=== Figure 2 (a)/(b): balancing MFP against stability ===\n"
            << "Two placements for a 4-node job: (a) keeps the best MFP but two\n"
            << "of its nodes are predicted to fail (X); (b) is safe but\n"
            << "splinters the free space. The E_loss trade-off flips with the\n"
            << "prediction confidence.\n\n";

  NodeSet occ(dims.volume());
  for (int y = 0; y < dims.y; ++y) occ.set(node_id(dims, Coord{0, y, 0}));
  occ.set(node_id(dims, Coord{1, 0, 0}));
  occ.set(node_id(dims, Coord{2, 0, 0}));

  const int a = entry_of_box(catalog, Box{Coord{1, 2, 0}, Triple{2, 2, 1}});
  const int b = entry_of_box(catalog, Box{Coord{2, 1, 0}, Triple{2, 2, 1}});
  NodeSet flags(dims.volume());
  flags.set(node_id(dims, Coord{1, 2, 0}));
  flags.set(node_id(dims, Coord{1, 3, 0}));

  for (const auto& [label, entry] : {std::pair{"(a)", a}, std::pair{"(b)", b}}) {
    NodeSet with = occ;
    with |= catalog.entry(entry).mask;
    const int k = catalog.entry(entry).mask.intersect_count(flags);
    std::cout << label << " MFP after: " << catalog.mfp(with) << ", flagged nodes in partition: " << k
              << '\n'
              << render(dims, occ, catalog.entry(entry).mask, flags) << '\n';
  }

  BalancingPolicy policy;
  for (const double a_conf : {0.1, 0.9}) {
    const int chosen =
        policy.choose(make_ctx(catalog, occ, flags, a_conf, 4), {a, b});
    std::cout << "balancing at confidence " << format_double(a_conf, 1) << " picks "
              << (chosen == a ? "(a) — MFP wins" : "(b) — stability wins") << '\n';
  }
  std::cout << '\n';
}

void figure2cd(const PartitionCatalog& catalog) {
  const Dims dims = catalog.dims();
  std::cout << "=== Figure 2 (c)/(d): tie-breaking between equal MFPs ===\n"
            << "Two placements with identical MFP loss; (c) contains a node the\n"
            << "predictor flags, (d) does not. The tie-breaking algorithm picks\n"
            << "(d); with no prediction the choice would be arbitrary.\n\n";

  NodeSet occ(dims.volume());
  for (int y = 0; y < dims.y; ++y) {
    occ.set(node_id(dims, Coord{0, y, 0}));
    occ.set(node_id(dims, Coord{1, y, 0}));
  }

  const int c = entry_of_box(catalog, Box{Coord{2, 0, 0}, Triple{2, 2, 1}});
  const int d = entry_of_box(catalog, Box{Coord{2, 2, 0}, Triple{2, 2, 1}});
  NodeSet flags(dims.volume());
  flags.set(node_id(dims, Coord{3, 1, 0}));  // inside (c)

  for (const auto& [label, entry] : {std::pair{"(c)", c}, std::pair{"(d)", d}}) {
    NodeSet with = occ;
    with |= catalog.entry(entry).mask;
    std::cout << label << " MFP after: " << catalog.mfp(with) << '\n'
              << render(dims, occ, catalog.entry(entry).mask, flags) << '\n';
  }

  TieBreakPolicy policy;
  const int chosen = policy.choose(make_ctx(catalog, occ, flags, 1.0, 4), {c, d});
  std::cout << "tie-breaking picks " << (chosen == d ? "(d)" : "(c)") << ".\n";
}

}  // namespace

int main() {
  const bgl::PartitionCatalog catalog(bgl::Dims{4, 4, 1});
  figure1(catalog);
  figure2ab(catalog);
  figure2cd(catalog);
  return 0;
}
