// Capacity study: where does BlueGene/L capacity go as failures mount?
//
// Replays the same LLNL-like workload under increasing failure densities
// and three schedulers, decomposing every node-hour into utilized / unused
// / lost (§6.1's ω metrics) plus the raw work destroyed by kills. This is
// the operator's view of the paper's message: prediction does not create
// capacity, it reclaims capacity that failures would destroy.
//
// Usage: capacity_study [failures_per_day...]   (default sweep 0 2 6 12)
#include <iostream>
#include <vector>

#include "failure/generator.hpp"
#include "sim/driver.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/analysis.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace bgl;

  std::vector<double> rates = {0.0, 2.0, 6.0, 12.0};
  if (argc > 1) {
    rates.clear();
    for (int i = 1; i < argc; ++i) {
      if (const auto v = parse_double(argv[i]); v && *v >= 0.0) rates.push_back(*v);
    }
  }

  SyntheticModel model = SyntheticModel::llnl();
  model.num_jobs = 1200;
  Workload workload = generate_workload(model, 99);
  workload = rescale_sizes(workload, Dims::bluegene_l().volume());
  std::cout << describe(workload) << '\n';

  struct Candidate {
    const char* label;
    SchedulerKind kind;
    double alpha;
  };
  const Candidate candidates[] = {
      {"krevat", SchedulerKind::kKrevat, 0.0},
      {"balancing a=0.1", SchedulerKind::kBalancing, 0.1},
      {"tie-break a=0.9", SchedulerKind::kTieBreak, 0.9},
  };

  Table table({"failures/day", "scheduler", "utilized", "unused", "lost",
               "kills", "work destroyed (node-h)"});
  const double span = workload.arrival_span() * 1.05 + 2.0 * 24.0 * 3600.0;
  for (const double rate : rates) {
    const auto events = static_cast<std::size_t>(rate * span / 86400.0);
    const FailureTrace trace =
        generate_failures(FailureModel::bluegene_l(events, span), 31);
    for (const Candidate& c : candidates) {
      SimConfig config;
      config.scheduler = c.kind;
      config.alpha = c.alpha;
      const SimResult r = run_simulation(workload, trace, config);
      table.add_row()
          .add(rate, 1)
          .add(std::string(c.label))
          .add(r.utilization, 3)
          .add(r.unused, 3)
          .add(r.lost, 3)
          .add(static_cast<long long>(r.job_kills))
          .add(r.work_lost_node_seconds / 3600.0, 1);
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n\n" << table.render();
  return 0;
}
