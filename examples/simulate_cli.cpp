// simulate_cli: run one simulation from the command line.
//
// The workload comes from a real SWF file or a synthetic model; the failure
// trace from a CSV or the bursty generator. Prints the full §3.4 metric set.
//
// Usage:
//   simulate_cli [options]
//     --workload <nasa|sdsc|llnl|path.swf>   (default sdsc)
//     --jobs N            synthetic job count (default 2000)
//     --load C            load-scale coefficient c (default 1.0)
//     --failures N        failure events to inject (default: paper density)
//     --failure-csv PATH  use a recorded failure trace instead
//     --scheduler <krevat|balancing|tiebreak> (default balancing)
//     --algorithm <krevat|easy|conservative|easy-holdback>
//                         backfill discipline (default krevat; see
//                         docs/SCHEDULERS.md)
//     --predictor <paper|history|perfect|none|adaptive>
//                         fault-prediction model (default paper; see
//                         docs/PREDICTORS.md)
//     --history-lookback S  kHistory: sliding-window length in seconds
//     --flag-window S     adaptive: base per-node flag window in seconds
//     --alpha A           confidence/accuracy in [0,1] (default 0.1)
//     --no-backfill --conservative-backfill --no-migration
//     --ckpt-interval S   enable checkpointing with this interval (seconds)
//     --downtime S        nodes stay down S seconds after failing
//     --seed N            master seed (default 42)
//     --trace-out PATH    write a structured JSONL event trace (see
//                         docs/OBSERVABILITY.md for the schema); "-"
//                         streams it to stdout, human output to stderr
//     --snapshot-interval S  with --trace-out: emit a machine_state event
//                         every S simulated seconds (default off)
//     --metrics-interval S   with --trace-out: emit a `metrics` telemetry
//                         event every S simulated seconds (default off)
//     --profile           attach the hierarchical phase profiler; the phase
//                         tree lands in --stats-out under "phases"
//     --stats-out PATH    write config + counters + histograms + result
//                         metrics (and, with --profile, the phase tree)
//                         as JSON
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "cli_options.hpp"
#include "failure/generator.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/analysis.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace bgl;
using bgl_cli::Options;

int usage() {
  std::cerr << "see the header comment of examples/simulate_cli.cpp for usage\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  try {
    o = bgl_cli::parse_cli_options(argc, argv);
  } catch (const ConfigError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return usage();
  }

  // `--trace-out -` streams the trace to stdout (for piping into
  // trace_audit); all human-readable output then moves to stderr.
  const bool trace_to_stdout = o.trace_out && *o.trace_out == "-";
  std::ostream& out = trace_to_stdout ? std::cerr : std::cout;

  try {
    // --- workload ---
    Workload workload;
    SyntheticModel model = SyntheticModel::sdsc();
    if (o.workload == "nasa" || o.workload == "sdsc" || o.workload == "llnl") {
      model = o.workload == "nasa"   ? SyntheticModel::nasa()
              : o.workload == "llnl" ? SyntheticModel::llnl()
                                     : SyntheticModel::sdsc();
      model.num_jobs = o.jobs;
      workload = generate_workload(model, o.seed);
    } else {
      workload = read_swf_file(o.workload);
    }
    workload = rescale_sizes(workload, Dims::bluegene_l().volume());
    if (o.load != 1.0) workload = scale_load(workload, o.load);
    out << describe(workload) << '\n';

    // --- failures ---
    double max_runtime = 0.0;
    for (const Job& j : workload.jobs) max_runtime = std::max(max_runtime, j.runtime);
    const double span = workload.arrival_span() * 1.05 + 2.0 * max_runtime;
    FailureTrace trace;
    if (o.failure_csv) {
      trace = read_failure_csv(*o.failure_csv, 128);
    } else {
      const std::size_t events =
          o.failures ? *o.failures
                     : span_scaled_events(paper_failure_count(model), span, model);
      trace = generate_failures(FailureModel::bluegene_l(events, span), o.seed ^ 0xfa17);
    }
    out << "failures: " << trace.size() << " events ("
        << format_double(trace.mean_rate_per_day(), 2) << "/day)\n\n";

    // --- simulation ---
    SimConfig config;
    if (o.scheduler == "krevat") config.scheduler = SchedulerKind::kKrevat;
    else if (o.scheduler == "balancing") config.scheduler = SchedulerKind::kBalancing;
    else if (o.scheduler == "tiebreak") config.scheduler = SchedulerKind::kTieBreak;
    else {
      std::cerr << "unknown scheduler: " << o.scheduler << '\n';
      return usage();
    }
    if (const auto algo = parse_sched_algorithm(o.algorithm)) {
      config.sched.algorithm = *algo;
    } else {
      std::cerr << "unknown algorithm: " << o.algorithm << '\n';
      return usage();
    }
    if (const auto model = parse_predictor_model(o.predictor)) {
      config.predictor_model = *model;
    } else {
      std::cerr << "unknown predictor: " << o.predictor << '\n';
      return usage();
    }
    if (o.history_lookback > 0.0) config.history_lookback = o.history_lookback;
    if (o.flag_window > 0.0) config.adaptive.node_flag_window = o.flag_window;
    config.alpha = o.alpha;
    config.sched.backfill = o.backfill;
    config.sched.migration = o.migration;
    config.seed = o.seed;
    if (o.ckpt_interval > 0.0) {
      config.ckpt.enabled = true;
      config.ckpt.interval = o.ckpt_interval;
    }
    if (o.downtime > 0.0) {
      config.failure_semantics = FailureSemantics::kDownFor;
      config.node_downtime = o.downtime;
    }

    // Observability: a JSONL trace, counters and histograms, all optional.
    obs::CounterRegistry counters;
    obs::HistogramRegistry histograms;
    obs::PhaseProfiler profiler;
    std::unique_ptr<obs::TraceSink> sink;
    if (o.trace_out) {
      sink = trace_to_stdout ? std::make_unique<obs::TraceSink>(std::cout)
                             : obs::TraceSink::open(*o.trace_out);
      sink->set_counters(&counters);
      config.obs.trace = sink.get();
      config.snapshot_interval = o.snapshot_interval;
      config.metrics_interval = o.metrics_interval;
    }
    if (o.trace_out || o.stats_out) {
      config.obs.counters = &counters;
      config.obs.histograms = &histograms;
    }
    if (o.profile) config.obs.profiler = &profiler;

    const SimResult r = run_simulation(workload, trace, config);

    if (sink) {
      sink->flush();
      out << "[trace] " << (trace_to_stdout ? "<stdout>" : *o.trace_out)
          << " (" << sink->events_written() << " events)\n";
    }
    if (o.stats_out) {
      std::ofstream stats(*o.stats_out, std::ios::trunc);
      if (!stats) {
        std::cerr << "error: cannot open stats output file: " << *o.stats_out
                  << '\n';
        return 1;
      }
      stats << "{\"config\":{"
            << "\"machine\":\"" << to_string(config.dims) << "\""
            << ",\"topology\":\"" << to_string(config.topology) << "\""
            << ",\"scheduler\":\"" << to_string(config.scheduler) << "\""
            << ",\"algorithm\":\"" << to_string(config.sched.algorithm) << "\""
            << ",\"predictor\":\"" << to_string(config.predictor_model) << "\""
            << ",\"alpha\":" << format_double(config.alpha, 10)
            << ",\"backfill\":\"" << to_string(config.sched.backfill) << "\""
            << ",\"migration\":" << (config.sched.migration ? "true" : "false")
            << ",\"seed\":" << config.seed
            << ",\"snapshot_interval\":"
            << format_double(config.snapshot_interval, 10)
            << ",\"metrics_interval\":"
            << format_double(config.metrics_interval, 10) << "}";
      stats << ",\"observability\":";
      counters.write_json(stats);
      stats << ",\"histograms\":";
      histograms.write_json(stats);
      if (o.profile) {
        stats << ",\"phases\":";
        profiler.write_json(stats);
      }
      stats << ",\"result\":";
      write_result_json(stats, r);
      stats << "}\n";
      out << "[stats] " << *o.stats_out << "\n";
    }

    Table table({"metric", "value"});
    table.add_row().add("scheduler").add(std::string(to_string(config.scheduler)));
    table.add_row().add("algorithm").add(std::string(to_string(config.sched.algorithm)));
    table.add_row().add("alpha").add(o.alpha, 2);
    table.add_row().add("jobs completed").add(static_cast<long long>(r.jobs_completed));
    table.add_row().add("makespan").add(format_duration(r.span));
    table.add_row().add("avg wait").add(format_duration(r.avg_wait));
    table.add_row().add("avg response").add(format_duration(r.avg_response));
    table.add_row().add("avg bounded slowdown").add(r.avg_bounded_slowdown, 2);
    table.add_row().add("utilization").add(r.utilization, 3);
    table.add_row().add("unused capacity").add(r.unused, 3);
    table.add_row().add("lost capacity").add(r.lost, 3);
    table.add_row().add("failures during run").add(static_cast<long long>(r.failures_total));
    table.add_row().add("job kills").add(static_cast<long long>(r.job_kills));
    table.add_row().add("migrations").add(static_cast<long long>(r.migrations));
    table.add_row().add("work destroyed (node-h)")
        .add(r.work_lost_node_seconds / 3600.0, 1);
    if (config.ckpt.enabled) {
      table.add_row().add("checkpoints taken")
          .add(static_cast<long long>(r.checkpoints_taken));
    }
    out << table.render();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
