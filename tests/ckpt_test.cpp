#include "ckpt/checkpoint.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bgl {
namespace {

CheckpointConfig enabled(double interval = 100.0, double overhead = 10.0,
                         double restart = 5.0) {
  CheckpointConfig c;
  c.enabled = true;
  c.interval = interval;
  c.overhead = overhead;
  c.restart_overhead = restart;
  return c;
}

TEST(Checkpoint, DisabledIsIdentity) {
  CheckpointConfig off;
  EXPECT_EQ(checkpoint_count(1000.0, off), 0);
  EXPECT_DOUBLE_EQ(walltime_for_work(1000.0, off), 1000.0);
  EXPECT_DOUBLE_EQ(saved_work_at(500.0, 1000.0, off), 0.0);
}

TEST(Checkpoint, CountSkipsCheckpointAtExactCompletion) {
  const auto c = enabled(100.0);
  EXPECT_EQ(checkpoint_count(250.0, c), 2);   // at 100, 200
  EXPECT_EQ(checkpoint_count(300.0, c), 2);   // at 100, 200; 300 == end skipped
  EXPECT_EQ(checkpoint_count(301.0, c), 3);
  EXPECT_EQ(checkpoint_count(99.0, c), 0);
  EXPECT_EQ(checkpoint_count(100.0, c), 0);   // single checkpoint would land at end
  EXPECT_EQ(checkpoint_count(0.0, c), 0);
}

TEST(Checkpoint, WalltimeAddsOverheadPerCheckpoint) {
  const auto c = enabled(100.0, 10.0);
  EXPECT_DOUBLE_EQ(walltime_for_work(250.0, c), 270.0);
  EXPECT_DOUBLE_EQ(walltime_for_work(300.0, c), 320.0);
  EXPECT_DOUBLE_EQ(walltime_for_work(50.0, c), 50.0);
}

TEST(Checkpoint, WalltimeRejectsNegativeWork) {
  EXPECT_THROW(walltime_for_work(-1.0, enabled()), ContractViolation);
}

TEST(Checkpoint, SavedWorkAtSteps) {
  const auto c = enabled(100.0, 10.0);
  // Work 350 -> checkpoints complete at wall 110, 220, 330.
  EXPECT_DOUBLE_EQ(saved_work_at(0.0, 350.0, c), 0.0);
  EXPECT_DOUBLE_EQ(saved_work_at(109.0, 350.0, c), 0.0);
  EXPECT_DOUBLE_EQ(saved_work_at(110.0, 350.0, c), 100.0);
  EXPECT_DOUBLE_EQ(saved_work_at(219.0, 350.0, c), 100.0);
  EXPECT_DOUBLE_EQ(saved_work_at(220.0, 350.0, c), 200.0);
  EXPECT_DOUBLE_EQ(saved_work_at(330.0, 350.0, c), 300.0);
  EXPECT_DOUBLE_EQ(saved_work_at(10000.0, 350.0, c), 300.0);
}

TEST(Checkpoint, SavedWorkNeverExceedsWork) {
  const auto c = enabled(100.0, 0.0);
  EXPECT_LE(saved_work_at(1e9, 250.0, c), 250.0);
}

TEST(Checkpoint, ZeroIntervalNeverCheckpoints) {
  auto c = enabled(0.0);
  EXPECT_EQ(checkpoint_count(1000.0, c), 0);
  EXPECT_DOUBLE_EQ(saved_work_at(500.0, 1000.0, c), 0.0);
}

}  // namespace
}  // namespace bgl
