#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"
#include "workload/analysis.hpp"

namespace bgl {
namespace {

constexpr const char* kSampleSwf =
    "; Computer: Test Machine\n"
    "; MaxProcs: 128\n"
    "\n"
    "1 0 10 300 16 -1 -1 16 600 -1 1 3 1 -1 1 -1 -1 -1\n"
    "2 60 -1 100 8 -1 -1 8 -1 -1 1 3 1 -1 1 -1 -1 -1\n"
    "3 120 -1 50 -1 -1 -1 32 120 -1 0 3 1 -1 1 -1 -1 -1\n"
    "4 180 -1 -1 4 -1 -1 4 100 -1 1 3 1 -1 1 -1 -1 -1\n";

TEST(Swf, ParsesBasicFields) {
  std::istringstream in(kSampleSwf);
  const Workload w = read_swf(in, "test");
  ASSERT_EQ(w.jobs.size(), 3u);  // job 4 dropped: unknown runtime
  EXPECT_EQ(w.machine_nodes, 128);
  EXPECT_EQ(w.name, "test");

  const Job& j1 = w.jobs[0];
  EXPECT_EQ(j1.id, 1u);
  EXPECT_DOUBLE_EQ(j1.arrival, 0.0);
  EXPECT_DOUBLE_EQ(j1.runtime, 300.0);
  EXPECT_EQ(j1.size, 16);
  EXPECT_DOUBLE_EQ(j1.estimate, 600.0);
}

TEST(Swf, MissingEstimateUsesFallbackFactor) {
  std::istringstream in(kSampleSwf);
  SwfOptions options;
  options.estimate_fallback_factor = 3.0;
  const Workload w = read_swf(in, "test", 0, options);
  const Job& j2 = w.jobs[1];
  EXPECT_EQ(j2.id, 2u);
  EXPECT_DOUBLE_EQ(j2.estimate, 300.0);  // 100 * 3
}

TEST(Swf, EstimateNeverBelowRuntime) {
  // Job 3 requests 120 s but ran 50 s... wait: runtime 50, request 120. Make
  // a case where the request is below the runtime instead.
  std::istringstream in(
      "1 0 -1 500 8 -1 -1 8 100 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const Workload w = read_swf(in, "test", 128);
  ASSERT_EQ(w.jobs.size(), 1u);
  EXPECT_GE(w.jobs[0].estimate, w.jobs[0].runtime);
}

TEST(Swf, UsesAllocatedWhenRequestedMissing) {
  std::istringstream in("1 0 -1 10 24 -1 -1 -1 60 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const Workload w = read_swf(in, "test", 128);
  ASSERT_EQ(w.jobs.size(), 1u);
  EXPECT_EQ(w.jobs[0].size, 24);
}

TEST(Swf, PreferRequestedProcessorsOption) {
  std::istringstream in("1 0 -1 10 24 -1 -1 32 60 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  SwfOptions options;
  options.prefer_requested_processors = true;
  const Workload w = read_swf(in, "test", 128, options);
  EXPECT_EQ(w.jobs[0].size, 32);
}

TEST(Swf, DropFailedStatusOption) {
  std::istringstream in(kSampleSwf);
  SwfOptions options;
  options.drop_failed_status = true;
  const Workload w = read_swf(in, "test", 0, options);
  EXPECT_EQ(w.jobs.size(), 2u);  // job 3 has status 0
}

TEST(Swf, ArrivalsShiftedToZero) {
  std::istringstream in(
      "5 1000 -1 10 1 -1 -1 1 20 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
      "6 1300 -1 10 1 -1 -1 1 20 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const Workload w = read_swf(in, "test", 128);
  EXPECT_DOUBLE_EQ(w.jobs[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(w.jobs[1].arrival, 300.0);
}

TEST(Swf, MalformedLineThrows) {
  std::istringstream in("1 2 3\n");
  EXPECT_THROW(read_swf(in, "bad"), ParseError);
}

TEST(Swf, BadNumberThrows) {
  std::istringstream in("1 0 -1 xx 8 -1 -1 8 60 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  EXPECT_THROW(read_swf(in, "bad"), ParseError);
}

TEST(Swf, MachineSizeAutoDetectedFromJobs) {
  std::istringstream in("1 0 -1 10 96 -1 -1 96 60 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const Workload w = read_swf(in, "test");
  EXPECT_EQ(w.machine_nodes, 96);
}

TEST(Swf, WriteReadRoundTrip) {
  Workload original;
  original.name = "round-trip";
  original.machine_nodes = 128;
  original.jobs = {
      Job{1, 0.0, 120.0, 240.0, 8},
      Job{2, 300.0, 60.0, 60.0, 32},
      Job{3, 301.0, 3600.0, 7200.0, 128},
  };
  std::ostringstream out;
  write_swf(out, original);
  std::istringstream in(out.str());
  const Workload parsed = read_swf(in, "round-trip");
  ASSERT_EQ(parsed.jobs.size(), original.jobs.size());
  EXPECT_EQ(parsed.machine_nodes, 128);
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    EXPECT_EQ(parsed.jobs[i].id, original.jobs[i].id);
    EXPECT_DOUBLE_EQ(parsed.jobs[i].arrival, original.jobs[i].arrival);
    EXPECT_DOUBLE_EQ(parsed.jobs[i].runtime, original.jobs[i].runtime);
    EXPECT_DOUBLE_EQ(parsed.jobs[i].estimate, original.jobs[i].estimate);
    EXPECT_EQ(parsed.jobs[i].size, original.jobs[i].size);
  }
}

TEST(JobHelpers, ScaleLoadMultipliesTimes) {
  Workload w;
  w.machine_nodes = 128;
  w.jobs = {Job{1, 0.0, 100.0, 200.0, 8}};
  const Workload scaled = scale_load(w, 1.2);
  EXPECT_DOUBLE_EQ(scaled.jobs[0].runtime, 120.0);
  EXPECT_DOUBLE_EQ(scaled.jobs[0].estimate, 240.0);
  EXPECT_DOUBLE_EQ(scaled.jobs[0].arrival, 0.0);  // arrivals untouched
}

TEST(JobHelpers, RescaleSizesHalvesLlnlStyleLog) {
  Workload w;
  w.machine_nodes = 256;
  w.jobs = {Job{1, 0.0, 10.0, 10.0, 256}, Job{2, 1.0, 10.0, 10.0, 1},
            Job{3, 2.0, 10.0, 10.0, 100}};
  const Workload scaled = rescale_sizes(w, 128);
  EXPECT_EQ(scaled.jobs[0].size, 128);
  EXPECT_EQ(scaled.jobs[1].size, 1);
  EXPECT_EQ(scaled.jobs[2].size, 50);
  EXPECT_EQ(scaled.machine_nodes, 128);
}

TEST(JobHelpers, NormalizeSortsAndValidates) {
  Workload w;
  w.machine_nodes = 4;
  w.jobs = {Job{2, 10.0, 1.0, 1.0, 1}, Job{1, 5.0, 1.0, 1.0, 1}};
  normalize(w);
  EXPECT_EQ(w.jobs[0].id, 1u);
  w.jobs.push_back(Job{3, 1.0, 1.0, 1.0, 0});
  EXPECT_THROW(normalize(w), ConfigError);
}

TEST(JobHelpers, WorkAndSpan) {
  Workload w;
  w.machine_nodes = 128;
  w.jobs = {Job{1, 0.0, 100.0, 100.0, 4}, Job{2, 50.0, 10.0, 10.0, 2}};
  EXPECT_DOUBLE_EQ(w.total_work(), 420.0);
  EXPECT_DOUBLE_EQ(w.arrival_span(), 50.0);
}

TEST(Analysis, SummaryFields) {
  Workload w;
  w.name = "summary";
  w.machine_nodes = 128;
  w.jobs = {Job{1, 0.0, 100.0, 200.0, 4}, Job{2, 100.0, 300.0, 300.0, 7}};
  const WorkloadSummary s = summarize(w);
  EXPECT_EQ(s.jobs, 2u);
  EXPECT_DOUBLE_EQ(s.span_seconds, 100.0);
  EXPECT_DOUBLE_EQ(s.pow2_size_fraction, 0.5);
  EXPECT_DOUBLE_EQ(s.size.mean(), 5.5);
  const std::string text = describe(w);
  EXPECT_NE(text.find("summary"), std::string::npos);
}

}  // namespace
}  // namespace bgl
