#include "torus/coords.hpp"

#include <gtest/gtest.h>

namespace bgl {
namespace {

TEST(Coords, NodeIdRoundTrip) {
  const Dims dims = Dims::bluegene_l();
  for (int z = 0; z < dims.z; ++z) {
    for (int y = 0; y < dims.y; ++y) {
      for (int x = 0; x < dims.x; ++x) {
        const Coord c{x, y, z};
        const NodeId id = node_id(dims, c);
        EXPECT_EQ(coord_of(dims, id), c);
      }
    }
  }
}

TEST(Coords, NodeIdsAreDenseAndUnique) {
  const Dims dims{3, 5, 2};
  std::vector<bool> seen(static_cast<std::size_t>(dims.volume()), false);
  for (int z = 0; z < dims.z; ++z) {
    for (int y = 0; y < dims.y; ++y) {
      for (int x = 0; x < dims.x; ++x) {
        const NodeId id = node_id(dims, Coord{x, y, z});
        ASSERT_GE(id, 0);
        ASSERT_LT(id, dims.volume());
        EXPECT_FALSE(seen[static_cast<std::size_t>(id)]);
        seen[static_cast<std::size_t>(id)] = true;
      }
    }
  }
}

TEST(Coords, BlueGeneLDims) {
  const Dims dims = Dims::bluegene_l();
  EXPECT_EQ(dims.x, 4);
  EXPECT_EQ(dims.y, 4);
  EXPECT_EQ(dims.z, 8);
  EXPECT_EQ(dims.volume(), 128);
}

TEST(Coords, CubeDims) {
  EXPECT_EQ(Dims::cube(6).volume(), 216);
}

TEST(Coords, WrapHandlesOverflow) {
  const Dims dims{4, 4, 8};
  EXPECT_EQ(wrap(dims, 4, 5, 9), (Coord{0, 1, 1}));
  EXPECT_EQ(wrap(dims, 3, 3, 7), (Coord{3, 3, 7}));
  EXPECT_EQ(wrap(dims, 7, 0, 15), (Coord{3, 0, 7}));
}

TEST(Coords, ToString) {
  EXPECT_EQ(to_string(Coord{1, 2, 3}), "(1, 2, 3)");
  EXPECT_EQ(to_string(Dims{4, 4, 8}), "4x4x8");
}

TEST(Coords, ValidateRejectsBadDims) {
  EXPECT_THROW(validate(Dims{0, 4, 4}), ConfigError);
  EXPECT_THROW(validate(Dims{4, -1, 4}), ConfigError);
  EXPECT_NO_THROW(validate(Dims{1, 1, 1}));
}

}  // namespace
}  // namespace bgl
