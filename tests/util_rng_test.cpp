#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bgl {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntWithinBoundsAndCoversRange) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 9);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.weibull(1.0, 3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ZipfFavorsLowRanks) {
  Rng rng(41);
  int low = 0;
  int high = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::size_t k = rng.zipf(8, 1.0);
    EXPECT_LT(k, 8u);
    if (k == 0) ++low;
    if (k == 7) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, HashCombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

TEST(Rng, SplitMixAdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace bgl
