// Unit tests of the counter/timer registry (src/obs/counters.hpp).
#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <thread>
#include <type_traits>

namespace bgl::obs {
namespace {

// The hot-path contract: a registry owns no heap memory (fixed array) and
// can live on the stack of a bench loop without allocation.
static_assert(std::is_trivially_destructible_v<CounterRegistry>);
static_assert(std::is_trivially_copyable_v<CounterRegistry>);

TEST(Counters, StartAtZeroAndAccumulate) {
  CounterRegistry r;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    EXPECT_EQ(r.value(static_cast<Counter>(i)), 0u);
  }
  r.add(Counter::kSchedStarts);
  r.add(Counter::kSchedStarts, 4);
  EXPECT_EQ(r.value(Counter::kSchedStarts), 5u);
  EXPECT_EQ(r.value(Counter::kSchedInvocations), 0u);
}

TEST(Counters, ResetClearsEverything) {
  CounterRegistry r;
  r.add(Counter::kDriverEvents, 100);
  r.add(Counter::kMfpEvaluations, 7);
  r.reset();
  EXPECT_EQ(r.value(Counter::kDriverEvents), 0u);
  EXPECT_EQ(r.value(Counter::kMfpEvaluations), 0u);
}

TEST(Counters, MergeAddsSlotwise) {
  CounterRegistry a, b;
  a.add(Counter::kSchedStarts, 3);
  a.add(Counter::kDriverKills, 1);
  b.add(Counter::kSchedStarts, 2);
  b.add(Counter::kPredictorQueries, 9);
  a.merge(b);
  EXPECT_EQ(a.value(Counter::kSchedStarts), 5u);
  EXPECT_EQ(a.value(Counter::kDriverKills), 1u);
  EXPECT_EQ(a.value(Counter::kPredictorQueries), 9u);
  EXPECT_EQ(b.value(Counter::kSchedStarts), 2u);  // merge source untouched
}

TEST(Counters, NamesAreUniqueAndStable) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const auto name = counter_name(static_cast<Counter>(i));
    EXPECT_NE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
  }
  // Spot-check the names docs and dashboards key on.
  EXPECT_EQ(counter_name(Counter::kSchedDecisionNanos), "sched.decision_ns");
  EXPECT_EQ(counter_name(Counter::kPartitionsScanned), "sched.partitions_scanned");
}

TEST(Counters, JsonDumpContainsAllCountersAndDerived) {
  CounterRegistry r;
  r.add(Counter::kSchedInvocations, 2);
  r.add(Counter::kSchedDecisionNanos, 10000);  // 5 us average
  r.add(Counter::kCandidatesConsidered, 6);
  std::ostringstream out;
  r.write_json(out);
  const std::string json = out.str();
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    EXPECT_NE(json.find(std::string(counter_name(static_cast<Counter>(i)))),
              std::string::npos);
  }
  EXPECT_NE(json.find("\"sched.invocations\":2"), std::string::npos);
  EXPECT_NE(json.find("\"avg_decision_us\":5"), std::string::npos);
  EXPECT_NE(json.find("\"avg_candidates_per_decision\":3"), std::string::npos);
}

TEST(Counters, DerivedRatiosOmittedWhenDenominatorZero) {
  CounterRegistry r;  // everything zero
  std::ostringstream out;
  r.write_json(out);
  EXPECT_EQ(out.str().find("avg_decision_us"), std::string::npos);
  EXPECT_NE(out.str().find("\"derived\":{}"), std::string::npos);
}

TEST(Counters, ScopedTimerAccumulatesElapsedTime) {
  CounterRegistry r;
  {
    ScopedTimer timer(&r, Counter::kSchedDecisionNanos);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(r.value(Counter::kSchedDecisionNanos), 1'000'000u);  // >= 1 ms
  const auto first = r.value(Counter::kSchedDecisionNanos);
  { ScopedTimer timer(&r, Counter::kSchedDecisionNanos); }
  EXPECT_GE(r.value(Counter::kSchedDecisionNanos), first);  // accumulates
}

TEST(Counters, ScopedTimerOnNullRegistryIsANoop) {
  ScopedTimer timer(nullptr, Counter::kSchedDecisionNanos);
  // Destructor must not crash; nothing to observe.
}

TEST(Counters, JsonDumpIsASingleBalancedLine) {
  CounterRegistry r;
  r.add(Counter::kSchedInvocations, 3);
  std::ostringstream out;
  r.write_json(out);
  const std::string json = out.str();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(json.find(",}"), std::string::npos);  // no trailing commas
  EXPECT_EQ(json.find(",,"), std::string::npos);
}

TEST(Counters, MergeWithSelfDoublesEverySlot) {
  CounterRegistry r;
  r.add(Counter::kSchedStarts, 3);
  r.add(Counter::kDriverEvents, 11);
  r.merge(r);
  EXPECT_EQ(r.value(Counter::kSchedStarts), 6u);
  EXPECT_EQ(r.value(Counter::kDriverEvents), 22u);
}

TEST(Counters, LargeValuesSurviveTheDump) {
  CounterRegistry r;
  const std::uint64_t big = 18446744073709551615ull;  // uint64 max
  r.add(Counter::kPartitionsScanned, big);
  std::ostringstream out;
  r.write_json(out);
  EXPECT_NE(out.str().find("18446744073709551615"), std::string::npos);
}

}  // namespace
}  // namespace bgl::obs
