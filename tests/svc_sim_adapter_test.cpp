// Differential tests of the service-backed simulation path
// (src/svc/sim_adapter.hpp): run_simulation_via_service must take literally
// the same decisions as sim/driver's run_simulation — compared bitwise via
// sim_result_checksum — for every scheduler × algorithm pairing and for the
// clock-side feature variants (downtime semantics, queue orders, event
// queues, checkpointing).
#include "svc/sim_adapter.hpp"

#include <gtest/gtest.h>

#include <string>

#include "failure/generator.hpp"
#include "sim/driver.hpp"
#include "sim/metrics.hpp"
#include "workload/synthetic.hpp"
#include "workload/transform.hpp"

namespace bgl {
namespace {

struct Inputs {
  Workload workload;
  FailureTrace trace;
};

const Inputs& small_inputs() {
  static const Inputs in = [] {
    SyntheticModel model = SyntheticModel::sdsc();
    model.num_jobs = 350;
    Inputs i;
    i.workload = generate_workload(model, 91);
    i.workload = rescale_sizes(i.workload, Dims::bluegene_l().volume());
    const double span = i.workload.arrival_span() * 1.05 + 2.0 * 48.0 * 3600.0;
    i.trace = generate_failures(FailureModel::bluegene_l(80, span), 91 ^ 0xfa17);
    return i;
  }();
  return in;
}

void expect_parity(SimConfig config, const std::string& label) {
  const Inputs& in = small_inputs();
  const SimResult via_driver = run_simulation(in.workload, in.trace, config);
  const SimResult via_service =
      svc::run_simulation_via_service(in.workload, in.trace, config);
  EXPECT_EQ(sim_result_checksum(via_driver), sim_result_checksum(via_service))
      << label << ": driver {jobs " << via_driver.jobs_completed << ", util "
      << via_driver.utilization << ", kills " << via_driver.job_kills
      << "} vs service {jobs " << via_service.jobs_completed << ", util "
      << via_service.utilization << ", kills " << via_service.job_kills << "}";
  EXPECT_GT(via_driver.jobs_completed, 0u) << label;
}

TEST(SvcSimAdapter, ParityAcrossSchedulersAndAlgorithms) {
  const SchedulerKind schedulers[] = {SchedulerKind::kKrevat,
                                      SchedulerKind::kBalancing,
                                      SchedulerKind::kTieBreak};
  const SchedAlgorithm algorithms[] = {
      SchedAlgorithm::kKrevat, SchedAlgorithm::kEasy,
      SchedAlgorithm::kConservative, SchedAlgorithm::kEasyHoldback};
  for (const SchedulerKind s : schedulers) {
    for (const SchedAlgorithm a : algorithms) {
      SimConfig config;
      config.scheduler = s;
      config.sched.algorithm = a;
      config.alpha = 0.3;
      config.seed = 17;
      expect_parity(config, std::string(to_string(s)) + "/" + to_string(a));
    }
  }
}

// The adaptive predictor is the one model whose entire state is built from
// the observation feed, so this is the differential that proves both clock
// owners deliver the identical observation sequence: any ordering or
// filtering divergence between sim/driver and svc/SchedulerService changes
// its flags and therefore the decisions.
TEST(SvcSimAdapter, ParityWithAdaptivePredictor) {
  const SchedulerKind schedulers[] = {SchedulerKind::kKrevat,
                                      SchedulerKind::kBalancing,
                                      SchedulerKind::kTieBreak};
  const SchedAlgorithm algorithms[] = {
      SchedAlgorithm::kKrevat, SchedAlgorithm::kEasy,
      SchedAlgorithm::kConservative, SchedAlgorithm::kEasyHoldback};
  for (const SchedulerKind s : schedulers) {
    for (const SchedAlgorithm a : algorithms) {
      SimConfig config;
      config.scheduler = s;
      config.sched.algorithm = a;
      config.predictor_model = PredictorModel::kAdaptive;
      config.alpha = 0.3;
      config.seed = 17;
      expect_parity(config,
                    std::string("adaptive/") + to_string(s) + "/" + to_string(a));
    }
  }
}

TEST(SvcSimAdapter, ParityWithAdaptivePredictorUnderDowntime) {
  // The service never learns the configured downtime (its observe_failure
  // gets down_for = 0) while the driver passes it; parity holds because the
  // adaptive model deliberately ignores the advisory field.
  SimConfig config;
  config.scheduler = SchedulerKind::kBalancing;
  config.predictor_model = PredictorModel::kAdaptive;
  config.alpha = 0.4;
  config.failure_semantics = FailureSemantics::kDownFor;
  config.node_downtime = 4.0 * 3600.0;
  expect_parity(config, "adaptive/downfor");
}

TEST(SvcSimAdapter, ParityWithDowntimeSemantics) {
  SimConfig config;
  config.scheduler = SchedulerKind::kBalancing;
  config.alpha = 0.1;
  config.failure_semantics = FailureSemantics::kDownFor;
  config.node_downtime = 4.0 * 3600.0;
  expect_parity(config, "downfor");
}

TEST(SvcSimAdapter, ParityWithCheckpointing) {
  SimConfig config;
  config.scheduler = SchedulerKind::kKrevat;
  config.ckpt.enabled = true;
  config.ckpt.interval = 3600.0;
  expect_parity(config, "checkpointing");
}

TEST(SvcSimAdapter, ParityAcrossQueueOrders) {
  for (const QueueOrder order : {QueueOrder::kShortestJobFirst,
                                 QueueOrder::kSmallestJobFirst}) {
    SimConfig config;
    config.scheduler = SchedulerKind::kKrevat;
    config.queue_order = order;
    expect_parity(config, std::string("queue-order ") + to_string(order));
  }
}

TEST(SvcSimAdapter, ParityWithHeapEventQueueAndNoIndex) {
  SimConfig config;
  config.scheduler = SchedulerKind::kTieBreak;
  config.alpha = 0.5;
  config.event_queue = EventQueueKind::kHeap;
  config.use_partition_index = false;
  expect_parity(config, "heap+no-index");
}

TEST(SvcSimAdapter, ParityWithNoMigrationAndNoBackfill) {
  SimConfig config;
  config.scheduler = SchedulerKind::kBalancing;
  config.alpha = 0.1;
  config.sched.migration = false;
  config.sched.backfill = BackfillMode::kNone;
  expect_parity(config, "no-migration/no-backfill");
}

TEST(SvcSimAdapter, OutcomesAndReplayMatch) {
  const Inputs& in = small_inputs();
  SimConfig config;
  config.scheduler = SchedulerKind::kKrevat;
  config.collect_outcomes = true;
  config.record_replay = true;
  const SimResult a = run_simulation(in.workload, in.trace, config);
  const SimResult b = svc::run_simulation_via_service(in.workload, in.trace, config);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].id, b.outcomes[i].id);
    EXPECT_EQ(a.outcomes[i].finish, b.outcomes[i].finish);
    EXPECT_EQ(a.outcomes[i].last_start, b.outcomes[i].last_start);
    EXPECT_EQ(a.outcomes[i].restarts, b.outcomes[i].restarts);
  }
  ASSERT_EQ(a.replay.size(), b.replay.size());
  for (std::size_t i = 0; i < a.replay.size(); ++i) {
    EXPECT_EQ(a.replay[i].time, b.replay[i].time) << i;
    EXPECT_EQ(a.replay[i].type, b.replay[i].type) << i;
    EXPECT_EQ(a.replay[i].job_id, b.replay[i].job_id) << i;
    EXPECT_EQ(a.replay[i].entry_index, b.replay[i].entry_index) << i;
  }
}

}  // namespace
}  // namespace bgl
