#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace bgl {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, ParseLevelNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level(" warn "), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("Error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
  // Unknown falls back to the default threshold.
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::kWarn);
}

TEST_F(LoggingTest, SetAndGetLevel) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, MacroRespectsThreshold) {
  // The macro must not evaluate its stream expression below the threshold.
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto observe = [&]() {
    ++evaluations;
    return "x";
  };
  BGL_DEBUG(observe());
  BGL_INFO(observe());
  BGL_WARN(observe());
  EXPECT_EQ(evaluations, 0);

  set_log_level(LogLevel::kOff);
  BGL_ERROR(observe());
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, MacroEvaluatesAtOrAboveThreshold) {
  set_log_level(LogLevel::kDebug);
  int evaluations = 0;
  auto observe = [&]() {
    ++evaluations;
    return "payload";
  };
  ::testing::internal::CaptureStderr();
  BGL_DEBUG(observe());
  BGL_ERROR(observe());
  const std::string text = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 2);
  EXPECT_NE(text.find("DEBUG"), std::string::npos);
  EXPECT_NE(text.find("ERROR"), std::string::npos);
  EXPECT_NE(text.find("payload"), std::string::npos);
}

TEST_F(LoggingTest, InitFromEnvIsIdempotent) {
  // Whatever BGL_LOG is, calling twice must not crash or change semantics.
  init_logging_from_env();
  const LogLevel first = log_level();
  init_logging_from_env();
  EXPECT_EQ(log_level(), first);
}

}  // namespace
}  // namespace bgl
