// Tests of the online SchedulerService (src/svc/service.hpp) and the
// session loop (src/svc/server.hpp): typed rejections that leave the state
// untouched, recovery from malformed protocol lines, fuzzed corrupted
// streams, and a strict trace_audit pass over a service-emitted trace.
#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "obs/audit.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "util/rng.hpp"

namespace bgl::svc {
namespace {

Event submit(double t, std::uint64_t job, int size, double estimate,
             double runtime = -1.0) {
  Event e;
  e.kind = EventKind::kSubmit;
  e.time = t;
  e.job = job;
  e.size = size;
  e.estimate = estimate;
  e.runtime = runtime;
  return e;
}

Event complete(double t, std::uint64_t job) {
  Event e;
  e.kind = EventKind::kComplete;
  e.time = t;
  e.job = job;
  return e;
}

Event fail(double t, int node, bool down = false) {
  Event e;
  e.kind = EventKind::kFail;
  e.time = t;
  e.node = node;
  e.down = down;
  return e;
}

Event repair(double t, int node) {
  Event e;
  e.kind = EventKind::kRepair;
  e.time = t;
  e.node = node;
  return e;
}

RejectCode refusal(SchedulerService& service, const Event& e) {
  std::vector<Decision> out;
  try {
    service.handle(e, out);
  } catch (const ProtocolError& err) {
    EXPECT_TRUE(out.empty());
    return err.code();
  }
  ADD_FAILURE() << "event was accepted";
  return RejectCode::kParse;
}

TEST(SvcService, SubmitStartsAndCompleteFrees) {
  SchedulerService service((ServiceConfig()));
  std::vector<Decision> out;
  service.handle(submit(0.0, 7, 32, 1000.0), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, DecisionKind::kStart);
  EXPECT_EQ(out[0].job, 7u);
  EXPECT_GE(out[0].entry, 0);
  EXPECT_EQ(service.running_jobs(), 1u);

  out.clear();
  service.handle(complete(500.0, 7), out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(service.running_jobs(), 0u);
  EXPECT_EQ(service.stats().finished, 1u);
  EXPECT_DOUBLE_EQ(service.now(), 500.0);
}

TEST(SvcService, TypedRejectionsLeaveStateUntouched) {
  SchedulerService service((ServiceConfig()));
  std::vector<Decision> out;
  service.handle(submit(10.0, 1, 16, 100.0), out);
  const std::size_t running = service.running_jobs();

  // Duplicate id, bad sizes, bad estimate.
  EXPECT_EQ(refusal(service, submit(11.0, 1, 8, 50.0)),
            RejectCode::kDuplicateJob);
  EXPECT_EQ(refusal(service, submit(11.0, 2, 0, 50.0)), RejectCode::kBadValue);
  EXPECT_EQ(refusal(service, submit(11.0, 2, 129, 50.0)),
            RejectCode::kBadValue);
  EXPECT_EQ(refusal(service, submit(11.0, 2, 16, -1.0)), RejectCode::kBadValue);

  // Unknown / not-running completes.
  EXPECT_EQ(refusal(service, complete(12.0, 99)), RejectCode::kUnknownJob);

  // Nodes outside the 4x4x8 machine; repair of a healthy node.
  EXPECT_EQ(refusal(service, fail(12.0, -1)), RejectCode::kBadNode);
  EXPECT_EQ(refusal(service, fail(12.0, 128)), RejectCode::kBadNode);
  EXPECT_EQ(refusal(service, repair(12.0, 5)), RejectCode::kNodeState);

  // Time running backwards (now_ ratcheted to 12.0 by the rejected events?
  // No: rejections leave now_ at the last accepted event's time).
  EXPECT_EQ(refusal(service, submit(9.0, 3, 16, 100.0)),
            RejectCode::kTimeOrder);

  // The machine state survived every refusal: the job is still running and
  // a valid event still works.
  EXPECT_EQ(service.running_jobs(), running);
  out.clear();
  service.handle(complete(20.0, 1), out);
  EXPECT_EQ(service.stats().finished, 1u);
}

TEST(SvcService, EqualTimestampsAreAccepted) {
  SchedulerService service((ServiceConfig()));
  std::vector<Decision> out;
  service.handle(submit(5.0, 1, 8, 100.0), out);
  service.handle(submit(5.0, 2, 8, 100.0), out);  // same t: fine
  EXPECT_EQ(service.stats().submitted, 2u);
}

TEST(SvcService, DownFailureKillsVictimAndRepairRestores) {
  ServiceConfig config;
  SchedulerService service(config);
  std::vector<Decision> out;
  // One job spanning the whole machine: any failed node is a victim.
  service.handle(submit(0.0, 1, 128, 10000.0), out);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].kind, DecisionKind::kStart);

  out.clear();
  service.handle(fail(100.0, 17, /*down=*/true), out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].kind, DecisionKind::kKill);
  EXPECT_EQ(out[0].job, 1u);
  EXPECT_EQ(out[0].node, 17);
  // Node 17 is down, so the 128-node job cannot restart yet.
  const bool restarted =
      std::any_of(out.begin(), out.end(), [](const Decision& d) {
        return d.kind == DecisionKind::kStart;
      });
  EXPECT_FALSE(restarted);
  EXPECT_EQ(service.waiting_jobs(), 1u);
  EXPECT_EQ(service.usable_free_nodes(), 127);

  out.clear();
  service.handle(repair(200.0, 17), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, DecisionKind::kStart);
  EXPECT_EQ(out[0].job, 1u);
  EXPECT_EQ(service.usable_free_nodes(), 0);
  EXPECT_EQ(service.stats().kills, 1u);
}

TEST(SvcService, SessionRecoversFromMalformedLines) {
  SchedulerService service((ServiceConfig()));
  std::istringstream in(
      "{\"type\":\"submit\",\"t\":0,\"job\":1,\"size\":8,\"estimate\":100}\n"
      "this is not json\n"
      "{\"type\":\"submit\",\"t\":1,\"job\":1,\"size\":8,\"estimate\":100}\n"
      "{\"nope\":1}\n"
      "{\"type\":\"warp\",\"t\":2}\n"
      "\n"
      "{\"type\":\"complete\",\"t\":50,\"job\":1}\n");
  std::ostringstream out;
  SessionOptions options;
  options.flush_each = false;
  const SessionStats stats = run_session(in, out, service, options);

  EXPECT_EQ(stats.lines, 6u);  // blank line skipped
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected, 4u);
  EXPECT_EQ(service.stats().finished, 1u);

  // Reply stream: every line answered, errors carry line numbers + codes.
  const std::string text = out.str();
  EXPECT_NE(text.find("\"code\":\"parse\""), std::string::npos);
  EXPECT_NE(text.find("\"code\":\"duplicate-job\""), std::string::npos);
  EXPECT_NE(text.find("\"code\":\"unknown-type\""), std::string::npos);
  EXPECT_NE(text.find("\"line\":2"), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"stats\""), std::string::npos);
}

TEST(SvcService, InBandStatsRequestAnswersWithoutApplyingAnEvent) {
  obs::PhaseProfiler profiler;
  obs::HistogramRegistry histograms;
  ServiceConfig config;
  config.obs.profiler = &profiler;
  config.obs.histograms = &histograms;
  SchedulerService service(config);

  // The stats line needs a "t" only because the trace framing demands one on
  // every record; its value is ignored.
  std::istringstream in(
      "{\"type\":\"submit\",\"t\":0,\"job\":1,\"size\":8,\"estimate\":100}\n"
      "{\"type\":\"stats\",\"t\":0}\n"
      "{\"type\":\"complete\",\"t\":50,\"job\":1}\n");
  std::ostringstream out;
  SessionOptions options;
  options.flush_each = false;
  options.profiler = &profiler;
  options.histograms = &histograms;
  const SessionStats stats = run_session(in, out, service, options);

  // The request is neither accepted nor rejected: no event was applied, no
  // time advanced, no decision made.
  EXPECT_EQ(stats.lines, 3u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.stats_requests, 1u);
  EXPECT_EQ(service.stats().finished, 1u);

  // Two stats replies: the in-band answer plus the end-of-stream line.
  const std::string text = out.str();
  std::size_t replies = 0;
  for (std::size_t pos = 0;
       (pos = text.find("\"type\":\"stats\"", pos)) != std::string::npos;
       pos += 14) {
    ++replies;
  }
  EXPECT_EQ(replies, 2u);

  // The in-band reply (first stats line) reflects mid-session state: one
  // line consumed so far, one job running, canonical decision-latency keys
  // and the flat profiler fields.
  const std::string first =
      text.substr(text.find("\"type\":\"stats\""),
                  text.find('\n', text.find("\"type\":\"stats\"")) -
                      text.find("\"type\":\"stats\""));
  EXPECT_NE(first.find("\"lines\":2"), std::string::npos);
  EXPECT_NE(first.find("\"running\":1"), std::string::npos);
  EXPECT_NE(first.find("\"sched.decision_us_count\":"), std::string::npos);
  EXPECT_NE(first.find("\"sched.decision_us_max\":"), std::string::npos);
  EXPECT_NE(first.find("\"ph_count:svc.event\":"), std::string::npos);
}

/// Fuzz: corrupt a valid session stream in seeded random ways; the session
/// loop must answer every line (ok or error) and never crash or stop early.
TEST(SvcService, FuzzedCorruptionNeverCrashesTheSession) {
  // A valid base session.
  std::vector<std::string> base;
  {
    std::string line;
    for (int j = 0; j < 10; ++j) {
      line.clear();
      append_event_line(line, submit(j * 10.0, j, 8 + 8 * (j % 3), 500.0));
      base.push_back(line.substr(0, line.size() - 1));
    }
    for (int j = 0; j < 10; ++j) {
      line.clear();
      append_event_line(line, complete(1000.0 + j * 10.0, j));
      base.push_back(line.substr(0, line.size() - 1));
    }
  }

  Rng rng(0xfadedcafe);
  for (int round = 0; round < 50; ++round) {
    std::string stream;
    for (const std::string& line : base) {
      std::string mutated = line;
      switch (rng.next_u64() % 6) {
        case 0:  // truncate
          mutated = mutated.substr(0, rng.next_u64() % (mutated.size() + 1));
          break;
        case 1: {  // flip one byte
          const std::size_t i = rng.next_u64() % mutated.size();
          mutated[i] = static_cast<char>(rng.next_u64() % 256);
          break;
        }
        case 2:  // duplicate the line (duplicate-job / not-running errors)
          mutated += "\n" + mutated;
          break;
        case 3:  // prepend garbage
          mutated = "\x01\xff{]" + mutated;
          break;
        default:  // leave valid
          break;
      }
      stream += mutated;
      stream += '\n';
    }
    SchedulerService service((ServiceConfig()));
    std::istringstream in(stream);
    std::ostringstream out;
    SessionOptions options;
    options.flush_each = false;
    options.stats_line = false;
    const SessionStats stats = run_session(in, out, service, options);
    EXPECT_EQ(stats.accepted + stats.rejected, stats.lines);
    // Every consumed line produced a framing reply.
    const std::string text = out.str();
    std::size_t frames = 0;
    for (std::size_t pos = 0; (pos = text.find("\"type\":\"", pos)) !=
                              std::string::npos;
         pos += 8) {
      const std::string_view rest(text.data() + pos + 8, 8);
      if (rest.substr(0, 2) == "ok" || rest.substr(0, 5) == "error") ++frames;
    }
    EXPECT_EQ(frames, stats.lines) << "round " << round;
  }
}

TEST(SvcService, EmittedTracePassesStrictAudit) {
  std::ostringstream trace_out;
  obs::TraceSink sink(trace_out);
  ServiceConfig config;
  config.obs.trace = &sink;
  SchedulerService service(config);

  // Three size-32 jobs on the 128-node machine: all start on submit. A
  // transient failure through job 2's partition forces a kill + restart.
  std::vector<Decision> out;
  service.handle(submit(0.0, 0, 32, 2000.0, 1000.0), out);
  service.handle(submit(1.0, 1, 32, 2000.0, 1500.0), out);
  service.handle(submit(2.0, 2, 128 - 64, 2000.0, 1800.0), out);
  out.clear();
  service.handle(fail(500.0, 100), out);  // hits *some* partition or none
  // Retire everything that is still running; restart decisions re-arm jobs.
  // Completes are issued from the service's own view to stay valid.
  double t = 2500.0;
  for (std::uint64_t j = 0; j < 3; ++j) {
    std::vector<Decision> d;
    try {
      service.handle(complete(t, j), d);
    } catch (const ProtocolError&) {
      // Job was killed and is waiting: restart then complete.
      service.handle(submit(t + 1.0, 100 + j, 1, 1.0), d);  // nudge a pass
      std::vector<Decision> d2;
      service.handle(complete(t + 2.0, 100 + j), d2);
      service.handle(complete(t + 3.0, j), d2);
    }
    t += 10.0;
  }
  EXPECT_TRUE(service.finish_stream());
  sink.flush();

  std::istringstream trace_in(trace_out.str());
  obs::AuditOptions audit;
  audit.strict = true;
  const obs::AuditReport report = obs::audit_trace(trace_in, audit);
  EXPECT_TRUE(report.ok()) << [&] {
    std::ostringstream s;
    report.write_json(s);
    return s.str();
  }();
  EXPECT_EQ(report.jobs, report.jobs);  // parsed
}

TEST(SvcService, OracleModelsWithoutATraceRaiseTypedError) {
  for (const PredictorModel model :
       {PredictorModel::kPerfect, PredictorModel::kHistory}) {
    ServiceConfig config;
    config.scheduler = SchedulerKind::kBalancing;
    config.alpha = 0.5;
    config.predictor_model = model;
    try {
      SchedulerService service(config);
      FAIL() << to_string(model) << " built without an oracle";
    } catch (const OracleRequiredError& e) {
      EXPECT_EQ(e.model(), model);  // names the flag the frontend must report
    }
  }
  // kPaper needs the oracle only when a fault-aware scheduler consults it.
  ServiceConfig paper;
  paper.scheduler = SchedulerKind::kTieBreak;
  paper.alpha = 0.5;
  paper.predictor_model = PredictorModel::kPaper;
  EXPECT_THROW(SchedulerService{paper}, OracleRequiredError);
  paper.scheduler = SchedulerKind::kKrevat;
  EXPECT_NO_THROW(SchedulerService{paper});
}

TEST(SvcService, AdaptivePredictorNeedsNoOracleAndLearnsFromEvents) {
  ServiceConfig config;
  config.scheduler = SchedulerKind::kBalancing;
  config.alpha = 0.5;
  config.predictor_model = PredictorModel::kAdaptive;
  SchedulerService service(config);  // no oracle: must construct

  // Feed a failure on an idle machine, then submit: the learned flag should
  // be visible to the scheduling pass (counted by the service's stats).
  std::vector<Decision> out;
  service.handle(fail(10.0, 3), out);
  EXPECT_TRUE(out.empty());
  service.handle(submit(20.0, 1, 1, 3600.0), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(service.stats().failures, 1u);
}

}  // namespace
}  // namespace bgl::svc
