#include "predict/predictor.hpp"

#include <gtest/gtest.h>

#include "failure/generator.hpp"
#include "util/error.hpp"

namespace bgl {
namespace {

FailureTrace simple_trace() {
  return FailureTrace({{100.0, 3}, {200.0, 5}, {250.0, 5}, {300.0, 7}}, 16);
}

TEST(NullPredictor, NeverFlags) {
  NullPredictor p(16);
  EXPECT_TRUE(p.flagged_nodes(0.0, 1e9, 1).empty());
  EXPECT_DOUBLE_EQ(p.confidence(), 0.0);
}

TEST(BalancingPredictor, FlagsExactlyTrueFailures) {
  const FailureTrace trace = simple_trace();
  BalancingPredictor p(trace, 0.4);
  const NodeSet flagged = p.flagged_nodes(50.0, 250.0, 1);
  EXPECT_TRUE(flagged.test(3));
  EXPECT_TRUE(flagged.test(5));
  EXPECT_FALSE(flagged.test(7));
  EXPECT_DOUBLE_EQ(p.confidence(), 0.4);
}

TEST(BalancingPredictor, ZeroConfidenceFlagsNothing) {
  const FailureTrace trace = simple_trace();
  BalancingPredictor p(trace, 0.0);
  EXPECT_TRUE(p.flagged_nodes(0.0, 1000.0, 1).empty());
}

TEST(BalancingPredictor, ConfidenceValidated) {
  const FailureTrace trace = simple_trace();
  EXPECT_THROW(BalancingPredictor(trace, -0.1), ContractViolation);
  EXPECT_THROW(BalancingPredictor(trace, 1.1), ContractViolation);
}

TEST(TieBreakPredictor, PerfectAccuracyFlagsAllTrueFailures) {
  const FailureTrace trace = simple_trace();
  TieBreakPredictor p(trace, 1.0);
  const NodeSet flagged = p.flagged_nodes(0.0, 1000.0, 42);
  EXPECT_TRUE(flagged.test(3));
  EXPECT_TRUE(flagged.test(5));
  EXPECT_TRUE(flagged.test(7));
}

TEST(TieBreakPredictor, ZeroAccuracyFlagsNothing) {
  const FailureTrace trace = simple_trace();
  TieBreakPredictor p(trace, 0.0);
  EXPECT_TRUE(p.flagged_nodes(0.0, 1000.0, 42).empty());
}

TEST(TieBreakPredictor, NoFalsePositivesByDefault) {
  const FailureTrace trace = simple_trace();
  TieBreakPredictor p(trace, 0.5);
  for (std::uint64_t key = 0; key < 200; ++key) {
    const NodeSet flagged = p.flagged_nodes(0.0, 1000.0, key);
    const NodeSet truth = trace.failing_nodes(0.0, 1000.0);
    EXPECT_TRUE(flagged.is_subset_of(truth));
  }
}

TEST(TieBreakPredictor, RepeatedQueriesAreConsistent) {
  const FailureTrace trace = simple_trace();
  TieBreakPredictor p(trace, 0.5);
  const NodeSet a = p.flagged_nodes(0.0, 1000.0, 7);
  const NodeSet b = p.flagged_nodes(0.0, 1000.0, 7);
  EXPECT_EQ(a, b);
}

TEST(TieBreakPredictor, FalseNegativeRateMatchesAccuracy) {
  // A big trace, accuracy 0.7: ~30 % of (key, failing-node) queries should
  // miss.
  FailureModel model = FailureModel::bluegene_l(2000, 100.0 * 86400.0);
  const FailureTrace trace = generate_failures(model, 5);
  TieBreakPredictor p(trace, 0.7);
  std::size_t hits = 0;
  std::size_t total = 0;
  for (std::uint64_t key = 0; key < 400; ++key) {
    const double t0 = static_cast<double>(key) * 20000.0;
    const NodeSet truth = trace.failing_nodes(t0, t0 + 86400.0);
    const NodeSet flagged = p.flagged_nodes(t0, t0 + 86400.0, key);
    total += static_cast<std::size_t>(truth.count());
    hits += static_cast<std::size_t>(flagged.count());
  }
  ASSERT_GT(total, 200u);
  const double rate = static_cast<double>(hits) / static_cast<double>(total);
  EXPECT_NEAR(rate, 0.7, 0.06);
}

TEST(TieBreakPredictor, FalsePositivesWhenEnabled) {
  const FailureTrace trace = simple_trace();
  TieBreakPredictor p(trace, 1.0, /*false_positive_rate=*/0.5);
  std::size_t false_positives = 0;
  for (std::uint64_t key = 0; key < 100; ++key) {
    const NodeSet truth = trace.failing_nodes(0.0, 1000.0);
    NodeSet flagged = p.flagged_nodes(0.0, 1000.0, key);
    flagged.subtract(truth);
    false_positives += static_cast<std::size_t>(flagged.count());
  }
  EXPECT_GT(false_positives, 100u);  // 13 healthy nodes * 100 keys * ~0.5
}

TEST(TieBreakPredictor, ParametersValidated) {
  const FailureTrace trace = simple_trace();
  EXPECT_THROW(TieBreakPredictor(trace, 1.5), ContractViolation);
  EXPECT_THROW(TieBreakPredictor(trace, 0.5, -0.2), ContractViolation);
}

TEST(PerfectPredictor, MatchesGroundTruth) {
  const FailureTrace trace = simple_trace();
  PerfectPredictor p(trace);
  EXPECT_EQ(p.flagged_nodes(50.0, 350.0, 0), trace.failing_nodes(50.0, 350.0));
  EXPECT_DOUBLE_EQ(p.confidence(), 1.0);
}

TEST(Predictors, DifferentJobsGetIndependentCoins) {
  const FailureTrace trace = simple_trace();
  TieBreakPredictor p(trace, 0.5);
  int differing = 0;
  NodeSet prev = p.flagged_nodes(0.0, 1000.0, 0);
  for (std::uint64_t key = 1; key < 64; ++key) {
    const NodeSet cur = p.flagged_nodes(0.0, 1000.0, key);
    if (!(cur == prev)) ++differing;
    prev = cur;
  }
  EXPECT_GT(differing, 10);
}

}  // namespace
}  // namespace bgl
