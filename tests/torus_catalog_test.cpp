#include "torus/catalog.hpp"

#include <gtest/gtest.h>

#include <set>

#include "torus/finders.hpp"
#include "torus/occupancy.hpp"
#include "util/rng.hpp"

namespace bgl {
namespace {

const Dims kBgl = Dims::bluegene_l();

class CatalogTest : public ::testing::Test {
 protected:
  static const PartitionCatalog& catalog() {
    static PartitionCatalog instance(kBgl);
    return instance;
  }
};

TEST_F(CatalogTest, EntryCountMatchesClosedForm) {
  // Per dimension d with extent D, shapes of extent e contribute one
  // canonical base when e == D and D bases otherwise:
  //   x, y (D=4): 3*4 + 1 = 13;  z (D=8): 7*8 + 1 = 57.
  EXPECT_EQ(catalog().num_entries(), 13 * 13 * 57);
}

TEST_F(CatalogTest, EntriesSortedBySizeDescending) {
  for (int i = 1; i < catalog().num_entries(); ++i) {
    EXPECT_GE(catalog().entry(i - 1).size, catalog().entry(i).size);
  }
}

TEST_F(CatalogTest, MasksMatchDeclaredSize) {
  for (int i = 0; i < catalog().num_entries(); ++i) {
    const auto& e = catalog().entry(i);
    EXPECT_EQ(e.mask.count(), e.size);
    EXPECT_EQ(e.box.volume(), e.size);
  }
}

TEST_F(CatalogTest, EntriesAreUniqueNodeSets) {
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < catalog().num_entries(); ++i) {
    hashes.insert(catalog().entry(i).mask.hash());
  }
  EXPECT_EQ(hashes.size(), static_cast<std::size_t>(catalog().num_entries()));
}

TEST_F(CatalogTest, SizeRangesPartitionTheEntries) {
  int covered = 0;
  for (int s = 1; s <= 128; ++s) {
    const auto [first, last] = catalog().size_range(s);
    for (int i = first; i < last; ++i) {
      EXPECT_EQ(catalog().entry(i).size, s);
    }
    covered += last - first;
  }
  EXPECT_EQ(covered, catalog().num_entries());
}

TEST_F(CatalogTest, SizeRangeOfUnrepresentableSizeIsEmpty) {
  // 13 is prime and exceeds every dimension: no shapes.
  const auto [first, last] = catalog().size_range(13);
  EXPECT_EQ(first, last);
  // 97 prime > 8 as well.
  const auto [f2, l2] = catalog().size_range(97);
  EXPECT_EQ(f2, l2);
}

TEST_F(CatalogTest, AllocatableSizeRoundsUp) {
  EXPECT_EQ(catalog().allocatable_size(1), 1);
  EXPECT_EQ(catalog().allocatable_size(13), 14);  // 14 = 2x1x7 fits
  EXPECT_EQ(catalog().allocatable_size(128), 128);
  EXPECT_EQ(catalog().allocatable_size(127), 128);
  EXPECT_EQ(catalog().allocatable_size(129), -1);
  EXPECT_EQ(catalog().allocatable_size(0), 1);
}

TEST_F(CatalogTest, AllocatableSizeClampsDegenerateRequests) {
  // s <= 0 rounds up to the smallest partition — and must NOT read the
  // size-1 slot through index 0 aliasing (slot 0 mirrors slot 1 by
  // construction; the contract is explicit, not accidental).
  EXPECT_EQ(catalog().allocatable_size(0), catalog().allocatable_size(1));
  EXPECT_EQ(catalog().allocatable_size(-1), 1);
  EXPECT_EQ(catalog().allocatable_size(-128), 1);
}

TEST_F(CatalogTest, SizeRangeOutOfDomainIsEmpty) {
  // Out-of-domain sizes are answerable, not UB: the range is empty.
  const auto [f0, l0] = catalog().size_range(0);
  EXPECT_EQ(f0, l0);
  const auto [fn, ln] = catalog().size_range(-7);
  EXPECT_EQ(fn, ln);
  const auto [fb, lb] = catalog().size_range(129);
  EXPECT_EQ(fb, lb);
  const auto [fh, lh] = catalog().size_range(1 << 20);
  EXPECT_EQ(fh, lh);
  // And the query paths built on it agree.
  NodeSet occ(128);
  std::vector<int> out;
  catalog().free_entries_of_size(occ, 129, out);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(catalog().has_free_of_size(occ, 0));
}

TEST(FinderContracts, PopRejectsOrShortCircuitsBadSizes) {
  const Dims dims = Dims::cube(4);
  NodeSet occ(dims.volume());
  EXPECT_THROW(find_free_pop(dims, occ, 0), ContractViolation);
  EXPECT_THROW(find_free_pop(dims, occ, -3), ContractViolation);
  // Oversized requests return empty without scanning anything.
  EXPECT_TRUE(find_free_pop(dims, occ, dims.volume() + 1).empty());
}

TEST_F(CatalogTest, AllocatableSizeAlwaysHasEntries) {
  for (int s = 1; s <= 128; ++s) {
    const int alloc = catalog().allocatable_size(s);
    ASSERT_GE(alloc, s);
    const auto [first, last] = catalog().size_range(alloc);
    EXPECT_LT(first, last) << "size " << s << " -> " << alloc;
  }
}

TEST_F(CatalogTest, MfpOnEmptyTorusIsFullMachine) {
  NodeSet occ(128);
  EXPECT_EQ(catalog().mfp(occ), 128);
  EXPECT_EQ(catalog().first_free_index(occ), 0);
}

TEST_F(CatalogTest, MfpOnFullTorusIsZero) {
  NodeSet occ(128);
  occ.fill();
  EXPECT_EQ(catalog().mfp(occ), 0);
  EXPECT_EQ(catalog().first_free_index(occ), -1);
}

TEST_F(CatalogTest, MfpWithSingleBusyNode) {
  NodeSet occ(128);
  occ.set(node_id(kBgl, Coord{0, 0, 0}));
  // Largest free box avoiding one node: 4x4x7 = 112 (z-slab excluded).
  EXPECT_EQ(catalog().mfp(occ), 112);
}

TEST_F(CatalogTest, MfpWithMatchesMaterializedUnion) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    NodeSet occ(128);
    NodeSet extra(128);
    for (int i = 0; i < 128; ++i) {
      if (rng.bernoulli(0.3)) occ.set(i);
      if (rng.bernoulli(0.1)) extra.set(i);
    }
    NodeSet unioned = occ;
    unioned |= extra;
    const int direct = catalog().mfp(unioned);
    const int hint = catalog().first_free_index(occ);
    EXPECT_EQ(catalog().mfp_with(occ, extra, hint < 0 ? 0 : hint), direct);
  }
}

TEST_F(CatalogTest, FreeEntriesOfSizeAreFreeAndComplete) {
  Rng rng(123);
  NodeSet occ(128);
  for (int i = 0; i < 128; ++i) {
    if (rng.bernoulli(0.4)) occ.set(i);
  }
  for (const int s : {1, 2, 8, 16, 32, 64, 128}) {
    std::vector<int> free;
    catalog().free_entries_of_size(occ, s, free);
    std::set<int> free_set(free.begin(), free.end());
    const auto [first, last] = catalog().size_range(s);
    for (int i = first; i < last; ++i) {
      const bool is_free = !catalog().entry(i).mask.intersects(occ);
      EXPECT_EQ(free_set.count(i) > 0, is_free);
    }
    EXPECT_EQ(catalog().has_free_of_size(occ, s), !free.empty());
  }
}

TEST_F(CatalogTest, FirstFreeIndexRespectsStart) {
  NodeSet occ(128);
  const int first = catalog().first_free_index(occ);
  const int second = catalog().first_free_index(occ, first + 1);
  EXPECT_GT(second, first);
}

TEST(Occupancy, AllocateReleaseLifecycle) {
  PartitionCatalog catalog(kBgl);
  TorusOccupancy torus(catalog);
  EXPECT_EQ(torus.free_nodes(), 128);

  const auto [first, last] = catalog.size_range(32);
  ASSERT_LT(first, last);
  torus.allocate(7, first);
  EXPECT_EQ(torus.free_nodes(), 96);
  EXPECT_EQ(torus.entry_of(7), first);
  EXPECT_FALSE(torus.is_free(first));
  EXPECT_EQ(torus.num_allocations(), 1u);

  torus.release(7);
  EXPECT_EQ(torus.free_nodes(), 128);
  EXPECT_EQ(torus.entry_of(7), -1);
}

TEST(Occupancy, DoubleAllocateSamePartitionThrows) {
  PartitionCatalog catalog(kBgl);
  TorusOccupancy torus(catalog);
  const auto [first, last] = catalog.size_range(128);
  ASSERT_LT(first, last);
  torus.allocate(1, first);
  EXPECT_THROW(torus.allocate(2, first), ContractViolation);
}

TEST(Occupancy, DuplicateIdThrows) {
  PartitionCatalog catalog(kBgl);
  TorusOccupancy torus(catalog);
  const auto [first, last] = catalog.size_range(1);
  torus.allocate(1, first);
  EXPECT_THROW(torus.allocate(1, first + 1), ContractViolation);
}

TEST(Occupancy, ReleaseUnknownThrows) {
  PartitionCatalog catalog(kBgl);
  TorusOccupancy torus(catalog);
  EXPECT_THROW(torus.release(404), ContractViolation);
}

TEST(Occupancy, AllocationsContainingNode) {
  PartitionCatalog catalog(kBgl);
  TorusOccupancy torus(catalog);
  const auto [first, last] = catalog.size_range(128);
  torus.allocate(9, first);
  const auto ids = torus.allocations_containing(0);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 9u);
}

TEST(Occupancy, ClearDropsEverything) {
  PartitionCatalog catalog(kBgl);
  TorusOccupancy torus(catalog);
  const auto [first, last] = catalog.size_range(64);
  torus.allocate(5, first);
  torus.clear();
  EXPECT_EQ(torus.free_nodes(), 128);
  EXPECT_EQ(torus.num_allocations(), 0u);
}

TEST(CatalogGeneric, SmallTorusEntriesExhaustive) {
  // On a 2x2x2 torus: per dimension 1*2 + 1 = 3 options -> 27 entries.
  PartitionCatalog catalog(Dims{2, 2, 2});
  EXPECT_EQ(catalog.num_entries(), 27);
  EXPECT_EQ(catalog.allocatable_size(3), 4);
  NodeSet occ(8);
  EXPECT_EQ(catalog.mfp(occ), 8);
  occ.set(0);
  EXPECT_EQ(catalog.mfp(occ), 4);
}

}  // namespace
}  // namespace bgl
