#include "failure/generator.hpp"
#include "failure/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace bgl {
namespace {

TEST(FailureTrace, SortsEventsOnConstruction) {
  FailureTrace trace({{5.0, 1}, {1.0, 2}, {3.0, 0}}, 4);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.events()[0].time, 1.0);
  EXPECT_DOUBLE_EQ(trace.events()[2].time, 5.0);
}

TEST(FailureTrace, RejectsOutOfRangeNode) {
  EXPECT_THROW(FailureTrace({{1.0, 4}}, 4), ContractViolation);
  EXPECT_THROW(FailureTrace({{1.0, -1}}, 4), ContractViolation);
}

TEST(FailureTrace, WindowQueryIsHalfOpenLeft) {
  FailureTrace trace({{10.0, 0}}, 2);
  // (t0, t1] semantics: an event exactly at t0 does not count; at t1 it does.
  EXPECT_FALSE(trace.node_fails_within(0, 10.0, 20.0));
  EXPECT_TRUE(trace.node_fails_within(0, 9.999, 10.0));
  EXPECT_TRUE(trace.node_fails_within(0, 5.0, 15.0));
  EXPECT_FALSE(trace.node_fails_within(0, 10.5, 20.0));
  EXPECT_FALSE(trace.node_fails_within(1, 0.0, 100.0));
}

TEST(FailureTrace, NextFailureAfter) {
  FailureTrace trace({{10.0, 0}, {20.0, 0}, {15.0, 1}}, 2);
  EXPECT_DOUBLE_EQ(trace.next_failure_after(0, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(trace.next_failure_after(0, 10.0), 20.0);  // strictly after
  EXPECT_TRUE(std::isinf(trace.next_failure_after(0, 20.0)));
  EXPECT_DOUBLE_EQ(trace.next_failure_after(1, 0.0), 15.0);
}

TEST(FailureTrace, FailingNodesMask) {
  FailureTrace trace({{10.0, 0}, {20.0, 3}, {30.0, 5}}, 8);
  const NodeSet mask = trace.failing_nodes(5.0, 25.0);
  EXPECT_TRUE(mask.test(0));
  EXPECT_TRUE(mask.test(3));
  EXPECT_FALSE(mask.test(5));
  EXPECT_EQ(mask.count(), 2);
}

TEST(FailureTrace, EventsInWindow) {
  FailureTrace trace({{10.0, 0}, {20.0, 1}, {30.0, 2}}, 4);
  const auto events = trace.events_in(10.0, 30.0);
  ASSERT_EQ(events.size(), 2u);  // 10.0 excluded, 30.0 included
  EXPECT_EQ(events[0].node, 1);
  EXPECT_EQ(events[1].node, 2);
}

TEST(FailureTrace, SubsampleExactCountAndSubset) {
  std::vector<FailureEvent> events;
  for (int i = 0; i < 1000; ++i) {
    events.push_back({static_cast<double>(i), i % 16});
  }
  FailureTrace trace(std::move(events), 16);
  const FailureTrace small = trace.subsample(200, 5);
  EXPECT_EQ(small.size(), 200u);
  // Every sampled event exists in the original.
  for (const FailureEvent& e : small.events()) {
    EXPECT_TRUE(trace.node_fails_within(e.node, e.time - 0.5, e.time));
  }
  // Deterministic.
  const FailureTrace again = trace.subsample(200, 5);
  EXPECT_EQ(small.events(), again.events());
  // Oversized target returns everything.
  EXPECT_EQ(trace.subsample(5000, 1).size(), 1000u);
}

TEST(FailureTrace, RetimeMapsOntoTarget) {
  FailureTrace trace({{100.0, 0}, {200.0, 1}, {300.0, 0}}, 2);
  const FailureTrace mapped = trace.retime(0.0, 10.0);
  EXPECT_DOUBLE_EQ(mapped.events().front().time, 0.0);
  EXPECT_DOUBLE_EQ(mapped.events().back().time, 10.0);
  EXPECT_DOUBLE_EQ(mapped.events()[1].time, 5.0);
}

TEST(FailureTrace, MeanRatePerDay) {
  FailureTrace trace({{0.0, 0}, {86400.0, 0}, {2.0 * 86400.0, 1}}, 2);
  EXPECT_NEAR(trace.mean_rate_per_day(), 1.5, 1e-9);
  EXPECT_DOUBLE_EQ(FailureTrace({}, 2).mean_rate_per_day(), 0.0);
}

TEST(FailureTrace, CsvRoundTrip) {
  FailureTrace trace({{1.5, 0}, {2.25, 3}}, 4);
  const std::string path = testing::TempDir() + "/bgl_failures.csv";
  write_failure_csv(path, trace);
  const FailureTrace parsed = read_failure_csv(path, 4);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.events()[0].time, 1.5);
  EXPECT_EQ(parsed.events()[1].node, 3);
}

TEST(FailureGenerator, ExactEventCount) {
  FailureModel model = FailureModel::bluegene_l(4000, 365.0 * 86400.0);
  const FailureTrace trace = generate_failures(model, 7);
  EXPECT_EQ(trace.size(), 4000u);
  EXPECT_EQ(trace.num_nodes(), 128);
}

TEST(FailureGenerator, ZeroEventsYieldsEmptyTrace) {
  FailureModel model = FailureModel::bluegene_l(0, 86400.0);
  EXPECT_TRUE(generate_failures(model, 1).empty());
}

TEST(FailureGenerator, Deterministic) {
  FailureModel model = FailureModel::bluegene_l(500, 30.0 * 86400.0);
  const FailureTrace a = generate_failures(model, 3);
  const FailureTrace b = generate_failures(model, 3);
  EXPECT_EQ(a.events(), b.events());
}

TEST(FailureGenerator, EventsWithinSpanAndNodeRange) {
  FailureModel model = FailureModel::bluegene_l(1000, 100.0 * 86400.0);
  const FailureTrace trace = generate_failures(model, 11);
  for (const FailureEvent& e : trace.events()) {
    EXPECT_GE(e.time, 0.0);
    EXPECT_LE(e.time, model.span_seconds + 1e-6);
    EXPECT_GE(e.node, 0);
    EXPECT_LT(e.node, 128);
  }
}

TEST(FailureGenerator, TraceIsBursty) {
  // The paper's saturation argument needs clusters of near-simultaneous
  // failures. Measure the coefficient of variation of inter-event gaps: a
  // Poisson process has CV ~ 1; a bursty one is clearly above.
  FailureModel model = FailureModel::bluegene_l(4000, 365.0 * 86400.0);
  const FailureTrace trace = generate_failures(model, 13);
  RunningStats gaps;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    gaps.add(trace.events()[i].time - trace.events()[i - 1].time);
  }
  const double cv = gaps.stddev() / gaps.mean();
  EXPECT_GT(cv, 1.5);
}

TEST(FailureGenerator, BurstsShareTimestampsAcrossNodes) {
  FailureModel model = FailureModel::bluegene_l(2000, 200.0 * 86400.0);
  model.burst_prob = 0.6;
  const FailureTrace trace = generate_failures(model, 17);
  // Count events that have another event within the burst spread window.
  std::size_t clustered = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace.events()[i].time - trace.events()[i - 1].time <=
        model.burst_spread_seconds) {
      ++clustered;
    }
  }
  EXPECT_GT(clustered, trace.size() / 4);
}

}  // namespace
}  // namespace bgl
