#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace bgl {
namespace {

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_EQ(to_lower("123AbC"), "123abc");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(Strings, SplitWsDropsEmptyFields) {
  const auto fields = split_ws("  a \t b\n c  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(Strings, SplitWsEmptyInput) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   \t ").empty());
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("; MaxProcs: 128", ";"));
  EXPECT_FALSE(starts_with("x", "xy"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Strings, ParseIntStrict) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-7").value(), -7);
  EXPECT_FALSE(parse_int("42x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("4.2").has_value());
}

TEST(Strings, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(parse_double("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("-1").value(), -1.0);
  EXPECT_FALSE(parse_double("1.2.3").has_value());
  EXPECT_FALSE(parse_double("abc").has_value());
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(Strings, FormatDuration) {
  EXPECT_EQ(format_duration(0.0), "00:00:00");
  EXPECT_EQ(format_duration(3661.0), "01:01:01");
  EXPECT_EQ(format_duration(2.0 * 86400.0 + 3600.0), "2d 01:00:00");
}

}  // namespace
}  // namespace bgl
