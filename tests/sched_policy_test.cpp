#include "sched/policy.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace bgl {
namespace {

const Dims kBgl = Dims::bluegene_l();

const PartitionCatalog& catalog() {
  static PartitionCatalog instance(kBgl);
  return instance;
}

/// Entry index of the canonical box, or -1.
int entry_of_box(const Box& box) {
  const Box canon = canonicalize(kBgl, box);
  for (int i = 0; i < catalog().num_entries(); ++i) {
    if (catalog().entry(i).box == canon) return i;
  }
  return -1;
}

int mfp_after_placing(const NodeSet& occ, int entry) {
  NodeSet with = occ;
  with |= catalog().entry(entry).mask;
  return catalog().mfp(with);
}

PlacementContext make_ctx(const NodeSet& occ, const NodeSet& flagged,
                          double confidence, int job_size,
                          PartitionFailureRule rule = PartitionFailureRule::kProduct) {
  PlacementContext ctx;
  ctx.catalog = &catalog();
  ctx.occupied = &occ;
  ctx.mfp_before_index = catalog().first_free_index(occ);
  ctx.mfp_before_size =
      ctx.mfp_before_index < 0 ? 0 : catalog().entry(ctx.mfp_before_index).size;
  ctx.flagged = &flagged;
  ctx.confidence = confidence;
  ctx.pf_rule = rule;
  ctx.job_size = job_size;
  return ctx;
}

// Fragmented scenario discovered programmatically (torus wrap-around makes
// hand-built examples treacherous): half the machine is busy plus one stray
// node, and among the free 2x2x2 placements we pick one with the maximal
// resulting MFP ("clean") and one strictly worse ("splinter"), with a flag
// node that lies only in the clean placement.
struct FragScenario {
  NodeSet occ{128};
  int clean = -1;
  int splinter = -1;
  int gap = 0;        // mfp_after(clean) - mfp_after(splinter) > 0
  int flag_node = -1; // in clean's partition, not in splinter's

  FragScenario() {
    occ = box_mask(kBgl, Box{Coord{0, 0, 0}, Triple{2, 4, 8}});
    occ.set(node_id(kBgl, Coord{2, 0, 0}));

    std::vector<int> candidates;
    catalog().free_entries_of_size(occ, 8, candidates);
    int best_mfp = -1;
    int worst_mfp = 1 << 30;
    for (const int c : candidates) {
      const int m = mfp_after_placing(occ, c);
      if (m > best_mfp) {
        best_mfp = m;
        clean = c;
      }
      if (m < worst_mfp) {
        worst_mfp = m;
        splinter = c;
      }
    }
    gap = best_mfp - worst_mfp;
    // A node unique to the clean placement.
    NodeSet unique = catalog().entry(clean).mask;
    unique.subtract(catalog().entry(splinter).mask);
    const auto ids = unique.to_ids();
    if (!ids.empty()) flag_node = ids.front();
  }
};

TEST(PartitionFailureProbability, ProductRule) {
  EXPECT_DOUBLE_EQ(
      partition_failure_probability(0, 0.5, PartitionFailureRule::kProduct), 0.0);
  EXPECT_DOUBLE_EQ(
      partition_failure_probability(1, 0.5, PartitionFailureRule::kProduct), 0.5);
  EXPECT_DOUBLE_EQ(
      partition_failure_probability(2, 0.5, PartitionFailureRule::kProduct), 0.75);
  EXPECT_DOUBLE_EQ(
      partition_failure_probability(3, 1.0, PartitionFailureRule::kProduct), 1.0);
}

TEST(PartitionFailureProbability, MaxRule) {
  EXPECT_DOUBLE_EQ(partition_failure_probability(0, 0.5, PartitionFailureRule::kMax),
                   0.0);
  EXPECT_DOUBLE_EQ(partition_failure_probability(1, 0.5, PartitionFailureRule::kMax),
                   0.5);
  EXPECT_DOUBLE_EQ(partition_failure_probability(5, 0.5, PartitionFailureRule::kMax),
                   0.5);
}

TEST(PartitionFailureProbability, ZeroConfidence) {
  EXPECT_DOUBLE_EQ(
      partition_failure_probability(10, 0.0, PartitionFailureRule::kProduct), 0.0);
}

TEST(PartitionFailureProbability, NegativeCountThrows) {
  EXPECT_THROW(
      partition_failure_probability(-1, 0.5, PartitionFailureRule::kProduct),
      ContractViolation);
}

TEST(FragScenarioCheck, ScenarioIsWellFormed) {
  FragScenario s;
  ASSERT_GE(s.clean, 0);
  ASSERT_GE(s.splinter, 0);
  EXPECT_GT(s.gap, 0);
  ASSERT_GE(s.flag_node, 0);
  EXPECT_TRUE(catalog().entry(s.clean).mask.test(s.flag_node));
  EXPECT_FALSE(catalog().entry(s.splinter).mask.test(s.flag_node));
}

TEST(SingleBusyNode, MfpIsFourByFourBySeven) {
  NodeSet occ(128);
  occ.set(node_id(kBgl, Coord{0, 0, 0}));
  EXPECT_EQ(catalog().mfp(occ), 112);
}

TEST(MfpLossPolicy, PicksArgmaxMfpOnPairs) {
  FragScenario s;
  NodeSet flags(128);
  MfpLossPolicy policy;
  const auto ctx = make_ctx(s.occ, flags, 0.0, 8);
  EXPECT_EQ(policy.choose(ctx, {s.splinter, s.clean}), s.clean);
  EXPECT_EQ(policy.choose(ctx, {s.clean, s.splinter}), s.clean);
}

TEST(MfpLossPolicy, RandomizedArgmaxProperty) {
  // On random occupancies the policy must pick a candidate achieving the
  // maximal resulting MFP (reference computed without the scan-resume hint).
  Rng rng(321);
  for (int trial = 0; trial < 30; ++trial) {
    NodeSet occ(128);
    for (int i = 0; i < 128; ++i) {
      if (rng.bernoulli(0.4)) occ.set(i);
    }
    std::vector<int> candidates;
    catalog().free_entries_of_size(occ, 8, candidates);
    if (candidates.size() < 2) continue;
    if (candidates.size() > 12) candidates.resize(12);

    NodeSet flags(128);
    MfpLossPolicy policy;
    const auto ctx = make_ctx(occ, flags, 0.0, 8);
    const int chosen = policy.choose(ctx, candidates);
    int best = -1;
    for (const int c : candidates) best = std::max(best, mfp_after_placing(occ, c));
    EXPECT_EQ(mfp_after_placing(occ, chosen), best);
  }
}

TEST(MfpLossPolicy, EmptyCandidatesThrows) {
  NodeSet occ(128);
  NodeSet flags(128);
  MfpLossPolicy policy;
  const auto ctx = make_ctx(occ, flags, 0.0, 8);
  EXPECT_THROW(policy.choose(ctx, {}), ContractViolation);
}

TEST(BalancingPolicy, ZeroConfidenceMatchesMfpLoss) {
  FragScenario s;
  NodeSet flags(128);
  flags.set(s.flag_node);  // ignored at a = 0
  MfpLossPolicy krevat;
  BalancingPolicy balancing;
  const auto ctx = make_ctx(s.occ, flags, 0.0, 8);
  const std::vector<int> candidates = {s.splinter, s.clean};
  EXPECT_EQ(balancing.choose(ctx, candidates), krevat.choose(ctx, candidates));
}

TEST(BalancingPolicy, HighConfidenceAvoidsFlaggedEqualMfpPartition) {
  // Empty torus, two 4x4x4 halves with identical MFP loss; one is flagged.
  NodeSet occ(128);
  const int left = entry_of_box(Box{Coord{0, 0, 0}, Triple{4, 4, 4}});
  const int right = entry_of_box(Box{Coord{0, 0, 4}, Triple{4, 4, 4}});
  ASSERT_GE(left, 0);
  ASSERT_GE(right, 0);
  ASSERT_EQ(mfp_after_placing(occ, left), mfp_after_placing(occ, right));

  NodeSet flags(128);
  flags.set(node_id(kBgl, Coord{1, 1, 1}));  // inside `left`

  BalancingPolicy policy;
  const auto ctx = make_ctx(occ, flags, 0.9, 64);
  EXPECT_EQ(policy.choose(ctx, {left, right}), right);
  EXPECT_EQ(policy.choose(ctx, {right, left}), right);
}

TEST(BalancingPolicy, ConfidenceThresholdFlipsTheTradeOff) {
  // Figure 2(a)/(b) analog:
  //   E(clean)    = L_MFP(clean) + a * s   (flag inside the clean partition)
  //   E(splinter) = L_MFP(clean) + gap
  // With s = 4 * gap the flip threshold is exactly a = 0.25.
  FragScenario s;
  NodeSet flags(128);
  flags.set(s.flag_node);
  const int job_size = 4 * s.gap;

  BalancingPolicy policy;
  EXPECT_EQ(policy.choose(make_ctx(s.occ, flags, 0.10, job_size),
                          {s.clean, s.splinter}),
            s.clean);
  EXPECT_EQ(policy.choose(make_ctx(s.occ, flags, 0.20, job_size),
                          {s.clean, s.splinter}),
            s.clean);
  EXPECT_EQ(policy.choose(make_ctx(s.occ, flags, 0.30, job_size),
                          {s.clean, s.splinter}),
            s.splinter);
  EXPECT_EQ(policy.choose(make_ctx(s.occ, flags, 0.90, job_size),
                          {s.clean, s.splinter}),
            s.splinter);
}

TEST(BalancingPolicy, LargeJobTieUsesRelativeTolerance) {
  // Regression: E_loss comparisons used an absolute 1e-12 epsilon. L_PF
  // grows with the job size (up to 512 * confidence on an 8x8x8 machine),
  // so two placements in a mathematical tie evaluate to E_loss values that
  // differ by far more than 1e-12 in floating point — the absolute epsilon
  // declared a strict winner from rounding noise and dropped the
  // larger-MFP tie-break. The tolerance must scale with the operands.
  const Dims dims = Dims::cube(8);
  static const PartitionCatalog big(dims);

  // Half the machine busy plus a stray node; among size-8 placements pick
  // one with the maximal resulting MFP ("clean") and one strictly worse
  // ("splinter"), plus a flag node unique to the clean placement.
  NodeSet occ = box_mask(dims, Box{Coord{0, 0, 0}, Triple{4, 8, 8}});
  occ.set(node_id(dims, Coord{4, 0, 0}));
  std::vector<int> candidates;
  big.free_entries_of_size(occ, 8, candidates);
  ASSERT_GE(candidates.size(), 2u);
  if (candidates.size() > 30) candidates.resize(30);
  auto mfp_after = [&](int entry) {
    NodeSet with = occ;
    with |= big.entry(entry).mask;
    return big.mfp(with);
  };
  int clean = -1, splinter = -1, best = -1, worst = 1 << 30;
  for (const int c : candidates) {
    const int m = mfp_after(c);
    if (m > best) best = m, clean = c;
    if (m < worst) worst = m, splinter = c;
  }
  const int gap = best - worst;
  ASSERT_GT(gap, 0);
  NodeSet unique = big.entry(clean).mask;
  unique.subtract(big.entry(splinter).mask);
  ASSERT_FALSE(unique.empty());
  NodeSet flags(dims.volume());
  flags.set(unique.to_ids().front());

  // With the max rule and one flag inside `clean` only:
  //   E(clean)    = l_clean + a * s
  //   E(splinter) = l_clean + gap
  // Pick a so the two sides differ by a delta that is pure noise relative
  // to the operands — far above 1e-12, well inside the relative tolerance.
  const int mfp_before = big.mfp(occ);
  const int l_clean = mfp_before - best;
  const double e_splinter = static_cast<double>(l_clean + gap);
  const double delta = 0.5e-9 * e_splinter;
  ASSERT_GT(delta, 1e-11);  // the absolute epsilon would see a strict winner
  const int job_size = 512;
  const double a = (static_cast<double>(gap) + delta) / job_size;

  PlacementContext ctx;
  ctx.catalog = &big;
  ctx.occupied = &occ;
  ctx.mfp_before_index = big.first_free_index(occ);
  ctx.mfp_before_size = big.entry(ctx.mfp_before_index).size;
  ctx.flagged = &flags;
  ctx.confidence = a;
  ctx.pf_rule = PartitionFailureRule::kMax;
  ctx.job_size = job_size;

  // A noise-level E_loss edge must not override the MFP tie-break: the
  // clean placement wins from either candidate order.
  BalancingPolicy policy;
  EXPECT_EQ(policy.choose(ctx, {splinter, clean}), clean);
  EXPECT_EQ(policy.choose(ctx, {clean, splinter}), clean);
}

TEST(BalancingPolicy, ProductRulePenalizesMultipleFlags) {
  NodeSet occ(128);
  const int left = entry_of_box(Box{Coord{0, 0, 0}, Triple{4, 4, 4}});
  const int right = entry_of_box(Box{Coord{0, 0, 4}, Triple{4, 4, 4}});
  NodeSet flags(128);
  flags.set(node_id(kBgl, Coord{0, 0, 0}));  // left: 1 flag
  flags.set(node_id(kBgl, Coord{0, 0, 4}));  // right: 2 flags
  flags.set(node_id(kBgl, Coord{1, 1, 5}));

  BalancingPolicy policy;
  const auto ctx = make_ctx(occ, flags, 0.3, 64, PartitionFailureRule::kProduct);
  EXPECT_EQ(policy.choose(ctx, {right, left}), left);

  // Under the max rule both partitions score identically; the choice must at
  // least be deterministic.
  const auto ctx_max = make_ctx(occ, flags, 0.3, 64, PartitionFailureRule::kMax);
  const int first = policy.choose(ctx_max, {right, left});
  EXPECT_EQ(policy.choose(ctx_max, {right, left}), first);
}

TEST(TieBreakPolicy, BreaksTieTowardSafePartition) {
  NodeSet occ(128);
  const int left = entry_of_box(Box{Coord{0, 0, 0}, Triple{4, 4, 4}});
  const int right = entry_of_box(Box{Coord{0, 0, 4}, Triple{4, 4, 4}});
  NodeSet flags(128);
  flags.set(node_id(kBgl, Coord{2, 2, 2}));  // inside left

  TieBreakPolicy policy;
  const auto ctx = make_ctx(occ, flags, 1.0, 64);
  EXPECT_EQ(policy.choose(ctx, {left, right}), right);
  EXPECT_EQ(policy.choose(ctx, {right, left}), right);
}

TEST(TieBreakPolicy, AllFlaggedFallsBackToFirstOptimum) {
  NodeSet occ(128);
  const int left = entry_of_box(Box{Coord{0, 0, 0}, Triple{4, 4, 4}});
  const int right = entry_of_box(Box{Coord{0, 0, 4}, Triple{4, 4, 4}});
  NodeSet flags(128);
  flags.set(node_id(kBgl, Coord{0, 0, 0}));
  flags.set(node_id(kBgl, Coord{0, 0, 4}));

  TieBreakPolicy policy;
  const auto ctx = make_ctx(occ, flags, 1.0, 64);
  EXPECT_EQ(policy.choose(ctx, {left, right}), left);
  EXPECT_EQ(policy.choose(ctx, {right, left}), right);
}

TEST(TieBreakPolicy, NeverSacrificesMfpForSafety) {
  // Unlike the balancing policy, tie-breaking only consults the predictor
  // among equal-MFP optima: a flagged clean placement still beats a safe
  // splinter placement.
  FragScenario s;
  NodeSet flags(128);
  flags.set(s.flag_node);

  TieBreakPolicy policy;
  const auto ctx = make_ctx(s.occ, flags, 1.0, 8);
  EXPECT_EQ(policy.choose(ctx, {s.clean, s.splinter}), s.clean);
  EXPECT_EQ(policy.choose(ctx, {s.splinter, s.clean}), s.clean);
}

TEST(TieBreakPolicy, NoFlagsPicksAnMfpOptimum) {
  FragScenario s;
  NodeSet flags(128);
  TieBreakPolicy tiebreak;
  const auto ctx = make_ctx(s.occ, flags, 1.0, 8);
  const int chosen = tiebreak.choose(ctx, {s.splinter, s.clean});
  EXPECT_EQ(chosen, s.clean);
}

}  // namespace
}  // namespace bgl
