// Statistical properties of the tie-breaking predictor across its whole
// accuracy range: the realised true-positive rate must track the accuracy
// parameter, false positives must track the configured rate, and coins must
// be stable per (job, node) yet independent across jobs.
#include <gtest/gtest.h>

#include "failure/generator.hpp"
#include "predict/predictor.hpp"

namespace bgl {
namespace {

const FailureTrace& big_trace() {
  static FailureTrace trace = [] {
    FailureModel model = FailureModel::bluegene_l(3000, 200.0 * 86400.0);
    return generate_failures(model, 99);
  }();
  return trace;
}

class TieBreakAccuracySweep : public ::testing::TestWithParam<double> {};

TEST_P(TieBreakAccuracySweep, TruePositiveRateTracksAccuracy) {
  const double accuracy = GetParam();
  TieBreakPredictor predictor(big_trace(), accuracy);
  std::size_t truths = 0;
  std::size_t hits = 0;
  for (std::uint64_t key = 0; key < 500; ++key) {
    const double t0 = static_cast<double>(key) * 30000.0;
    const NodeSet truth = big_trace().failing_nodes(t0, t0 + 43200.0);
    const NodeSet flagged = predictor.flagged_nodes(t0, t0 + 43200.0, key);
    EXPECT_TRUE(flagged.is_subset_of(truth));  // no false positives
    truths += static_cast<std::size_t>(truth.count());
    hits += static_cast<std::size_t>(flagged.count());
  }
  ASSERT_GT(truths, 300u);
  const double rate = static_cast<double>(hits) / static_cast<double>(truths);
  EXPECT_NEAR(rate, accuracy, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Accuracies, TieBreakAccuracySweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

class FalsePositiveSweep : public ::testing::TestWithParam<double> {};

TEST_P(FalsePositiveSweep, FalsePositiveRateTracksParameter) {
  const double fp_rate = GetParam();
  TieBreakPredictor predictor(big_trace(), 1.0, fp_rate);
  std::size_t healthy = 0;
  std::size_t false_positives = 0;
  for (std::uint64_t key = 0; key < 300; ++key) {
    const double t0 = static_cast<double>(key) * 30000.0;
    const NodeSet truth = big_trace().failing_nodes(t0, t0 + 43200.0);
    NodeSet flagged = predictor.flagged_nodes(t0, t0 + 43200.0, key);
    flagged.subtract(truth);
    healthy += static_cast<std::size_t>(128 - truth.count());
    false_positives += static_cast<std::size_t>(flagged.count());
  }
  const double rate =
      static_cast<double>(false_positives) / static_cast<double>(healthy);
  EXPECT_NEAR(rate, fp_rate, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Rates, FalsePositiveSweep,
                         ::testing::Values(0.0, 0.05, 0.2, 0.5));

TEST(PredictorStatistics, BalancingPredictorIsDeterministic) {
  BalancingPredictor predictor(big_trace(), 0.5);
  for (std::uint64_t key = 0; key < 50; ++key) {
    const double t0 = static_cast<double>(key) * 10000.0;
    EXPECT_EQ(predictor.flagged_nodes(t0, t0 + 3600.0, key),
              predictor.flagged_nodes(t0, t0 + 3600.0, key + 1))
        << "balancing flags must not depend on the query key";
  }
}

TEST(PredictorStatistics, WindowMonotonicity) {
  // A wider window can only flag more nodes (balancing predictor).
  BalancingPredictor predictor(big_trace(), 1.0);
  for (int i = 0; i < 50; ++i) {
    const double t0 = i * 50000.0;
    const NodeSet narrow = predictor.flagged_nodes(t0, t0 + 3600.0, 0);
    const NodeSet wide = predictor.flagged_nodes(t0, t0 + 86400.0, 0);
    EXPECT_TRUE(narrow.is_subset_of(wide));
  }
}

}  // namespace
}  // namespace bgl
