#include "sched/backfill.hpp"

#include <gtest/gtest.h>

namespace bgl {
namespace {

const Dims kBgl = Dims::bluegene_l();

const PartitionCatalog& catalog() {
  static PartitionCatalog instance(kBgl);
  return instance;
}

int entry_of_box(const Box& box) {
  const Box canon = canonicalize(kBgl, box);
  for (int i = 0; i < catalog().num_entries(); ++i) {
    if (catalog().entry(i).box == canon) return i;
  }
  return -1;
}

TEST(Backfill, ImmediateFitReservesNow) {
  NodeSet occ(128);
  const auto reservation = compute_reservation(catalog(), occ, {}, 64, 100.0);
  ASSERT_TRUE(reservation.has_value());
  EXPECT_DOUBLE_EQ(reservation->time, 100.0);
  EXPECT_EQ(reservation->mask.count(), 64);
}

TEST(Backfill, ReservationAtEarliestSufficientFinish) {
  // Two running jobs occupying the two halves; a full-machine job must wait
  // for both, a half-machine job only for the earlier one.
  const int left = entry_of_box(Box{Coord{0, 0, 0}, Triple{4, 4, 4}});
  const int right = entry_of_box(Box{Coord{0, 0, 4}, Triple{4, 4, 4}});
  NodeSet occ = catalog().entry(left).mask;
  occ |= catalog().entry(right).mask;

  const std::vector<RunningJob> running = {
      RunningJob{1, left, 500.0},
      RunningJob{2, right, 900.0},
  };

  const auto full = compute_reservation(catalog(), occ, running, 128, 100.0);
  ASSERT_TRUE(full.has_value());
  EXPECT_DOUBLE_EQ(full->time, 900.0);

  const auto half = compute_reservation(catalog(), occ, running, 64, 100.0);
  ASSERT_TRUE(half.has_value());
  EXPECT_DOUBLE_EQ(half->time, 500.0);
  // The reserved partition must be the one freed by job 1.
  EXPECT_EQ(half->mask, catalog().entry(left).mask);
}

TEST(Backfill, ReservationNeverBeforeNow) {
  const int left = entry_of_box(Box{Coord{0, 0, 0}, Triple{4, 4, 4}});
  NodeSet occ = catalog().entry(left).mask;
  // Estimated finish in the past (over-ran its estimate): clamp to now.
  const std::vector<RunningJob> running = {RunningJob{1, left, 50.0}};
  const auto r = compute_reservation(catalog(), occ, running, 128, 100.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->time, 100.0);
}

TEST(Backfill, ReservationSkipsInsufficientFinishes) {
  // Four quarter-machine jobs; a 64-node job fits after the second finish at
  // the earliest only if the freed quarters are adjacent. Use z-slabs so any
  // two adjacent frees form a 4x4x4.
  std::vector<int> entries;
  for (int z = 0; z < 8; z += 2) {
    entries.push_back(entry_of_box(Box{Coord{0, 0, z}, Triple{4, 4, 2}}));
  }
  NodeSet occ(128);
  for (const int e : entries) occ |= catalog().entry(e).mask;
  // Finishes at 100 (z0), 300 (z4), 500 (z2), 700 (z6): after 100 only one
  // 32-node slab is free; a 64-node job needs two adjacent slabs, which
  // happens at 500 (z0+z2).
  const std::vector<RunningJob> running = {
      RunningJob{1, entries[0], 100.0},
      RunningJob{2, entries[2], 300.0},
      RunningJob{3, entries[1], 500.0},
      RunningJob{4, entries[3], 700.0},
  };
  const auto r = compute_reservation(catalog(), occ, running, 64, 0.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->time, 500.0);
}

TEST(Backfill, ImpossibleSizeReturnsNullopt) {
  NodeSet occ(128);
  // 13 has no shape on the 4x4x8 torus; compute_reservation never finds it.
  const auto r = compute_reservation(catalog(), occ, {}, 13, 0.0);
  EXPECT_FALSE(r.has_value());
}

}  // namespace
}  // namespace bgl
