// AdaptivePredictor unit tests on synthetic failure streams: each learned
// hazard feature (base flag, repeat offender, burst, midplane correlation),
// the observation-lifecycle contract (advance monotone + idempotent, repairs
// keep flags, queries const and re-query deterministic), the registry's
// string table / oracle requirement, and the online evaluation harness.
#include "predict/adaptive.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "failure/generator.hpp"
#include "predict/registry.hpp"

namespace bgl {
namespace {

constexpr int kNodes = 128;
constexpr double kHour = 3600.0;

AdaptiveConfig quiet_config() {
  // Defaults, but with time-of-day learning disabled (needs 24 samples the
  // short streams below never reach anyway) so window arithmetic is exact.
  AdaptiveConfig cfg;
  cfg.tod_min_samples = 1'000'000;
  return cfg;
}

TEST(AdaptivePredictor, SingleFailureFlagsForBaseWindow) {
  const AdaptiveConfig cfg = quiet_config();
  AdaptivePredictor p(kNodes, cfg);
  EXPECT_EQ(p.flagged_count(), 0);

  p.observe_failure(5, 1000.0, 0.0);
  EXPECT_TRUE(p.flagged_nodes(0, 0, 0).test(5));
  EXPECT_EQ(p.flagged_count(), 1);
  EXPECT_DOUBLE_EQ(p.flag_until(5), 1000.0 + cfg.node_flag_window);

  p.advance(1000.0 + cfg.node_flag_window - 1.0);
  EXPECT_TRUE(p.flagged_nodes(0, 0, 0).test(5));
  p.advance(1000.0 + cfg.node_flag_window);
  EXPECT_FALSE(p.flagged_nodes(0, 0, 0).test(5));
  EXPECT_EQ(p.flagged_count(), 0);
}

TEST(AdaptivePredictor, RepeatOffenderBoostsWindow) {
  const AdaptiveConfig cfg = quiet_config();
  AdaptivePredictor p(kNodes, cfg);
  // Two failures of the same node, well inside repeat_window but too far
  // apart for the burst detector (and on one node, so no midplane trigger
  // at threshold 3).
  p.observe_failure(7, 0.0, 0.0);
  p.observe_failure(7, 48.0 * kHour, 0.0);
  EXPECT_DOUBLE_EQ(p.flag_until(7),
                   48.0 * kHour + cfg.node_flag_window * cfg.repeat_boost);
}

TEST(AdaptivePredictor, MachineWideBurstStretchesNewFlags) {
  const AdaptiveConfig cfg = quiet_config();
  AdaptivePredictor p(kNodes, cfg);
  // burst_threshold (3) failures within burst_window, on nodes spread across
  // distinct midplanes so the spatial feature stays out of the picture.
  p.observe_failure(0, 0.0, 0.0);
  p.observe_failure(40, 100.0, 0.0);
  EXPECT_EQ(p.bursts_detected(), 0u);
  p.observe_failure(80, 200.0, 0.0);
  EXPECT_EQ(p.bursts_detected(), 1u);
  // The third failure's flag is stretched by burst_boost (first failure of
  // node 80, so no repeat boost).
  EXPECT_DOUBLE_EQ(p.flag_until(80),
                   200.0 + cfg.node_flag_window * cfg.burst_boost);
  // A later lone failure outside the burst window gets the base flag.
  p.observe_failure(100, 200.0 + 2.0 * cfg.burst_window, 0.0);
  EXPECT_DOUBLE_EQ(p.flag_until(100),
                   200.0 + 2.0 * cfg.burst_window + cfg.node_flag_window);
}

TEST(AdaptivePredictor, MidplaneCorrelationFlagsWholeGroup) {
  const AdaptiveConfig cfg = quiet_config();
  AdaptivePredictor p(kNodes, cfg);
  // Three failures inside midplane 0 (nodes 0..31) within a day — spaced
  // past burst_window so only the spatial feature fires.
  p.observe_failure(2, 0.0, 0.0);
  p.observe_failure(11, 2.0 * kHour, 0.0);
  EXPECT_EQ(p.midplane_flags(), 0u);
  p.observe_failure(29, 4.0 * kHour, 0.0);
  EXPECT_EQ(p.midplane_flags(), 1u);

  const NodeSet flags = p.flagged_nodes(0, 0, 0);
  for (int n = 0; n < cfg.midplane_nodes; ++n) {
    EXPECT_TRUE(flags.test(n)) << "node " << n;
  }
  EXPECT_FALSE(flags.test(cfg.midplane_nodes));
  EXPECT_EQ(p.flagged_count(), cfg.midplane_nodes);
}

TEST(AdaptivePredictor, AdvanceIsMonotoneAndIdempotent) {
  const AdaptiveConfig cfg = quiet_config();
  AdaptivePredictor stepped(kNodes, cfg);
  AdaptivePredictor jumped(kNodes, cfg);
  const double times[] = {0.0, 10.0 * kHour, 20.0 * kHour, 30.0 * kHour};
  const int nodes[] = {3, 3, 70, 101};
  for (std::size_t i = 0; i < 4; ++i) {
    stepped.observe_failure(nodes[i], times[i], 0.0);
    jumped.observe_failure(nodes[i], times[i], 0.0);
  }
  const double goal = 33.0 * kHour;
  // One predictor sees every intermediate tick (the simulator's stale-event
  // advances), the other a single jump — the contract says the states agree.
  for (double t = 0.0; t <= goal; t += kHour) stepped.advance(t);
  stepped.advance(goal);  // idempotent re-advance at the same time
  jumped.advance(goal);
  for (int n = 0; n < kNodes; ++n) {
    EXPECT_DOUBLE_EQ(stepped.flag_until(n), jumped.flag_until(n)) << n;
  }
  EXPECT_EQ(stepped.flagged_nodes(0, 0, 0), jumped.flagged_nodes(0, 0, 0));
  EXPECT_EQ(stepped.flagged_count(), jumped.flagged_count());
}

TEST(AdaptivePredictor, RepairKeepsHazardFlags) {
  AdaptivePredictor p(kNodes, quiet_config());
  p.observe_failure(9, 0.0, 4.0 * kHour);
  p.observe_repair(9, 4.0 * kHour);
  // Freshly repaired nodes are exactly the repeat offenders the flag is
  // watching; repair must not clear it.
  EXPECT_TRUE(p.flagged_nodes(0, 0, 0).test(9));
  EXPECT_EQ(p.repairs_seen(), 1u);
}

TEST(AdaptivePredictor, RequeriesWithinOnePassAreIdentical) {
  AdaptivePredictor p(kNodes, quiet_config());
  p.observe_failure(17, 0.0, 0.0);
  p.observe_failure(64, 100.0, 0.0);
  const NodeSet first = p.flagged_nodes(200.0, 6.0 * kHour, 1);
  // The scheduler re-asks with different query keys and windows while
  // comparing candidates within one pass; answers must not drift and the
  // query must not mutate state.
  for (std::uint64_t key = 0; key < 8; ++key) {
    EXPECT_EQ(p.flagged_nodes(200.0, 12.0 * kHour, key), first);
    NodeSet in_place(kNodes);
    p.flagged_nodes_into(in_place, 200.0, 12.0 * kHour, key);
    EXPECT_EQ(in_place, first);
  }
}

TEST(AdaptivePredictor, ValidatesConfig) {
  EXPECT_THROW(AdaptivePredictor(0), ContractViolation);
  AdaptiveConfig bad;
  bad.confidence = 1.5;
  EXPECT_THROW(AdaptivePredictor(kNodes, bad), ContractViolation);
  bad = {};
  bad.node_flag_window = 0.0;
  EXPECT_THROW(AdaptivePredictor(kNodes, bad), ContractViolation);
  bad = {};
  bad.repeat_boost = 0.5;
  EXPECT_THROW(AdaptivePredictor(kNodes, bad), ContractViolation);
}

// --- registry ---------------------------------------------------------------

TEST(PredictorRegistry, StringTableRoundTrips) {
  const PredictorModel models[] = {PredictorModel::kPaper,
                                   PredictorModel::kHistory,
                                   PredictorModel::kPerfect,
                                   PredictorModel::kNone,
                                   PredictorModel::kAdaptive};
  for (const PredictorModel m : models) {
    const auto parsed = parse_predictor_model(to_string(m));
    ASSERT_TRUE(parsed.has_value()) << to_string(m);
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(parse_predictor_model("oracle").has_value());
  EXPECT_FALSE(parse_predictor_model("").has_value());
  EXPECT_FALSE(parse_predictor_model("Paper").has_value());
}

TEST(PredictorRegistry, OracleModelsRequireATrace) {
  PredictorSpec spec;
  spec.model = PredictorModel::kPerfect;
  try {
    make_predictor(spec, kNodes, nullptr);
    FAIL() << "perfect predictor built without an oracle";
  } catch (const OracleRequiredError& e) {
    EXPECT_EQ(e.model(), PredictorModel::kPerfect);
  }

  spec.model = PredictorModel::kPaper;
  spec.paper_role = PaperRole::kBalancing;
  spec.alpha = 0.5;
  EXPECT_THROW(make_predictor(spec, kNodes, nullptr), OracleRequiredError);
  // kPaper under a fault-unaware scheduler degenerates to the null
  // predictor, which needs no trace.
  spec.paper_role = PaperRole::kNull;
  EXPECT_NE(make_predictor(spec, kNodes, nullptr), nullptr);
}

TEST(PredictorRegistry, AdaptiveNeedsNoOracleAndAlphaSetsConfidence) {
  PredictorSpec spec;
  spec.model = PredictorModel::kAdaptive;
  EXPECT_FALSE(predictor_needs_oracle(spec.model, PaperRole::kNull));
  const auto at_default = make_predictor(spec, kNodes, nullptr);
  ASSERT_NE(at_default, nullptr);
  EXPECT_DOUBLE_EQ(at_default->confidence(), AdaptiveConfig{}.confidence);

  spec.alpha = 0.8;
  const auto at_alpha = make_predictor(spec, kNodes, nullptr);
  EXPECT_DOUBLE_EQ(at_alpha->confidence(), 0.8);
}

// --- online evaluation ------------------------------------------------------

TEST(EvaluatePredictorOnline, MatchesOfflineForOracles) {
  const FailureTrace trace =
      generate_failures(FailureModel::bluegene_l(400, 60.0 * 86400.0), 11);
  PerfectPredictor perfect(trace);
  const PredictionQuality off =
      evaluate_predictor(perfect, trace, 6.0 * kHour, 12.0 * kHour);
  const PredictionQuality on =
      evaluate_predictor_online(perfect, trace, 6.0 * kHour, 12.0 * kHour);
  EXPECT_EQ(off.windows, on.windows);
  EXPECT_EQ(off.flagged, on.flagged);
  EXPECT_EQ(off.failing, on.failing);
  EXPECT_DOUBLE_EQ(off.precision, on.precision);
  EXPECT_DOUBLE_EQ(off.recall, on.recall);
  EXPECT_DOUBLE_EQ(on.precision, 1.0);
  EXPECT_DOUBLE_EQ(on.recall, 1.0);
}

TEST(EvaluatePredictorOnline, AdaptiveLearnsRepeatOffendersWithoutPeeking) {
  // A strongly repeat-offending stream: node 42 fails every 8 hours. After
  // the first observation the adaptive predictor should flag it for most
  // subsequent windows — recall well above zero — from past events only.
  std::vector<FailureEvent> events;
  for (int i = 0; i < 60; ++i) {
    events.push_back({8.0 * kHour * (i + 1), 42});
  }
  const FailureTrace trace(std::move(events), kNodes);
  // Disable the spatial feature (a node failing thrice in a day flags its
  // whole midplane, diluting precision) to isolate the per-node path.
  AdaptiveConfig cfg = quiet_config();
  cfg.midplane_threshold = 1'000'000;
  AdaptivePredictor adaptive(kNodes, cfg);
  const PredictionQuality q =
      evaluate_predictor_online(adaptive, trace, 6.0 * kHour, 12.0 * kHour);
  EXPECT_GT(q.windows, 0u);
  EXPECT_GT(q.recall, 0.25);
  EXPECT_GT(q.precision, 0.25);
  EXPECT_LE(q.precision, 1.0);
  EXPECT_LE(q.recall, 1.0);
}

}  // namespace
}  // namespace bgl
