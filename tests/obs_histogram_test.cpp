// Unit tests of the log-bucketed histograms (src/obs/histogram.hpp).
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <string>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace bgl::obs {
namespace {

TEST(LogHistogram, BucketBoundariesFollowGrowthRule) {
  EXPECT_DOUBLE_EQ(LogHistogram::bucket_low(0), LogHistogram::kLow);
  // Four buckets per octave: bucket 4 starts one octave above bucket 0.
  EXPECT_NEAR(LogHistogram::bucket_low(4), 2.0 * LogHistogram::kLow, 1e-15);
  for (std::size_t b = 0; b < 20; ++b) {
    EXPECT_NEAR(LogHistogram::bucket_high(b) / LogHistogram::bucket_low(b),
                LogHistogram::kGrowth, 1e-12);
  }
}

TEST(LogHistogram, EmptyReportsZeros) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  std::ostringstream out;
  h.write_json(out);
  EXPECT_EQ(out.str(), "{\"count\":0,\"underflow\":0}");
}

TEST(LogHistogram, UnderflowCatchesZeroNegativeAndSubLow) {
  LogHistogram h;
  h.add(0.0);
  h.add(-3.0);
  h.add(LogHistogram::kLow / 2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.underflow(), 3u);
  EXPECT_EQ(h.min(), -3.0);
  EXPECT_EQ(h.max(), LogHistogram::kLow / 2.0);
  // All mass below the finite buckets: every quantile answers min.
  EXPECT_EQ(h.quantile(0.5), -3.0);
  EXPECT_EQ(h.quantile(0.99), -3.0);
}

TEST(LogHistogram, NanCountsAsUnderflowNotABucket) {
  LogHistogram h;
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
}

TEST(LogHistogram, SingleValueQuantilesClampToObservedRange) {
  LogHistogram h;
  h.add(42.0);
  EXPECT_EQ(h.min(), 42.0);
  EXPECT_EQ(h.max(), 42.0);
  EXPECT_EQ(h.mean(), 42.0);
  // The bucket midpoint is clamped to [min, max], so quantiles are exact.
  EXPECT_EQ(h.quantile(0.5), 42.0);
  EXPECT_EQ(h.quantile(0.99), 42.0);
}

TEST(LogHistogram, QuantilesAreMonotone) {
  Rng rng(7);
  LogHistogram h;
  for (int i = 0; i < 5000; ++i) h.add(rng.lognormal(2.0, 2.0));
  double prev = 0.0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_LE(h.quantile(1.0), h.max());
  EXPECT_GE(h.quantile(0.0), h.min());
}

// Acceptance check: p50/p90/p99 must agree with the exact sample
// percentiles (util/stats PercentileTracker over full retention) to within
// one bucket's relative error, i.e. a factor of kGrowth = 2^(1/4).
void expect_quantiles_match_exact(const LogHistogram& h,
                                  const PercentileTracker& exact) {
  for (const double p : {50.0, 90.0, 99.0}) {
    const double approx = h.quantile(p / 100.0);
    const double truth = exact.percentile(p);
    ASSERT_GT(truth, 0.0);
    EXPECT_GE(approx, truth / LogHistogram::kGrowth)
        << "p" << p << ": " << approx << " vs exact " << truth;
    EXPECT_LE(approx, truth * LogHistogram::kGrowth)
        << "p" << p << ": " << approx << " vs exact " << truth;
  }
}

TEST(LogHistogram, QuantilesMatchExactPercentilesLognormal) {
  // Heavy-tailed, like wait times near the knee: spans ~6 orders.
  Rng rng(12345);
  LogHistogram h;
  PercentileTracker exact;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.lognormal(4.0, 1.5);
    h.add(v);
    exact.add(v);
  }
  expect_quantiles_match_exact(h, exact);
}

TEST(LogHistogram, QuantilesMatchExactPercentilesUniform) {
  Rng rng(99);
  LogHistogram h;
  PercentileTracker exact;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.uniform(5.0, 5000.0);
    h.add(v);
    exact.add(v);
  }
  expect_quantiles_match_exact(h, exact);
}

TEST(LogHistogram, MergeEqualsSingleCombinedStream) {
  Rng rng(31);
  LogHistogram a, b, combined;
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.lognormal(1.0, 2.0);
    (i % 2 == 0 ? a : b).add(v);
    combined.add(v);
  }
  a.add(-1.0);        // one underflow on the a side
  combined.add(-1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.underflow(), combined.underflow());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  // Summation order differs (a's sum + b's sum vs interleaved), so the
  // means agree only to rounding.
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9 * combined.mean());
  for (std::size_t bkt = 0; bkt < LogHistogram::kBuckets; ++bkt) {
    EXPECT_EQ(a.bucket_count(bkt), combined.bucket_count(bkt)) << "bucket " << bkt;
  }
  EXPECT_EQ(a.quantile(0.9), combined.quantile(0.9));
}

TEST(LogHistogram, MergeWithEmptyIsIdentityBothWays) {
  LogHistogram h, empty;
  h.add(3.0);
  h.merge(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 3.0);
  empty.merge(h);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 3.0);
  EXPECT_EQ(empty.max(), 3.0);
}

TEST(LogHistogram, ResetClearsEverything) {
  LogHistogram h;
  h.add(5.0);
  h.add(-1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, JsonDumpHasQuantilesAndSparseBuckets) {
  LogHistogram h;
  h.add(1.0);
  h.add(1.0);
  h.add(100.0);
  std::ostringstream out;
  h.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[["), std::string::npos);
  // Sparse: 200 buckets but only 2 are occupied, so exactly 2 triples.
  std::size_t triples = 0;
  for (std::size_t pos = json.find("[["); pos != std::string::npos;
       pos = json.find(",[", pos + 1)) {
    ++triples;
  }
  EXPECT_EQ(triples, 2u);
}

TEST(HistogramRegistry, NamesAreUniqueAndStable) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kNumHists; ++i) {
    const auto name = histogram_name(static_cast<Hist>(i));
    EXPECT_NE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
  }
  // Spot-check names that docs, dashboards and the CLI key on.
  EXPECT_EQ(histogram_name(Hist::kWait), "job.wait_s");
  EXPECT_EQ(histogram_name(Hist::kDecisionUs), "sched.decision_us");
}

TEST(HistogramRegistry, DumpListsEverySlot) {
  HistogramRegistry r;
  r.add(Hist::kWait, 10.0);
  std::ostringstream out;
  r.write_json(out);
  const std::string json = out.str();
  for (std::size_t i = 0; i < kNumHists; ++i) {
    EXPECT_NE(json.find(std::string(histogram_name(static_cast<Hist>(i)))),
              std::string::npos);
  }
  EXPECT_NE(json.find("\"job.wait_s\":{\"count\":1"), std::string::npos);
}

TEST(HistogramRegistry, MergeAndResetActSlotwise) {
  HistogramRegistry a, b;
  a.add(Hist::kWait, 1.0);
  b.add(Hist::kWait, 2.0);
  b.add(Hist::kCandidates, 5.0);
  a.merge(b);
  EXPECT_EQ(a.histogram(Hist::kWait).count(), 2u);
  EXPECT_EQ(a.histogram(Hist::kCandidates).count(), 1u);
  EXPECT_EQ(b.histogram(Hist::kWait).count(), 1u);  // source untouched
  a.reset();
  EXPECT_EQ(a.histogram(Hist::kWait).count(), 0u);
  EXPECT_EQ(a.histogram(Hist::kCandidates).count(), 0u);
}

}  // namespace
}  // namespace bgl::obs
