// Adversarial round-trip tests for the trace number formatting: every
// double written by TraceSink (timestamps and field values) must parse back
// bit-identical through TraceReader. The old '%.10g' formatting dropped
// low-order bits at large sim times (e.g. 86423.50000000001 → 86423.5),
// which made trace_audit's re-derived wait/response metrics drift from the
// simulator's in-memory values.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/reader.hpp"
#include "util/rng.hpp"

namespace bgl::obs {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

double from_bits(std::uint64_t u) {
  double v;
  std::memcpy(&v, &u, sizeof(v));
  return v;
}

/// Write one event with `t` as the timestamp and `value` as a field, read
/// it back, and require both doubles bit-exact.
void expect_roundtrip(double t, double value) {
  std::ostringstream out;
  {
    TraceSink sink(out);
    sink.event("snapshot", t).field("x", value);
    sink.flush();
  }
  std::istringstream in(out.str());
  TraceReader reader(in);
  TraceRecord record;
  ASSERT_TRUE(reader.next(record)) << out.str();
  EXPECT_EQ(bits(record.t()), bits(t))
      << "t: wrote " << t << " read " << record.t() << " via " << out.str();
  EXPECT_EQ(bits(record.require_num("x")), bits(value))
      << "x: wrote " << value << " read " << record.require_num("x")
      << " via " << out.str();
}

TEST(ObsDoubleRoundTrip, KnownLossyCasesUnderOldFormatting) {
  // Values with more than 10 significant decimal digits — all truncated by
  // the previous '%.10g' and now preserved exactly.
  expect_roundtrip(86423.50000000001, 86423.50000000001);
  expect_roundtrip(0.0, 1.0 / 3.0);
  expect_roundtrip(0.0, 0.1);
  expect_roundtrip(0.0, 1e16 + 2.0);
  expect_roundtrip(0.0, 123456789.123456789);
  // A month of sim time plus a sub-millisecond offset.
  expect_roundtrip(2592000.0 + 1e-4, 2592000.0 + 1e-4);
  expect_roundtrip(0.0, std::nextafter(1.0, 2.0));
  expect_roundtrip(0.0, std::nextafter(1e9, 2e9));
}

TEST(ObsDoubleRoundTrip, ExtremeMagnitudes) {
  expect_roundtrip(0.0, std::numeric_limits<double>::max());
  expect_roundtrip(0.0, std::numeric_limits<double>::min());  // smallest normal
  expect_roundtrip(0.0, std::numeric_limits<double>::denorm_min());
  expect_roundtrip(0.0, 5e-324);  // same denormal, spelled as a literal
  expect_roundtrip(0.0, std::numeric_limits<double>::epsilon());
  expect_roundtrip(0.0, 4.9406564584124654e-300);
}

TEST(ObsDoubleRoundTrip, NonFiniteValuesBecomeJsonNull) {
  // JSON has no Infinity/NaN; the sink writes null and the reader stores a
  // null-kind field (num() empty) rather than emitting invalid JSON.
  std::ostringstream out;
  {
    TraceSink sink(out);
    sink.event("snapshot", 1.0)
        .field("inf", std::numeric_limits<double>::infinity())
        .field("nan", std::numeric_limits<double>::quiet_NaN());
    sink.flush();
  }
  EXPECT_EQ(out.str().find(":inf"), std::string::npos);  // no bare inf token
  EXPECT_EQ(out.str().find(":nan"), std::string::npos);
  EXPECT_NE(out.str().find("null"), std::string::npos);
  std::istringstream in(out.str());
  TraceReader reader(in);
  TraceRecord record;
  ASSERT_TRUE(reader.next(record));
  EXPECT_TRUE(record.has("inf"));
  EXPECT_FALSE(record.num("inf").has_value());
  EXPECT_FALSE(record.num("nan").has_value());
}

/// Fuzz: random bit patterns (masked to finite doubles) plus random
/// accumulations of realistic sim-time increments, one event per value,
/// all bit-exact after a sink→reader pass.
TEST(ObsDoubleRoundTrip, RandomBitPatternsSurviveSinkAndReader) {
  Rng rng(0x0b5e55ed);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) {
    const double v = from_bits(rng.next_u64());
    if (std::isfinite(v)) values.push_back(v);
  }
  // Realistic timestamps: a long sim accumulating uneven increments.
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    t += static_cast<double>(rng.next_u64() % 360000) / 1000.0 + 1e-7;
    values.push_back(t);
  }

  std::ostringstream out;
  {
    TraceSink sink(out);
    for (const double v : values) {
      sink.event("snapshot", std::abs(v)).field("x", v);
    }
    sink.flush();
  }
  std::istringstream in(out.str());
  TraceReader reader(in);
  TraceRecord record;
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_TRUE(reader.next(record)) << i;
    EXPECT_EQ(bits(record.t()), bits(std::abs(values[i]))) << i;
    EXPECT_EQ(bits(record.require_num("x")), bits(values[i])) << i;
  }
  EXPECT_FALSE(reader.next(record));
}

}  // namespace
}  // namespace bgl::obs
